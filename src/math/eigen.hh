/**
 * @file
 * Symmetric eigendecomposition via cyclic Jacobi rotations, used by
 * the Perona-Freeman counter-selection algorithm (Alg. 1 in the paper)
 * to extract the second eigenvector of a counter covariance matrix.
 */

#ifndef PSCA_MATH_EIGEN_HH
#define PSCA_MATH_EIGEN_HH

#include <vector>

#include "math/matrix.hh"

namespace psca {

/** Eigendecomposition result, sorted by descending eigenvalue. */
struct EigenResult
{
    /** Eigenvalues, eigenvalues[k] pairing with eigenvector k. */
    std::vector<double> eigenvalues;
    /** Row k holds the (unit-norm) eigenvector for eigenvalues[k]. */
    Matrix eigenvectors;
};

/**
 * Full eigendecomposition of a symmetric matrix using cyclic Jacobi
 * sweeps. O(n^3) per sweep; converges in a handful of sweeps for the
 * covariance matrices this library produces (n <= ~1000).
 *
 * @param a Symmetric input matrix (only assumed symmetric, not PSD).
 * @param max_sweeps Upper bound on full Jacobi sweeps.
 * @return Eigenpairs sorted by descending eigenvalue.
 */
EigenResult jacobiEigenSymmetric(const Matrix &a, int max_sweeps = 64);

/**
 * Leading eigenpairs via the same full decomposition; convenience for
 * callers that only need the top-k (e.g. PF selection needs k = 2).
 */
EigenResult topEigenSymmetric(const Matrix &a, size_t k);

} // namespace psca

#endif // PSCA_MATH_EIGEN_HH
