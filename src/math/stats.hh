/**
 * @file
 * Streaming and batch statistics helpers: Welford running moments,
 * mean/stddev over containers, and quantiles. Used for counter
 * screening, cross-validation summaries, and metric reporting.
 */

#ifndef PSCA_MATH_STATS_HH
#define PSCA_MATH_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace psca {

/** Welford single-pass accumulator for mean and variance. */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = count_ == 1 ? x : std::min(min_, x);
        max_ = count_ == 1 ? x : std::max(max_, x);
    }

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (n - 1 denominator). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Merge another accumulator (Chan et al. parallel combine). */
    void
    merge(const RunningStats &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double total = static_cast<double>(count_ + other.count_);
        const double delta = other.mean_ - mean_;
        m2_ += other.m2_ + delta * delta *
            static_cast<double>(count_) *
            static_cast<double>(other.count_) / total;
        mean_ += delta * static_cast<double>(other.count_) / total;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        count_ += other.count_;
    }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a vector; 0 for an empty vector. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

/** Sample standard deviation of a vector; 0 for fewer than 2 values. */
inline double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double sum = 0.0;
    for (double x : v)
        sum += (x - m) * (x - m);
    return std::sqrt(sum / static_cast<double>(v.size() - 1));
}

/** Linear-interpolated quantile q in [0, 1] of a copy of v. */
inline double
quantile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

} // namespace psca

#endif // PSCA_MATH_STATS_HH
