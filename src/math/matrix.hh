/**
 * @file
 * Dense row-major matrix and helpers sized for this library's needs:
 * counter covariance matrices (up to ~1000 x 1000) and small ML
 * parameter blocks. Not a general BLAS; operations are written for
 * clarity with cache-friendly loop orders.
 */

#ifndef PSCA_MATH_MATRIX_HH
#define PSCA_MATH_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace psca {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix initialized to fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    double *row(size_t r) { return data_.data() + r * cols_; }
    const double *row(size_t r) const { return data_.data() + r * cols_; }

    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Identity matrix of size n. */
    static Matrix
    identity(size_t n)
    {
        Matrix m(n, n);
        for (size_t i = 0; i < n; ++i)
            m(i, i) = 1.0;
        return m;
    }

    /** Matrix product this * other. */
    Matrix
    multiply(const Matrix &other) const
    {
        PSCA_ASSERT(cols_ == other.rows_, "matmul shape mismatch");
        Matrix out(rows_, other.cols_);
        for (size_t i = 0; i < rows_; ++i) {
            for (size_t k = 0; k < cols_; ++k) {
                const double a = (*this)(i, k);
                if (a == 0.0)
                    continue;
                const double *brow = other.row(k);
                double *orow = out.row(i);
                for (size_t j = 0; j < other.cols_; ++j)
                    orow[j] += a * brow[j];
            }
        }
        return out;
    }

    /** Transposed copy. */
    Matrix
    transposed() const
    {
        Matrix out(cols_, rows_);
        for (size_t i = 0; i < rows_; ++i)
            for (size_t j = 0; j < cols_; ++j)
                out(j, i) = (*this)(i, j);
        return out;
    }

    /** Matrix-vector product. */
    std::vector<double>
    multiply(const std::vector<double> &v) const
    {
        PSCA_ASSERT(cols_ == v.size(), "matvec shape mismatch");
        std::vector<double> out(rows_, 0.0);
        for (size_t i = 0; i < rows_; ++i) {
            const double *r = row(i);
            double sum = 0.0;
            for (size_t j = 0; j < cols_; ++j)
                sum += r[j] * v[j];
            out[i] = sum;
        }
        return out;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Sample covariance of the rows-as-variables matrix X (vars x samples):
 * C[i][j] = cov(row i, row j). Rows are mean-centered internally.
 */
Matrix rowCovariance(const Matrix &x);

} // namespace psca

#endif // PSCA_MATH_MATRIX_HH
