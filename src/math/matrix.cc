#include "math/matrix.hh"

namespace psca {

Matrix
rowCovariance(const Matrix &x)
{
    const size_t n = x.rows();
    const size_t t = x.cols();
    PSCA_ASSERT(t >= 2, "covariance needs at least two samples");

    // Mean-center each variable (row).
    Matrix centered(n, t);
    for (size_t i = 0; i < n; ++i) {
        const double *src = x.row(i);
        double mean = 0.0;
        for (size_t j = 0; j < t; ++j)
            mean += src[j];
        mean /= static_cast<double>(t);
        double *dst = centered.row(i);
        for (size_t j = 0; j < t; ++j)
            dst[j] = src[j] - mean;
    }

    Matrix cov(n, n);
    const double inv = 1.0 / static_cast<double>(t - 1);
    for (size_t i = 0; i < n; ++i) {
        const double *ri = centered.row(i);
        for (size_t j = i; j < n; ++j) {
            const double *rj = centered.row(j);
            double sum = 0.0;
            for (size_t k = 0; k < t; ++k)
                sum += ri[k] * rj[k];
            const double c = sum * inv;
            cov(i, j) = c;
            cov(j, i) = c;
        }
    }
    return cov;
}

} // namespace psca
