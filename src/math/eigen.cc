#include "math/eigen.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace psca {

EigenResult
jacobiEigenSymmetric(const Matrix &a, int max_sweeps)
{
    const size_t n = a.rows();
    PSCA_ASSERT(n == a.cols(), "eigendecomposition needs a square matrix");

    Matrix m = a;          // Working copy, driven to diagonal form.
    Matrix v = Matrix::identity(n);

    auto off_diagonal_norm = [&]() {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                sum += m(i, j) * m(i, j);
        return std::sqrt(sum);
    };

    // Scale-aware convergence threshold.
    double frob = 0.0;
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            frob += m(i, j) * m(i, j);
    const double tol = 1e-12 * std::max(std::sqrt(frob), 1e-300);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diagonal_norm() <= tol)
            break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = m(p, q);
                if (std::abs(apq) <= tol / static_cast<double>(n))
                    continue;

                const double app = m(p, p);
                const double aqq = m(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // Rotate rows/columns p and q of the working matrix.
                for (size_t k = 0; k < n; ++k) {
                    const double mkp = m(k, p);
                    const double mkq = m(k, q);
                    m(k, p) = c * mkp - s * mkq;
                    m(k, q) = s * mkp + c * mkq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double mpk = m(p, k);
                    const double mqk = m(q, k);
                    m(p, k) = c * mpk - s * mqk;
                    m(q, k) = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector basis.
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return m(x, x) > m(y, y);
    });

    EigenResult result;
    result.eigenvalues.resize(n);
    result.eigenvectors = Matrix(n, n);
    for (size_t k = 0; k < n; ++k) {
        const size_t src = order[k];
        result.eigenvalues[k] = m(src, src);
        for (size_t i = 0; i < n; ++i)
            result.eigenvectors(k, i) = v(i, src);
    }
    return result;
}

EigenResult
topEigenSymmetric(const Matrix &a, size_t k)
{
    EigenResult full = jacobiEigenSymmetric(a);
    const size_t keep = std::min(k, full.eigenvalues.size());

    EigenResult out;
    out.eigenvalues.assign(full.eigenvalues.begin(),
                           full.eigenvalues.begin() +
                               static_cast<ptrdiff_t>(keep));
    out.eigenvectors = Matrix(keep, a.rows());
    for (size_t i = 0; i < keep; ++i)
        for (size_t j = 0; j < a.rows(); ++j)
            out.eigenvectors(i, j) = full.eigenvectors(i, j);
    return out;
}

} // namespace psca
