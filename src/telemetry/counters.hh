/**
 * @file
 * Telemetry counter registry and per-run counter storage.
 *
 * The paper's telemetry subsystem exposes 936 architecture and
 * microarchitecture event counters at one on-chip convergence point.
 * We reproduce that population structure programmatically:
 *
 *  - global scalar events (retirement, frontend, caches, TLBs, ...);
 *  - per-cluster scalar events (issue, reservation stations, ...);
 *  - per-op-class issue/retire counters;
 *  - occupancy / latency / bundle-size histogram families;
 *  - address- and pc-region binned events;
 *  - "alternate encoding" mirrors of key events (real PMUs expose
 *    several encodings of the same count, and this redundancy is
 *    exactly what PF counter selection exploits);
 *  - reserved/unimplemented encodings that always read zero (real
 *    event lists include encodings invalid on a given part; these
 *    are culled by the paper's low-activity screen, which reduces
 *    936 -> 308 counters).
 *
 * The registry pads with reserved encodings to exactly 936 entries.
 */

#ifndef PSCA_TELEMETRY_COUNTERS_HH
#define PSCA_TELEMETRY_COUNTERS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace psca {

/** Total counters exposed by the telemetry subsystem (paper: 936). */
constexpr size_t kNumTelemetryCounters = 936;

/** Number of clusters in the core (fixed by the architecture). */
constexpr int kNumClusters = 2;

/**
 * Well-known scalar counters the timing model updates directly.
 * Order defines registry indices 0..NumScalar-1.
 */
enum class Ctr : uint16_t
{
    Cycles,
    InstRetired,
    UopsRetired,
    LoadsRetired,
    StoresRetired,
    BranchesRetired,
    BranchTakenRetired,
    BranchMispred,
    WrongPathUopsFlushed,
    UopCacheHit,
    UopCacheMiss,
    L1iHit,
    L1iMiss,
    ItlbHit,
    ItlbMiss,
    DtlbHit,
    DtlbMiss,
    L1dRead,
    L1dWrite,
    L1dHit,
    L1dMiss,
    L2Hit,
    L2Miss,
    L2SilentEvict,
    L2DirtyEvict,
    LlcHit,
    LlcMiss,
    MemReads,
    MemWrites,
    MemBytesRead,
    MemBytesWritten,
    StallCount,          //!< cycles with zero uops issued
    FetchStallCycles,
    DecodeUops,
    UopsDispatched,
    RobFullStalls,
    SqFullStalls,
    MshrFullStalls,
    PhysRegRefs,
    UopsReady,           //!< uops entering issue already ready
    UopsStalledOnDep,    //!< uops that waited on an operand
    UopsIssuedTotal,
    IssueSlotsUnused,
    InterClusterFwd,
    StoreForwards,
    SqOccSum,
    RobOccSum,
    MshrOccSum,
    LoadLatSum,
    DepWaitSum,
    ModeSwitches,
    GatedCycles,
    FpOpsRetired,
    IntOpsRetired,
    NumScalar
};

/** Number of well-known scalar counters. */
constexpr size_t kNumScalarCtrs = static_cast<size_t>(Ctr::NumScalar);

/** Per-cluster scalar events. Index: perClusterBase + cluster*N + e. */
enum class ClusterCtr : uint16_t
{
    UopsIssued,
    LoadsIssued,
    StoresIssued,
    RsOccSum,
    RsFullStalls,
    IssueSlotsUnused,
    EuBusySum,
    NumPerCluster
};

/** Number of per-cluster scalar events. */
constexpr size_t kNumClusterCtrs =
    static_cast<size_t>(ClusterCtr::NumPerCluster);

/** Histogram / binned counter families. */
enum class CtrFamily : uint16_t
{
    RobOccHist,       //!< 16 buckets
    RsOccHistC0,      //!< 16
    RsOccHistC1,      //!< 16
    SqOccHist,        //!< 16
    LoadLatHist,      //!< 16
    FetchBundleHist,  //!< 9 (0..8 uops delivered)
    IssueBundleHistC0,//!< 5 (0..4 issued)
    IssueBundleHistC1,//!< 5
    DepWaitHist,      //!< 16
    StrideHist,       //!< 16
    L1dMissRegion,    //!< 64 address regions
    L2MissRegion,     //!< 64
    UopsPcRegion,     //!< 64 code regions
    BrMispredPcRegion,//!< 64
    OpcIssuedC0,      //!< kNumOpClasses
    OpcIssuedC1,      //!< kNumOpClasses
    OpcRetired,       //!< kNumOpClasses
    NumFamilies
};

/**
 * Static description of the 936-counter space: names, section
 * boundaries, and index computation helpers.
 */
class CounterRegistry
{
  public:
    /** The singleton registry (immutable after construction). */
    static const CounterRegistry &instance();

    size_t numCounters() const { return names_.size(); }
    const std::string &name(uint16_t id) const { return names_[id]; }

    /** Index of a well-known scalar counter. */
    static uint16_t
    index(Ctr c)
    {
        return static_cast<uint16_t>(c);
    }

    /** Index of a per-cluster scalar counter. */
    uint16_t
    index(ClusterCtr c, int cluster) const
    {
        return static_cast<uint16_t>(
            per_cluster_base_ +
            static_cast<size_t>(cluster) * kNumClusterCtrs +
            static_cast<size_t>(c));
    }

    /** Base index of a histogram family. */
    uint16_t
    familyBase(CtrFamily f) const
    {
        return family_base_[static_cast<size_t>(f)];
    }

    /** Number of buckets in a histogram family. */
    uint16_t
    familySize(CtrFamily f) const
    {
        return family_size_[static_cast<size_t>(f)];
    }

    /** Index of the k-th mirror ("alternate encoding") counter. */
    uint16_t mirrorIndex(size_t k) const
    {
        return static_cast<uint16_t>(mirror_base_ + k);
    }

    /** The scalar counter a mirror duplicates. */
    uint16_t mirrorSource(size_t k) const { return mirror_source_[k]; }

    size_t numMirrors() const { return mirror_source_.size(); }

    /** First reserved (always-zero) counter index. */
    uint16_t reservedBase() const { return reserved_base_; }

    /** Look up a counter index by registry name; fatal if missing. */
    uint16_t indexOf(const std::string &name) const;

  private:
    CounterRegistry();

    std::vector<std::string> names_;
    std::unordered_map<std::string, uint16_t> by_name_;
    size_t per_cluster_base_ = 0;
    uint16_t family_base_[static_cast<size_t>(CtrFamily::NumFamilies)] =
        {};
    uint16_t family_size_[static_cast<size_t>(CtrFamily::NumFamilies)] =
        {};
    size_t mirror_base_ = 0;
    std::vector<uint16_t> mirror_source_;
    uint16_t reserved_base_ = 0;
};

/**
 * Live counter storage for one simulation. Raw 64-bit counts; the
 * dataset layer normalizes by interval cycles.
 */
class Counters
{
  public:
    Counters() : values_(CounterRegistry::instance().numCounters(), 0) {}

    /** Increment a counter by n. */
    void
    inc(uint16_t idx, uint64_t n = 1)
    {
        values_[idx] += n;
    }

    void inc(Ctr c, uint64_t n = 1)
    {
        values_[CounterRegistry::index(c)] += n;
    }

    uint64_t value(uint16_t idx) const { return values_[idx]; }
    uint64_t value(Ctr c) const
    {
        return values_[CounterRegistry::index(c)];
    }

    const std::vector<uint64_t> &raw() const { return values_; }

    /** Zero all counters. */
    void reset() { std::fill(values_.begin(), values_.end(), 0); }

    /**
     * Propagate mirror counters from their sources. Called by the
     * core at interval boundaries (mirrors are alternate encodings of
     * the same underlying event).
     */
    void syncMirrors();

  private:
    std::vector<uint64_t> values_;
};

/**
 * Apply the armed telemetry fault sites to one interval's
 * counter-delta snapshot, in place. The caller passes the copy that
 * feeds the controller's *view* — ground-truth accounting (energy,
 * labels, records) must never see a faulted snapshot.
 *
 * @p key identifies the interval deterministically (trace hash mixed
 * with interval index): draws depend only on (fault seed, site, key),
 * never on thread count or call order.
 *
 * Returns true when telemetry.dropped_snapshot fired and the whole
 * snapshot is lost — the caller reuses its previous view. Near-free
 * when no fault site is armed (one registry bool load).
 */
bool applyTelemetryFaults(std::vector<uint64_t> &deltas, uint64_t key);

} // namespace psca

#endif // PSCA_TELEMETRY_COUNTERS_HH
