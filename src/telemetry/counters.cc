#include "telemetry/counters.hh"

#include <cmath>

#include "common/fault.hh"
#include "trace/uop.hh"

namespace psca {

namespace {

/** Names for Ctr, in enum order (paper-style names where they map). */
const char *const kScalarNames[] = {
    "Cycles",
    "Instructions Retired",
    "Micro Ops Retired",
    "Loads Retired",
    "Stores Retired",
    "Branches Retired",
    "Branches Taken Retired",
    "Branch Mispredictions",
    "Wrong-Path uOps Flushed",
    "Micro Op Cache Hits",
    "Micro Op Cache Misses",
    "Instruction Cache Hits",
    "Instruction Cache Misses",
    "I-TLB Hits",
    "I-TLB Misses",
    "D-TLB Hits",
    "D-TLB Misses",
    "L1 Data Cache Reads",
    "L1 Data Cache Writes",
    "L1 Data Cache Hits",
    "L1 Data Cache Misses",
    "L2 Cache Hits",
    "L2 Cache Misses",
    "L2 Silent Evictions",
    "L2 Dirty Evictions",
    "LLC Hits",
    "LLC Misses",
    "Memory Reads",
    "Memory Writes",
    "Memory Bytes Read",
    "Memory Bytes Written",
    "Stall Count",
    "Fetch Stall Cycles",
    "Decode uOps",
    "uOps Dispatched",
    "ROB Full Stalls",
    "Store Queue Full Stalls",
    "MSHR Full Stalls",
    "Physical Register Ref. Count",
    "Micro Ops Ready",
    "Micro Ops Stalled on Dep.",
    "uOps Issued Total",
    "Issue Slots Unused",
    "Inter-Cluster Forwards",
    "Store Forwards",
    "Store Queue Occupancy",
    "ROB Occupancy",
    "MSHR Occupancy",
    "Load Latency Sum",
    "Dependency Wait Sum",
    "Mode Switches",
    "Gated Cycles",
    "FP Ops Retired",
    "Int Ops Retired",
};
static_assert(sizeof(kScalarNames) / sizeof(kScalarNames[0]) ==
              kNumScalarCtrs);

const char *const kClusterCtrNames[] = {
    "uOps Issued",
    "Loads Issued",
    "Stores Issued",
    "RS Occupancy",
    "RS Full Stalls",
    "Issue Slots Unused",
    "EU Busy",
};
static_assert(sizeof(kClusterCtrNames) / sizeof(kClusterCtrNames[0]) ==
              kNumClusterCtrs);

struct FamilySpec
{
    CtrFamily family;
    const char *prefix;
    uint16_t size;
};

const FamilySpec kFamilies[] = {
    {CtrFamily::RobOccHist, "ROB Occ Hist", 16},
    {CtrFamily::RsOccHistC0, "RS Occ Hist C0", 16},
    {CtrFamily::RsOccHistC1, "RS Occ Hist C1", 16},
    {CtrFamily::SqOccHist, "SQ Occ Hist", 16},
    {CtrFamily::LoadLatHist, "Load Latency Hist", 16},
    {CtrFamily::FetchBundleHist, "Fetch Bundle Hist", 9},
    {CtrFamily::IssueBundleHistC0, "Issue Bundle Hist C0", 5},
    {CtrFamily::IssueBundleHistC1, "Issue Bundle Hist C1", 5},
    {CtrFamily::DepWaitHist, "Dependency Wait Hist", 16},
    {CtrFamily::StrideHist, "Load Stride Hist", 16},
    {CtrFamily::L1dMissRegion, "L1D Miss Region", 64},
    {CtrFamily::L2MissRegion, "L2 Miss Region", 64},
    {CtrFamily::UopsPcRegion, "uOps PC Region", 64},
    {CtrFamily::BrMispredPcRegion, "Br Mispred PC Region", 64},
    {CtrFamily::OpcIssuedC0, "Issued C0",
     static_cast<uint16_t>(kNumOpClasses)},
    {CtrFamily::OpcIssuedC1, "Issued C1",
     static_cast<uint16_t>(kNumOpClasses)},
    {CtrFamily::OpcRetired, "Retired",
     static_cast<uint16_t>(kNumOpClasses)},
};
static_assert(sizeof(kFamilies) / sizeof(kFamilies[0]) ==
              static_cast<size_t>(CtrFamily::NumFamilies));

} // namespace

const CounterRegistry &
CounterRegistry::instance()
{
    static const CounterRegistry registry;
    return registry;
}

CounterRegistry::CounterRegistry()
{
    names_.reserve(kNumTelemetryCounters);

    // Section A: global scalars.
    for (const char *name : kScalarNames)
        names_.emplace_back(name);

    // Section B: per-cluster scalars.
    per_cluster_base_ = names_.size();
    for (int c = 0; c < kNumClusters; ++c) {
        for (const char *name : kClusterCtrNames) {
            names_.push_back(std::string(name) + " (Cluster " +
                             std::to_string(c) + ")");
        }
    }

    // Section C: histogram and binned families.
    for (const auto &spec : kFamilies) {
        family_base_[static_cast<size_t>(spec.family)] =
            static_cast<uint16_t>(names_.size());
        family_size_[static_cast<size_t>(spec.family)] = spec.size;
        const bool opclass_family =
            spec.family == CtrFamily::OpcIssuedC0 ||
            spec.family == CtrFamily::OpcIssuedC1 ||
            spec.family == CtrFamily::OpcRetired;
        for (uint16_t b = 0; b < spec.size; ++b) {
            if (opclass_family) {
                names_.push_back(
                    std::string(spec.prefix) + " " +
                    opClassName(static_cast<OpClass>(b)));
            } else {
                names_.push_back(std::string(spec.prefix) + " [" +
                                 std::to_string(b) + "]");
            }
        }
    }

    // Section D: alternate-encoding mirrors of scalar counters.
    mirror_base_ = names_.size();
    for (size_t s = 0; s < kNumScalarCtrs; ++s) {
        mirror_source_.push_back(static_cast<uint16_t>(s));
        names_.push_back(std::string(kScalarNames[s]) + " (ALT)");
    }
    for (size_t s = 0; s < 30; ++s) {
        mirror_source_.push_back(static_cast<uint16_t>(s));
        names_.push_back(std::string(kScalarNames[s]) + " (ALT2)");
    }

    // Section E: reserved/unimplemented encodings, padding to the
    // telemetry system's fixed 936-counter space. These always read
    // zero and are removed by the low-activity screen (Sec. 6.2).
    reserved_base_ = static_cast<uint16_t>(names_.size());
    PSCA_ASSERT(names_.size() <= kNumTelemetryCounters,
                "registry overflows the 936-counter space");
    size_t pad = 0;
    while (names_.size() < kNumTelemetryCounters)
        names_.push_back("Reserved Encoding " + std::to_string(pad++));

    for (size_t i = 0; i < names_.size(); ++i)
        by_name_[names_[i]] = static_cast<uint16_t>(i);
}

uint16_t
CounterRegistry::indexOf(const std::string &name) const
{
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        fatal("unknown counter name '", name, "'");
    return it->second;
}

void
Counters::syncMirrors()
{
    const auto &reg = CounterRegistry::instance();
    for (size_t k = 0; k < reg.numMirrors(); ++k)
        values_[reg.mirrorIndex(k)] = values_[reg.mirrorSource(k)];
}

namespace {

// Substream lanes keeping the per-site draw streams (which counter is
// stuck, which saturates, per-delta noise) independent of the fire
// streams and of each other.
constexpr uint64_t kLaneStuckIndex = 101;
constexpr uint64_t kLaneSaturIndex = 102;
constexpr uint64_t kLaneNoiseBase = 1000;

} // namespace

bool
applyTelemetryFaults(std::vector<uint64_t> &deltas, uint64_t key)
{
    if (!FaultRegistry::instance().anyEnabled())
        return false;

    const FaultSite &drop = FAULT_SITE("telemetry.dropped_snapshot");
    if (drop.enabled() && drop.fires(key))
        return true;

    // Stuck-at: one counter's delta reads zero this interval. The
    // victim index is the site param, or seed-derived when omitted —
    // fixed for the whole run either way, like a real stuck bit.
    const FaultSite &stuck = FAULT_SITE("telemetry.stuck_counter");
    if (stuck.enabled() && stuck.fires(key)) {
        const double p = stuck.param(-1.0);
        const size_t idx = p >= 0.0 &&
                static_cast<size_t>(p) < deltas.size()
            ? static_cast<size_t>(p)
            : static_cast<size_t>(
                  stuck.draw(0, kLaneStuckIndex, deltas.size()));
        deltas[idx] = 0;
    }

    // Saturation/wraparound: one seed-chosen counter wraps at
    // 2^param bits (default 20), as if the hardware register were
    // narrower than the convergence point assumes.
    const FaultSite &sat = FAULT_SITE("telemetry.saturation");
    if (sat.enabled() && sat.fires(key)) {
        const double bits_d = sat.param(20.0);
        const unsigned bits = bits_d >= 1.0 && bits_d < 64.0
            ? static_cast<unsigned>(bits_d)
            : 20u;
        const size_t idx = static_cast<size_t>(
            sat.draw(0, kLaneSaturIndex, deltas.size()));
        deltas[idx] &= (uint64_t{1} << bits) - 1;
    }

    // Gaussian read noise: every delta scaled by (1 + sigma*N(0,1)),
    // one independent substream per counter index.
    const FaultSite &noise = FAULT_SITE("telemetry.noise");
    if (noise.enabled() && noise.fires(key)) {
        const double sigma = noise.param(0.05);
        for (size_t i = 0; i < deltas.size(); ++i) {
            if (deltas[i] == 0)
                continue;
            const double g = noise.gaussian(key, kLaneNoiseBase + i);
            const double scaled =
                static_cast<double>(deltas[i]) * (1.0 + sigma * g);
            deltas[i] = scaled <= 0.0
                ? 0
                : static_cast<uint64_t>(std::llround(scaled));
        }
    }

    return false;
}

} // namespace psca
