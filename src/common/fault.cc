#include "common/fault.hh"

#include <cstdint>
#include <limits>

#include "common/env.hh"
#include "common/logging.hh"

namespace psca {
namespace {

/** FNV-1a 64 over the site name, for seed derivation. */
uint64_t
hashName(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

FaultRegistry &
FaultRegistry::instance()
{
    static FaultRegistry registry;
    return registry;
}

FaultRegistry::FaultRegistry()
{
    seed_ = static_cast<uint64_t>(
        env::intOr("PSCA_FAULT_SEED", 0x5053434146544cULL, 0,
                   std::numeric_limits<long long>::max()));
    configure(env::stringOr("PSCA_FAULTS", ""), seed_);
}

FaultSite &
FaultRegistry::site(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(name);
    if (it == sites_.end()) {
        auto inserted = sites_.emplace(
            name,
            std::unique_ptr<FaultSite>(new FaultSite(name)));
        it = inserted.first;
        armSite(*it->second);
    }
    return *it->second;
}

void
FaultRegistry::configure(const std::string &spec)
{
    configure(spec, seed_);
}

void
FaultRegistry::configure(const std::string &spec, uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    spec_.clear();

    // Parse "site:rate[:param],..." — a malformed entry is fatal so a
    // typo'd fault mix can never silently run fault-free.
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        const size_t c1 = entry.find(':');
        if (c1 == std::string::npos || c1 == 0)
            fatal("PSCA_FAULTS entry '", entry,
                  "': expected site:rate[:param]");
        const std::string name = entry.substr(0, c1);
        const size_t c2 = entry.find(':', c1 + 1);
        const std::string rate_s = c2 == std::string::npos
            ? entry.substr(c1 + 1)
            : entry.substr(c1 + 1, c2 - c1 - 1);

        SpecEntry se;
        if (!env::tryParseDouble(rate_s.c_str(), se.rate) ||
            se.rate < 0.0 || se.rate > 1.0)
            fatal("PSCA_FAULTS entry '", entry, "': rate '", rate_s,
                  "' is not a probability in [0, 1]");
        if (c2 != std::string::npos) {
            const std::string param_s = entry.substr(c2 + 1);
            if (!env::tryParseDouble(param_s.c_str(), se.param))
                fatal("PSCA_FAULTS entry '", entry, "': param '",
                      param_s, "' is not a number");
            se.hasParam = true;
        }
        if (spec_.count(name))
            fatal("PSCA_FAULTS names site '", name, "' twice");
        spec_[name] = se;
    }

    anyEnabled_ = false;
    for (const auto &kv : spec_)
        if (kv.second.rate > 0.0)
            anyEnabled_ = true;

    for (auto &kv : sites_)
        armSite(*kv.second);
}

void
FaultRegistry::armSite(FaultSite &site) const
{
    site.fireCount_.store(0, std::memory_order_relaxed);
    site.siteSeed_ = taskSeed(seed_, hashName(site.name_));
    const auto it = spec_.find(site.name_);
    if (it == spec_.end()) {
        site.enabled_ = false;
        site.rate_ = 0.0;
        site.param_ = 0.0;
        site.hasParam_ = false;
        return;
    }
    site.rate_ = it->second.rate;
    site.param_ = it->second.param;
    site.hasParam_ = it->second.hasParam;
    site.enabled_ = site.rate_ > 0.0;
    inform("fault site ", site.name_, " armed: rate=", site.rate_,
           site.hasParam_ ? " param=" : "",
           site.hasParam_ ? std::to_string(site.param_) : "");
}

void
FaultRegistry::forEachSite(
    const std::function<void(const FaultSite &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &kv : sites_)
        fn(*kv.second);
}

} // namespace psca
