/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * Every stochastic component in the library (workload genomes, trace
 * generation, dataset partitioning, model initialization, bagging)
 * draws from an explicitly seeded Rng so that repeated runs of a bench
 * binary print identical rows. The generator is xoshiro256** seeded
 * via SplitMix64, following the reference implementations of Blackman
 * and Vigna.
 */

#ifndef PSCA_COMMON_RNG_HH
#define PSCA_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace psca {

/** SplitMix64 step, used for seeding and cheap hash mixing. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless mix of two words, for deriving per-entity seeds. */
inline uint64_t
mixSeeds(uint64_t a, uint64_t b)
{
    uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL);
    return splitMix64(s);
}

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 * Not thread-safe; create one per thread or per entity.
 */
class Rng
{
  public:
    /** Seed all 256 bits of state from one word via SplitMix64. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Multiply-shift bounded draw (Lemire); bias is negligible
        // for the small ranges used here.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    gaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal draw with given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

    /** Log-normal draw parameterized by the underlying normal. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(gaussian(mu, sigma));
    }

    /** Geometric-ish draw: exponential with given mean, >= 1. */
    double
    exponential(double mean)
    {
        double u = 0.0;
        while (u <= 1e-300)
            u = uniform();
        return -mean * std::log(u);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            const size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample an index from unnormalized non-negative weights. */
    size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        double draw = uniform() * total;
        for (size_t i = 0; i < weights.size(); ++i) {
            draw -= weights[i];
            if (draw <= 0.0)
                return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
    bool have_cached_ = false;
    double cached_ = 0.0;
};

} // namespace psca

#endif // PSCA_COMMON_RNG_HH
