/**
 * @file
 * Minimal binary (de)serialization helpers used by the dataset cache
 * and model save/load. Little-endian host assumed (x86); files carry a
 * magic word and version so stale caches are rejected, not misread.
 *
 * Integrity model: every byte written through BinaryWriter feeds a
 * running FNV-1a 64 checksum; putChecksumTrailer() appends it as the
 * final word and verifyChecksumTrailer() recomputes and compares on
 * load. A failed header or checksum names the file and the reason,
 * and loaders quarantine the file (rename to <path>.quarantined) and
 * rebuild instead of deserializing noise. Readers bound every
 * length-prefixed allocation by the actual file size, so a corrupted
 * prefix cannot trigger a multi-gigabyte allocation.
 */

#ifndef PSCA_COMMON_SERIALIZE_HH
#define PSCA_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "logging.hh"

namespace psca {

/** Incremental FNV-1a 64 over a byte range. */
inline uint64_t
fnv1aUpdate(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

constexpr uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;

/**
 * Streaming binary writer over a file, or — default-constructed —
 * over an in-memory buffer (takeBuffer()). The memory mode is how
 * unit payloads are built for the distribution protocol without a
 * temp-file round trip; both modes feed the same running checksum.
 */
class BinaryWriter
{
  public:
    /** In-memory writer; collect the bytes with takeBuffer(). */
    BinaryWriter() : out_(&mem_) {}

    explicit BinaryWriter(const std::string &path)
        : file_(path, std::ios::binary), out_(&file_)
    {
        if (!file_)
            fatal("cannot open '", path, "' for writing");
    }

    /** Write one trivially-copyable value. */
    template <typename T>
    void
    put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        putRaw(&value, sizeof(T));
    }

    /** Write a length-prefixed vector of trivially-copyable values. */
    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        put<uint64_t>(v.size());
        putRaw(v.data(), v.size() * sizeof(T));
    }

    /** Write a length-prefixed string. */
    void
    putString(const std::string &s)
    {
        put<uint64_t>(s.size());
        putRaw(s.data(), s.size());
    }

    /** Write raw bytes (an already-serialized blob), checksummed. */
    void
    putBytes(const void *data, size_t n)
    {
        putRaw(data, n);
    }

    /**
     * Append the running checksum over everything written so far as
     * the file's final word. Must be the last write.
     */
    void
    putChecksumTrailer()
    {
        const uint64_t sum = checksum_;
        out_->write(reinterpret_cast<const char *>(&sum),
                    sizeof(sum));
    }

    /** Checksum over the bytes written so far. */
    uint64_t checksum() const { return checksum_; }

    /** Steal the accumulated bytes (memory mode only). */
    std::string takeBuffer() { return std::move(mem_).str(); }

    /**
     * True when every write so far reached the stream. Callers must
     * check this (after flush()/close via destruction or explicitly)
     * before treating the file as durable — a full disk otherwise
     * produces a truncated cache with exit code 0.
     */
    bool
    good()
    {
        out_->flush();
        return static_cast<bool>(*out_);
    }

  private:
    void
    putRaw(const void *data, size_t n)
    {
        out_->write(static_cast<const char *>(data),
                    static_cast<std::streamsize>(n));
        checksum_ = fnv1aUpdate(checksum_, data, n);
    }

    std::ofstream file_;
    std::ostringstream mem_;
    std::ostream *out_;
    uint64_t checksum_ = kFnv1aBasis;
};

/**
 * Streaming binary reader over a file, or over an in-memory byte
 * range (protocol payloads). Allocation bounds and the running
 * checksum behave identically in both modes.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(const std::string &path)
        : file_(path, std::ios::binary), in_(&file_)
    {
        if (file_) {
            file_.seekg(0, std::ios::end);
            fileSize_ = static_cast<uint64_t>(file_.tellg());
            file_.seekg(0, std::ios::beg);
        }
    }

    /** In-memory reader over a copy of @p n bytes at @p data. */
    BinaryReader(const void *data, size_t n)
        : mem_(std::string(static_cast<const char *>(data), n)),
          in_(&mem_), fileSize_(n)
    {}

    /** True if the source opened and no read error has occurred. */
    bool good() const { return static_cast<bool>(*in_); }

    /** Total file size in bytes (0 when the open failed). */
    uint64_t fileSize() const { return fileSize_; }

    /** Read one trivially-copyable value. */
    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        getRaw(&value, sizeof(T));
        return value;
    }

    /** Read a length-prefixed vector. */
    template <typename T>
    std::vector<T>
    getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto n = get<uint64_t>();
        // Bound the allocation by what the file can actually hold: a
        // corrupted prefix must fail the read, not exhaust memory.
        if (!fits(n * sizeof(T))) {
            in_->setstate(std::ios::failbit);
            return {};
        }
        std::vector<T> v(n);
        getRaw(v.data(), n * sizeof(T));
        return v;
    }

    /** Read a length-prefixed string. */
    std::string
    getString()
    {
        const auto n = get<uint64_t>();
        if (!fits(n)) {
            in_->setstate(std::ios::failbit);
            return {};
        }
        std::string s(n, '\0');
        getRaw(s.data(), n);
        return s;
    }

    /**
     * Read the trailing checksum word and compare it to the running
     * checksum over every byte read so far. Call after the last
     * payload read; false on mismatch, short file, or earlier error.
     */
    bool
    verifyChecksumTrailer()
    {
        const uint64_t expect = checksum_;
        uint64_t stored = 0;
        in_->read(reinterpret_cast<char *>(&stored), sizeof(stored));
        return static_cast<bool>(*in_) && stored == expect;
    }

  private:
    bool
    fits(uint64_t bytes) const
    {
        const auto pos = in_->tellg();
        if (pos < 0)
            return false;
        return bytes <= fileSize_ - static_cast<uint64_t>(pos);
    }

    void
    getRaw(void *data, size_t n)
    {
        in_->read(static_cast<char *>(data),
                  static_cast<std::streamsize>(n));
        if (*in_)
            checksum_ = fnv1aUpdate(checksum_, data, n);
    }

    std::ifstream file_;
    std::istringstream mem_;
    std::istream *in_;
    uint64_t fileSize_ = 0;
    uint64_t checksum_ = kFnv1aBasis;
};

/** Outcome of a file-header check, for named error messages. */
enum class HeaderCheck
{
    Ok,
    Unreadable, //!< open/read failure or file shorter than a header
    BadMagic,   //!< not one of our files (or a different artifact kind)
    BadVersion, //!< our file, stale or future format revision
};

inline const char *
headerCheckName(HeaderCheck c)
{
    switch (c) {
      case HeaderCheck::Ok:
        return "ok";
      case HeaderCheck::Unreadable:
        return "unreadable";
      case HeaderCheck::BadMagic:
        return "bad magic";
      case HeaderCheck::BadVersion:
        return "version mismatch";
    }
    return "?";
}

/** Write the standard (magic, version) file header. */
inline void
writeFileHeader(BinaryWriter &w, uint64_t magic, uint32_t version)
{
    w.put<uint64_t>(magic);
    w.put<uint32_t>(version);
}

/** Check the standard header; the file is positioned after it. */
inline HeaderCheck
readFileHeader(BinaryReader &r, uint64_t magic, uint32_t version)
{
    const auto got_magic = r.get<uint64_t>();
    const auto got_version = r.get<uint32_t>();
    if (!r.good())
        return HeaderCheck::Unreadable;
    if (got_magic != magic)
        return HeaderCheck::BadMagic;
    if (got_version != version)
        return HeaderCheck::BadVersion;
    return HeaderCheck::Ok;
}

/** What quarantineFile() did, for caller-side accounting. */
struct QuarantineResult
{
    std::string dest; //!< where the bad bytes went ("" if removed)
    bool collided = false; //!< a prior quarantined artifact existed
};

/**
 * Move a corrupt artifact aside (to "<path>.quarantined", or the
 * first free "<path>.quarantined.N") so the rebuild cannot collide
 * with it and the bad bytes stay available for inspection. Earlier
 * quarantined artifacts are never overwritten — repeated corruption
 * of the same path accumulates numbered evidence files, and the
 * caller can count `collided` results. Best-effort: falls back to
 * remove() if rename fails.
 */
inline QuarantineResult
quarantineFile(const std::string &path, const char *reason)
{
    QuarantineResult res;
    res.dest = path + ".quarantined";
    for (int seq = 1; std::ifstream(res.dest).good(); ++seq) {
        res.collided = true;
        res.dest = path + ".quarantined." + std::to_string(seq);
    }
    if (std::rename(path.c_str(), res.dest.c_str()) == 0) {
        warn("quarantined '", path, "' (", reason, ") -> '",
             res.dest, "'");
        emitEvent("quarantine", LogLevel::Warn,
                  "quarantined '" + path + "' (" + reason + ") -> '" +
                      res.dest + "'");
    } else {
        std::remove(path.c_str());
        warn("removed corrupt '", path, "' (", reason,
             "; quarantine rename failed)");
        emitEvent("quarantine", LogLevel::Warn,
                  "removed corrupt '" + path + "' (" +
                      std::string(reason) + ")");
        res.dest.clear();
    }
    return res;
}

} // namespace psca

#endif // PSCA_COMMON_SERIALIZE_HH
