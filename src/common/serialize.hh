/**
 * @file
 * Minimal binary (de)serialization helpers used by the dataset cache
 * and model save/load. Little-endian host assumed (x86); files carry a
 * magic word and version so stale caches are rejected, not misread.
 */

#ifndef PSCA_COMMON_SERIALIZE_HH
#define PSCA_COMMON_SERIALIZE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "logging.hh"

namespace psca {

/** Streaming binary writer over a file. */
class BinaryWriter
{
  public:
    explicit BinaryWriter(const std::string &path)
        : out_(path, std::ios::binary)
    {
        if (!out_)
            fatal("cannot open '", path, "' for writing");
    }

    /** Write one trivially-copyable value. */
    template <typename T>
    void
    put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        out_.write(reinterpret_cast<const char *>(&value), sizeof(T));
    }

    /** Write a length-prefixed vector of trivially-copyable values. */
    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        put<uint64_t>(v.size());
        out_.write(reinterpret_cast<const char *>(v.data()),
                   static_cast<std::streamsize>(v.size() * sizeof(T)));
    }

    /** Write a length-prefixed string. */
    void
    putString(const std::string &s)
    {
        put<uint64_t>(s.size());
        out_.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

    /** True while no write error has occurred. */
    bool good() const { return static_cast<bool>(out_); }

  private:
    std::ofstream out_;
};

/** Streaming binary reader over a file. */
class BinaryReader
{
  public:
    explicit BinaryReader(const std::string &path)
        : in_(path, std::ios::binary)
    {}

    /** True if the file opened and no read error has occurred. */
    bool good() const { return static_cast<bool>(in_); }

    /** Read one trivially-copyable value. */
    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        in_.read(reinterpret_cast<char *>(&value), sizeof(T));
        return value;
    }

    /** Read a length-prefixed vector. */
    template <typename T>
    std::vector<T>
    getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto n = get<uint64_t>();
        std::vector<T> v(n);
        in_.read(reinterpret_cast<char *>(v.data()),
                 static_cast<std::streamsize>(n * sizeof(T)));
        return v;
    }

    /** Read a length-prefixed string. */
    std::string
    getString()
    {
        const auto n = get<uint64_t>();
        std::string s(n, '\0');
        in_.read(s.data(), static_cast<std::streamsize>(n));
        return s;
    }

  private:
    std::ifstream in_;
};

} // namespace psca

#endif // PSCA_COMMON_SERIALIZE_HH
