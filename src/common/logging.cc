#include "logging.hh"

#include <chrono>
#include <cstring>

namespace psca {

namespace {

LogLevel
parseLogLevel(const char *env)
{
    if (!env || !*env)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "quiet") == 0 ||
        std::strcmp(env, "silent") == 0 ||
        std::strcmp(env, "3") == 0)
        return LogLevel::Quiet;
    // Complain via emitLine directly: warn() would recurse into
    // logLevel() while its static initializer is still running.
    detail::emitLine("warn",
                     "ignoring PSCA_LOG_LEVEL='" + std::string(env) +
                         "': expected debug|info|warn|quiet or 0-3");
    return LogLevel::Info;
}

/** Monotonic seconds since the first log call. */
double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration<double>(clock::now() - start)
        .count();
}

} // namespace

LogLevel
logLevel()
{
    static const LogLevel level =
        parseLogLevel(std::getenv("PSCA_LOG_LEVEL"));
    return level;
}

namespace detail {

void
emitLine(const char *tag, const std::string &msg)
{
    // Build the entire line first so one write()+flush carries it:
    // interleaved writers (or a crash mid-message) cannot shear the
    // line, and the flush makes it durable before any abort/exit.
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[%10.3f psca:%s] ",
                  monotonicSeconds(), tag);
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 1);
    line += prefix;
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace detail

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace {

TraceEnabledFn g_trace_enabled = nullptr;
TraceSpanFn g_trace_span = nullptr;
TraceInstantFn g_trace_instant = nullptr;
EventSinkFn g_event_sink = nullptr;

} // namespace

void
setTraceHooks(TraceEnabledFn enabled, TraceSpanFn span,
              TraceInstantFn instant)
{
    g_trace_enabled = enabled;
    g_trace_span = span;
    g_trace_instant = instant;
}

void
setEventSink(EventSinkFn sink)
{
    g_event_sink = sink;
}

bool
traceHooksEnabled()
{
    return g_trace_enabled && g_trace_enabled();
}

void
traceSpanHook(const char *name, uint64_t start_ns, uint64_t end_ns,
              const char *k1, long long v1, const char *k2,
              long long v2)
{
    if (g_trace_span && traceHooksEnabled())
        g_trace_span(name, start_ns, end_ns, k1, v1, k2, v2);
}

void
traceInstantHook(const char *name, const char *key, long long value)
{
    if (g_trace_instant && traceHooksEnabled())
        g_trace_instant(name, key, value);
}

void
emitEvent(const char *category, LogLevel level, const std::string &msg)
{
    if (g_event_sink)
        g_event_sink(category, level, msg);
}

} // namespace psca
