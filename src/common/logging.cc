#include "logging.hh"

namespace psca {
namespace detail {

void
emitLine(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[psca:%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace psca
