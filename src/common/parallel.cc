#include "common/parallel.hh"

#include <cstdlib>
#include <memory>

#include "common/env.hh"
#include "common/logging.hh"

namespace psca {

namespace {

/** Set while the current thread is inside a pool task. */
thread_local bool tls_in_task = false;

ThreadPool::ContextCapture g_ctx_capture = nullptr;
ThreadPool::ContextEnter g_ctx_enter = nullptr;
ThreadPool::ContextExit g_ctx_exit = nullptr;
ThreadPool::TaskSpanHook g_task_begin = nullptr;
ThreadPool::TaskSpanHook g_task_end = nullptr;

std::mutex g_instance_mu;
std::unique_ptr<ThreadPool> g_instance;

/** RAII task-context guard around one worker-side task. */
class TaskContextScope
{
  public:
    explicit TaskContextScope(void *ctx)
        : entered_(g_ctx_enter != nullptr)
    {
        if (entered_)
            g_ctx_enter(ctx);
    }

    ~TaskContextScope()
    {
        if (entered_ && g_ctx_exit)
            g_ctx_exit();
    }

  private:
    const bool entered_;
};

} // namespace

/**
 * One parallelFor region. Held by shared_ptr so a worker that wakes
 * late sees an exhausted cursor on a still-valid object instead of a
 * recycled one; the task function itself outlives the region because
 * the submitter cannot return before every claimed index is counted.
 */
struct ThreadPool::Job
{
    const std::function<void(size_t)> *fn = nullptr;
    size_t n = 0;
    void *ctx = nullptr;
    std::atomic<size_t> next{0}; //!< shared claim cursor
    size_t completed = 0;        //!< guarded by the pool mutex
};

int
parallelThreadCount()
{
    long long threads = 0;
    if (env::intIfSet("PSCA_THREADS", threads, 1, 4096))
        return static_cast<int>(threads);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : numThreads_(threads < 1 ? 1 : threads)
{
    workers_.reserve(static_cast<size_t>(numThreads_ - 1));
    for (int t = 1; t < numThreads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool &
ThreadPool::instance()
{
    std::lock_guard<std::mutex> lock(g_instance_mu);
    if (!g_instance)
        g_instance =
            std::make_unique<ThreadPool>(parallelThreadCount());
    return *g_instance;
}

void
ThreadPool::configure(int threads)
{
    std::lock_guard<std::mutex> lock(g_instance_mu);
    g_instance.reset(); // join the old pool before replacing it
    g_instance = std::make_unique<ThreadPool>(threads);
}

bool
ThreadPool::inParallelTask()
{
    return tls_in_task;
}

void
ThreadPool::setContextHooks(ContextCapture capture, ContextEnter enter,
                            ContextExit exit)
{
    g_ctx_capture = capture;
    g_ctx_enter = enter;
    g_ctx_exit = exit;
}

void
ThreadPool::setTaskSpanHooks(TaskSpanHook begin, TaskSpanHook end)
{
    g_task_begin = begin;
    g_task_end = end;
}

void
ThreadPool::runOne(const std::function<void(size_t)> &fn, size_t i)
{
    tls_in_task = true;
    try {
        fn(i);
    } catch (...) {
        std::lock_guard<std::mutex> lock(errMu_);
        // Keep the lowest-index exception so the rethrow is
        // deterministic regardless of scheduling.
        if (!err_ || i < errIndex_) {
            err_ = std::current_exception();
            errIndex_ = i;
        }
    }
    tls_in_task = false;
}

void
ThreadPool::drainJob(const std::shared_ptr<Job> &job, bool is_worker)
{
    size_t ran = 0;
    size_t i;
    while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) <
           job->n) {
        if (g_task_begin)
            g_task_begin(i);
        if (is_worker) {
            // The submitter already carries its phase context; only
            // detached workers adopt it per task.
            TaskContextScope scope(job->ctx);
            runOne(*job->fn, i);
        } else {
            runOne(*job->fn, i);
        }
        if (g_task_end)
            g_task_end(i);
        ++ran;
    }
    if (ran) {
        std::lock_guard<std::mutex> lock(mu_);
        job->completed += ran;
        if (job->completed == job->n)
            done_.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_gen = 0;
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || (job_ && jobGen_ != seen_gen);
            });
            if (stop_)
                return;
            seen_gen = jobGen_;
            job = job_;
        }
        drainJob(job, /*is_worker=*/true);
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    // Exact serial path: one thread, one task, or a nested region
    // (a task spawning a region runs it inline — the pool can never
    // wait on itself).
    if (numThreads_ == 1 || n == 1 || tls_in_task) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Serialize whole regions: a second submitting thread queues
    // here until the first region drains.
    std::lock_guard<std::mutex> submit_lock(submitMu_);

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    job->ctx = g_ctx_capture ? g_ctx_capture() : nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = job;
        ++jobGen_;
    }
    wake_.notify_all();

    drainJob(job, /*is_worker=*/false);

    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] { return job->completed == job->n; });
        job_.reset();
    }

    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(errMu_);
        err = err_;
        err_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace psca
