/**
 * @file
 * Deterministic fault injection. Code declares named fault sites —
 *
 *     static FaultSite &drop = FAULT_SITE("telemetry.dropped_snapshot");
 *     if (drop.enabled() && drop.fires(interval_key)) { ... degrade ... }
 *
 * — that cost one cached-reference bool load when disabled, and are
 * activated via PSCA_FAULTS="site:rate[:param],..." (or
 * FaultRegistry::configure() from tests and benches).
 *
 * Determinism contract: every draw is a pure function of
 * (fault seed, site name, caller-supplied stream key) through the
 * same taskSeed()/mixSeeds() machinery the thread pool uses for RNG
 * substreams. Callers key draws by stable identities (trace content
 * hash, interval index, inference count) — never by wall clock or
 * thread id — so a given PSCA_FAULTS + PSCA_FAULT_SEED produces a
 * bit-identical fault sequence at any PSCA_THREADS.
 *
 * Every fire is tallied per site; the obs report layer exports the
 * tallies as "fault.<site>.fires" counters (obs sits above common in
 * the link order, so the pull goes that way), and the layer that
 * handles the fault counts its own degradation response
 * (carry-forwards, quarantines, vetoes) — run reports show both the
 * injection and the recovery.
 *
 * Site catalog (rates are per-check probabilities; see DESIGN.md §10):
 *
 *   telemetry.stuck_counter   one counter's delta reads 0 (param:
 *                             registry index; default seed-derived)
 *   telemetry.saturation      one counter wraps at 2^param bits
 *                             (default 20; index seed-derived)
 *   telemetry.noise           multiplicative Gaussian noise on every
 *                             recorded delta (param: sigma, def 0.05)
 *   telemetry.dropped_snapshot  the whole interval snapshot is lost
 *   uc.deadline_miss          inference misses its budget deadline
 *                             (param>=1: miss deterministically when
 *                             static ops exceed the budget)
 *   uc.vm_trap                the firmware VM traps mid-program
 *   persist.memo_corrupt      a sim-memo file fails checksum on load
 *   persist.cache_corrupt     a corpus cache file fails checksum
 *   persist.io_error          transient open/IO failure (bounded
 *                             retry with backoff handles it)
 *   net.frame_corrupt         one wire frame is corrupted in flight;
 *                             the receiver detects the bad checksum
 *                             and drops the connection
 *   net.torn_send             a frame send tears mid-way and the
 *                             connection dies with a partial frame
 *                             on the wire
 *   net.conn_reset            the connection resets instead of
 *                             delivering a frame
 *   net.recv_stall            a receive stalls param ms (default 20)
 *                             before reading
 *   net.heartbeat_drop        a worker heartbeat is silently dropped
 *   net.dup_result            a worker delivers one Result frame
 *                             twice (the coordinator dedupes by unit
 *                             index, first write wins)
 *   serve.retrain_fail        a background retrain dies before
 *                             producing a candidate (keyed by retrain
 *                             ordinal; the service cools down on the
 *                             active firmware)
 *   serve.swap_crash          the promotion transaction crashes
 *                             between staging and commit (keyed by
 *                             the candidate version; the ring keeps
 *                             the last-good image)
 *   serve.shadow_corrupt      a shadow A/B score word is corrupted
 *                             (keyed by scored-block ordinal; the
 *                             promotion gate rejects the candidate on
 *                             the non-finite score)
 *   serve.probation_regress   the post-swap probation window sees
 *                             synthetic guardrail trips, param per
 *                             block (default 1; keyed by promotion
 *                             ordinal and probation block — forces
 *                             the auto-rollback path)
 *
 * The net.* sites key their draws by stable wire identities (scope
 * hash, unit index, heartbeat sequence) mixed with the connection
 * generation, so a retry after reconnect draws a fresh substream and
 * seeded chaos schedules cannot livelock a rejoining worker
 * (src/dist/netfault.hh).
 */

#ifndef PSCA_COMMON_FAULT_HH
#define PSCA_COMMON_FAULT_HH

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"

namespace psca {

/** One named fault-injection point. */
class FaultSite
{
  public:
    const std::string &name() const { return name_; }

    /** True when PSCA_FAULTS (or configure()) armed this site. */
    bool enabled() const { return enabled_; }

    /** Per-check fire probability in [0, 1]. */
    double rate() const { return rate_; }

    /** The optional site parameter, or @p def when not given. */
    double
    param(double def) const
    {
        return hasParam_ ? param_ : def;
    }

    /**
     * Deterministic Bernoulli draw: fires iff the substream for
     * (site, key) lands below rate. Pure function of the fault seed,
     * the site name, and @p key — independent of call order and
     * thread count. Tallies the fire (exported to run reports as
     * "fault.<site>.fires").
     */
    bool
    fires(uint64_t key) const
    {
        uint64_t s = taskSeed(siteSeed_, key);
        const double u =
            static_cast<double>(splitMix64(s) >> 11) * 0x1.0p-53;
        if (u >= rate_)
            return false;
        fireCount_.fetch_add(1, std::memory_order_relaxed);
        // With tracing on, each fire lands in the flame view next to
        // whatever degraded-mode handling it triggered.
        traceInstantHook(name_.c_str(), "key",
                         static_cast<long long>(key));
        return true;
    }

    /** Fires tallied since the last configure(). */
    uint64_t
    fireCount() const
    {
        return fireCount_.load(std::memory_order_relaxed);
    }

    /** Deterministic standard-normal draw for (key, lane). */
    double
    gaussian(uint64_t key, uint64_t lane) const
    {
        Rng rng(taskSeed(mixSeeds(siteSeed_, lane), key));
        return rng.gaussian();
    }

    /** Deterministic uniform draw in [0, n) for (key, lane). */
    uint64_t
    draw(uint64_t key, uint64_t lane, uint64_t n) const
    {
        Rng rng(taskSeed(mixSeeds(siteSeed_, ~lane), key));
        return rng.below(n);
    }

  private:
    friend class FaultRegistry;

    explicit FaultSite(std::string name) : name_(std::move(name)) {}

    std::string name_;
    uint64_t siteSeed_ = 0;
    bool enabled_ = false;
    double rate_ = 0.0;
    double param_ = 0.0;
    bool hasParam_ = false;
    mutable std::atomic<uint64_t> fireCount_{0};
};

/**
 * Process-wide site registry. Sites are created on first declaration
 * and live for the process; configure() rewrites their arming in
 * place, so cached FAULT_SITE references stay valid. Like
 * ThreadPool::configure(), configure() must not race live fault
 * checks — call it between runs, the way tests and benches do.
 */
class FaultRegistry
{
  public:
    static FaultRegistry &instance();

    /** Look up (creating if needed) the site named @p name. */
    FaultSite &site(const std::string &name);

    /**
     * Re-arm all sites from a spec string
     * ("site:rate[:param],...", "" disarms everything). Malformed
     * specs are fatal: a typo must never silently run fault-free.
     */
    void configure(const std::string &spec, uint64_t seed);

    /** Re-arm from spec with the current seed. */
    void configure(const std::string &spec);

    /** True when at least one site is armed. */
    bool anyEnabled() const { return anyEnabled_; }

    uint64_t seed() const { return seed_; }

    /** Visit every declared site (report export, tests). */
    void forEachSite(
        const std::function<void(const FaultSite &)> &fn) const;

  private:
    FaultRegistry(); // parses PSCA_FAULTS / PSCA_FAULT_SEED

    struct SpecEntry
    {
        double rate = 0.0;
        double param = 0.0;
        bool hasParam = false;
    };

    void armSite(FaultSite &site) const;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<FaultSite>> sites_;
    std::map<std::string, SpecEntry> spec_;
    uint64_t seed_ = 0;
    bool anyEnabled_ = false;
};

/** Shorthand used by FAULT_SITE. */
inline FaultSite &
faultSite(const char *name)
{
    return FaultRegistry::instance().site(name);
}

/**
 * Declare-and-cache a fault site: the registry lookup runs once per
 * call site, after which the expression is a static reference load.
 */
#define FAULT_SITE(name)                                              \
    ([]() -> ::psca::FaultSite & {                                    \
        static ::psca::FaultSite &site_ref = ::psca::faultSite(name); \
        return site_ref;                                              \
    }())

} // namespace psca

#endif // PSCA_COMMON_FAULT_HH
