#include "common/simd.hh"

#include "common/env.hh"

namespace psca {
namespace simd {

namespace {

Level
resolveLevel()
{
#if defined(PSCA_HAVE_AVX2) && defined(__x86_64__)
    const bool cpu_ok = __builtin_cpu_supports("avx2");
#else
    const bool cpu_ok = false;
#endif
    const std::string want =
        env::enumOr("PSCA_SIMD", {"avx2", "scalar"},
                    cpu_ok ? "avx2" : "scalar");
    Level level = Level::Scalar;
    if (want == "avx2") {
        if (cpu_ok) {
            level = Level::Avx2;
        } else {
            warn("PSCA_SIMD=avx2 requested but unavailable (",
#if defined(PSCA_HAVE_AVX2)
                 "host CPU lacks AVX2",
#else
                 "binary built without AVX2 support",
#endif
                 "); falling back to scalar kernels");
        }
    }
    return level;
}

} // namespace

Level
activeLevel()
{
    static const Level level = resolveLevel();
    return level;
}

bool
useAvx2()
{
    return activeLevel() == Level::Avx2;
}

const char *
levelName(Level level)
{
    return level == Level::Avx2 ? "avx2" : "scalar";
}

} // namespace simd
} // namespace psca
