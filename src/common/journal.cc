#include "common/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace psca {

namespace {

constexpr uint64_t kJournalMagic = 0x505343414a524e4cULL; // "PSCAJRNL"
constexpr uint32_t kJournalVersion = 1;
constexpr uint64_t kCkptMagic = 0x50534341434b5054ULL; // "PSCACKPT"
constexpr uint32_t kCkptVersion = 1;

/** Unit attempts before the exception propagates (requeue budget). */
constexpr int kUnitAttempts = 3;

/** Serialized journal frame payload size (fixed layout, v1). */
constexpr size_t kFramePayload = 1 + 4 * 8;

std::atomic<bool> g_stop{false};

/** Distribution hook (set once at startup, before scopes run). */
std::atomic<DistScopeFn> g_distHook{nullptr};

/** Whether Journal::instance() was ever constructed (globalStats()
 *  must observe, never create, the process-wide journal). */
std::atomic<bool> g_instanceCreated{false};

/** fsync a descriptor, tolerating filesystems without fsync. */
void
fsyncFd(int fd)
{
    if (fd >= 0)
        (void)::fsync(fd);
}

/** fsync an already-closed file by path (after rename: the dir). */
void
fsyncPath(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        fsyncFd(fd);
        ::close(fd);
    }
}

/** Unique temp sibling for staging (per thread, per use). */
std::string
tempSibling(const std::string &path)
{
    static std::atomic<uint64_t> serial{0};
    const uint64_t tid = std::hash<std::thread::id>{}(
                             std::this_thread::get_id()) &
        0xffffff;
    return path + ".tmp." + std::to_string(tid) + "." +
        std::to_string(serial.fetch_add(1, std::memory_order_relaxed));
}

} // namespace

void
requestStop()
{
    g_stop.store(true, std::memory_order_relaxed);
}

bool
stopRequested()
{
    return g_stop.load(std::memory_order_relaxed);
}

void
clearStopRequest()
{
    g_stop.store(false, std::memory_order_relaxed);
}

void
setDistScopeHook(DistScopeFn fn)
{
    g_distHook.store(fn, std::memory_order_release);
}

int
retryBackoffMs(uint64_t key, int attempt)
{
    const uint64_t base = 1ULL << attempt;
    Rng rng(taskSeed(mixSeeds(FaultRegistry::instance().seed(), key),
                     static_cast<uint64_t>(attempt)));
    return static_cast<int>(base + rng.below(base));
}

void
retryBackoffSleep(uint64_t key, int attempt)
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retryBackoffMs(key, attempt)));
}

bool
writeArtifactFile(const std::string &path,
                  const std::function<void(BinaryWriter &)> &fill,
                  uint64_t *content_sum)
{
    const std::string tmp = tempSibling(path);
    uint64_t sum = 0;
    {
        BinaryWriter out(tmp);
        fill(out);
        sum = out.checksum();
        if (!out.good()) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    // Make the temp durable before publishing the name: a crash
    // straddling the rename must never expose an empty or partial
    // file under the final path.
    fsyncPath(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    if (content_sum != nullptr)
        *content_sum = sum;
    return true;
}

ArtifactTxn::~ArtifactTxn()
{
    if (!done_)
        abort();
}

BinaryWriter &
ArtifactTxn::stage(const std::string &final_path)
{
    Staged s;
    s.finalPath = final_path;
    s.tmpPath = tempSibling(final_path);
    s.writer = std::make_unique<BinaryWriter>(s.tmpPath);
    staged_.push_back(std::move(s));
    return *staged_.back().writer;
}

bool
ArtifactTxn::commit()
{
    done_ = true;
    // Phase one: every staged stream must have fully reached its temp
    // file before any final name changes.
    bool ok = true;
    for (auto &s : staged_)
        ok = s.writer->good() && ok;
    for (auto &s : staged_)
        s.writer.reset(); // close
    if (!ok) {
        std::error_code ec;
        for (auto &s : staged_)
            std::filesystem::remove(s.tmpPath, ec);
        staged_.clear();
        return false;
    }
    for (auto &s : staged_)
        fsyncPath(s.tmpPath);
    // Phase two: publish. A crash mid-sequence leaves a prefix of
    // complete files — never a torn one.
    for (auto &s : staged_) {
        std::error_code ec;
        std::filesystem::rename(s.tmpPath, s.finalPath, ec);
        if (ec) {
            std::filesystem::remove(s.tmpPath, ec);
            ok = false;
        }
    }
    staged_.clear();
    return ok;
}

void
ArtifactTxn::abort()
{
    done_ = true;
    for (auto &s : staged_) {
        s.writer.reset();
        std::error_code ec;
        std::filesystem::remove(s.tmpPath, ec);
    }
    staged_.clear();
}

Journal &
Journal::instance()
{
    static Journal journal(env::stringOr("PSCA_CACHE_DIR",
                                         "psca_cache"),
                           env::flagOr("PSCA_JOURNAL", true),
                           env::flagOr("PSCA_RESUME", true));
    g_instanceCreated.store(true, std::memory_order_release);
    return journal;
}

Journal::Journal(const std::string &dir, bool enabled, bool resume)
    : dir_(dir), enabled_(enabled)
{
    if (enabled_)
        openAndReplay(resume);
}

Journal::~Journal()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
        fsyncFd(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

uint64_t
Journal::scopeHash(const std::string &scope)
{
    return fnv1aUpdate(kFnv1aBasis, scope.data(), scope.size());
}

std::string
Journal::journalPath() const
{
    return dir_ + "/journal.psj";
}

std::string
Journal::unitPath(uint64_t scope_h, uint64_t config_h,
                  uint64_t unit) const
{
    char name[96];
    std::snprintf(name, sizeof(name),
                  "/ckpt_%016llx_%016llx_%llu.bin",
                  static_cast<unsigned long long>(scope_h),
                  static_cast<unsigned long long>(config_h),
                  static_cast<unsigned long long>(unit));
    return dir_ + name;
}

namespace {

/** Encode one frame: [len][payload][fnv1a(payload)], one write(). */
void
encodeFrame(const Journal::Entry &e, std::vector<uint8_t> &buf)
{
    uint8_t payload[kFramePayload];
    payload[0] = static_cast<uint8_t>(e.type);
    auto put64 = [&payload](size_t off, uint64_t v) {
        std::memcpy(payload + off, &v, sizeof(v));
    };
    put64(1, e.scopeHash);
    put64(9, e.configHash);
    put64(17, e.unitIndex);
    put64(25, e.artifactSum);
    const uint32_t len = static_cast<uint32_t>(sizeof(payload));
    const uint64_t sum =
        fnv1aUpdate(kFnv1aBasis, payload, sizeof(payload));
    buf.resize(sizeof(len) + sizeof(payload) + sizeof(sum));
    std::memcpy(buf.data(), &len, sizeof(len));
    std::memcpy(buf.data() + sizeof(len), payload, sizeof(payload));
    std::memcpy(buf.data() + sizeof(len) + sizeof(payload), &sum,
                sizeof(sum));
}

/**
 * Replay every well-formed frame of an open journal stream. Returns
 * the byte offset just past the last good frame; entries beyond it
 * (a torn tail) are the caller's to truncate.
 */
uint64_t
replayFrames(std::ifstream &in, uint64_t file_size,
             const std::function<void(const Journal::Entry &)> &emit)
{
    uint64_t good_end = static_cast<uint64_t>(in.tellg());
    for (;;) {
        uint32_t len = 0;
        in.read(reinterpret_cast<char *>(&len), sizeof(len));
        if (!in || len != kFramePayload)
            break;
        if (good_end + sizeof(len) + len + 8 > file_size)
            break;
        uint8_t payload[kFramePayload];
        in.read(reinterpret_cast<char *>(payload), len);
        uint64_t stored = 0;
        in.read(reinterpret_cast<char *>(&stored), sizeof(stored));
        if (!in ||
            stored != fnv1aUpdate(kFnv1aBasis, payload, len))
            break;
        Journal::Entry e;
        e.type = static_cast<Journal::EntryType>(payload[0]);
        auto get64 = [&payload](size_t off) {
            uint64_t v = 0;
            std::memcpy(&v, payload + off, sizeof(v));
            return v;
        };
        e.scopeHash = get64(1);
        e.configHash = get64(9);
        e.unitIndex = get64(17);
        e.artifactSum = get64(25);
        if (e.type != Journal::EntryType::UnitDone &&
            e.type != Journal::EntryType::ScopeRetired)
            break;
        emit(e);
        good_end += sizeof(len) + len + sizeof(stored);
    }
    return good_end;
}

} // namespace

void
Journal::openAndReplay(bool resume)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const std::string path = journalPath();

    bool fresh = true;
    if (resume && std::filesystem::exists(path, ec)) {
        std::ifstream in(path, std::ios::binary);
        uint64_t size = 0;
        if (in) {
            in.seekg(0, std::ios::end);
            size = static_cast<uint64_t>(in.tellg());
            in.seekg(0, std::ios::beg);
        }
        uint64_t magic = 0;
        uint32_t version = 0;
        in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
        in.read(reinterpret_cast<char *>(&version), sizeof(version));
        if (!in || magic != kJournalMagic ||
            version != kJournalVersion)
        {
            // Not a torn tail: the journal itself is unusable. Move
            // it aside and rebuild from scratch.
            quarantineFile(path, "journal header corrupt");
            quarantines_.fetch_add(1, std::memory_order_relaxed);
        } else {
            std::vector<Entry> replayed;
            const uint64_t good_end = replayFrames(
                in, size,
                [&replayed](const Entry &e) {
                    replayed.push_back(e);
                });
            in.close();
            if (good_end < size) {
                // The expected SIGKILL artifact: a frame cut mid-
                // write. Drop the tail, keep everything before it.
                std::filesystem::resize_file(path, good_end, ec);
                tornTails_.fetch_add(1, std::memory_order_relaxed);
                warn("journal '", path, "': torn tail truncated at ",
                     good_end, " of ", size, " bytes");
                emitEvent("journal", LogLevel::Warn,
                          "torn tail truncated at " +
                              std::to_string(good_end) + " of " +
                              std::to_string(size) + " bytes");
            }
            for (const Entry &e : replayed) {
                const ScopeKey key{e.scopeHash, e.configHash};
                if (e.type == EntryType::UnitDone) {
                    entries_[key][e.unitIndex] = e.artifactSum;
                } else {
                    // Retired: the per-unit artifacts are superseded
                    // by a whole-scope artifact; forget the units.
                    entries_.erase(key);
                }
            }
            fresh = false;
        }
    } else if (std::filesystem::exists(path, ec)) {
        // PSCA_RESUME=0: start over, discarding journal + units.
        std::filesystem::remove(path, ec);
    }

    if (fresh) {
        const std::string tmp = tempSibling(path);
        {
            std::ofstream out(tmp, std::ios::binary);
            out.write(reinterpret_cast<const char *>(&kJournalMagic),
                      sizeof(kJournalMagic));
            out.write(
                reinterpret_cast<const char *>(&kJournalVersion),
                sizeof(kJournalVersion));
            if (!out) {
                warn("journal '", path,
                     "': cannot initialize; journaling disabled for "
                     "this run");
                std::filesystem::remove(tmp, ec);
                enabled_ = false;
                return;
            }
        }
        fsyncPath(tmp);
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            std::filesystem::remove(tmp, ec);
            enabled_ = false;
            return;
        }
    }

    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) {
        warn("journal '", path, "': cannot open for append (",
             std::strerror(errno), "); journaling disabled");
        enabled_ = false;
    }
}

void
Journal::appendEntry(const Entry &entry)
{
    std::vector<uint8_t> frame;
    encodeFrame(entry, frame);
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0)
        return;
    // One write() per frame into an O_APPEND descriptor: frames from
    // concurrent units (or even concurrent processes sharing the
    // cache dir) interleave whole, never torn against each other.
    ssize_t wrote =
        ::write(fd_, frame.data(), frame.size());
    if (wrote != static_cast<ssize_t>(frame.size())) {
        warn("journal '", journalPath(),
             "': short append; entry dropped (unit will re-execute "
             "on resume)");
        return;
    }
    fsyncFd(fd_);
    if (entry.type == EntryType::UnitDone) {
        entries_[ScopeKey{entry.scopeHash, entry.configHash}]
                [entry.unitIndex] = entry.artifactSum;
    }
}

size_t
Journal::unitsDone(const std::string &scope, uint64_t config_h) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it =
        entries_.find(ScopeKey{scopeHash(scope), config_h});
    return it == entries_.end() ? 0 : it->second.size();
}

void
Journal::retireScope(const std::string &scope, uint64_t config_h)
{
    if (!enabled_)
        return;
    const uint64_t scope_h = scopeHash(scope);
    std::map<uint64_t, uint64_t> units;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(ScopeKey{scope_h, config_h});
        if (it == entries_.end())
            return;
        units = std::move(it->second);
        entries_.erase(it);
    }
    Entry e;
    e.type = EntryType::ScopeRetired;
    e.scopeHash = scope_h;
    e.configHash = config_h;
    e.unitIndex = units.size();
    appendEntry(e);
    std::error_code ec;
    for (const auto &[unit, sum] : units)
        std::filesystem::remove(unitPath(scope_h, config_h, unit),
                                ec);
    scopesRetired_.fetch_add(1, std::memory_order_relaxed);
}

bool
Journal::verifyAndLoadUnit(
    uint64_t scope_h, uint64_t config_h, uint64_t unit,
    uint64_t expect_sum,
    const std::function<bool(size_t, BinaryReader &)> &load_unit)
{
    const std::string path = unitPath(scope_h, config_h, unit);
    // Bind the artifact to its journal entry first: the journaled
    // checksum covers every byte before the trailer word, so a stale
    // or swapped file — even one internally consistent, with a valid
    // trailer of its own — must not satisfy this entry.
    {
        std::error_code ec;
        const uint64_t total = std::filesystem::file_size(path, ec);
        if (ec)
            return false; // vanished checkpoint: just re-execute
        if (total < sizeof(uint64_t)) {
            quarantineFile(path, "checkpoint shorter than a trailer");
            return false;
        }
        std::ifstream raw(path, std::ios::binary);
        if (!raw)
            return false;
        // The journaled sum covers every byte before the 8-byte
        // trailer word.
        uint64_t sum = kFnv1aBasis;
        uint64_t left = total - sizeof(uint64_t);
        char buf[65536];
        while (left > 0 && raw.read(buf, static_cast<std::streamsize>(
                               std::min<uint64_t>(left, sizeof(buf))))) {
            sum = fnv1aUpdate(sum, buf,
                              static_cast<size_t>(raw.gcount()));
            left -= static_cast<uint64_t>(raw.gcount());
        }
        if (left != 0 || sum != expect_sum) {
            quarantineFile(path,
                           "checkpoint differs from journaled hash");
            return false;
        }
    }
    BinaryReader in(path);
    if (!in.good())
        return false;
    const HeaderCheck hdr =
        readFileHeader(in, kCkptMagic, kCkptVersion);
    if (hdr != HeaderCheck::Ok ||
        in.get<uint64_t>() != scope_h ||
        in.get<uint64_t>() != config_h ||
        in.get<uint64_t>() != unit || !in.good())
    {
        quarantineFile(path, "checkpoint key/header mismatch");
        return false;
    }
    if (!load_unit(static_cast<size_t>(unit), in) ||
        !in.verifyChecksumTrailer())
    {
        quarantineFile(path, "checkpoint payload corrupt");
        return false;
    }
    return true;
}

void
Journal::runCheckpointed(
    const std::string &scope, uint64_t config_h, size_t n,
    const std::function<bool(size_t, BinaryReader &)> &load_unit,
    const std::function<void(size_t)> &exec_unit,
    const std::function<void(size_t, BinaryWriter &)> &save_unit,
    DistMode dist)
{
    auto &pool = ThreadPool::instance();
    // Top-level Distributed scopes are offered to the distribution
    // layer first. Nested scopes never are — every process in a fleet
    // runs the identical deterministic pipeline, so the interception
    // decision must be a pure function of (scope nesting, DistMode)
    // and identical everywhere.
    const DistScopeFn hook =
        dist == DistMode::Distributed &&
            !ThreadPool::inParallelTask()
        ? g_distHook.load(std::memory_order_acquire)
        : nullptr;
    if (!enabled_) {
        if (hook != nullptr) {
            // Worker side: no local journal; every index is pending
            // from this process's point of view and the coordinator
            // decides what it executes vs fetches.
            std::vector<size_t> pending(n);
            for (size_t i = 0; i < n; ++i)
                pending[i] = i;
            if (hook(*this, scope, config_h, n, pending, load_unit,
                     exec_unit, save_unit))
                return;
        }
        pool.parallelFor(n, exec_unit);
        return;
    }
    active_.store(true, std::memory_order_relaxed);
    const uint64_t scope_h = scopeHash(scope);

    // Partition into journaled (verify + load) and pending indices.
    std::map<uint64_t, uint64_t> done;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(ScopeKey{scope_h, config_h});
        if (it != entries_.end())
            done = it->second;
    }
    std::vector<size_t> pending;
    size_t skipped = 0;
    for (size_t i = 0; i < n; ++i) {
        const auto it = done.find(i);
        if (it != done.end() &&
            verifyAndLoadUnit(scope_h, config_h, i, it->second,
                              load_unit))
        {
            ++skipped;
            continue;
        }
        if (it != done.end()) {
            // Journaled but the artifact failed verification (or the
            // recorded checksum disagreed): degrade to re-execution.
            verifyFailures_.fetch_add(1, std::memory_order_relaxed);
        }
        pending.push_back(i);
    }
    unitsSkipped_.fetch_add(skipped, std::memory_order_relaxed);
    if (skipped > 0) {
        inform("resume: scope '", scope, "' skipping ", skipped, "/",
               n, " completed units");
        emitEvent("checkpoint", LogLevel::Info,
                  "resume: scope '" + scope + "' skipped " +
                      std::to_string(skipped) + "/" +
                      std::to_string(n) + " completed units");
    }

    // Coordinator side: the journal partition above already loaded
    // everything completed by an earlier (possibly interrupted)
    // campaign; the hook distributes only the remainder and commits
    // each received unit through commitUnitPayload() before this
    // call returns.
    if (hook != nullptr &&
        hook(*this, scope, config_h, n, pending, load_unit,
             exec_unit, save_unit))
        return;

    std::atomic<bool> interrupted{false};
    pool.parallelFor(pending.size(), [&](size_t k) {
        const size_t i = pending[k];
        if (stopRequested()) {
            interrupted.store(true, std::memory_order_relaxed);
            return;
        }
        const uint64_t token = [&] {
            std::lock_guard<std::mutex> lock(mu_);
            const uint64_t t = nextToken_++;
            inFlight_[t] = InFlight{
                scope, static_cast<uint64_t>(i),
                std::chrono::steady_clock::now()};
            return t;
        }();
        struct InFlightGuard
        {
            Journal *j;
            uint64_t token;
            ~InFlightGuard()
            {
                std::lock_guard<std::mutex> lock(j->mu_);
                j->inFlight_.erase(token);
            }
        } guard{this, token};

        // Soft-failure requeue: a unit that throws is retried with a
        // deterministic backoff (a taskSeed substream, satellite of
        // the bounded-IO-retry scheme) before the exception is
        // allowed to take down the region.
        const uint64_t retry_key =
            mixSeeds(mixSeeds(scope_h, config_h),
                     static_cast<uint64_t>(i));
        const uint64_t span_start =
            traceHooksEnabled() ? steadyNowNs() : 0;
        for (int attempt = 0;; ++attempt) {
            try {
                exec_unit(i);
                break;
            } catch (const RunInterrupted &) {
                throw;
            } catch (const std::exception &e) {
                if (attempt + 1 >= kUnitAttempts)
                    throw;
                unitRetries_.fetch_add(1,
                                       std::memory_order_relaxed);
                warn("unit ", i, " of scope '", scope,
                     "' failed (", e.what(), "); requeued (attempt ",
                     attempt + 2, "/", kUnitAttempts, ")");
                retryBackoffSleep(retry_key, attempt);
            }
        }

        if (span_start)
            traceSpanHook("journal.unit", span_start, steadyNowNs(),
                          "unit", static_cast<long long>(i));

        uint64_t sum = 0;
        const bool stored = writeArtifactFile(
            unitPath(scope_h, config_h, i),
            [&](BinaryWriter &out) {
                writeFileHeader(out, kCkptMagic, kCkptVersion);
                out.put(scope_h);
                out.put(config_h);
                out.put(static_cast<uint64_t>(i));
                save_unit(i, out);
                out.putChecksumTrailer();
            },
            &sum);
        if (stored) {
            Entry e;
            e.type = EntryType::UnitDone;
            e.scopeHash = scope_h;
            e.configHash = config_h;
            e.unitIndex = i;
            e.artifactSum = sum;
            appendEntry(e);
        } else {
            // Checkpointing is best-effort: the unit's in-memory
            // result is still valid, it just cannot be skipped on a
            // future resume.
            warn("checkpoint for unit ", i, " of scope '", scope,
                 "' failed to persist; resume will recompute it");
        }
        unitsExecuted_.fetch_add(1, std::memory_order_relaxed);
    });

    if (interrupted.load(std::memory_order_relaxed) ||
        stopRequested())
    {
        emitEvent("checkpoint", LogLevel::Warn,
                  "scope '" + scope +
                      "' interrupted; completed units journaled");
        throw RunInterrupted("scope '" + scope +
                             "' interrupted; completed units are "
                             "journaled for resume");
    }
}

bool
Journal::commitUnitPayload(const std::string &scope,
                           uint64_t config_h, uint64_t unit,
                           const void *payload, size_t size)
{
    if (!enabled_)
        return false;
    active_.store(true, std::memory_order_relaxed);
    const uint64_t scope_h = scopeHash(scope);
    uint64_t sum = 0;
    const bool stored = writeArtifactFile(
        unitPath(scope_h, config_h, unit),
        [&](BinaryWriter &out) {
            writeFileHeader(out, kCkptMagic, kCkptVersion);
            out.put(scope_h);
            out.put(config_h);
            out.put(unit);
            out.putBytes(payload, size);
            out.putChecksumTrailer();
        },
        &sum);
    if (!stored)
        return false;
    Entry e;
    e.type = EntryType::UnitDone;
    e.scopeHash = scope_h;
    e.configHash = config_h;
    e.unitIndex = unit;
    e.artifactSum = sum;
    appendEntry(e);
    return true;
}

bool
Journal::readUnitPayload(const std::string &scope, uint64_t config_h,
                         uint64_t unit, std::string &payload) const
{
    if (!enabled_)
        return false;
    const uint64_t scope_h = scopeHash(scope);
    uint64_t expect = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(ScopeKey{scope_h, config_h});
        if (it == entries_.end())
            return false;
        const auto u = it->second.find(unit);
        if (u == it->second.end())
            return false;
        expect = u->second;
    }
    std::ifstream raw(unitPath(scope_h, config_h, unit),
                      std::ios::binary | std::ios::ate);
    if (!raw)
        return false;
    const uint64_t total = static_cast<uint64_t>(raw.tellg());
    // magic + version (12), scope/config/unit keys (24), trailer (8).
    constexpr uint64_t kHeaderBytes = 12 + 24;
    constexpr uint64_t kWrapBytes = kHeaderBytes + 8;
    if (total < kWrapBytes)
        return false;
    raw.seekg(0);
    std::string all(total, '\0');
    raw.read(all.data(), static_cast<std::streamsize>(total));
    if (!raw)
        return false;
    // The journaled checksum covers every byte before the trailer;
    // matching it binds the file to this exact (scope, config, unit).
    if (fnv1aUpdate(kFnv1aBasis, all.data(),
                    static_cast<size_t>(total - 8)) != expect)
        return false;
    payload.assign(all, kHeaderBytes,
                   static_cast<size_t>(total - kWrapBytes));
    return true;
}

JournalStats
Journal::stats() const
{
    JournalStats s;
    s.active = active_.load(std::memory_order_relaxed);
    s.unitsSkipped = unitsSkipped_.load(std::memory_order_relaxed);
    s.unitsExecuted = unitsExecuted_.load(std::memory_order_relaxed);
    s.unitRetries = unitRetries_.load(std::memory_order_relaxed);
    s.verifyFailures =
        verifyFailures_.load(std::memory_order_relaxed);
    s.tornTails = tornTails_.load(std::memory_order_relaxed);
    s.quarantines = quarantines_.load(std::memory_order_relaxed);
    s.scopesRetired = scopesRetired_.load(std::memory_order_relaxed);
    s.softTimeouts = softTimeouts_.load(std::memory_order_relaxed);
    return s;
}

void
Journal::noteSoftTimeout()
{
    softTimeouts_.fetch_add(1, std::memory_order_relaxed);
}

JournalStats
Journal::globalStats()
{
    // Observe only: a report writer asking for stats must not create
    // the journal (or its file) in a process that never used it.
    if (!g_instanceCreated.load(std::memory_order_acquire))
        return JournalStats{};
    return instance().stats();
}

size_t
Journal::countEntries(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    in.seekg(0, std::ios::end);
    const uint64_t size = static_cast<uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    uint64_t magic = 0;
    uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!in || magic != kJournalMagic || version != kJournalVersion)
        return 0;
    size_t count = 0;
    replayFrames(in, size, [&count](const Entry &) { ++count; });
    return count;
}

void
Journal::forEachInFlight(
    const std::function<void(const std::string &, uint64_t, double)>
        &fn) const
{
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[token, unit] : inFlight_) {
        const double secs =
            std::chrono::duration<double>(now - unit.start).count();
        fn(unit.scope, unit.unit, secs);
    }
}

} // namespace psca
