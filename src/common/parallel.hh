/**
 * @file
 * Deterministic parallel execution: a fixed-size thread pool with a
 * `parallelFor(n, fn)` / `parallelMap(n, fn)` API for the repo's
 * embarrassingly parallel fan-outs (per-trace recording, per-fold
 * cross-validation, per-tree forest fitting, per-record dataset
 * assembly).
 *
 * Determinism contract (see DESIGN.md §8 "Concurrency architecture"):
 *
 *  - Task i's result depends only on i and the captured inputs, never
 *    on which thread runs it or in what order. Callers that need
 *    randomness derive a per-task substream with taskRng(seed, i)
 *    instead of sharing an Rng across tasks.
 *  - parallelMap writes task i's result into slot i, and callers
 *    reduce in index order, so every aggregate is bit-identical to
 *    the serial run regardless of PSCA_THREADS or scheduling.
 *  - With PSCA_THREADS=1 (or n <= 1) parallelFor degenerates to the
 *    exact serial loop on the calling thread: no worker threads are
 *    consulted, no task wrappers run.
 *
 * Sizing: the process-wide pool (ThreadPool::instance()) is created
 * once, sized by the PSCA_THREADS environment variable (default:
 * hardware_concurrency). Work is distributed by atomic index
 * claiming — idle workers steal the next unclaimed chunk of indices
 * from a shared cursor, so an imbalanced task mix still saturates the
 * pool. Nested parallelFor calls (a parallel region entered from
 * inside a task) run inline on the claiming thread, so the pool can
 * never deadlock on itself.
 *
 * Exceptions thrown by tasks are captured and the one with the
 * LOWEST task index is rethrown on the calling thread after all
 * claimed tasks finish — again independent of scheduling.
 */

#ifndef PSCA_COMMON_PARALLEL_HH
#define PSCA_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hh"

namespace psca {

/**
 * Thread count requested for this process: PSCA_THREADS if set (>= 1;
 * 0 or unparsable values fall back), else hardware_concurrency().
 */
int parallelThreadCount();

/**
 * Fixed-size pool of `threads - 1` workers; the submitting thread
 * participates as executor 0, so `threads` tasks run concurrently.
 */
class ThreadPool
{
  public:
    /** Build a pool with an explicit size (tests, benches). */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending work must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** The process-wide pool, created once, sized by PSCA_THREADS. */
    static ThreadPool &instance();

    /**
     * Replace the process-wide pool with one of the given size (the
     * old pool is joined first). Test/bench hook for comparing
     * thread counts in one process; must not race live parallelFor
     * calls.
     */
    static void configure(int threads);

    int numThreads() const { return numThreads_; }

    /**
     * Run fn(0..n-1) across the pool and block until all complete.
     * Serial (inline, in index order) when the pool has one thread,
     * n <= 1, or the caller is itself a pool task. Rethrows the
     * lowest-index task exception after the region drains.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** parallelFor that collects fn(i) into slot i of the result. */
    template <typename T, typename F>
    std::vector<T>
    parallelMap(size_t n, F &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

    /** True while the calling thread is executing a pool task. */
    static bool inParallelTask();

    /**
     * Context propagation hooks (registered once, by the obs layer):
     * capture() runs on the submitting thread per parallelFor and its
     * result is handed to enter() on a worker before each task;
     * exit() runs after the task. Used to parent worker-side phase
     * scopes under the submitter's current phase.
     */
    using ContextCapture = void *(*)();
    using ContextEnter = void (*)(void *);
    using ContextExit = void (*)();
    static void setContextHooks(ContextCapture capture,
                                ContextEnter enter, ContextExit exit);

    /**
     * Task-span hooks (registered once, by the obs layer): begin(i)
     * and end(i) bracket every task claimed through the pool's
     * drain loop — on workers and the submitting thread alike — so
     * span tracing can attribute each index. Serial fast paths
     * (one thread, n == 1, nested regions) bypass the pool and
     * therefore these hooks.
     */
    using TaskSpanHook = void (*)(size_t);
    static void setTaskSpanHooks(TaskSpanHook begin, TaskSpanHook end);

  private:
    struct Job;

    void workerLoop();

    /** Claim-and-run loop shared by workers and the submitter. */
    void drainJob(const std::shared_ptr<Job> &job, bool is_worker);

    void runOne(const std::function<void(size_t)> &fn, size_t i);

    const int numThreads_;
    std::vector<std::thread> workers_;

    std::mutex submitMu_; //!< serializes whole parallelFor regions
    std::mutex mu_; //!< guards job hand-off and completion signaling
    std::condition_variable wake_; //!< workers: new job or stop
    std::condition_variable done_; //!< submitter: all tasks finished
    uint64_t jobGen_ = 0;
    std::shared_ptr<Job> job_; //!< the active region, if any
    bool stop_ = false;

    std::mutex errMu_; //!< guards the lowest-index exception slot
    size_t errIndex_ = 0;
    std::exception_ptr err_;
};

/** Seed for task i of a parallel region seeded with @p base. */
inline uint64_t
taskSeed(uint64_t base, uint64_t task_index)
{
    return mixSeeds(base, task_index + 1);
}

/**
 * Independent deterministic RNG substream for task i: the same
 * derivation a serial loop uses per iteration, so parallel and serial
 * runs draw identical streams.
 */
inline Rng
taskRng(uint64_t base, uint64_t task_index)
{
    return Rng(taskSeed(base, task_index));
}

} // namespace psca

#endif // PSCA_COMMON_PARALLEL_HH
