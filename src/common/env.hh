/**
 * @file
 * Validated environment-variable parsing. Every PSCA_* knob goes
 * through these helpers instead of raw atoi/strcmp so that a typo
 * ("PSCA_THREADS=fuor", "PSCA_SIM_MEMO=off please") produces one
 * clear warning line and a documented fallback, never a silent
 * zero-valued surprise.
 *
 * Conventions:
 *  - unset or empty variables mean "use the default" and are never
 *    warned about;
 *  - garbage values (trailing junk, wrong type, unknown enum token)
 *    warn once per lookup and fall back to the default;
 *  - out-of-range numbers warn and fall back to the default, so a
 *    bad value can never smuggle a 0 into a divisor or a loop bound.
 *
 * The tryParse* functions are the silent layer (no logging) for
 * callers that must not recurse into the logger — logging.cc itself
 * parses PSCA_LOG_LEVEL with them.
 */

#ifndef PSCA_COMMON_ENV_HH
#define PSCA_COMMON_ENV_HH

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

#include "common/logging.hh"

namespace psca {
namespace env {

/** Strict full-string integer parse; false on any trailing junk. */
inline bool
tryParseLong(const char *s, long long &out)
{
    if (!s || !*s)
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Strict full-string double parse; false on any trailing junk. */
inline bool
tryParseDouble(const char *s, double &out)
{
    if (!s || !*s)
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Boolean tokens: 1/true/on/yes and 0/false/off/no. */
inline bool
tryParseBool(const char *s, bool &out)
{
    if (!s || !*s)
        return false;
    auto any = [s](std::initializer_list<const char *> tokens) {
        for (const char *t : tokens)
            if (std::strcmp(s, t) == 0)
                return true;
        return false;
    };
    if (any({"1", "true", "on", "yes"})) {
        out = true;
        return true;
    }
    if (any({"0", "false", "off", "no"})) {
        out = false;
        return true;
    }
    return false;
}

/**
 * Integer knob: returns true and sets @p out only when @p name is
 * set to a valid integer in [lo, hi]. Garbage or out-of-range values
 * warn and return false (caller keeps its default).
 */
inline bool
intIfSet(const char *name, long long &out, long long lo, long long hi)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return false;
    long long v = 0;
    if (!tryParseLong(s, v)) {
        warn("ignoring ", name, "='", s, "': not an integer");
        return false;
    }
    if (v < lo || v > hi) {
        warn("ignoring ", name, "=", v, ": outside [", lo, ", ", hi,
             "]");
        return false;
    }
    out = v;
    return true;
}

/** Integer knob with an in-range default. */
inline long long
intOr(const char *name, long long def, long long lo, long long hi)
{
    long long v = def;
    intIfSet(name, v, lo, hi);
    return v;
}

/** Floating-point knob with an in-range default. */
inline double
doubleOr(const char *name, double def, double lo, double hi)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    double v = 0.0;
    if (!tryParseDouble(s, v)) {
        warn("ignoring ", name, "='", s, "': not a number");
        return def;
    }
    if (v < lo || v > hi) {
        warn("ignoring ", name, "=", v, ": outside [", lo, ", ", hi,
             "]");
        return def;
    }
    return v;
}

/** Boolean knob (1/true/on/yes, 0/false/off/no). */
inline bool
flagOr(const char *name, bool def)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    bool v = def;
    if (!tryParseBool(s, v)) {
        warn("ignoring ", name, "='", s,
             "': expected 0/1/true/false/on/off");
        return def;
    }
    return v;
}

/** Enum knob: the value must be one of @p allowed. */
inline std::string
enumOr(const char *name, std::initializer_list<const char *> allowed,
       const char *def)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    for (const char *token : allowed)
        if (std::strcmp(s, token) == 0)
            return s;
    std::string choices;
    for (const char *token : allowed) {
        if (!choices.empty())
            choices += "|";
        choices += token;
    }
    warn("ignoring ", name, "='", s, "': expected one of ", choices);
    return def;
}

/** String knob (no validation beyond non-empty). */
inline std::string
stringOr(const char *name, const char *def)
{
    const char *s = std::getenv(name);
    return s && *s ? s : def;
}

} // namespace env
} // namespace psca

#endif // PSCA_COMMON_ENV_HH
