/**
 * @file
 * Runtime SIMD dispatch for the batched inference kernels
 * (DESIGN.md §14). The active level is the meet of three gates:
 * what this binary was compiled with (PSCA_HAVE_AVX2, probed by
 * CMake), what the host CPU reports, and what the operator asked
 * for (`PSCA_SIMD=avx2|scalar`, default = highest available).
 *
 * Every kernel pair is bit-identical by construction — the vector
 * path keeps each sample's operation order and never contracts
 * mul+add into FMA — so the knob is a perf/debug control, never a
 * results control. The scalar-fallback CI job holds that line.
 */

#ifndef PSCA_COMMON_SIMD_HH
#define PSCA_COMMON_SIMD_HH

namespace psca {
namespace simd {

/** Vector ISA level selected for batched kernels. */
enum class Level
{
    Scalar,
    Avx2,
};

/**
 * The level every batched kernel dispatches on. Resolved once per
 * process (env ∧ cpuid ∧ compile-time support) and cached.
 */
Level activeLevel();

/** Convenience: activeLevel() == Level::Avx2. */
bool useAvx2();

/** Lower-case token for logs/reports ("avx2", "scalar"). */
const char *levelName(Level level);

} // namespace simd
} // namespace psca

#endif // PSCA_COMMON_SIMD_HH
