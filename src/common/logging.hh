/**
 * @file
 * Status and error reporting helpers in the style of gem5's
 * base/logging.hh: inform() for status, warn() for suspicious but
 * non-fatal conditions, fatal() for user errors (clean exit), and
 * panic() for internal invariant violations (abort).
 */

#ifndef PSCA_COMMON_LOGGING_HH
#define PSCA_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace psca {

namespace detail {

/** Fold any streamable arguments into a single string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit one tagged line to stderr. */
void emitLine(const char *tag, const std::string &msg);

} // namespace detail

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLine("info", detail::formatMessage(
        std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLine("warn", detail::formatMessage(
        std::forward<Args>(args)...));
}

/**
 * Terminate due to a user-correctable error (bad configuration,
 * invalid arguments). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLine("fatal", detail::formatMessage(
        std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate due to an internal invariant violation (a library bug,
 * never the user's fault). Aborts so a core/backtrace is available.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLine("panic", detail::formatMessage(
        std::forward<Args>(args)...));
    std::abort();
}

/** Abort via panic() when a library invariant does not hold. */
#define PSCA_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::psca::panic("assertion failed: ", #cond, " at ",          \
                          __FILE__, ":", __LINE__, " ", ##__VA_ARGS__); \
        }                                                               \
    } while (0)

} // namespace psca

#endif // PSCA_COMMON_LOGGING_HH
