/**
 * @file
 * Status and error reporting helpers in the style of gem5's
 * base/logging.hh: debug() for developer tracing, inform() for
 * status, warn() for suspicious but non-fatal conditions, fatal() for
 * user errors (clean exit), and panic() for internal invariant
 * violations (abort).
 *
 * Verbosity is filtered by the PSCA_LOG_LEVEL environment variable
 * ("debug", "info" (default), "warn", or "quiet"; numeric 0-3 also
 * accepted). fatal() and panic() always print. Suppressed levels skip
 * message formatting entirely.
 */

#ifndef PSCA_COMMON_LOGGING_HH
#define PSCA_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace psca {

/** Message severities, least to most severe. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Quiet = 3, //!< only fatal/panic
};

/** The process log level (PSCA_LOG_LEVEL, parsed once). */
LogLevel logLevel();

/** True when messages of severity @p lvl should be emitted. */
inline bool
logEnabled(LogLevel lvl)
{
    return static_cast<int>(lvl) >= static_cast<int>(logLevel());
}

namespace detail {

/** Fold any streamable arguments into a single string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/**
 * Emit one tagged line to stderr: the whole line (with a monotonic
 * seconds-since-start prefix) is built first and written with a
 * single flushed write, so concurrent writers cannot shear it.
 */
void emitLine(const char *tag, const std::string &msg);

} // namespace detail

/** Print a developer-tracing message (hidden by default). */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logEnabled(LogLevel::Debug))
        detail::emitLine("debug", detail::formatMessage(
            std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logEnabled(LogLevel::Info))
        detail::emitLine("info", detail::formatMessage(
            std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logEnabled(LogLevel::Warn))
        detail::emitLine("warn", detail::formatMessage(
            std::forward<Args>(args)...));
}

/**
 * Terminate due to a user-correctable error (bad configuration,
 * invalid arguments). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLine("fatal", detail::formatMessage(
        std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate due to an internal invariant violation (a library bug,
 * never the user's fault). Aborts so a core/backtrace is available.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLine("panic", detail::formatMessage(
        std::forward<Args>(args)...));
    std::abort();
}

/** Nanoseconds on the steady clock (monotonic, arbitrary epoch). */
uint64_t steadyNowNs();

/*
 * Telemetry bridge (DESIGN.md §12). The common layer cannot link
 * against the obs layer, yet common-side code (journal units, fault
 * sites, quarantine) produces trace spans and structured events.
 * These function-pointer hooks are the seam: the obs layer registers
 * targets at static-init time (plain constant-initialized pointers,
 * so cross-TU init order is harmless — the same idiom as the
 * ThreadPool context hooks); until then, and in obs-free binaries,
 * every call is a cheap no-op.
 */

/** True when span tracing is on (cheap; safe to call per event). */
using TraceEnabledFn = bool (*)();
/** A completed span [start_ns, end_ns] with up to two integer args. */
using TraceSpanFn = void (*)(const char *name, uint64_t start_ns,
                             uint64_t end_ns, const char *k1,
                             long long v1, const char *k2,
                             long long v2);
/** A zero-duration instant event with an optional integer arg. */
using TraceInstantFn = void (*)(const char *name, const char *key,
                                long long value);
/** A structured run event (bounded log, serialized into reports). */
using EventSinkFn = void (*)(const char *category, LogLevel level,
                             const std::string &msg);

void setTraceHooks(TraceEnabledFn enabled, TraceSpanFn span,
                   TraceInstantFn instant);
void setEventSink(EventSinkFn sink);

/** True when a trace sink is registered and actively recording. */
bool traceHooksEnabled();

/**
 * Record a span through the registered hook (no-op when tracing is
 * off). Keys must be string literals (or otherwise outlive the run);
 * pass nullptr keys to omit args.
 */
void traceSpanHook(const char *name, uint64_t start_ns,
                   uint64_t end_ns, const char *k1 = nullptr,
                   long long v1 = 0, const char *k2 = nullptr,
                   long long v2 = 0);

/** Record an instant event through the registered hook. */
void traceInstantHook(const char *name, const char *key = nullptr,
                      long long value = 0);

/**
 * Append a structured event to the registered event sink (the obs
 * EventLog when linked; dropped silently otherwise). Does NOT print:
 * callers that also want a log line still call warn()/inform().
 */
void emitEvent(const char *category, LogLevel level,
               const std::string &msg);

/** Abort via panic() when a library invariant does not hold. */
#define PSCA_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::psca::panic("assertion failed: ", #cond, " at ",          \
                          __FILE__, ":", __LINE__, " ", ##__VA_ARGS__); \
        }                                                               \
    } while (0)

} // namespace psca

#endif // PSCA_COMMON_LOGGING_HH
