/**
 * @file
 * Crash-safe execution journal, transactional artifact store, and the
 * checkpoint/resume primitive underneath core/runner.hh.
 *
 * The problem (DESIGN.md §11): the figure-reproduction campaigns run
 * for hours across hundreds of units of work (trace records, crossval
 * folds, forest fits, PF-screen blocks). A crash, OOM-kill, or CI
 * timeout used to lose everything since the last whole-corpus cache
 * write. This layer makes every such fan-out resumable to the
 * granularity of a single unit, with bit-identical final outputs.
 *
 * Three pieces:
 *
 *  1. Journal — an append-only log of completed units, one
 *     checksummed frame per entry, keyed by (scope hash, config hash,
 *     unit index). Frames reuse the FNV-1a trailer scheme of
 *     serialize.hh, per frame rather than per file so a torn tail
 *     (the expected SIGKILL artifact) invalidates only itself: replay
 *     truncates back to the last good frame and continues. A corrupt
 *     header quarantines the whole journal and the run rebuilds from
 *     scratch — corruption can cost time, never correctness.
 *
 *  2. Transactional artifact writes — writeArtifactFile() stages to a
 *     unique temp name, flushes, fsync()s, then atomically rename()s
 *     into place; ArtifactTxn extends the same contract to multi-file
 *     artifacts (two-phase: stage and fsync every file, then rename
 *     them in sequence — a reader never observes a half-written file,
 *     and a crash between renames leaves a prefix of complete files,
 *     each individually valid). The memo/corpus/firmware caches all
 *     publish through this path.
 *
 *  3. checkpointedMap() — the resumable counterpart of
 *     ThreadPool::parallelMap(). Each completed unit's result is
 *     serialized to its own artifact and journaled; on re-entry the
 *     journal is replayed, artifacts are verified against the
 *     recorded content hash, verified units are loaded into their
 *     slots, and parallelFor runs over only the remaining indices
 *     (with their ORIGINAL indices, so every taskSeed substream is
 *     unchanged and the merged result is bit-identical to an
 *     uninterrupted run at any PSCA_THREADS).
 *
 * Determinism contract: resume changes which units *execute*, never
 * what any unit *computes*. Unit results are pure functions of
 * (inputs, unit index); the journal only short-circuits recomputation
 * with the recorded bytes. Process-accounting stats (units executed,
 * memo hits, wall times) legitimately differ between a resumed and an
 * uninterrupted run; result artifacts and result gauges do not.
 *
 * Environment:
 *  - PSCA_JOURNAL=0   disable journaling (default on; when off this
 *                     layer touches no files and creates no stats, so
 *                     run reports stay byte-identical to a build
 *                     without it)
 *  - PSCA_RESUME=0    ignore and reset any existing journal +
 *                     checkpoints (default: resume)
 *  - PSCA_CACHE_DIR   journal and checkpoint location (shared with
 *                     the memo/corpus caches)
 *
 * Layering: this is a common/ facility (used from ml/ and sim/ as
 * well as core/), so like common/fault.hh it self-tallies into plain
 * atomics and obs/report.cc pulls the tallies into run-report gauges
 * ("runner.*") only when the journal was actually active.
 */

#ifndef PSCA_COMMON_JOURNAL_HH
#define PSCA_COMMON_JOURNAL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/serialize.hh"

namespace psca {

/**
 * Thrown (from the submitting thread) when a checkpointed region was
 * cut short by requestStop() — SIGINT/SIGTERM or the deadline
 * watchdog. Everything completed before the stop is journaled;
 * runner::guardedMain() turns this into the resumable exit code.
 */
class RunInterrupted : public std::runtime_error
{
  public:
    explicit RunInterrupted(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Cooperative stop flag. Safe to call from signal handlers (one
 * relaxed atomic store). Checkpointed regions poll it at unit
 * boundaries; in-flight units finish and are journaled first.
 */
void requestStop();
bool stopRequested();

/** Clear the stop flag (tests; a new guardedMain body). */
void clearStopRequest();

/**
 * Whether a checkpointed scope may be handed to the distribution
 * layer. Explicit per call site: exactly the four campaign fan-outs
 * (corpus recording, PF screen-1, crossval folds, forest fits) opt
 * in; everything else — nested scopes, tests, small utility maps —
 * stays local no matter what PSCA_DIST_ROLE says.
 */
enum class DistMode : uint8_t
{
    Local = 0,
    Distributed = 1,
};

class Journal;

/**
 * Distribution hook (same function-pointer idiom as the logging
 * trace hooks: common/ cannot link the dist layer). Called by
 * runCheckpointed() for Distributed scopes with the not-yet-journaled
 * indices; returns true when the scope was fully handled — every
 * pending slot filled (via exec or load) and, on the coordinator,
 * journaled — or false to fall back to the local parallelFor path.
 */
using DistScopeFn = bool (*)(
    Journal &journal, const std::string &scope, uint64_t config_h,
    size_t n, const std::vector<size_t> &pending,
    const std::function<bool(size_t, BinaryReader &)> &load_unit,
    const std::function<void(size_t)> &exec_unit,
    const std::function<void(size_t, BinaryWriter &)> &save_unit);

/** Install (or clear, with nullptr) the distribution hook. */
void setDistScopeHook(DistScopeFn fn);

/**
 * Deterministic retry backoff for transient-IO paths: exponential
 * base (1 << attempt ms) plus a jitter drawn from a taskSeed
 * substream of (PSCA_FAULT_SEED, key, attempt) — never from the
 * clock — so retry schedules are bit-reproducible under
 * PSCA_FAULT_SEED at any thread count.
 */
int retryBackoffMs(uint64_t key, int attempt);

/** retryBackoffMs() followed by the actual sleep. */
void retryBackoffSleep(uint64_t key, int attempt);

/**
 * Transactionally publish one artifact file: the callback writes the
 * payload through a BinaryWriter positioned on a unique temp file;
 * the store flushes, fsync()s, and atomically renames into place.
 * Readers therefore only ever see complete, checksummed files.
 *
 * @param fill        Writes the payload (header + trailer included if
 *                    the format wants them).
 * @param content_sum Out (optional): FNV-1a checksum over every byte
 *                    written.
 * @return false on any IO failure (temp removed, nothing published).
 */
bool writeArtifactFile(const std::string &path,
                       const std::function<void(BinaryWriter &)> &fill,
                       uint64_t *content_sum = nullptr);

/**
 * Two-phase commit for multi-file artifacts (e.g. a fleet of firmware
 * images that must appear as a set). Phase one stages every file to a
 * temp sibling and fsync()s it; phase two renames them all. abort()
 * (or destruction without commit) removes the temps and publishes
 * nothing.
 */
class ArtifactTxn
{
  public:
    ArtifactTxn() = default;
    ~ArtifactTxn();

    ArtifactTxn(const ArtifactTxn &) = delete;
    ArtifactTxn &operator=(const ArtifactTxn &) = delete;

    /**
     * Stage a file destined for @p final_path; write the payload
     * through the returned writer. Valid until commit()/abort().
     */
    BinaryWriter &stage(const std::string &final_path);

    /**
     * Fsync every staged file, then rename all into place. False (and
     * nothing published) if any staged stream failed; true when every
     * file landed.
     */
    bool commit();

    /** Drop all staged temps without publishing. */
    void abort();

  private:
    struct Staged
    {
        std::string finalPath;
        std::string tmpPath;
        std::unique_ptr<BinaryWriter> writer;
    };

    std::vector<Staged> staged_;
    bool done_ = false;
};

/** Self-tallied journal/checkpoint statistics (pulled by obs). */
struct JournalStats
{
    /** True once any checkpointed scope ran with the journal on. */
    bool active = false;
    uint64_t unitsSkipped = 0;   //!< loaded from verified checkpoints
    uint64_t unitsExecuted = 0;  //!< computed (and journaled) fresh
    uint64_t unitRetries = 0;    //!< unit re-runs after an exception
    uint64_t verifyFailures = 0; //!< journaled artifacts that failed
    uint64_t tornTails = 0;      //!< truncated torn journal frames
    uint64_t quarantines = 0;    //!< whole-journal integrity failures
    uint64_t scopesRetired = 0;  //!< scopes compacted away
    uint64_t softTimeouts = 0;   //!< watchdog-flagged slow units
};

/**
 * The append-only run journal plus the checkpoint store built on it.
 * One process-wide instance lives under PSCA_CACHE_DIR (the same root
 * as the memo and corpus caches, so one knob relocates all run
 * state); tests build standalone instances on scratch directories.
 */
class Journal
{
  public:
    /** Journal entry types (on-disk; append-only, never renumber). */
    enum class EntryType : uint8_t
    {
        UnitDone = 1,     //!< unit artifact committed
        ScopeRetired = 2, //!< scope's units superseded; compactable
    };

    /** One replayed journal entry. */
    struct Entry
    {
        EntryType type = EntryType::UnitDone;
        uint64_t scopeHash = 0;
        uint64_t configHash = 0;
        uint64_t unitIndex = 0;
        uint64_t artifactSum = 0; //!< checksum of the artifact file
    };

    /**
     * The process-wide journal under PSCA_CACHE_DIR. Created lazily
     * on first use; PSCA_JOURNAL=0 yields a disabled instance that
     * never touches the filesystem.
     */
    static Journal &instance();

    /**
     * Open (replaying any existing entries) a journal rooted at
     * @p dir. @p resume=false truncates instead of replaying.
     */
    Journal(const std::string &dir, bool enabled, bool resume);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    bool enabled() const { return enabled_; }

    /** Stable hash of a scope name (FNV-1a over the bytes). */
    static uint64_t scopeHash(const std::string &scope);

    /** Journal file path for this instance. */
    std::string journalPath() const;

    /** Artifact path for one checkpointed unit. */
    std::string unitPath(uint64_t scope_h, uint64_t config_h,
                         uint64_t unit) const;

    /** Completed-unit count currently known for a scope. */
    size_t unitsDone(const std::string &scope, uint64_t config_h) const;

    /**
     * Mark a scope's units superseded by a higher-level artifact
     * (e.g. the whole-corpus cache file): appends a ScopeRetired
     * entry and deletes the per-unit checkpoint files.
     */
    void retireScope(const std::string &scope, uint64_t config_h);

    /**
     * The checkpoint/resume driver under checkpointedMap(). Replays
     * the journal for (scope, config), verifies + loads completed
     * units via @p load_unit, executes the remainder via parallelFor
     * on @p exec_unit (original indices), and serializes each fresh
     * result via @p save_unit followed by a journal append. Respects
     * requestStop() at unit boundaries (throws RunInterrupted after
     * draining in-flight units). With the journal disabled this is
     * exactly parallelFor(n, exec_unit).
     *
     * @p dist offers the scope to the distribution hook (top-level
     * scopes only; nested scopes always run locally so every process
     * in a fleet makes the same interception decision).
     */
    void runCheckpointed(
        const std::string &scope, uint64_t config_h, size_t n,
        const std::function<bool(size_t, BinaryReader &)> &load_unit,
        const std::function<void(size_t)> &exec_unit,
        const std::function<void(size_t, BinaryWriter &)> &save_unit,
        DistMode dist = DistMode::Local);

    /**
     * Commit one externally computed unit: wrap @p payload (exactly
     * the bytes its save_unit callback would write) in the standard
     * checkpoint header/keys/trailer, publish the artifact
     * atomically, and journal it. The distribution coordinator's
     * merge path. False on IO failure (the unit stays pending).
     */
    bool commitUnitPayload(const std::string &scope, uint64_t config_h,
                           uint64_t unit, const void *payload,
                           size_t size);

    /**
     * Re-read a journaled unit's artifact and extract the raw
     * save_unit payload (header/keys/trailer stripped), verifying the
     * journaled checksum. Serves checkpoint bytes to fleet workers
     * when a scope resumes with units completed in an earlier run.
     */
    bool readUnitPayload(const std::string &scope, uint64_t config_h,
                         uint64_t unit, std::string &payload) const;

    /** Tallies for this instance. */
    JournalStats stats() const;

    /** Tallies of the process-wide instance (no-create when unused). */
    static JournalStats globalStats();

    /**
     * Count well-formed entries in a journal file without opening it
     * for writing (progress probes from a supervising process, and
     * the corruption tests).
     */
    static size_t countEntries(const std::string &path);

    /**
     * Monitoring hook for the runner watchdog: visit every in-flight
     * checkpointed unit as (scope name, unit index, running seconds).
     */
    void forEachInFlight(
        const std::function<void(const std::string &, uint64_t,
                                 double)> &fn) const;

    /** Tally one watchdog soft-timeout warning (runner layer). */
    void noteSoftTimeout();

  private:
    struct ScopeKey
    {
        uint64_t scopeHash;
        uint64_t configHash;
        bool
        operator<(const ScopeKey &o) const
        {
            return scopeHash != o.scopeHash
                ? scopeHash < o.scopeHash
                : configHash < o.configHash;
        }
    };

    void openAndReplay(bool resume);
    void appendEntry(const Entry &entry);
    bool verifyAndLoadUnit(
        uint64_t scope_h, uint64_t config_h, uint64_t unit,
        uint64_t expect_sum,
        const std::function<bool(size_t, BinaryReader &)> &load_unit);

    std::string dir_;
    bool enabled_ = false;

    mutable std::mutex mu_; //!< guards fd_, entries_, inFlight_
    int fd_ = -1;           //!< O_APPEND journal descriptor
    /** Replayed + appended completed units: key -> unit -> checksum. */
    std::map<ScopeKey, std::map<uint64_t, uint64_t>> entries_;

    struct InFlight
    {
        std::string scope;
        uint64_t unit;
        std::chrono::steady_clock::time_point start;
    };
    std::map<uint64_t, InFlight> inFlight_; //!< token -> unit
    uint64_t nextToken_ = 0;

    std::atomic<bool> active_{false};
    std::atomic<uint64_t> unitsSkipped_{0};
    std::atomic<uint64_t> unitsExecuted_{0};
    std::atomic<uint64_t> unitRetries_{0};
    std::atomic<uint64_t> verifyFailures_{0};
    std::atomic<uint64_t> tornTails_{0};
    std::atomic<uint64_t> quarantines_{0};
    std::atomic<uint64_t> scopesRetired_{0};
    std::atomic<uint64_t> softTimeouts_{0};
};

/**
 * Resumable parallelMap: fn(0..n-1) into slot order, with every
 * completed unit checkpointed through @p journal so a killed run
 * re-enters with only the remaining indices. Bit-identical output to
 * ThreadPool::parallelMap at any thread count, interrupted or not.
 *
 * @param scope    Stable scope name; with @p config_hash it keys the
 *                 journal entries, so it must identify the call site
 *                 and @p config_hash must cover every input the unit
 *                 results depend on.
 * @param save/load  Serialize one T; the byte stream must round-trip
 *                 exactly (binary floats, no re-derivation).
 */
template <typename T>
std::vector<T>
checkpointedMap(Journal &journal, const std::string &scope,
                uint64_t config_hash, size_t n,
                const std::function<void(BinaryWriter &, const T &)> &save,
                const std::function<T(BinaryReader &)> &load,
                const std::function<T(size_t)> &fn,
                DistMode dist = DistMode::Local)
{
    std::vector<T> out(n);
    journal.runCheckpointed(
        scope, config_hash, n,
        [&](size_t i, BinaryReader &in) {
            out[i] = load(in);
            return in.good();
        },
        [&](size_t i) { out[i] = fn(i); },
        [&](size_t i, BinaryWriter &w) { save(w, out[i]); }, dist);
    return out;
}

/** checkpointedMap over the process-wide journal. */
template <typename T>
std::vector<T>
checkpointedMap(const std::string &scope, uint64_t config_hash,
                size_t n,
                const std::function<void(BinaryWriter &, const T &)> &save,
                const std::function<T(BinaryReader &)> &load,
                const std::function<T(size_t)> &fn,
                DistMode dist = DistMode::Local)
{
    return checkpointedMap<T>(Journal::instance(), scope, config_hash,
                              n, save, load, fn, dist);
}

} // namespace psca

#endif // PSCA_COMMON_JOURNAL_HH
