/**
 * @file
 * Seeded network fault injection for the fleet wire path. Extends
 * the PSCA_FAULTS framework (common/fault.hh) into src/dist with six
 * net.* sites — frame corruption, torn sends, connection resets,
 * recv stalls, dropped heartbeats, duplicated Result delivery — so
 * the chaos harness (bench/bench_chaos.cc, `psca chaos`) can soak
 * the rejoin/crash-resume machinery under bit-reproducible schedules.
 *
 * Every wrapper is a pass-through costing one cached bool load when
 * no site is armed. Callers supply a stream key built from stable
 * wire identities (scope hash, unit index, message slot) mixed with
 * the connection generation: the generation changes on every
 * successful (re)connect, so a fault that killed one delivery does
 * not deterministically re-fire on the retry and a seeded schedule
 * can never livelock a rejoining worker.
 *
 * Injected failures are indistinguishable from real ones by design:
 * sendFrameChaos() returns false (or poisons the wire so the peer's
 * checksum fails) exactly where a flaky network would, and recovery
 * runs through the same rejoin/reassign/dedupe paths real faults
 * take. That is what makes the chaos soak's byte-identity assertion
 * meaningful.
 */

#ifndef PSCA_DIST_NETFAULT_HH
#define PSCA_DIST_NETFAULT_HH

#include <cstdint>
#include <string>

#include "dist/protocol.hh"

namespace psca {
namespace dist {

/**
 * Send one frame, consulting the net.* send sites for @p key:
 *
 *   net.conn_reset    shuts the socket down both ways and sends
 *                     nothing — the peer sees a dead connection.
 *   net.torn_send     delivers a prefix of the frame, then shuts
 *                     down the write side — the peer reads EOF
 *                     mid-frame (Corrupt).
 *   net.frame_corrupt flips one wire byte; the send "succeeds"
 *                     locally and the peer's checksum catches it.
 *
 * Returns false when the frame was (deliberately or really) not
 * delivered — callers treat that exactly like a real send failure.
 */
bool sendFrameChaos(int fd, Msg type, const std::string &payload,
                    uint64_t key);

/**
 * Receive one frame, optionally stalling first (net.recv_stall,
 * param = stall milliseconds, default 20, capped at 1000).
 */
RecvStatus recvFrameChaos(int fd, Frame &out, uint64_t key,
                          uint32_t max_payload = kMaxFramePayload);

/** Should the worker silently skip this heartbeat? */
bool heartbeatDropped(uint64_t key);

/** Should the worker deliver this Result twice? */
bool duplicateResult(uint64_t key);

} // namespace dist
} // namespace psca

#endif // PSCA_DIST_NETFAULT_HH
