/**
 * @file
 * Wire protocol for the coordinator/worker experiment fleet
 * (DESIGN.md §13): small length-prefixed, checksummed frames over
 * TCP, reusing the FNV-1a trailer idiom of common/journal.
 *
 * Frame layout (little-endian, one sendAll() per frame):
 *
 *     u32 magic      "PDST"
 *     u8  type       Msg enumerator
 *     u32 len        payload byte count (<= kMaxFramePayload)
 *     u8  payload[len]
 *     u64 checksum   FNV-1a 64 over (type, len, payload)
 *
 * A frame that fails the magic, the length bound, or the checksum is
 * Corrupt — the receiver drops the connection rather than guessing
 * at resynchronization, and the journal-based reassignment protocol
 * recovers the work. Payloads are built and parsed with the
 * in-memory BinaryWriter/BinaryReader modes so allocation bounds and
 * checksums behave exactly as they do for on-disk artifacts.
 *
 * The conversation is strict request-reply from the worker's side:
 * every worker frame except Heartbeat (one-way) and Bye (final) gets
 * exactly one coordinator reply, so neither end ever has more than
 * one frame in flight per direction and framing can never interleave.
 */

#ifndef PSCA_DIST_PROTOCOL_HH
#define PSCA_DIST_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace psca {
namespace dist {

constexpr uint32_t kFrameMagic = 0x54534450u; // "PDST"
/** v2: Hello carries the worker's previous id (rejoin accounting). */
constexpr uint32_t kProtocolVersion = 2;

/** Upper bound on one payload (a whole-trace record is ~MBs). */
constexpr uint32_t kMaxFramePayload = 1u << 28;

/** Frame types. Worker-originated < 32, coordinator replies >= 32. */
enum class Msg : uint8_t
{
    // worker -> coordinator
    Hello = 1,      //!< protocol version, thread count
    ScopeEnter = 2, //!< scope hash/config/n/name + assignment request
    Poll = 3,       //!< request more units (or completion status)
    Result = 4,     //!< one computed unit's payload
    Fetch = 5,      //!< request a unit payload this worker lacks
    ScopeLeave = 6, //!< done fetching; carries the stat snapshot
    Heartbeat = 7,  //!< one-way liveness while a batch computes
    Bye = 8,        //!< clean disconnect after the campaign body

    // coordinator -> worker
    Welcome = 32,   //!< assigns the worker id
    Assign = 33,    //!< list of unit indices to execute
    Wait = 34,      //!< nothing to assign yet; re-poll after N ms
    ScopeDone = 35, //!< every unit of the scope is journaled
    Data = 36,      //!< one unit's payload (Fetch reply)
    Ack = 37,       //!< Result/ScopeLeave accepted
    Shutdown = 38,  //!< coordinator is stopping; exit resumably
    Error = 39,     //!< protocol/config divergence; drop connection
};

const char *msgName(Msg m);

/** One decoded frame. */
struct Frame
{
    Msg type = Msg::Error;
    std::string payload;
};

enum class RecvStatus
{
    Ok,
    Closed,    //!< orderly EOF at a frame boundary
    Timeout,   //!< SO_RCVTIMEO expired (peer stalled)
    Corrupt,   //!< bad magic/length/checksum or EOF mid-frame
    Oversized, //!< well-formed header but len exceeds the caller's cap
};

const char *recvStatusName(RecvStatus s);

/**
 * The per-connection recv cap actually applied by the fleet:
 * PSCA_DIST_MAX_FRAME_MB (default 64, range 1-256) megabytes. The
 * protocol-level kMaxFramePayload stays the absolute ceiling.
 */
uint32_t maxFramePayloadCap();

/** Loop send() over the whole buffer (MSG_NOSIGNAL). */
bool sendAll(int fd, const void *data, size_t n);

/** Encode one frame into its exact wire image (header + checksum). */
std::string encodeFrame(Msg type, const std::string &payload);

/** Encode and send one frame. False when the peer went away. */
bool sendFrame(int fd, Msg type, const std::string &payload);

/**
 * Receive and verify one frame (blocking, honors SO_RCVTIMEO).
 *
 * The payload buffer grows in bounded chunks as bytes actually arrive,
 * so a lying length header cannot force a huge up-front allocation; a
 * header announcing more than max_payload bytes yields Oversized
 * without reading the body. max_payload is clamped to kMaxFramePayload.
 */
RecvStatus recvFrame(int fd, Frame &out, uint32_t max_payload = kMaxFramePayload);

} // namespace dist
} // namespace psca

#endif // PSCA_DIST_PROTOCOL_HH
