#include "dist/worker.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/serialize.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"

namespace psca {
namespace dist {

namespace {

obs::Counter &
counter(const char *name)
{
    return obs::StatRegistry::instance().counter(name);
}

void
setRecvTimeout(int fd, double seconds)
{
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/** One connect() attempt to "host:port"; -1 on failure. */
int
tryConnect(const std::string &spec)
{
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        return -1;
    const std::string host = spec.substr(0, colon);
    long long port = 0;
    if (!env::tryParseLong(spec.c_str() + colon + 1, port) ||
        port <= 0 || port > 65535)
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
    {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Read the coordinator's published "host:port" line, if any. */
std::string
readAddrFile(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line))
        return "";
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r' ||
            line.back() == ' '))
        line.pop_back();
    return line;
}

} // namespace

Worker::Worker(const std::string &addr_spec,
               const std::string &addr_file,
               double connect_timeout_s, double io_timeout_s)
    : ioTimeoutS_(io_timeout_s)
{
    // Bounded reconnect with the journal's deterministic backoff:
    // the coordinator may still be binding (or, under "auto", not
    // have published its address yet).
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(connect_timeout_s));
    const uint64_t backoff_key = Journal::scopeHash("dist.connect");
    int fd = -1;
    for (int attempt = 0;; ++attempt) {
        std::string spec = addr_spec;
        if (spec == "auto")
            spec = readAddrFile(addr_file);
        if (!spec.empty())
            fd = tryConnect(spec);
        if (fd >= 0)
            break;
        if (std::chrono::steady_clock::now() >= deadline) {
            warn("dist: cannot reach coordinator (",
                 addr_spec == "auto" ? addr_file : addr_spec,
                 ") within ", connect_timeout_s,
                 "s; running locally");
            return;
        }
        retryBackoffSleep(backoff_key, std::min(attempt, 8));
    }

    // Welcome may take a while: the coordinator only accepts inside
    // its first distributed scope.
    setRecvTimeout(fd, std::max(connect_timeout_s, ioTimeoutS_));
    BinaryWriter hello;
    hello.put<uint32_t>(kProtocolVersion);
    hello.put<uint32_t>(static_cast<uint32_t>(
        ThreadPool::instance().numThreads()));
    Frame reply;
    if (!sendFrame(fd, Msg::Hello, hello.takeBuffer()) ||
        recvFrame(fd, reply) != RecvStatus::Ok ||
        reply.type != Msg::Welcome)
    {
        warn("dist: coordinator handshake failed; running locally");
        ::close(fd);
        return;
    }
    BinaryReader in(reply.payload.data(), reply.payload.size());
    id_ = in.get<uint32_t>();
    if (!in.good()) {
        ::close(fd);
        return;
    }
    setRecvTimeout(fd, ioTimeoutS_);
    fd_ = fd;
    obs::StatRegistry::instance()
        .gauge("dist.worker_id")
        .set(static_cast<double>(id_));
    inform("dist: joined fleet as worker ", id_);
    emitEvent("dist", LogLevel::Info,
              "joined fleet as worker " + std::to_string(id_));
}

Worker::~Worker()
{
    shutdown();
}

void
Worker::shutdown()
{
    if (fd_ < 0)
        return;
    (void)sendFrame(fd_, Msg::Bye, "");
    ::close(fd_);
    fd_ = -1;
}

void
Worker::disconnect(const char *why)
{
    if (fd_ < 0)
        return;
    warn("dist: connection to coordinator lost (", why,
         "); degrading to local execution");
    emitEvent("dist", LogLevel::Warn,
              std::string("coordinator connection lost (") + why +
                  "); degrading to local execution");
    ::close(fd_);
    fd_ = -1;
}

bool
Worker::transact(const char *what, Msg type,
                 const std::string &payload, Frame &out)
{
    counter("dist.bytes_sent").add(payload.size() + 17);
    if (!sendFrame(fd_, type, payload)) {
        disconnect(what);
        return false;
    }
    const RecvStatus st = recvFrame(fd_, out);
    if (st != RecvStatus::Ok) {
        disconnect(recvStatusName(st));
        return false;
    }
    counter("dist.bytes_received").add(out.payload.size() + 17);
    if (out.type == Msg::Shutdown) {
        // The coordinator is done (or going down). Distribution is
        // an accelerator, never a correctness dependency: finish the
        // rest of the campaign locally.
        disconnect("coordinator shut down");
        return false;
    }
    return true;
}

bool
Worker::runScope(
    const std::string &scope, uint64_t config_h, size_t n,
    const std::function<bool(size_t, BinaryReader &)> &load_unit,
    const std::function<void(size_t)> &exec_unit,
    const std::function<void(size_t, BinaryWriter &)> &save_unit)
{
    if (fd_ < 0)
        return false;
    const uint64_t scope_h = Journal::scopeHash(scope);
    counter("dist.scopes_joined").add();

    auto ident = [&](BinaryWriter &w) {
        w.put<uint64_t>(scope_h);
        w.put<uint64_t>(config_h);
    };

    std::set<uint64_t> have; // slots this worker has filled

    /**
     * Execute one assigned batch on the thread pool, streaming each
     * serialized result back in completion order while the batch
     * runs (the protocol thread is this one; pool threads only
     * compute and enqueue). Heartbeats cover gaps longer than 500 ms
     * so a slow unit cannot look like a dead worker.
     */
    auto run_batch = [&](const std::vector<uint64_t> &units) {
        struct Ready
        {
            uint64_t unit;
            std::string bytes;
        };
        std::mutex mu;
        std::condition_variable cv;
        std::deque<Ready> ready;
        size_t remaining = units.size();
        std::atomic<bool> interrupted{false};
        std::exception_ptr compute_err;

        std::thread compute([&] {
            try {
                ThreadPool::instance().parallelFor(
                    units.size(), [&](size_t k) {
                        const size_t i =
                            static_cast<size_t>(units[k]);
                        if (stopRequested()) {
                            interrupted.store(
                                true, std::memory_order_relaxed);
                            std::lock_guard<std::mutex> lock(mu);
                            --remaining;
                            cv.notify_one();
                            return;
                        }
                        // Same bounded retry semantics as the local
                        // checkpointed path.
                        const uint64_t retry_key = mixSeeds(
                            mixSeeds(scope_h, config_h),
                            static_cast<uint64_t>(i));
                        const uint64_t span_start =
                            traceHooksEnabled() ? steadyNowNs() : 0;
                        for (int attempt = 0;; ++attempt) {
                            try {
                                exec_unit(i);
                                break;
                            } catch (const RunInterrupted &) {
                                throw;
                            } catch (const std::exception &e) {
                                if (attempt + 1 >= 3)
                                    throw;
                                warn("dist: unit ", i, " of '",
                                     scope, "' failed (", e.what(),
                                     "); retrying");
                                retryBackoffSleep(retry_key,
                                                  attempt);
                            }
                        }
                        if (span_start)
                            traceSpanHook(
                                "dist.unit", span_start,
                                steadyNowNs(), "unit",
                                static_cast<long long>(i));
                        BinaryWriter w;
                        save_unit(i, w);
                        std::lock_guard<std::mutex> lock(mu);
                        ready.push_back(
                            Ready{units[k], w.takeBuffer()});
                        --remaining;
                        cv.notify_one();
                    });
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                compute_err = std::current_exception();
                remaining = 0;
                cv.notify_one();
            }
        });

        bool ok = true;
        std::exception_ptr send_err;
        for (;;) {
            Ready r;
            bool drained = false;
            {
                std::unique_lock<std::mutex> lock(mu);
                if (ready.empty() && remaining != 0)
                    cv.wait_for(lock,
                                std::chrono::milliseconds(500));
                if (!ready.empty()) {
                    r = std::move(ready.front());
                    ready.pop_front();
                } else if (remaining == 0) {
                    drained = true;
                } else {
                    // Batch still computing; prove liveness.
                    lock.unlock();
                    counter("dist.bytes_sent").add(17);
                    if (fd_ >= 0)
                        (void)sendFrame(fd_, Msg::Heartbeat, "");
                    continue;
                }
            }
            if (drained)
                break;
            if (fd_ < 0 || !ok)
                continue; // keep draining so compute can finish
            try {
                BinaryWriter w;
                ident(w);
                w.put<uint64_t>(r.unit);
                w.put<uint64_t>(fnv1aUpdate(kFnv1aBasis,
                                            r.bytes.data(),
                                            r.bytes.size()));
                w.putString(r.bytes);
                Frame reply;
                if (!transact("result", Msg::Result, w.takeBuffer(),
                              reply) ||
                    reply.type != Msg::Ack)
                {
                    ok = false;
                    continue;
                }
                have.insert(r.unit);
                counter("dist.units_executed").add();
            } catch (...) {
                // Shutdown mid-batch: keep draining so the compute
                // thread can finish, then propagate.
                send_err = std::current_exception();
                ok = false;
            }
        }
        compute.join();
        if (compute_err)
            std::rethrow_exception(compute_err);
        if (send_err)
            std::rethrow_exception(send_err);
        if (interrupted.load(std::memory_order_relaxed))
            throw RunInterrupted("worker interrupted mid-batch");
        return ok && fd_ >= 0;
    };

    // The assign loop. ScopeEnter doubles as the poll message: it is
    // idempotent on the coordinator, and — unlike a bare Poll — a
    // coordinator that has not reached this scope yet can park us
    // with Wait until its own pipeline arrives here, keeping a fleet
    // whose members drift a scope apart in lockstep instead of
    // diverging.
    for (;;) {
        BinaryWriter w;
        ident(w);
        w.put<uint64_t>(n);
        w.putString(scope);
        w.put<uint32_t>(static_cast<uint32_t>(
            ThreadPool::instance().numThreads()));
        Frame reply;
        if (!transact("enter", Msg::ScopeEnter, w.takeBuffer(),
                      reply))
            return false;
        if (reply.type == Msg::Assign) {
            BinaryReader in(reply.payload.data(),
                            reply.payload.size());
            const std::vector<uint64_t> units =
                in.getVector<uint64_t>();
            if (!in.good() || !run_batch(units))
                return false;
        } else if (reply.type == Msg::Wait) {
            BinaryReader in(reply.payload.data(),
                            reply.payload.size());
            const auto ms = in.get<uint32_t>();
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min<uint32_t>(ms, 1000)));
        } else if (reply.type == Msg::ScopeDone) {
            break;
        } else if (reply.type == Msg::Error) {
            BinaryReader in(reply.payload.data(),
                            reply.payload.size());
            warn("dist: coordinator declined scope '", scope, "' (",
                 in.getString(), "); running it locally");
            return false;
        } else {
            disconnect("unexpected reply");
            return false;
        }
    }

    // Fetch every unit a peer computed (or the journal already
    // held), in index order, so this process's in-memory state is
    // identical to the coordinator's.
    for (uint64_t i = 0; i < n; ++i) {
        if (have.count(i) != 0)
            continue;
        BinaryWriter w;
        ident(w);
        w.put<uint64_t>(i);
        Frame reply;
        if (!transact("fetch", Msg::Fetch, w.takeBuffer(), reply))
            return false;
        if (reply.type != Msg::Data) {
            warn("dist: unit ", i, " of scope '", scope,
                 "' not fetchable; recomputing scope locally");
            return false;
        }
        BinaryReader in(reply.payload.data(), reply.payload.size());
        const auto unit = in.get<uint64_t>();
        const auto sum = in.get<uint64_t>();
        const std::string bytes = in.getString();
        if (!in.good() || unit != i ||
            fnv1aUpdate(kFnv1aBasis, bytes.data(), bytes.size()) !=
                sum)
        {
            disconnect("corrupt fetched unit");
            return false;
        }
        BinaryReader payload(bytes.data(), bytes.size());
        if (!load_unit(static_cast<size_t>(i), payload)) {
            disconnect("fetched unit failed to deserialize");
            return false;
        }
        counter("dist.units_fetched").add();
    }

    // Leave the scope, shipping a cumulative registry snapshot for
    // the coordinator's /stats.json aggregation.
    obs::StatSnapshot snap;
    snap.capture(obs::StatRegistry::instance());
    BinaryWriter sw;
    snap.serialize(sw);
    BinaryWriter w;
    ident(w);
    w.putString(sw.takeBuffer());
    Frame reply;
    if (!transact("leave", Msg::ScopeLeave, w.takeBuffer(), reply))
        return true; // slots are all filled; loss only affects stats
    return true;
}

} // namespace dist
} // namespace psca
