#include "dist/worker.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/serialize.hh"
#include "dist/netfault.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"

namespace psca {
namespace dist {

namespace {

obs::Counter &
counter(const char *name)
{
    return obs::StatRegistry::instance().counter(name);
}

void
setSockTimeouts(int fd, double seconds)
{
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Bound sends as well: a coordinator that stops draining (stuck
    // on another connection, mid-restart) must surface as a send
    // failure the rejoin path can handle, not an indefinite block.
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** One connect() attempt to "host:port"; -1 on failure. */
int
tryConnect(const std::string &spec)
{
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        return -1;
    const std::string host = spec.substr(0, colon);
    long long port = 0;
    if (!env::tryParseLong(spec.c_str() + colon + 1, port) ||
        port <= 0 || port > 65535)
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
    {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Read the coordinator's published "host:port" line, if any. */
std::string
readAddrFile(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line))
        return "";
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r' ||
            line.back() == ' '))
        line.pop_back();
    return line;
}

/**
 * Per-message-kind lanes for the wire fault keys: each (scope, lane,
 * unit) triple is an independent substream, and the caller mixes in
 * the connection generation so retries after a rejoin draw fresh.
 */
enum : uint64_t
{
    kLaneEnter = 1,
    kLaneResult = 2,
    kLaneFetch = 3,
    kLaneHeartbeat = 4,
    kLaneLeave = 5,
};

} // namespace

Worker::Worker(const std::string &addr_spec,
               const std::string &addr_file,
               double connect_timeout_s, double io_timeout_s,
               uint32_t heartbeat_ms, int max_rejoins)
    : addrSpec_(addr_spec), addrFile_(addr_file),
      connectTimeoutS_(connect_timeout_s), ioTimeoutS_(io_timeout_s),
      heartbeatMs_(heartbeat_ms), maxRejoins_(max_rejoins)
{
    if (!connectAndHello(connect_timeout_s))
        warn("dist: cannot reach coordinator (",
             addr_spec == "auto" ? addr_file : addr_spec, ") within ",
             connect_timeout_s, "s; running locally");
}

Worker::~Worker()
{
    shutdown();
}

bool
Worker::connectAndHello(double budget_s)
{
    // Bounded reconnect with the journal's deterministic backoff:
    // the coordinator may still be binding (or, under "auto", not
    // have published its address yet).
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(budget_s));
    const uint64_t backoff_key =
        mixSeeds(Journal::scopeHash("dist.connect"), generation_);
    int fd = -1;
    for (int attempt = 0;; ++attempt) {
        std::string spec = addrSpec_;
        if (spec == "auto")
            spec = readAddrFile(addrFile_);
        if (!spec.empty())
            fd = tryConnect(spec);
        if (fd >= 0)
            break;
        if (stopRequested() ||
            std::chrono::steady_clock::now() >= deadline)
            return false;
        retryBackoffSleep(backoff_key, std::min(attempt, 8));
    }

    // Welcome may take a while: the coordinator only accepts inside
    // its first distributed scope. The handshake itself is never
    // fault-injected — chaos targets the steady-state wire, so a
    // seeded schedule can kill a delivery but not the recovery.
    setSockTimeouts(fd, std::max(budget_s, ioTimeoutS_));
    BinaryWriter hello;
    hello.put<uint32_t>(kProtocolVersion);
    hello.put<uint32_t>(static_cast<uint32_t>(
        ThreadPool::instance().numThreads()));
    hello.put<uint32_t>(id_); // previous id; 0 on first join
    Frame reply;
    if (!sendFrame(fd, Msg::Hello, hello.takeBuffer()) ||
        recvFrame(fd, reply) != RecvStatus::Ok)
    {
        ::close(fd);
        return false;
    }
    if (reply.type == Msg::Shutdown) {
        sawShutdown_ = true;
        ::close(fd);
        return false;
    }
    if (reply.type != Msg::Welcome) {
        ::close(fd);
        return false;
    }
    BinaryReader in(reply.payload.data(), reply.payload.size());
    const auto assigned = in.get<uint32_t>();
    if (!in.good()) {
        ::close(fd);
        return false;
    }
    setSockTimeouts(fd, ioTimeoutS_);
    const bool first = generation_ == 0;
    id_ = assigned;
    fd_ = fd;
    ++generation_;
    obs::StatRegistry::instance()
        .gauge("dist.worker_id")
        .set(static_cast<double>(id_));
    inform("dist: ", first ? "joined" : "rejoined",
           " fleet as worker ", id_);
    emitEvent("dist", LogLevel::Info,
              std::string(first ? "joined" : "rejoined") +
                  " fleet as worker " + std::to_string(id_));
    return true;
}

bool
Worker::rejoin(const char *why)
{
    closeFd();
    if (permanentlyLocal_)
        return false;
    if (sawShutdown_)
        // Orderly end of the campaign, not a fault: finish locally
        // without burning the retry budget or counting a fallback.
        return false;
    warn("dist: connection to coordinator lost (", why,
         "); attempting to rejoin");
    emitEvent("dist", LogLevel::Warn,
              std::string("coordinator connection lost (") + why +
                  "); attempting to rejoin");
    const uint64_t backoff_key = Journal::scopeHash("dist.rejoin");
    for (int attempt = 0; attempt < maxRejoins_; ++attempt) {
        retryBackoffSleep(mixSeeds(backoff_key, generation_),
                          std::min(attempt, 8));
        if (stopRequested())
            return false;
        if (addrSpec_ == "auto" && readAddrFile(addrFile_).empty()) {
            // The address file is gone: the coordinator withdrew it
            // during orderly shutdown (a SIGKILL leaves it behind
            // for the supervisor's replacement). The campaign is
            // over — same as receiving Shutdown, and no fallback:
            // remaining scopes legitimately run locally.
            inform("dist: coordinator address withdrawn; fleet is "
                   "done, continuing locally");
            sawShutdown_ = true;
            return false;
        }
        if (connectAndHello(connectTimeoutS_)) {
            counter("dist.rejoins").add();
            return true;
        }
        if (sawShutdown_)
            return false;
    }
    permanentlyLocal_ = true;
    counter("dist.local_fallbacks").add();
    warn("dist: could not rejoin within ", maxRejoins_,
         " attempts; degrading to local execution");
    emitEvent("dist", LogLevel::Warn,
              "rejoin budget exhausted; degrading to local "
              "execution");
    return false;
}

void
Worker::shutdown()
{
    if (fd_ < 0)
        return;
    (void)sendFrame(fd_, Msg::Bye, "");
    closeFd();
}

void
Worker::closeFd()
{
    if (fd_ < 0)
        return;
    ::close(fd_);
    fd_ = -1;
}

void
Worker::drainShutdown()
{
    // A failed send often races an orderly coordinator shutdown: the
    // Shutdown frame may already sit in our receive buffer. Peek for
    // it so we do not burn the rejoin budget on a fleet that is done.
    if (fd_ < 0)
        return;
    setSockTimeouts(fd_, 0.05);
    Frame f;
    if (recvFrame(fd_, f) == RecvStatus::Ok &&
        f.type == Msg::Shutdown)
        sawShutdown_ = true;
}

bool
Worker::transact(const char *what, Msg type,
                 const std::string &payload, Frame &out,
                 uint64_t fault_key)
{
    if (fd_ < 0) {
        lastWhy_ = what;
        return false;
    }
    const uint64_t wire_key = mixSeeds(fault_key, generation_);
    counter("dist.bytes_sent").add(payload.size() + 17);
    if (!sendFrameChaos(fd_, type, payload, wire_key)) {
        drainShutdown();
        closeFd();
        lastWhy_ = what;
        return false;
    }
    const RecvStatus st =
        recvFrameChaos(fd_, out, wire_key, maxFramePayloadCap());
    if (st != RecvStatus::Ok) {
        closeFd();
        lastWhy_ = recvStatusName(st);
        return false;
    }
    counter("dist.bytes_received").add(out.payload.size() + 17);
    if (out.type == Msg::Shutdown) {
        sawShutdown_ = true;
        closeFd();
        lastWhy_ = "coordinator shut down";
        return false;
    }
    return true;
}

bool
Worker::runScope(
    const std::string &scope, uint64_t config_h, size_t n,
    const std::function<bool(size_t, BinaryReader &)> &load_unit,
    const std::function<void(size_t)> &exec_unit,
    const std::function<void(size_t, BinaryWriter &)> &save_unit)
{
    if (!usable())
        return false;
    const uint64_t scope_h = Journal::scopeHash(scope);
    const uint64_t scope_key = mixSeeds(scope_h, config_h);
    counter("dist.scopes_joined").add();

    auto ident = [&](BinaryWriter &w) {
        w.put<uint64_t>(scope_h);
        w.put<uint64_t>(config_h);
    };

    std::set<uint64_t> have; // slots this worker has filled

    enum class Batch
    {
        Done,
        Lost, // connection died mid-batch; rewind to ScopeEnter
    };

    /**
     * Execute one assigned batch on the thread pool, streaming each
     * serialized result back in completion order while the batch
     * runs (the protocol thread is this one; pool threads only
     * compute and enqueue). Heartbeats cover gaps longer than
     * heartbeatMs_ so a slow unit cannot look like a dead worker.
     *
     * On connection loss the batch keeps computing to completion —
     * results that could not be delivered are simply dropped; after
     * the rejoin the coordinator either already journaled them
     * (dedupe by unit index) or reassigns them, and re-executing a
     * unit is idempotent because unit bodies are deterministic.
     */
    auto run_batch = [&](const std::vector<uint64_t> &units) {
        struct Ready
        {
            uint64_t unit;
            std::string bytes;
        };
        std::mutex mu;
        std::condition_variable cv;
        std::deque<Ready> ready;
        size_t remaining = units.size();
        std::atomic<bool> interrupted{false};
        std::exception_ptr compute_err;

        std::thread compute([&] {
            try {
                ThreadPool::instance().parallelFor(
                    units.size(), [&](size_t k) {
                        const size_t i =
                            static_cast<size_t>(units[k]);
                        if (stopRequested()) {
                            interrupted.store(
                                true, std::memory_order_relaxed);
                            std::lock_guard<std::mutex> lock(mu);
                            --remaining;
                            cv.notify_one();
                            return;
                        }
                        // Same bounded retry semantics as the local
                        // checkpointed path.
                        const uint64_t retry_key = mixSeeds(
                            mixSeeds(scope_h, config_h),
                            static_cast<uint64_t>(i));
                        const uint64_t span_start =
                            traceHooksEnabled() ? steadyNowNs() : 0;
                        for (int attempt = 0;; ++attempt) {
                            try {
                                exec_unit(i);
                                break;
                            } catch (const RunInterrupted &) {
                                throw;
                            } catch (const std::exception &e) {
                                if (attempt + 1 >= 3)
                                    throw;
                                warn("dist: unit ", i, " of '",
                                     scope, "' failed (", e.what(),
                                     "); retrying");
                                retryBackoffSleep(retry_key,
                                                  attempt);
                            }
                        }
                        if (span_start)
                            traceSpanHook(
                                "dist.unit", span_start,
                                steadyNowNs(), "unit",
                                static_cast<long long>(i));
                        BinaryWriter w;
                        save_unit(i, w);
                        std::lock_guard<std::mutex> lock(mu);
                        ready.push_back(
                            Ready{units[k], w.takeBuffer()});
                        --remaining;
                        cv.notify_one();
                    });
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                compute_err = std::current_exception();
                remaining = 0;
                cv.notify_one();
            }
        });

        bool conn_ok = true;
        std::exception_ptr send_err;
        for (;;) {
            Ready r;
            bool drained = false;
            {
                std::unique_lock<std::mutex> lock(mu);
                if (ready.empty() && remaining != 0)
                    cv.wait_for(
                        lock,
                        std::chrono::milliseconds(heartbeatMs_));
                if (!ready.empty()) {
                    r = std::move(ready.front());
                    ready.pop_front();
                } else if (remaining == 0) {
                    drained = true;
                } else {
                    // Batch still computing; prove liveness.
                    lock.unlock();
                    const uint64_t hb_key = mixSeeds(
                        mixSeeds(mixSeeds(scope_key,
                                          kLaneHeartbeat),
                                 heartbeatSeq_++),
                        generation_);
                    if (fd_ >= 0 && conn_ok &&
                        !heartbeatDropped(hb_key))
                    {
                        counter("dist.bytes_sent").add(17);
                        (void)sendFrameChaos(fd_, Msg::Heartbeat,
                                             "", hb_key);
                    }
                    continue;
                }
            }
            if (drained)
                break;
            if (fd_ < 0 || !conn_ok)
                continue; // keep draining so compute can finish
            try {
                BinaryWriter w;
                ident(w);
                w.put<uint64_t>(r.unit);
                w.put<uint64_t>(fnv1aUpdate(kFnv1aBasis,
                                            r.bytes.data(),
                                            r.bytes.size()));
                w.putString(r.bytes);
                const std::string payload = w.takeBuffer();
                const uint64_t result_key = mixSeeds(
                    mixSeeds(scope_key, kLaneResult), r.unit);
                // net.dup_result: deliver the same Result twice —
                // the coordinator must dedupe by unit index.
                const int copies =
                    duplicateResult(mixSeeds(result_key,
                                             generation_))
                        ? 2
                        : 1;
                bool acked = true;
                for (int c = 0; c < copies && acked; ++c) {
                    Frame reply;
                    acked = transact("result", Msg::Result, payload,
                                     reply,
                                     mixSeeds(result_key,
                                              static_cast<uint64_t>(
                                                  c))) &&
                        reply.type == Msg::Ack;
                }
                if (!acked) {
                    if (fd_ >= 0) {
                        closeFd();
                        lastWhy_ = "unexpected result reply";
                    }
                    conn_ok = false;
                    continue;
                }
                have.insert(r.unit);
                counter("dist.units_executed").add();
            } catch (...) {
                // Shutdown mid-batch: keep draining so the compute
                // thread can finish, then propagate.
                send_err = std::current_exception();
                conn_ok = false;
            }
        }
        compute.join();
        if (compute_err)
            std::rethrow_exception(compute_err);
        if (send_err)
            std::rethrow_exception(send_err);
        if (interrupted.load(std::memory_order_relaxed))
            throw RunInterrupted("worker interrupted mid-batch");
        return conn_ok && fd_ >= 0 ? Batch::Done : Batch::Lost;
    };

    enum class Step
    {
        Done,
        Lost,  // connection died; rejoin and rewind to ScopeEnter
        Abort, // coordinator declined; run the scope locally
    };

    // The assign loop. ScopeEnter doubles as the poll message: it is
    // idempotent on the coordinator, and — unlike a bare Poll — a
    // coordinator that has not reached this scope yet (a restarted
    // one replaying its journal, say) can park us with Wait until
    // its own pipeline arrives here, keeping a fleet whose members
    // drift a scope apart in lockstep instead of diverging.
    auto enter_phase = [&]() -> Step {
        for (;;) {
            BinaryWriter w;
            ident(w);
            w.put<uint64_t>(n);
            w.putString(scope);
            w.put<uint32_t>(static_cast<uint32_t>(
                ThreadPool::instance().numThreads()));
            Frame reply;
            if (!transact("enter", Msg::ScopeEnter, w.takeBuffer(),
                          reply, mixSeeds(scope_key, kLaneEnter)))
                return Step::Lost;
            if (reply.type == Msg::Assign) {
                BinaryReader in(reply.payload.data(),
                                reply.payload.size());
                const std::vector<uint64_t> units =
                    in.getVector<uint64_t>();
                if (!in.good()) {
                    closeFd();
                    lastWhy_ = "bad assign payload";
                    return Step::Lost;
                }
                if (run_batch(units) == Batch::Lost)
                    return Step::Lost;
            } else if (reply.type == Msg::Wait) {
                BinaryReader in(reply.payload.data(),
                                reply.payload.size());
                const auto ms = in.get<uint32_t>();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        std::min<uint32_t>(ms, 1000)));
            } else if (reply.type == Msg::ScopeDone) {
                return Step::Done;
            } else if (reply.type == Msg::Error) {
                BinaryReader in(reply.payload.data(),
                                reply.payload.size());
                warn("dist: coordinator declined scope '", scope,
                     "' (", in.getString(), "); running it locally");
                return Step::Abort;
            } else {
                closeFd();
                lastWhy_ = "unexpected reply";
                return Step::Lost;
            }
        }
    };

    // Fetch every unit a peer computed (or the journal already
    // held), in index order, so this process's in-memory state is
    // identical to the coordinator's.
    auto fetch_phase = [&]() -> Step {
        for (uint64_t i = 0; i < n; ++i) {
            if (have.count(i) != 0)
                continue;
            BinaryWriter w;
            ident(w);
            w.put<uint64_t>(i);
            Frame reply;
            if (!transact("fetch", Msg::Fetch, w.takeBuffer(), reply,
                          mixSeeds(mixSeeds(scope_key, kLaneFetch),
                                   i)))
                return Step::Lost;
            if (reply.type != Msg::Data) {
                warn("dist: unit ", i, " of scope '", scope,
                     "' not fetchable; recomputing scope locally");
                return Step::Abort;
            }
            BinaryReader in(reply.payload.data(),
                            reply.payload.size());
            const auto unit = in.get<uint64_t>();
            const auto sum = in.get<uint64_t>();
            const std::string bytes = in.getString();
            if (!in.good() || unit != i ||
                fnv1aUpdate(kFnv1aBasis, bytes.data(),
                            bytes.size()) != sum)
            {
                closeFd();
                warn("dist: unit ", i, " of scope '", scope,
                     "' fetched corrupt; recomputing scope locally");
                return Step::Abort;
            }
            BinaryReader payload(bytes.data(), bytes.size());
            if (!load_unit(static_cast<size_t>(i), payload)) {
                closeFd();
                warn("dist: unit ", i, " of scope '", scope,
                     "' failed to deserialize; recomputing scope "
                     "locally");
                return Step::Abort;
            }
            have.insert(i);
            counter("dist.units_fetched").add();
        }
        return Step::Done;
    };

    // Scope participation: any connection loss rejoins and rewinds
    // to ScopeEnter. Work already done survives in `have` (executed
    // and acked, or fetched and loaded), so a rewind never repeats
    // delivered units, and re-delivery of undelivered ones is
    // idempotent on the coordinator.
    for (;;) {
        if (fd_ < 0 &&
            !rejoin(lastWhy_.empty() ? "reconnect at scope entry"
                                     : lastWhy_.c_str()))
            return false;
        Step st = enter_phase();
        if (st == Step::Done)
            st = fetch_phase();
        if (st == Step::Lost)
            continue;
        if (st == Step::Abort)
            return false;
        break;
    }

    // Leave the scope, shipping a cumulative registry snapshot for
    // the coordinator's /stats.json aggregation.
    obs::StatSnapshot snap;
    snap.capture(obs::StatRegistry::instance());
    BinaryWriter sw;
    snap.serialize(sw);
    BinaryWriter w;
    ident(w);
    w.putString(sw.takeBuffer());
    Frame reply;
    if (!transact("leave", Msg::ScopeLeave, w.takeBuffer(), reply,
                  mixSeeds(scope_key, kLaneLeave)))
        return true; // slots are all filled; loss only affects stats
    return true;
}

} // namespace dist
} // namespace psca
