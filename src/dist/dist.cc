/**
 * @file
 * Fleet wiring: parses PSCA_DIST_* once, owns the Coordinator/Worker
 * singleton for this process, and implements the Journal distribution
 * hook that routes Distributed checkpoint scopes to it. See dist.hh
 * for the model and DESIGN.md §13 for the protocol.
 */

#include "dist/dist.hh"

#include <atomic>
#include <memory>
#include <mutex>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "dist/coordinator.hh"
#include "dist/worker.hh"
#include "obs/snapshot.hh"

namespace psca {
namespace dist {

namespace {

std::mutex g_mu;
std::atomic<bool> g_inScope{false};
bool g_inited = false;
Role g_role = Role::Off;
std::unique_ptr<Coordinator> g_coordinator;
std::unique_ptr<Worker> g_worker;

void
augmentLiveSnapshot(obs::StatSnapshot &snap)
{
    // No lock: the augmenter is only installed after g_coordinator is
    // constructed and cleared before it is destroyed.
    if (g_coordinator)
        g_coordinator->augmentSnapshot(snap);
}

/**
 * The Journal distribution hook. Fires only for the process-wide
 * journal — standalone Journal objects built by tests (or future
 * tools) keep their plain local execution semantics.
 */
bool
distScope(Journal &journal, const std::string &scope,
          uint64_t config_h, size_t n,
          const std::vector<size_t> &pending,
          const std::function<bool(size_t, BinaryReader &)> &load_unit,
          const std::function<void(size_t)> &exec_unit,
          const std::function<void(size_t, BinaryWriter &)> &save_unit)
{
    if (&journal != &Journal::instance())
        return false;
    // Reentrancy guard: a Distributed scope reached while another
    // scope is already on the wire must run locally. This happens
    // when a worker's unit body itself contains a Distributed scope
    // (a crossval fold fitting its forest, whose per-tree fits are
    // checkpointed) — the coordinator's top-level pipeline never
    // reaches that inner scope, so asking the fleet for it would
    // wait forever, and the worker's socket is mid request-reply for
    // the outer scope. With >= 2 threads the same inner scope is
    // already suppressed by the inParallelTask() check upstream;
    // this guard closes the single-thread (inline parallelFor) path.
    if (g_inScope.exchange(true, std::memory_order_acquire))
        return false;
    struct ScopeReset
    {
        ~ScopeReset() { g_inScope.store(false, std::memory_order_release); }
    } reset;
    if (g_role == Role::Coordinator && g_coordinator &&
        g_coordinator->listening())
    {
        return g_coordinator->runScope(journal, scope, config_h, n,
                                       pending, load_unit, save_unit);
    }
    // usable(), not connected(): a worker whose socket is currently
    // down but whose rejoin budget is not exhausted reconnects at
    // scope entry instead of silently running every later scope
    // locally.
    if (g_role == Role::Worker && g_worker && g_worker->usable())
        return g_worker->runScope(scope, config_h, n, load_unit,
                                  exec_unit, save_unit);
    return false;
}

} // namespace

Role
role()
{
    const std::string s = env::enumOr(
        "PSCA_DIST_ROLE", {"off", "coordinator", "worker"}, "off");
    if (s == "coordinator")
        return Role::Coordinator;
    if (s == "worker")
        return Role::Worker;
    return Role::Off;
}

bool
active()
{
    std::lock_guard<std::mutex> lock(g_mu);
    return (g_coordinator && g_coordinator->listening()) ||
           (g_worker && g_worker->connected());
}

void
maybeInitFromEnv()
{
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_inited)
        return;
    const Role r = role();
    if (r == Role::Off)
        return;
    g_inited = true;
    g_role = r;

    const std::string addr_spec =
        env::stringOr("PSCA_DIST_ADDR", "auto");
    const std::string addr_file =
        env::stringOr("PSCA_CACHE_DIR", "psca_cache") +
        std::string("/dist_addr");
    const double connect_s =
        env::doubleOr("PSCA_DIST_CONNECT_S", 60.0, 0.1, 86400.0);

    if (r == Role::Coordinator) {
        const int workers = static_cast<int>(
            env::intOr("PSCA_DIST_WORKERS", 1, 1, 1024));
        const double hb_s =
            env::doubleOr("PSCA_DIST_TIMEOUT_S", 30.0, 0.1, 86400.0);
        g_coordinator = std::make_unique<Coordinator>(
            addr_spec, addr_file, workers, connect_s, hb_s);
        if (!g_coordinator->listening()) {
            g_coordinator.reset();
            return;
        }
        obs::setLiveSnapshotAugmenter(&augmentLiveSnapshot);
    } else {
        const double io_s = env::doubleOr("PSCA_DIST_IO_TIMEOUT_S",
                                          600.0, 1.0, 86400.0);
        const auto heartbeat_ms = static_cast<uint32_t>(
            env::intOr("PSCA_DIST_HEARTBEAT_MS", 500, 10, 60000));
        const int retries = static_cast<int>(
            env::intOr("PSCA_DIST_RETRIES", 3, 0, 1000));
        g_worker = std::make_unique<Worker>(addr_spec, addr_file,
                                            connect_s, io_s,
                                            heartbeat_ms, retries);
        if (!g_worker->connected()) {
            g_worker.reset();
            return;
        }
    }
    setDistScopeHook(&distScope);
}

void
shutdown()
{
    std::lock_guard<std::mutex> lock(g_mu);
    setDistScopeHook(nullptr);
    obs::setLiveSnapshotAugmenter(nullptr);
    if (g_coordinator) {
        g_coordinator->shutdown();
        g_coordinator.reset();
    }
    if (g_worker) {
        g_worker->shutdown();
        g_worker.reset();
    }
    g_inited = false;
    g_role = Role::Off;
}

std::string
coordinatorAddress()
{
    std::lock_guard<std::mutex> lock(g_mu);
    return g_coordinator ? g_coordinator->address() : std::string();
}

} // namespace dist
} // namespace psca
