/**
 * @file
 * Fleet worker: connects to the coordinator, and for each
 * Distributed checkpoint scope executes the batches it is assigned
 * (the unchanged task bodies, with their original indices and
 * therefore unchanged taskSeed substreams), streams each result back
 * as soon as it completes, then fetches every unit a peer computed
 * so the worker leaves the scope with the same in-memory state as
 * every other process in the fleet.
 *
 * Liveness: while a batch computes on the thread pool, the worker's
 * protocol thread sends one-way Heartbeat frames, so a coordinator
 * never mistakes a long unit for a dead worker. If the coordinator
 * goes away (or replies Error), the worker degrades to computing the
 * scope locally — distribution is an accelerator, not a correctness
 * dependency.
 */

#ifndef PSCA_DIST_WORKER_HH
#define PSCA_DIST_WORKER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "dist/protocol.hh"

namespace psca {

class BinaryReader;
class BinaryWriter;
class Journal;

namespace dist {

class Worker
{
  public:
    /**
     * Resolve the coordinator address (@p addr_spec, or "auto" to
     * poll @p addr_file) and connect with bounded deterministic
     * backoff; then Hello/Welcome. connected() is false when the
     * budget ran out — the campaign then runs locally.
     */
    Worker(const std::string &addr_spec, const std::string &addr_file,
           double connect_timeout_s, double io_timeout_s);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    bool connected() const { return fd_ >= 0; }
    uint32_t id() const { return id_; }

    /**
     * Participate in one Distributed scope (the Journal hook body).
     * True when every slot 0..n-1 was filled (executed or fetched);
     * false to degrade to the local execution path.
     */
    bool runScope(
        const std::string &scope, uint64_t config_h, size_t n,
        const std::function<bool(size_t, BinaryReader &)> &load_unit,
        const std::function<void(size_t)> &exec_unit,
        const std::function<void(size_t, BinaryWriter &)> &save_unit);

    /** Send Bye and close. */
    void shutdown();

  private:
    /** One request-reply exchange; false closes the connection. */
    bool transact(const char *what, Msg type,
                  const std::string &payload, Frame &out);
    void disconnect(const char *why);

    int fd_ = -1;
    uint32_t id_ = 0;
    double ioTimeoutS_ = 600.0;
};

} // namespace dist
} // namespace psca

#endif // PSCA_DIST_WORKER_HH
