/**
 * @file
 * Fleet worker: connects to the coordinator, and for each
 * Distributed checkpoint scope executes the batches it is assigned
 * (the unchanged task bodies, with their original indices and
 * therefore unchanged taskSeed substreams), streams each result back
 * as soon as it completes, then fetches every unit a peer computed
 * so the worker leaves the scope with the same in-memory state as
 * every other process in the fleet.
 *
 * Liveness: while a batch computes on the thread pool, the worker's
 * protocol thread sends one-way Heartbeat frames (every
 * PSCA_DIST_HEARTBEAT_MS), so a coordinator never mistakes a long
 * unit for a dead worker.
 *
 * Failure semantics (DESIGN.md §13): on any socket error — including
 * a coordinator crash — the worker does not give up; it reconnects
 * with the deterministic journal backoff, re-Hellos carrying its
 * previous id, and rewinds to ScopeEnter, which is idempotent on the
 * coordinator and catches the worker up through the served-scope
 * history. Only after PSCA_DIST_RETRIES consecutive failed rejoin
 * attempts (or an orderly coordinator Shutdown) does the worker
 * degrade to computing scopes locally — distribution is an
 * accelerator, not a correctness dependency. The handshake itself is
 * never fault-injected; the net.* chaos sites (dist/netfault.hh)
 * target the steady-state wire, so a seeded chaos schedule can kill
 * deliveries but never the recovery from them.
 */

#ifndef PSCA_DIST_WORKER_HH
#define PSCA_DIST_WORKER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "dist/protocol.hh"

namespace psca {

class BinaryReader;
class BinaryWriter;
class Journal;

namespace dist {

class Worker
{
  public:
    /**
     * Resolve the coordinator address (@p addr_spec, or "auto" to
     * poll @p addr_file) and connect with bounded deterministic
     * backoff; then Hello/Welcome. connected() is false when the
     * budget ran out — the campaign then runs locally.
     */
    Worker(const std::string &addr_spec, const std::string &addr_file,
           double connect_timeout_s, double io_timeout_s,
           uint32_t heartbeat_ms, int max_rejoins);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    bool connected() const { return fd_ >= 0; }

    /**
     * False once the worker has permanently degraded to local
     * execution (rejoin budget exhausted or coordinator Shutdown).
     * While true, runScope() may reconnect even if the socket is
     * currently down.
     */
    bool usable() const { return !permanentlyLocal_ && !sawShutdown_; }

    uint32_t id() const { return id_; }

    /**
     * Participate in one Distributed scope (the Journal hook body).
     * True when every slot 0..n-1 was filled (executed or fetched);
     * false to degrade to the local execution path.
     */
    bool runScope(
        const std::string &scope, uint64_t config_h, size_t n,
        const std::function<bool(size_t, BinaryReader &)> &load_unit,
        const std::function<void(size_t)> &exec_unit,
        const std::function<void(size_t, BinaryWriter &)> &save_unit);

    /** Send Bye and close. */
    void shutdown();

  private:
    /** Connect + Hello/Welcome within @p budget_s. */
    bool connectAndHello(double budget_s);

    /**
     * Reconnect after a lost connection: up to maxRejoins_ attempts
     * with deterministic backoff, counting dist.rejoins on success.
     * On exhaustion (or after an orderly coordinator Shutdown) the
     * worker flips to permanent local execution, counting
     * dist.local_fallbacks.
     */
    bool rejoin(const char *why);

    /** One request-reply exchange; false closes the connection. */
    bool transact(const char *what, Msg type,
                  const std::string &payload, Frame &out,
                  uint64_t fault_key);

    /** Peek for a queued Shutdown frame after a failed send. */
    void drainShutdown();
    void closeFd();

    std::string addrSpec_;
    std::string addrFile_;
    double connectTimeoutS_ = 60.0;
    double ioTimeoutS_ = 600.0;
    uint32_t heartbeatMs_ = 500;
    int maxRejoins_ = 3;

    int fd_ = -1;
    uint32_t id_ = 0;
    /** Successful connects; mixed into every wire fault key. */
    uint64_t generation_ = 0;
    uint64_t heartbeatSeq_ = 0;
    bool sawShutdown_ = false;
    bool permanentlyLocal_ = false;
    std::string lastWhy_;
};

} // namespace dist
} // namespace psca

#endif // PSCA_DIST_WORKER_HH
