/**
 * @file
 * Fleet coordinator: owns the listen socket, tracks worker
 * connections, and serves each Distributed checkpoint scope — unit
 * assignment, result collection (journaled through
 * Journal::commitUnitPayload so worker death is recovered by
 * reassigning anything not yet journaled), checkpoint fetches for
 * workers that need peers' results, and the scope-leave barrier that
 * guarantees no whole-scope artifact is published while a worker is
 * still fetching.
 *
 * Single-threaded: the coordinator only serves sockets while it is
 * inside a Distributed scope (its own pipeline thread runs the serve
 * loop). Between scopes, worker frames queue in kernel socket
 * buffers; connection attempts sit in the listen backlog. The
 * request-reply protocol (dist/protocol.hh) keeps at most one frame
 * in flight per worker per direction, so the poll loop never has to
 * interleave partial frames.
 */

#ifndef PSCA_DIST_COORDINATOR_HH
#define PSCA_DIST_COORDINATOR_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/snapshot.hh"

namespace psca {

class BinaryReader;
class BinaryWriter;
class Journal;

namespace dist {

class Coordinator
{
  public:
    /**
     * Bind and listen. @p addr_spec is "host:port" or "auto"
     * (ephemeral 127.0.0.1 port published to @p addr_file).
     * listening() is false when the bind failed — the campaign then
     * simply runs locally.
     */
    Coordinator(const std::string &addr_spec,
                const std::string &addr_file, int expected_workers,
                double connect_timeout_s, double heartbeat_timeout_s);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    bool listening() const { return listenFd_ >= 0; }

    /** Resolved "host:port" actually bound. */
    const std::string &address() const { return address_; }

    /**
     * Serve one Distributed scope (the Journal hook body). Returns
     * true when every pending unit was received, journaled, and
     * loaded into its slot; false to make the caller fall back to
     * the local execution path (no workers, or all of them died).
     */
    bool runScope(
        Journal &journal, const std::string &scope, uint64_t config_h,
        size_t n, const std::vector<size_t> &pending,
        const std::function<bool(size_t, BinaryReader &)> &load_unit,
        const std::function<void(size_t, BinaryWriter &)> &save_unit);

    /** Broadcast Shutdown, close every socket, remove the addr file. */
    void shutdown();

    /**
     * Merge the latest snapshot shipped by every worker (ScopeLeave
     * carries a cumulative registry snapshot) into @p snap — the
     * /stats.json aggregation path. Thread-safe against the serve
     * loop.
     */
    void augmentSnapshot(obs::StatSnapshot &snap);

  private:
    struct Conn
    {
        int fd = -1;
        uint32_t id = 0;
        uint32_t threads = 1;
        bool helloed = false;
        bool inScope = false; //!< entered the scope being served
        bool left = false;    //!< sent ScopeLeave for it
        std::vector<uint64_t> assigned;
        std::chrono::steady_clock::time_point lastSeen;
        uint64_t rxSeq = 0; //!< frames received (chaos substream)
        uint64_t txSeq = 0; //!< frames sent (chaos substream)
    };

    /** Transient state of the scope currently being served. */
    struct Scope
    {
        Journal *journal = nullptr;
        std::string name;
        uint64_t scopeHash = 0;
        uint64_t configHash = 0;
        size_t n = 0;
        size_t doneCount = 0; //!< journaled (pre-loaded + received)
        std::deque<uint64_t> queue;
        std::set<uint64_t> doneSet;
        const std::function<bool(size_t, BinaryReader &)> *loadUnit =
            nullptr;
    };

    void acceptNew();
    /** Handle one frame from conns_[idx]; false drops the worker. */
    bool handleFrame(size_t idx, Scope &ss);
    void dropWorker(size_t idx, const char *why, Scope *ss);
    void checkLiveness(Scope &ss);
    size_t liveWorkers() const;
    bool assignmentGateOpen();

    std::string address_;
    std::string addrFile_;
    int listenFd_ = -1;
    int expectedWorkers_ = 1;
    double connectTimeoutS_ = 60.0;
    double heartbeatTimeoutS_ = 30.0;
    bool joinWaited_ = false;
    std::chrono::steady_clock::time_point joinDeadline_;
    /**
     * Last instant at least one live worker was connected — the
     * local-fallback check requires continuous worker absence longer
     * than the rejoin grace once any worker has ever joined, so a
     * fleet whose members are all mid-rejoin (after a chaos burst or
     * a coordinator restart) is not prematurely abandoned.
     */
    std::chrono::steady_clock::time_point lastLive_;
    uint32_t nextWorkerId_ = 1;
    uint32_t joined_ = 0;
    std::vector<Conn> conns_;
    /**
     * (scope, config, n) keys of every scope already served (or
     * locally computed after fallback). A ScopeEnter for one of
     * these is a LAGGING worker — it is told to run the scope
     * locally and catch up. A ScopeEnter for an unknown scope is a
     * worker AHEAD of the coordinator — it is told to wait and
     * retry, because the lockstep pipeline guarantees the
     * coordinator will reach that scope.
     */
    std::set<uint64_t> served_;

    std::mutex snapMu_; //!< guards workerSnapshots_
    std::map<uint32_t, obs::StatSnapshot> workerSnapshots_;
};

} // namespace dist
} // namespace psca

#endif // PSCA_DIST_COORDINATOR_HH
