/**
 * @file
 * Entry points for the coordinator/worker experiment fleet
 * (DESIGN.md §13, OPERATIONS.md). The distribution model is
 * lockstep-redundant: every process — coordinator and workers —
 * runs the identical deterministic campaign pipeline, and only the
 * four Distributed checkpoint scopes (corpus recording, PF screen-1,
 * crossval folds, forest fits) split their units across the fleet,
 * exchanging results so every process leaves each scope with
 * identical in-memory state. Merges happen in original index order
 * with unchanged taskSeed substreams, so an N-worker campaign
 * produces byte-identical artifacts to the 1-process run at any
 * PSCA_THREADS.
 *
 * Environment (all parsed through common/env.hh):
 *  - PSCA_DIST_ROLE        off | coordinator | worker (default off)
 *  - PSCA_DIST_ADDR        host:port, or "auto" (default): the
 *                          coordinator binds an ephemeral 127.0.0.1
 *                          port and publishes it atomically to
 *                          <PSCA_CACHE_DIR>/dist_addr; workers poll
 *                          that file
 *  - PSCA_DIST_WORKERS     workers the coordinator waits for before
 *                          assigning the first scope (default 1)
 *  - PSCA_DIST_CONNECT_S   join window / worker connect budget,
 *                          seconds (default 60)
 *  - PSCA_DIST_TIMEOUT_S   heartbeat silence after which the
 *                          coordinator declares an in-scope worker
 *                          dead and reassigns its units (default 30)
 *  - PSCA_DIST_IO_TIMEOUT_S  worker-side cap on waiting for one
 *                          coordinator reply (default 600)
 *
 * Failure policy: distribution is an accelerator, never a
 * correctness dependency. A worker that loses its coordinator
 * degrades to computing scopes locally; a coordinator whose workers
 * all die (or never join) falls back to the local parallelFor path.
 * Either way the campaign completes with the same bytes.
 */

#ifndef PSCA_DIST_DIST_HH
#define PSCA_DIST_DIST_HH

#include <string>

namespace psca {
namespace dist {

enum class Role
{
    Off,
    Coordinator,
    Worker,
};

/** This process's fleet role (parsed once from PSCA_DIST_ROLE). */
Role role();

/** True once init succeeded and the distribution hook is armed. */
bool active();

/**
 * Read PSCA_DIST_* and arm the distribution layer: bind/connect the
 * socket, install the Journal distribution hook and the live-stats
 * snapshot augmenter. Idempotent; a no-op when PSCA_DIST_ROLE is
 * off/unset. Called from runner::guardedMain() before the campaign
 * body (and again by `psca fleet` after it sets the role env vars).
 */
void maybeInitFromEnv();

/**
 * Tear the fleet connection down: the coordinator broadcasts
 * Shutdown and closes (removing its dist_addr file); a worker sends
 * Bye. Safe to call without init, and more than once.
 */
void shutdown();

/** The coordinator's resolved listen address ("" unless serving). */
std::string coordinatorAddress();

} // namespace dist
} // namespace psca

#endif // PSCA_DIST_DIST_HH
