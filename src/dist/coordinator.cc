#include "dist/coordinator.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "dist/netfault.hh"
#include "dist/protocol.hh"
#include "obs/stats.hh"

namespace psca {
namespace dist {

namespace {

obs::Counter &
counter(const char *name)
{
    return obs::StatRegistry::instance().counter(name);
}

/** Parse "host:port"; false on malformed input. */
bool
parseHostPort(const std::string &spec, std::string &host, int &port)
{
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size())
        return false;
    host = spec.substr(0, colon);
    long long p = 0;
    if (!env::tryParseLong(spec.c_str() + colon + 1, p) || p < 0 ||
        p > 65535)
        return false;
    port = static_cast<int>(p);
    return true;
}

void
setSockTimeouts(int fd, double seconds)
{
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Chaos-substream lanes for coordinator-side wire faults, keyed per
// connection by (lane, worker id, frame sequence). Worker ids are
// monotonically fresh across rejoins, so a retried handshake or
// delivery always draws a new substream and cannot livelock.
constexpr uint64_t kCoordRxLane = 0xc0de0001u;
constexpr uint64_t kCoordTxLane = 0xc0de0002u;

} // namespace

Coordinator::Coordinator(const std::string &addr_spec,
                         const std::string &addr_file,
                         int expected_workers,
                         double connect_timeout_s,
                         double heartbeat_timeout_s)
    : addrFile_(addr_file), expectedWorkers_(expected_workers),
      connectTimeoutS_(connect_timeout_s),
      heartbeatTimeoutS_(heartbeat_timeout_s)
{
    std::string host = "127.0.0.1";
    int port = 0;
    if (addr_spec != "auto" &&
        !parseHostPort(addr_spec, host, port))
    {
        warn("dist: bad PSCA_DIST_ADDR '", addr_spec,
             "' (expected host:port or auto); fleet disabled");
        return;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("dist: socket() failed (", std::strerror(errno), ")");
        return;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        warn("dist: bad bind address '", host,
             "' (expected IPv4 dotted quad)");
        ::close(fd);
        return;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0)
    {
        warn("dist: cannot listen on ", host, ":", port, " (",
             std::strerror(errno), ")");
        ::close(fd);
        return;
    }
    sockaddr_in bound = {};
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0)
        port = static_cast<int>(ntohs(bound.sin_port));
    listenFd_ = fd;
    address_ = host + ":" + std::to_string(port);

    if (!addrFile_.empty()) {
        // Publish atomically so a polling worker never reads a torn
        // address.
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(addrFile_).parent_path(), ec);
        const std::string tmp = addrFile_ + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            out << address_ << "\n";
        }
        std::filesystem::rename(tmp, addrFile_, ec);
        if (ec)
            warn("dist: cannot publish address file '", addrFile_,
                 "'");
    }

    // Registered only when a fleet is actually serving, so fleetless
    // runs keep their reports byte-identical.
    obs::StatRegistry::instance().gauge("dist.workers_connected");
    inform("dist: coordinator listening on ", address_,
           " (expecting ", expectedWorkers_, " workers)");
    emitEvent("dist", LogLevel::Info,
              "coordinator listening on " + address_);
}

Coordinator::~Coordinator()
{
    shutdown();
}

void
Coordinator::shutdown()
{
    for (Conn &c : conns_) {
        if (c.fd < 0)
            continue;
        (void)sendFrame(c.fd, Msg::Shutdown, "");
        ::close(c.fd);
        c.fd = -1;
    }
    conns_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!addrFile_.empty()) {
        std::error_code ec;
        std::filesystem::remove(addrFile_, ec);
        addrFile_.clear();
    }
}

size_t
Coordinator::liveWorkers() const
{
    size_t live = 0;
    for (const Conn &c : conns_)
        if (c.fd >= 0 && c.helloed)
            ++live;
    return live;
}

bool
Coordinator::assignmentGateOpen()
{
    return joined_ >= static_cast<uint32_t>(expectedWorkers_) ||
        std::chrono::steady_clock::now() >= joinDeadline_;
}

void
Coordinator::acceptNew()
{
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0)
        return;
    // The serve loop is single-threaded: one connection mid-frame
    // (or one peer not draining its socket) must never hold every
    // other worker's fetches hostage for the full heartbeat window.
    // poll() gates readiness, so a short per-call bound only bites
    // on genuinely wedged wire traffic — which dropWorker() then
    // converts into a reassignment the fleet absorbs.
    setSockTimeouts(fd, std::min(heartbeatTimeoutS_, 5.0));
    Conn c;
    c.fd = fd;
    c.lastSeen = std::chrono::steady_clock::now();
    conns_.push_back(std::move(c));
}

void
Coordinator::dropWorker(size_t idx, const char *why, Scope *ss)
{
    Conn &c = conns_[idx];
    if (c.fd < 0)
        return;
    ::close(c.fd);
    c.fd = -1;
    size_t reassigned = 0;
    if (ss != nullptr && !c.assigned.empty()) {
        // Units the worker held but never journaled go back to the
        // head of the queue: the journal IS the completion record,
        // so nothing a dead worker did half-way can be lost or
        // double-counted.
        for (auto it = c.assigned.rbegin(); it != c.assigned.rend();
             ++it)
            ss->queue.push_front(*it);
        reassigned = c.assigned.size();
        c.assigned.clear();
        counter("dist.units_reassigned").add(reassigned);
    }
    const bool clean = std::strcmp(why, "bye") == 0;
    if (c.helloed) {
        // Re-anchor the rejoin grace at the moment of *observed*
        // loss. lastLive_ otherwise only advances while the serve
        // loop spins; if the loop was wedged in one blocking socket
        // call, the stale timestamp would make the fleet look long
        // dead the instant it recovers and trigger local fallback
        // just as the dropped workers are reconnecting.
        lastLive_ = std::chrono::steady_clock::now();
    }
    if (c.helloed && !clean)
        counter("dist.workers_lost").add();
    obs::StatRegistry::instance()
        .gauge("dist.workers_connected")
        .set(static_cast<double>(liveWorkers()));
    if (!clean) {
        warn("dist: worker ", c.id, " lost (", why, "); ",
             reassigned, " units reassigned");
        emitEvent("dist", LogLevel::Warn,
                  "worker " + std::to_string(c.id) + " lost (" + why +
                      "); " + std::to_string(reassigned) +
                      " units reassigned");
    }
}

bool
Coordinator::handleFrame(size_t idx, Scope &ss)
{
    Conn &c = conns_[idx];
    Frame f;
    const RecvStatus st = recvFrameChaos(
        c.fd, f,
        mixSeeds(mixSeeds(kCoordRxLane, c.id), c.rxSeq++),
        maxFramePayloadCap());
    if (st != RecvStatus::Ok) {
        if (st == RecvStatus::Oversized)
            counter("dist.oversized_frames").add();
        dropWorker(idx,
                   st == RecvStatus::Closed ? "disconnected"
                                            : recvStatusName(st),
                   &ss);
        return false;
    }
    c.lastSeen = std::chrono::steady_clock::now();
    counter("dist.bytes_received").add(f.payload.size() + 17);

    auto reply = [&](Msg type, const std::string &payload) {
        counter("dist.bytes_sent").add(payload.size() + 17);
        if (!sendFrameChaos(c.fd, type, payload,
                            mixSeeds(mixSeeds(kCoordTxLane, c.id),
                                     c.txSeq++)))
        {
            dropWorker(idx, "send failed", &ss);
            return false;
        }
        return true;
    };
    auto replyError = [&](const std::string &msg) {
        BinaryWriter w;
        w.putString(msg);
        return reply(Msg::Error, w.takeBuffer());
    };
    /** Assign up to the worker's capacity, or report scope status. */
    auto assignOrWait = [&]() {
        if (!assignmentGateOpen()) {
            BinaryWriter w;
            w.put<uint32_t>(100);
            return reply(Msg::Wait, w.takeBuffer());
        }
        if (!ss.queue.empty()) {
            const size_t k =
                std::min<size_t>(ss.queue.size(),
                                 std::max<uint32_t>(1, c.threads));
            std::vector<uint64_t> units(ss.queue.begin(),
                                        ss.queue.begin() +
                                            static_cast<long>(k));
            ss.queue.erase(ss.queue.begin(),
                           ss.queue.begin() + static_cast<long>(k));
            c.assigned.insert(c.assigned.end(), units.begin(),
                              units.end());
            counter("dist.units_assigned").add(k);
            BinaryWriter w;
            w.putVector(units);
            return reply(Msg::Assign, w.takeBuffer());
        }
        if (ss.doneCount == ss.n)
            return reply(Msg::ScopeDone, "");
        BinaryWriter w;
        w.put<uint32_t>(200);
        return reply(Msg::Wait, w.takeBuffer());
    };

    BinaryReader in(f.payload.data(), f.payload.size());
    switch (f.type) {
      case Msg::Hello: {
        const auto version = in.get<uint32_t>();
        const auto threads = in.get<uint32_t>();
        const auto prev_id = in.get<uint32_t>();
        if (!in.good() || version != kProtocolVersion) {
            replyError("protocol version mismatch");
            dropWorker(idx, "bad hello", &ss);
            return false;
        }
        c.helloed = true;
        c.id = nextWorkerId_++;
        c.threads = std::max<uint32_t>(1, threads);
        ++joined_;
        counter("dist.workers_joined").add();
        if (prev_id != 0) {
            // A rejoining worker: it gets a fresh id, so retire the
            // snapshot its previous incarnation shipped — the next
            // ScopeLeave carries a cumulative superset and must not
            // be double-merged into /stats.json.
            counter("dist.rejoins").add();
            {
                std::lock_guard<std::mutex> lock(snapMu_);
                workerSnapshots_.erase(prev_id);
            }
            inform("dist: worker ", c.id, " rejoined (was ",
                   prev_id, ", ", c.threads, " threads)");
            emitEvent("dist", LogLevel::Info,
                      "worker " + std::to_string(c.id) +
                          " rejoined (was " +
                          std::to_string(prev_id) + ")");
        } else {
            inform("dist: worker ", c.id, " joined (", c.threads,
                   " threads)");
            emitEvent("dist", LogLevel::Info,
                      "worker " + std::to_string(c.id) + " joined");
        }
        obs::StatRegistry::instance()
            .gauge("dist.workers_connected")
            .set(static_cast<double>(liveWorkers()));
        BinaryWriter w;
        w.put<uint32_t>(c.id);
        return reply(Msg::Welcome, w.takeBuffer());
      }
      case Msg::ScopeEnter: {
        const auto scope_h = in.get<uint64_t>();
        const auto config_h = in.get<uint64_t>();
        const auto n = in.get<uint64_t>();
        const std::string name = in.getString();
        const auto cap = in.get<uint32_t>();
        if (!in.good())
            return replyError("bad ScopeEnter"), false;
        if (scope_h != ss.scopeHash || config_h != ss.configHash ||
            n != ss.n)
        {
            const uint64_t key =
                mixSeeds(mixSeeds(scope_h, config_h), n);
            if (served_.count(key) != 0) {
                // A lagging worker asking for a scope already
                // retired: it must compute that scope locally and
                // catch up (identical bytes either way).
                return replyError(
                    "scope '" + name +
                    "' already served; coordinator now serves '" +
                    ss.name + "'");
            }
            // A worker AHEAD of the coordinator (it finished this
            // scope early and moved on): hold it until the
            // coordinator's own pipeline reaches that scope.
            BinaryWriter w;
            w.put<uint32_t>(200);
            return reply(Msg::Wait, w.takeBuffer());
        }
        c.inScope = true;
        c.left = false;
        c.threads = std::max<uint32_t>(1, cap);
        return assignOrWait();
      }
      case Msg::Poll: {
        const auto scope_h = in.get<uint64_t>();
        const auto config_h = in.get<uint64_t>();
        if (!in.good() || scope_h != ss.scopeHash ||
            config_h != ss.configHash || !c.inScope)
            return replyError("poll outside the served scope");
        return assignOrWait();
      }
      case Msg::Heartbeat:
        return true; // one-way; lastSeen already refreshed
      case Msg::Result: {
        const auto scope_h = in.get<uint64_t>();
        const auto config_h = in.get<uint64_t>();
        const auto unit = in.get<uint64_t>();
        const auto payload_sum = in.get<uint64_t>();
        const std::string bytes = in.getString();
        if (!in.good() || scope_h != ss.scopeHash ||
            config_h != ss.configHash || unit >= ss.n ||
            fnv1aUpdate(kFnv1aBasis, bytes.data(), bytes.size()) !=
                payload_sum)
        {
            dropWorker(idx, "corrupt result", &ss);
            return false;
        }
        auto assigned_it =
            std::find(c.assigned.begin(), c.assigned.end(), unit);
        if (assigned_it != c.assigned.end())
            c.assigned.erase(assigned_it);
        if (ss.doneSet.count(unit) != 0) {
            // A unit reassigned after a heartbeat timeout — or
            // deliberately duplicated by the net.dup_result chaos
            // site — can land twice; both copies are byte-identical
            // (first write wins), so the second is simply
            // acknowledged and ignored.
            counter("dist.duplicate_results").add();
            return reply(Msg::Ack, "");
        }
        BinaryReader payload(bytes.data(), bytes.size());
        if (!(*ss.loadUnit)(static_cast<size_t>(unit), payload)) {
            dropWorker(idx, "result failed to deserialize", &ss);
            return false;
        }
        if (!ss.journal->commitUnitPayload(ss.name, ss.configHash,
                                           unit, bytes.data(),
                                           bytes.size()))
        {
            // Mirrors the local best-effort checkpoint semantics:
            // the in-memory slot is filled and the campaign
            // continues; only resumability (and fetchability) of
            // this unit is lost.
            warn("dist: unit ", unit, " of scope '", ss.name,
                 "' received but not journaled");
        }
        const auto queued = std::find(ss.queue.begin(),
                                      ss.queue.end(), unit);
        if (queued != ss.queue.end())
            ss.queue.erase(queued);
        ss.doneSet.insert(unit);
        ++ss.doneCount;
        counter("dist.units_completed").add();
        return reply(Msg::Ack, "");
      }
      case Msg::Fetch: {
        const auto scope_h = in.get<uint64_t>();
        const auto config_h = in.get<uint64_t>();
        const auto unit = in.get<uint64_t>();
        std::string bytes;
        if (!in.good() || scope_h != ss.scopeHash ||
            config_h != ss.configHash ||
            !ss.journal->readUnitPayload(ss.name, ss.configHash,
                                         unit, bytes))
            return replyError("unit " + std::to_string(unit) +
                              " not fetchable");
        counter("dist.fetches_served").add();
        BinaryWriter w;
        w.put<uint64_t>(unit);
        w.put<uint64_t>(fnv1aUpdate(kFnv1aBasis, bytes.data(),
                                    bytes.size()));
        w.putString(bytes);
        return reply(Msg::Data, w.takeBuffer());
      }
      case Msg::ScopeLeave: {
        const auto scope_h = in.get<uint64_t>();
        const auto config_h = in.get<uint64_t>();
        const std::string snap_bytes = in.getString();
        if (!in.good() || scope_h != ss.scopeHash ||
            config_h != ss.configHash)
            return replyError("leave outside the served scope");
        obs::StatSnapshot snap;
        BinaryReader sr(snap_bytes.data(), snap_bytes.size());
        if (snap.deserialize(sr)) {
            std::lock_guard<std::mutex> lock(snapMu_);
            workerSnapshots_[c.id] = std::move(snap);
        }
        c.left = true;
        return reply(Msg::Ack, "");
      }
      case Msg::Bye:
        dropWorker(idx, "bye", &ss);
        return false;
      default:
        dropWorker(idx, "unexpected frame", &ss);
        return false;
    }
}

void
Coordinator::checkLiveness(Scope &ss)
{
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < conns_.size(); ++i) {
        Conn &c = conns_[i];
        if (c.fd < 0 || !c.inScope || c.left)
            continue;
        const double silent =
            std::chrono::duration<double>(now - c.lastSeen).count();
        if (silent > heartbeatTimeoutS_)
            dropWorker(i, "heartbeat timeout", &ss);
    }
}

bool
Coordinator::runScope(
    Journal &journal, const std::string &scope, uint64_t config_h,
    size_t n, const std::vector<size_t> &pending,
    const std::function<bool(size_t, BinaryReader &)> &load_unit,
    const std::function<void(size_t, BinaryWriter &)> &save_unit)
{
    (void)save_unit;
    if (!listening())
        return false;
    if (!joinWaited_) {
        joinWaited_ = true;
        joinDeadline_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(connectTimeoutS_));
    }

    Scope ss;
    ss.journal = &journal;
    ss.name = scope;
    ss.scopeHash = Journal::scopeHash(scope);
    ss.configHash = config_h;
    ss.n = n;
    ss.loadUnit = &load_unit;
    // Whether this serve succeeds or falls back to local execution,
    // the scope is history afterwards: a worker asking for it later
    // is lagging and must compute it locally.
    served_.insert(mixSeeds(mixSeeds(ss.scopeHash, config_h),
                            static_cast<uint64_t>(n)));
    for (size_t u : pending)
        ss.queue.push_back(u);
    // Everything not pending was loaded from the journal before the
    // hook ran; those units are fetchable but never assigned.
    {
        auto p = pending.begin();
        for (size_t i = 0; i < n; ++i) {
            if (p != pending.end() && *p == i) {
                ++p;
                continue;
            }
            ss.doneSet.insert(i);
        }
    }
    ss.doneCount = ss.doneSet.size();
    for (Conn &c : conns_) {
        c.inScope = false;
        c.left = false;
        c.assigned.clear();
    }
    counter("dist.scopes_served").add();
    lastLive_ = std::chrono::steady_clock::now();
    const uint64_t span_start =
        traceHooksEnabled() ? steadyNowNs() : 0;

    // Barrier grace: once every unit is journaled and every in-scope
    // worker has left, linger briefly for live workers that have not
    // entered yet so they can be told ScopeDone and fetch instead of
    // recomputing the scope locally.
    std::chrono::steady_clock::time_point grace_deadline{};
    bool grace_armed = false;

    for (;;) {
        if (stopRequested()) {
            emitEvent("dist", LogLevel::Warn,
                      "coordinator interrupted; broadcasting "
                      "shutdown");
            shutdown();
            throw RunInterrupted(
                "distributed scope '" + scope +
                "' interrupted; completed units are journaled");
        }

        const bool complete = ss.doneCount == ss.n;
        bool in_scope_left = true;
        bool all_entered = true;
        for (const Conn &c : conns_) {
            if (c.fd < 0 || !c.helloed)
                continue;
            if (c.inScope && !c.left)
                in_scope_left = false;
            if (!c.inScope)
                all_entered = false;
        }
        if (complete && in_scope_left) {
            if (all_entered)
                break;
            const auto now = std::chrono::steady_clock::now();
            if (!grace_armed) {
                grace_armed = true;
                grace_deadline = now + std::chrono::seconds(2);
            }
            if (now >= grace_deadline)
                break;
        }

        const auto now_tp = std::chrono::steady_clock::now();
        if (liveWorkers() > 0)
            lastLive_ = now_tp;
        else if (assignmentGateOpen() && !complete) {
            // Rejoin grace: once any worker has ever joined, demand
            // continuous worker absence longer than the heartbeat
            // timeout before abandoning the fleet — workers that
            // lost their sockets to a chaos burst (or a coordinator
            // restart) are usually mid-rejoin, not dead. A fleet
            // nobody ever joined falls back as soon as the join
            // deadline passes, as before.
            const double dead_for =
                std::chrono::duration<double>(now_tp - lastLive_)
                    .count();
            const double grace =
                joined_ > 0 ? std::max(heartbeatTimeoutS_, 2.0)
                            : 0.0;
            if (dead_for >= grace) {
                // No fleet left. The local parallelFor path
                // re-executes every still-pending index
                // deterministically; units already journaled just
                // get rewritten with identical bytes.
                warn("dist: no live workers for scope '", scope,
                     "'; falling back to local execution");
                emitEvent("dist", LogLevel::Warn,
                          "scope '" + scope +
                              "' falling back to local execution");
                counter("dist.local_fallbacks").add();
                if (span_start)
                    traceSpanHook("dist.scope", span_start,
                                  steadyNowNs(), "units",
                                  static_cast<long long>(n),
                                  "fallback", 1);
                return false;
            }
        }

        std::vector<pollfd> pfds;
        std::vector<size_t> conn_of;
        pfds.push_back(pollfd{listenFd_, POLLIN, 0});
        for (size_t i = 0; i < conns_.size(); ++i) {
            if (conns_[i].fd < 0)
                continue;
            pfds.push_back(pollfd{conns_[i].fd, POLLIN, 0});
            conn_of.push_back(i);
        }
        const int pr = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), 100);
        if (pr < 0) {
            // EINTR is routine (signal delivery); anything else is
            // throttled so a persistent poll error — which returns
            // immediately — cannot spin this loop hot.
            if (errno != EINTR) {
                warn("dist: poll failed (", std::strerror(errno),
                     ")");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        } else if (pr > 0) {
            if (pfds[0].revents != 0)
                acceptNew();
            for (size_t k = 1; k < pfds.size(); ++k)
                if (pfds[k].revents != 0)
                    (void)handleFrame(conn_of[k - 1], ss);
        }
        checkLiveness(ss);
    }

    if (span_start)
        traceSpanHook("dist.scope", span_start, steadyNowNs(),
                      "units", static_cast<long long>(n), "workers",
                      static_cast<long long>(liveWorkers()));
    return true;
}

void
Coordinator::augmentSnapshot(obs::StatSnapshot &snap)
{
    std::lock_guard<std::mutex> lock(snapMu_);
    for (const auto &[id, worker_snap] : workerSnapshots_)
        snap.merge(worker_snap);
}

} // namespace dist
} // namespace psca
