#include "dist/netfault.hh"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault.hh"

namespace psca {
namespace dist {

bool
sendFrameChaos(int fd, Msg type, const std::string &payload,
               uint64_t key)
{
    static FaultSite &reset = FAULT_SITE("net.conn_reset");
    static FaultSite &torn = FAULT_SITE("net.torn_send");
    static FaultSite &corrupt = FAULT_SITE("net.frame_corrupt");

    if (reset.enabled() && reset.fires(key)) {
        // Kill the connection both ways so the peer's next recv sees
        // it die too, the way a real RST would land.
        ::shutdown(fd, SHUT_RDWR);
        return false;
    }
    if (torn.enabled() && torn.fires(key)) {
        const std::string frame = encodeFrame(type, payload);
        // Cut somewhere strictly inside the frame so the peer reads
        // a partial frame (EOF mid-read => Corrupt), never a clean
        // boundary it could mistake for an orderly close.
        const size_t cut =
            1 + static_cast<size_t>(torn.draw(key, 0, frame.size() - 1));
        (void)sendAll(fd, frame.data(), cut);
        ::shutdown(fd, SHUT_WR);
        return false;
    }
    if (corrupt.enabled() && corrupt.fires(key)) {
        std::string frame = encodeFrame(type, payload);
        const size_t pos =
            static_cast<size_t>(corrupt.draw(key, 0, frame.size()));
        frame[pos] = static_cast<char>(frame[pos] ^ 0x5a);
        // The send itself "succeeds": only the peer's checksum knows.
        return sendAll(fd, frame.data(), frame.size());
    }
    return sendFrame(fd, type, payload);
}

RecvStatus
recvFrameChaos(int fd, Frame &out, uint64_t key, uint32_t max_payload)
{
    static FaultSite &stall = FAULT_SITE("net.recv_stall");
    if (stall.enabled() && stall.fires(key)) {
        const double ms = std::min(stall.param(20.0), 1000.0);
        if (ms > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long long>(ms * 1000.0)));
    }
    return recvFrame(fd, out, max_payload);
}

bool
heartbeatDropped(uint64_t key)
{
    static FaultSite &drop = FAULT_SITE("net.heartbeat_drop");
    return drop.enabled() && drop.fires(key);
}

bool
duplicateResult(uint64_t key)
{
    static FaultSite &dup = FAULT_SITE("net.dup_result");
    return dup.enabled() && dup.fires(key);
}

} // namespace dist
} // namespace psca
