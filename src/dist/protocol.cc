#include "dist/protocol.hh"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/env.hh"
#include "common/serialize.hh"

namespace psca {
namespace dist {

uint32_t
maxFramePayloadCap()
{
    static const uint32_t cap = static_cast<uint32_t>(
        env::intOr("PSCA_DIST_MAX_FRAME_MB", 64, 1, 256) << 20);
    return cap;
}

const char *
msgName(Msg m)
{
    switch (m) {
      case Msg::Hello:
        return "Hello";
      case Msg::ScopeEnter:
        return "ScopeEnter";
      case Msg::Poll:
        return "Poll";
      case Msg::Result:
        return "Result";
      case Msg::Fetch:
        return "Fetch";
      case Msg::ScopeLeave:
        return "ScopeLeave";
      case Msg::Heartbeat:
        return "Heartbeat";
      case Msg::Bye:
        return "Bye";
      case Msg::Welcome:
        return "Welcome";
      case Msg::Assign:
        return "Assign";
      case Msg::Wait:
        return "Wait";
      case Msg::ScopeDone:
        return "ScopeDone";
      case Msg::Data:
        return "Data";
      case Msg::Ack:
        return "Ack";
      case Msg::Shutdown:
        return "Shutdown";
      case Msg::Error:
        return "Error";
    }
    return "?";
}

const char *
recvStatusName(RecvStatus s)
{
    switch (s) {
      case RecvStatus::Ok:
        return "ok";
      case RecvStatus::Closed:
        return "closed";
      case RecvStatus::Timeout:
        return "timeout";
      case RecvStatus::Corrupt:
        return "corrupt";
      case RecvStatus::Oversized:
        return "oversized";
    }
    return "?";
}

bool
sendAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < n) {
        const ssize_t wrote =
            ::send(fd, p + off, n - off, MSG_NOSIGNAL);
        if (wrote <= 0) {
            if (wrote < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(wrote);
    }
    return true;
}

namespace {

/**
 * Read exactly @p n bytes. Returns Ok, or Closed on immediate EOF
 * when @p eof_ok (a frame boundary), Corrupt on EOF mid-read, and
 * Timeout when SO_RCVTIMEO expires.
 */
RecvStatus
recvExact(int fd, void *data, size_t n, bool eof_ok)
{
    char *p = static_cast<char *>(data);
    size_t off = 0;
    while (off < n) {
        const ssize_t got = ::recv(fd, p + off, n - off, 0);
        if (got == 0)
            return off == 0 && eof_ok ? RecvStatus::Closed
                                      : RecvStatus::Corrupt;
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return RecvStatus::Timeout;
            return RecvStatus::Corrupt;
        }
        off += static_cast<size_t>(got);
    }
    return RecvStatus::Ok;
}

constexpr size_t kHeaderBytes =
    sizeof(uint32_t) + sizeof(uint8_t) + sizeof(uint32_t);

} // namespace

std::string
encodeFrame(Msg type, const std::string &payload)
{
    const uint8_t t = static_cast<uint8_t>(type);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::string frame;
    frame.resize(kHeaderBytes + payload.size() + sizeof(uint64_t));
    size_t off = 0;
    std::memcpy(&frame[off], &kFrameMagic, sizeof(kFrameMagic));
    off += sizeof(kFrameMagic);
    frame[off++] = static_cast<char>(t);
    std::memcpy(&frame[off], &len, sizeof(len));
    off += sizeof(len);
    std::memcpy(&frame[off], payload.data(), payload.size());
    off += payload.size();
    // The checksum covers (type, len, payload) — everything but the
    // magic, mirroring the journal's per-frame trailer scheme.
    uint64_t sum = fnv1aUpdate(kFnv1aBasis, &t, sizeof(t));
    sum = fnv1aUpdate(sum, &len, sizeof(len));
    sum = fnv1aUpdate(sum, payload.data(), payload.size());
    std::memcpy(&frame[off], &sum, sizeof(sum));
    return frame;
}

bool
sendFrame(int fd, Msg type, const std::string &payload)
{
    const std::string frame = encodeFrame(type, payload);
    return sendAll(fd, frame.data(), frame.size());
}

RecvStatus
recvFrame(int fd, Frame &out, uint32_t max_payload)
{
    uint8_t header[kHeaderBytes];
    RecvStatus st = recvExact(fd, header, sizeof(header), true);
    if (st != RecvStatus::Ok)
        return st;
    uint32_t magic = 0;
    uint32_t len = 0;
    std::memcpy(&magic, header, sizeof(magic));
    const uint8_t type = header[sizeof(magic)];
    std::memcpy(&len, header + sizeof(magic) + 1, sizeof(len));
    if (magic != kFrameMagic || len > kMaxFramePayload)
        return RecvStatus::Corrupt;
    if (len > std::min(max_payload, kMaxFramePayload))
        return RecvStatus::Oversized;

    // Grow the buffer only as bytes actually arrive: a well-formed
    // header cannot reserve more memory than the peer truly sends.
    constexpr size_t kRecvChunk = 1u << 20;
    out.payload.clear();
    size_t got = 0;
    while (got < len) {
        const size_t step = std::min(kRecvChunk, size_t(len) - got);
        out.payload.resize(got + step);
        st = recvExact(fd, &out.payload[got], step, false);
        if (st != RecvStatus::Ok)
            return st;
        got += step;
    }
    uint64_t stored = 0;
    st = recvExact(fd, &stored, sizeof(stored), false);
    if (st != RecvStatus::Ok)
        return st;
    uint64_t sum = fnv1aUpdate(kFnv1aBasis, &type, sizeof(type));
    sum = fnv1aUpdate(sum, &len, sizeof(len));
    sum = fnv1aUpdate(sum, out.payload.data(), out.payload.size());
    if (sum != stored)
        return RecvStatus::Corrupt;
    out.type = static_cast<Msg>(type);
    return RecvStatus::Ok;
}

} // namespace dist
} // namespace psca
