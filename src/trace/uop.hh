/**
 * @file
 * Micro-op record produced by the synthetic trace generator and
 * consumed by the clustered core timing model. One record per
 * dynamic micro-op, in program order.
 */

#ifndef PSCA_TRACE_UOP_HH
#define PSCA_TRACE_UOP_HH

#include <cstddef>
#include <cstdint>

namespace psca {

/** Functional class of a micro-op; drives latency and port binding. */
enum class OpClass : uint8_t
{
    IntAlu,     //!< 1-cycle integer ALU op
    IntMul,     //!< 3-cycle integer multiply
    IntDiv,     //!< 20-cycle unpipelined integer divide
    FpAdd,      //!< 4-cycle FP add/sub
    FpMul,      //!< 4-cycle FP multiply
    FpDiv,      //!< 14-cycle unpipelined FP divide
    FpFma,      //!< 5-cycle fused multiply-add
    Load,       //!< memory load; latency from cache model
    Store,      //!< memory store; retires via the store queue
    Branch,     //!< conditional direct branch
    Nop,        //!< no-op (pipeline filler)
    NumClasses
};

/** Number of OpClass values, for table sizing. */
constexpr size_t kNumOpClasses = static_cast<size_t>(OpClass::NumClasses);

/** Number of architectural registers visible to the generator. */
constexpr int kNumArchRegs = 48;

/** Marker for an absent register operand. */
constexpr int8_t kNoReg = -1;

/**
 * One dynamic micro-op. The generator fills every field; the timing
 * model never needs to decode anything.
 */
struct MicroOp
{
    uint64_t pc = 0;        //!< static instruction address
    uint64_t addr = 0;      //!< effective address (Load/Store only)
    OpClass cls = OpClass::Nop;
    int8_t dst = kNoReg;    //!< destination register or kNoReg
    int8_t src0 = kNoReg;   //!< first source or kNoReg
    int8_t src1 = kNoReg;   //!< second source or kNoReg
    uint8_t memSize = 0;    //!< access size in bytes (Load/Store only)
    bool branchTaken = false; //!< resolved direction (Branch only)

    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isBranch() const { return cls == OpClass::Branch; }
    bool isMem() const { return isLoad() || isStore(); }

    bool
    isFp() const
    {
        return cls == OpClass::FpAdd || cls == OpClass::FpMul ||
               cls == OpClass::FpDiv || cls == OpClass::FpFma;
    }
};

/** Short mnemonic for an OpClass, for debug dumps. */
const char *opClassName(OpClass cls);

} // namespace psca

#endif // PSCA_TRACE_UOP_HH
