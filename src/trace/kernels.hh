/**
 * @file
 * Synthetic instruction-stream kernels. Each kernel emits a dynamic
 * micro-op stream with a distinctive microarchitectural signature,
 * chosen so that interval-level IPC ratios between the 8-wide
 * (two-cluster) and 4-wide (gated) modes span the space the paper's
 * labels depend on:
 *
 *  - Ilp (many chains): width-hungry, gating costs ~2x IPC;
 *  - Ilp (few chains) / FpSerial: latency-bound, gating is free;
 *  - Stream: bandwidth-bound for large footprints, gating nearly free;
 *  - PointerChase: serial misses, IPC << 1 either way;
 *  - Branchy: mispredict-bound, gating nearly free;
 *  - Stencil: moderate ILP and locality, borderline intervals;
 *  - MlpRich: cache-missing but rich in memory-level parallelism, so
 *    the second cluster's extra load ports/MSHRs still matter. In
 *    miss-rate counters it *looks* gating-friendly — this kernel is
 *    the statistical-blindspot generator (Sec. 6 / Fig. 9 roms_s).
 */

#ifndef PSCA_TRACE_KERNELS_HH
#define PSCA_TRACE_KERNELS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "trace/uop.hh"

namespace psca {

/** Kernel families the generator can instantiate. */
enum class KernelKind : uint8_t
{
    Stream,       //!< unit/strided streaming loads + compute + store
    PointerChase, //!< dependent-load chain over a working set
    Ilp,          //!< k independent arithmetic dependency chains
    Branchy,      //!< short blocks ending in hard-to-predict branches
    MlpRich,      //!< bursts of independent missing loads (high MLP)
    Stencil,      //!< strided loads w/ reuse + FP compute
    FpSerial,     //!< one long FP latency chain
    NumKinds
};

/** Number of kernel kinds, for table sizing. */
constexpr size_t kNumKernelKinds = static_cast<size_t>(KernelKind::NumKinds);

/** Display name of a kernel kind. */
const char *kernelKindName(KernelKind kind);

/** Parameters configuring one kernel instance. */
struct KernelParams
{
    KernelKind kind = KernelKind::Ilp;
    /** Data footprint; drives cache/TLB miss rates. */
    uint64_t workingSetBytes = 16 * 1024;
    /** Independent dependency chains (Ilp) / unrolled lanes. */
    uint8_t chains = 4;
    /** Arithmetic ops per memory op (Stream/Stencil/MlpRich). */
    uint8_t computePerElem = 2;
    /** Fraction of branch micro-ops (Branchy). */
    double branchRatio = 0.2;
    /** Probability a conditional branch follows its bias. */
    double predictability = 0.95;
    /** Independent in-flight loads per burst (MlpRich). */
    uint8_t mlpDegree = 8;
    /** Use FP op classes for arithmetic. */
    bool fp = false;
    /** Access stride (Stream/Stencil). */
    uint32_t strideBytes = 8;
};

/**
 * Abstract micro-op emitter. Kernels are deterministic given their
 * construction arguments and the Rng passed to emit().
 */
class Kernel
{
  public:
    /**
     * @param params Static kernel configuration.
     * @param pc_base Code address region for this instance.
     * @param mem_base Data address region for this instance.
     */
    Kernel(const KernelParams &params, uint64_t pc_base, uint64_t mem_base);
    virtual ~Kernel() = default;

    /** Append exactly n micro-ops to out. */
    virtual void emit(std::vector<MicroOp> &out, size_t n, Rng &rng) = 0;

    const KernelParams &params() const { return params_; }

  protected:
    /** Wrap an offset into this kernel's working set. */
    uint64_t
    wrapAddr(uint64_t offset) const
    {
        return mem_base_ + (offset & ws_mask_);
    }

    /** Advance and return the next static pc in the kernel's region. */
    uint64_t
    nextPc()
    {
        pc_cursor_ = pc_base_ + ((pc_cursor_ - pc_base_ + 4) & 0xffff);
        return pc_cursor_;
    }

    /** Arithmetic op class honoring the fp flag. */
    OpClass
    arithClass(Rng &rng) const
    {
        if (!params_.fp)
            return rng.bernoulli(0.1) ? OpClass::IntMul : OpClass::IntAlu;
        const double u = rng.uniform();
        if (u < 0.45)
            return OpClass::FpAdd;
        if (u < 0.85)
            return OpClass::FpMul;
        return OpClass::FpFma;
    }

    KernelParams params_;
    uint64_t pc_base_;
    uint64_t mem_base_;
    uint64_t ws_mask_;
    uint64_t pc_cursor_;
};

/**
 * Instantiate the kernel class for params.kind.
 *
 * @param params Kernel configuration.
 * @param instance_id Distinguishes instances so each gets private
 *        code/data address regions (stable across re-generation).
 */
std::unique_ptr<Kernel> makeKernel(const KernelParams &params,
                                   uint32_t instance_id);

} // namespace psca

#endif // PSCA_TRACE_KERNELS_HH
