#include "trace/genome.hh"

#include <algorithm>

#include "common/logging.hh"

namespace psca {

const char *
appCategoryName(AppCategory cat)
{
    switch (cat) {
      case AppCategory::HpcPerf: return "hpc_perf";
      case AppCategory::CloudSecurity: return "cloud_security";
      case AppCategory::AiAnalytics: return "ai_analytics";
      case AppCategory::WebProductivity: return "web_productivity";
      case AppCategory::Multimedia: return "multimedia";
      case AppCategory::GamesRendering: return "games_rendering";
      case AppCategory::SpecInt: return "spec_int";
      case AppCategory::SpecFp: return "spec_fp";
      default: return "unknown";
    }
}

namespace {

/** Per-category prior over kernel kinds (order matches KernelKind). */
struct CategoryPrior
{
    // Stream, PointerChase, Ilp, Branchy, MlpRich, Stencil, FpSerial
    double kindWeights[kNumKernelKinds];
    double fpProb;         //!< chance an arithmetic phase uses FP
    double wideIlpProb;    //!< chance an Ilp phase is width-hungry
};

const CategoryPrior &
categoryPrior(AppCategory cat)
{
    static const CategoryPrior hpc = {
        {0.28, 0.05, 0.20, 0.02, 0.05, 0.25, 0.15}, 0.8, 0.45};
    static const CategoryPrior cloud = {
        {0.15, 0.30, 0.17, 0.30, 0.05, 0.02, 0.01}, 0.1, 0.35};
    static const CategoryPrior ai = {
        {0.28, 0.10, 0.30, 0.02, 0.08, 0.17, 0.05}, 0.7, 0.50};
    static const CategoryPrior web = {
        {0.13, 0.26, 0.18, 0.40, 0.02, 0.01, 0.00}, 0.05, 0.30};
    static const CategoryPrior media = {
        {0.28, 0.04, 0.35, 0.13, 0.02, 0.15, 0.03}, 0.5, 0.50};
    static const CategoryPrior games = {
        {0.15, 0.12, 0.30, 0.22, 0.04, 0.12, 0.05}, 0.4, 0.45};

    switch (cat) {
      case AppCategory::HpcPerf: return hpc;
      case AppCategory::CloudSecurity: return cloud;
      case AppCategory::AiAnalytics: return ai;
      case AppCategory::WebProductivity: return web;
      case AppCategory::Multimedia: return media;
      case AppCategory::GamesRendering: return games;
      default:
        panic("no prior for SPEC categories; use spec profiles");
    }
}

/** Draw a working-set size spanning L1-resident to memory-resident. */
uint64_t
sampleWorkingSet(Rng &rng, double small_prob, double huge_prob)
{
    const double u = rng.uniform();
    if (u < small_prob) {
        // L1/L2 resident: 4KB - 256KB
        return 4096ULL << rng.below(7);
    }
    if (u > 1.0 - huge_prob) {
        // DRAM resident: 16MB - 256MB
        return (16ULL << 20) << rng.below(5);
    }
    // LLC-ish: 512KB - 8MB
    return (512ULL << 10) << rng.below(5);
}

/** Sample one kernel phase under a category prior. */
KernelParams
sampleKernel(const CategoryPrior &prior, Rng &rng)
{
    std::vector<double> weights(prior.kindWeights,
                                prior.kindWeights + kNumKernelKinds);
    KernelParams p;
    p.kind = static_cast<KernelKind>(rng.weightedIndex(weights));
    p.fp = rng.bernoulli(prior.fpProb);

    switch (p.kind) {
      case KernelKind::Stream:
        p.workingSetBytes = sampleWorkingSet(rng, 0.2, 0.45);
        p.computePerElem =
            static_cast<uint8_t>(1 + rng.below(5));
        p.strideBytes = rng.bernoulli(0.75)
            ? 8 : static_cast<uint32_t>(8u << rng.below(5));
        break;
      case KernelKind::PointerChase:
        p.workingSetBytes = sampleWorkingSet(rng, 0.15, 0.5);
        // Some chases expose a few parallel pointer streams.
        p.chains = rng.bernoulli(0.4)
            ? static_cast<uint8_t>(4 + rng.below(5))
            : 1;
        break;
      case KernelKind::Ilp:
        p.chains = rng.bernoulli(prior.wideIlpProb)
            ? static_cast<uint8_t>(8 + rng.below(9))
            : static_cast<uint8_t>(2 + rng.below(4));
        p.workingSetBytes = 16 * 1024;
        break;
      case KernelKind::Branchy:
        p.predictability = rng.uniform(0.55, 0.99);
        p.workingSetBytes = sampleWorkingSet(rng, 0.5, 0.05);
        break;
      case KernelKind::MlpRich:
        // Mostly at-or-below the per-cluster MSHR count (gating is
        // free), occasionally beyond it (the wide mode's second
        // memory unit matters): the telemetry signature of the two
        // regimes is identical except to latency/occupancy counters.
        p.mlpDegree = rng.bernoulli(0.8)
            ? static_cast<uint8_t>(7 + rng.below(4))
            : static_cast<uint8_t>(11 + rng.below(4));
        p.computePerElem = static_cast<uint8_t>(1 + rng.below(3));
        p.workingSetBytes = sampleWorkingSet(rng, 0.0, 0.7);
        break;
      case KernelKind::Stencil:
        p.workingSetBytes = sampleWorkingSet(rng, 0.25, 0.35);
        p.strideBytes = static_cast<uint32_t>(8u << rng.below(6));
        break;
      case KernelKind::FpSerial:
        p.fp = true;
        p.workingSetBytes = 32 * 1024;
        break;
      default:
        panic("unreachable kernel kind");
    }
    return p;
}

} // namespace

AppGenome
sampleGenome(AppCategory cat, uint64_t seed)
{
    Rng rng(mixSeeds(0x9e11a51ed5ca11edULL, seed));
    const CategoryPrior &prior = categoryPrior(cat);

    AppGenome app;
    app.category = cat;
    app.seed = seed;
    app.name = std::string(appCategoryName(cat)) + "_" +
        std::to_string(seed & 0xffffff);

    const int num_phases = 2 + static_cast<int>(rng.below(5));
    for (int i = 0; i < num_phases; ++i) {
        PhaseSpec phase;
        phase.kernel = sampleKernel(prior, rng);
        phase.weight = rng.logNormal(0.0, 0.7);
        phase.meanLenInstr = rng.uniform(120e3, 500e3);
        app.phases.push_back(phase);
    }
    return app;
}

} // namespace psca
