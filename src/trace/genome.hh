/**
 * @file
 * Application genomes: an application is a weighted set of kernel
 * phases plus phase-length statistics. Genomes are either sampled
 * from per-category priors (the HDTR stand-in, Table 1) or
 * hand-profiled to mimic SPEC2017 benchmarks (the held-out test set,
 * Table 2). A workload is a genome executed with a particular input
 * seed, which perturbs phase weights and kernel parameters the way a
 * different input perturbs a real program's behaviour.
 */

#ifndef PSCA_TRACE_GENOME_HH
#define PSCA_TRACE_GENOME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/kernels.hh"

namespace psca {

/** Application categories of the high-diversity training set. */
enum class AppCategory : uint8_t
{
    HpcPerf,         //!< HPC & performance benchmarks
    CloudSecurity,   //!< cloud & security
    AiAnalytics,     //!< AI & data analytics
    WebProductivity, //!< web browsers & productivity
    Multimedia,      //!< multimedia
    GamesRendering,  //!< games, rendering & augmented reality
    SpecInt,         //!< held-out SPEC2017 integer stand-in
    SpecFp,          //!< held-out SPEC2017 floating-point stand-in
    NumCategories
};

/** Display name of an application category. */
const char *appCategoryName(AppCategory cat);

/** One phase of an application: a kernel plus occupancy statistics. */
struct PhaseSpec
{
    KernelParams kernel;
    /** Steady-state selection weight among the app's phases. */
    double weight = 1.0;
    /** Mean phase length in instructions (log-normal around this). */
    double meanLenInstr = 60e3;
};

/** A complete application description. */
struct AppGenome
{
    std::string name;
    AppCategory category = AppCategory::HpcPerf;
    /** App-identity seed; fixes the phase schedule family. */
    uint64_t seed = 0;
    std::vector<PhaseSpec> phases;
};

/**
 * Sample a random application genome from a category prior.
 * Deterministic in (cat, seed).
 */
AppGenome sampleGenome(AppCategory cat, uint64_t seed);

} // namespace psca

#endif // PSCA_TRACE_GENOME_HH
