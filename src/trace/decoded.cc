#include "trace/decoded.hh"

#include "common/rng.hh"
#include "trace/generator.hh"

namespace psca {

void
DecodedTrace::clear()
{
    pc_.clear();
    addr_.clear();
    cls_.clear();
    dst_.clear();
    src0_.clear();
    src1_.clear();
    taken_.clear();
}

void
DecodedTrace::reserve(size_t n)
{
    pc_.reserve(n);
    addr_.reserve(n);
    cls_.reserve(n);
    dst_.reserve(n);
    src0_.reserve(n);
    src1_.reserve(n);
    taken_.reserve(n);
}

void
DecodedTrace::append(const MicroOp &op)
{
    pc_.push_back(op.pc);
    addr_.push_back(op.addr);
    cls_.push_back(static_cast<uint8_t>(op.cls));
    dst_.push_back(op.dst);
    src0_.push_back(op.src0);
    src1_.push_back(op.src1);
    taken_.push_back(op.branchTaken ? 1 : 0);
}

void
DecodedTrace::append(const MicroOp *ops, size_t n)
{
    const size_t base = size();
    pc_.resize(base + n);
    addr_.resize(base + n);
    cls_.resize(base + n);
    dst_.resize(base + n);
    src0_.resize(base + n);
    src1_.resize(base + n);
    taken_.resize(base + n);
    // One pass per field: each destination is written sequentially
    // (vectorizable), and the 32-byte AoS source stays cache-resident
    // across the passes for the chunk sizes the generator uses.
    uint64_t *pc = pc_.data() + base;
    for (size_t i = 0; i < n; ++i)
        pc[i] = ops[i].pc;
    uint64_t *addr = addr_.data() + base;
    for (size_t i = 0; i < n; ++i)
        addr[i] = ops[i].addr;
    uint8_t *cls = cls_.data() + base;
    for (size_t i = 0; i < n; ++i)
        cls[i] = static_cast<uint8_t>(ops[i].cls);
    int8_t *dst = dst_.data() + base;
    for (size_t i = 0; i < n; ++i)
        dst[i] = ops[i].dst;
    int8_t *src0 = src0_.data() + base;
    for (size_t i = 0; i < n; ++i)
        src0[i] = ops[i].src0;
    int8_t *src1 = src1_.data() + base;
    for (size_t i = 0; i < n; ++i)
        src1[i] = ops[i].src1;
    uint8_t *taken = taken_.data() + base;
    for (size_t i = 0; i < n; ++i)
        taken[i] = ops[i].branchTaken ? 1 : 0;
}

MicroOp
DecodedTrace::opAt(size_t i) const
{
    MicroOp op;
    op.pc = pc_[i];
    op.addr = addr_[i];
    op.cls = static_cast<OpClass>(cls_[i]);
    op.dst = dst_[i];
    op.src0 = src0_[i];
    op.src1 = src1_[i];
    op.branchTaken = taken_[i] != 0;
    return op;
}

uint64_t
DecodedTrace::contentHash() const
{
    uint64_t h = mixSeeds(0x5ca1ab1edec0deULL, size());
    for (size_t i = 0; i < size(); ++i) {
        // Fold the narrow fields into one word so each op costs two
        // mixes; the mix is order-sensitive through h.
        const uint64_t packed =
            (static_cast<uint64_t>(cls_[i]) << 40) ^
            (static_cast<uint64_t>(static_cast<uint8_t>(dst_[i]))
             << 32) ^
            (static_cast<uint64_t>(static_cast<uint8_t>(src0_[i]))
             << 24) ^
            (static_cast<uint64_t>(static_cast<uint8_t>(src1_[i]))
             << 16) ^
            (static_cast<uint64_t>(taken_[i]) << 8);
        h = mixSeeds(h, pc_[i] ^ (addr_[i] * 0x9e3779b97f4a7c15ULL));
        h = mixSeeds(h, packed);
    }
    return h;
}

DecodedTrace
decodeTrace(TraceGenerator &gen, uint64_t n)
{
    DecodedTrace trace;
    trace.reserve(static_cast<size_t>(n));
    gen.fillDecoded(trace, static_cast<size_t>(n));
    return trace;
}

} // namespace psca
