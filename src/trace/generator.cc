#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/decoded.hh"

namespace psca {

namespace {

/** Seed stream for one (app, input, trace) triple. */
uint64_t
traceSeed(const Workload &w)
{
    return mixSeeds(mixSeeds(w.genome.seed, w.inputSeed),
                    0xace0fba5eULL + w.traceIndex);
}

/**
 * Apply the input perturbation: a different input shifts phase
 * weights, footprints, and branch behaviour without changing the
 * application's identity.
 */
std::vector<PhaseSpec>
perturbPhases(const AppGenome &genome, uint64_t input_seed)
{
    Rng rng(mixSeeds(genome.seed, mixSeeds(input_seed, 0x1297f17eULL)));
    std::vector<PhaseSpec> phases = genome.phases;
    for (auto &phase : phases) {
        phase.weight *= rng.logNormal(0.0, 0.30);
        phase.meanLenInstr *= rng.logNormal(0.0, 0.25);
        phase.meanLenInstr = std::max(phase.meanLenInstr, 8e3);
        auto &k = phase.kernel;
        k.workingSetBytes = static_cast<uint64_t>(
            std::max(4096.0, static_cast<double>(k.workingSetBytes) *
                                 rng.logNormal(0.0, 0.35)));
        if (k.kind == KernelKind::Branchy) {
            k.predictability = std::clamp(
                k.predictability + rng.gaussian(0.0, 0.02), 0.5, 0.995);
        }
    }
    return phases;
}

} // namespace

TraceGenerator::TraceGenerator(const Workload &workload)
    : workload_(workload),
      phases_(perturbPhases(workload.genome, workload.inputSeed)),
      rng_(traceSeed(workload))
{
    PSCA_ASSERT(!phases_.empty(), "workload has no phases");
    reset();
}

void
TraceGenerator::reset()
{
    rng_ = Rng(traceSeed(workload_));
    kernels_.clear();
    kernels_.resize(phases_.size());
    produced_ = 0;
    buffer_.clear();
    buffer_pos_ = 0;
    current_phase_ = phases_.size(); // force phase entry
    phase_remaining_ = 0;
    // Skip traceIndex phase transitions so different trace indices
    // start at different points of the app's execution.
    for (uint64_t i = 0; i < workload_.traceIndex + 1; ++i)
        enterNextPhase();
}

void
TraceGenerator::enterNextPhase()
{
    // Reused member buffer: phase entry is on the trace hot path and
    // must not allocate once the buffer reaches phases_.size().
    weights_.clear();
    weights_.reserve(phases_.size());
    std::vector<double> &weights = weights_;
    for (const auto &phase : phases_)
        weights.push_back(phase.weight);
    // Independent weighted draws: a self-transition just extends the
    // current phase, so steady-state occupancy is proportional to
    // weight x mean length.
    current_phase_ = rng_.weightedIndex(weights);

    const PhaseSpec &phase = phases_[current_phase_];
    phase_remaining_ = static_cast<uint64_t>(std::max(
        4000.0, phase.meanLenInstr * rng_.logNormal(0.0, 0.45)));

    if (!kernels_[current_phase_]) {
        const uint32_t instance_id = static_cast<uint32_t>(
            (workload_.genome.seed & 0x3f) * 64 + current_phase_);
        kernels_[current_phase_] =
            makeKernel(phase.kernel, instance_id);
    }
}

void
TraceGenerator::fill(std::vector<MicroOp> &out, size_t n)
{
    size_t remaining = n;
    while (remaining > 0) {
        if (buffer_pos_ >= buffer_.size()) {
            buffer_.clear();
            buffer_pos_ = 0;
            if (phase_remaining_ == 0)
                enterNextPhase();
            const size_t chunk = static_cast<size_t>(
                std::min<uint64_t>(phase_remaining_, 4096));
            kernels_[current_phase_]->emit(buffer_, chunk, rng_);
            phase_remaining_ -= chunk;
        }
        const size_t take =
            std::min(remaining, buffer_.size() - buffer_pos_);
        out.insert(out.end(), buffer_.begin() +
                       static_cast<ptrdiff_t>(buffer_pos_),
                   buffer_.begin() +
                       static_cast<ptrdiff_t>(buffer_pos_ + take));
        buffer_pos_ += take;
        remaining -= take;
        produced_ += take;
    }
}

void
TraceGenerator::fillDecoded(DecodedTrace &out, size_t n)
{
    size_t remaining = n;
    while (remaining > 0) {
        if (buffer_pos_ >= buffer_.size()) {
            buffer_.clear();
            buffer_pos_ = 0;
            if (phase_remaining_ == 0)
                enterNextPhase();
            const size_t chunk = static_cast<size_t>(
                std::min<uint64_t>(phase_remaining_, 4096));
            kernels_[current_phase_]->emit(buffer_, chunk, rng_);
            phase_remaining_ -= chunk;
        }
        const size_t take =
            std::min(remaining, buffer_.size() - buffer_pos_);
        out.append(buffer_.data() + buffer_pos_, take);
        buffer_pos_ += take;
        remaining -= take;
        produced_ += take;
    }
}

} // namespace psca
