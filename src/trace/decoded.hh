/**
 * @file
 * Pre-decoded structure-of-arrays trace representation. A MicroOp
 * stream is decoded once into parallel flat arrays (op class,
 * operands, address stream, branch metadata) so the simulator's inner
 * loop streams each field sequentially instead of striding through
 * 24-byte AoS records, and so one decode can feed several replays
 * (the dual-mode recording passes) or be content-hashed for the
 * simulation memo cache (sim/memo.hh).
 *
 * Layout contract (DESIGN.md §9): index i of every array describes
 * dynamic micro-op i of the stream; `memSize` is dropped because the
 * timing model never reads it, so two streams with equal decoded
 * arrays are timing-equivalent by construction and contentHash() is
 * a complete replay key.
 */

#ifndef PSCA_TRACE_DECODED_HH
#define PSCA_TRACE_DECODED_HH

#include <cstdint>
#include <vector>

#include "trace/uop.hh"

namespace psca {

class TraceGenerator;

/** One MicroOp stream, decoded into parallel flat arrays. */
class DecodedTrace
{
  public:
    size_t size() const { return cls_.size(); }
    bool empty() const { return cls_.empty(); }

    /** Drop all ops; keeps capacity (hot loops reuse the arrays). */
    void clear();

    /** Pre-size every array for n ops. */
    void reserve(size_t n);

    /** Append one already-decoded micro-op. */
    void append(const MicroOp &op);

    /** Append a batch of micro-ops. */
    void append(const MicroOp *ops, size_t n);

    /** Reconstruct op i as an AoS record (tests, debug dumps). */
    MicroOp opAt(size_t i) const;

    /**
     * Order-sensitive 64-bit hash of every timing-relevant field of
     * the stream. Equal hashes (plus equal size) identify streams
     * that replay identically; used as the memo-cache trace key.
     */
    uint64_t contentHash() const;

    // Field accessors used by the simulator's inner loop.
    const uint64_t *pc() const { return pc_.data(); }
    const uint64_t *addr() const { return addr_.data(); }
    const uint8_t *cls() const { return cls_.data(); }
    const int8_t *dst() const { return dst_.data(); }
    const int8_t *src0() const { return src0_.data(); }
    const int8_t *src1() const { return src1_.data(); }
    const uint8_t *taken() const { return taken_.data(); }

  private:
    std::vector<uint64_t> pc_;
    std::vector<uint64_t> addr_;
    std::vector<uint8_t> cls_;   //!< OpClass values
    std::vector<int8_t> dst_;
    std::vector<int8_t> src0_;
    std::vector<int8_t> src1_;
    std::vector<uint8_t> taken_; //!< branch direction (Branch only)
};

/**
 * Decode exactly n micro-ops from the generator. The generator's
 * cursor advances past them, exactly as a fill() of n would.
 */
DecodedTrace decodeTrace(TraceGenerator &gen, uint64_t n);

} // namespace psca

#endif // PSCA_TRACE_DECODED_HH
