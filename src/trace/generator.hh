/**
 * @file
 * Streaming trace generation from an application genome. The
 * generator is fully deterministic in (genome, input_seed, trace
 * index), and reset() reproduces the identical micro-op stream — the
 * dataset builder relies on this to simulate the same trace in both
 * cluster configurations without storing it.
 */

#ifndef PSCA_TRACE_GENERATOR_HH
#define PSCA_TRACE_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/genome.hh"

namespace psca {

class DecodedTrace;

/**
 * One recorded trace: an application genome executed on one input,
 * starting from one recording offset (the SimPoint analogue).
 */
struct Workload
{
    AppGenome genome;
    /** Input identity; perturbs phase weights and kernel params. */
    uint64_t inputSeed = 0;
    /** Recording offset within the workload (SimPoint analogue). */
    uint64_t traceIndex = 0;
    /** Trace length in micro-ops. */
    uint64_t lengthInstr = 500000;
    /** Human-readable identity for reports. */
    std::string name;
};

/** Deterministic micro-op stream for one workload trace. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const Workload &workload);

    /** Append exactly n micro-ops to out. */
    void fill(std::vector<MicroOp> &out, size_t n);

    /**
     * Append exactly n micro-ops to a pre-decoded SoA trace,
     * bypassing the AoS copy. Produces the identical stream fill()
     * would (the internal buffering is caller-invisible).
     */
    void fillDecoded(DecodedTrace &out, size_t n);

    /** Restart the identical stream from the beginning. */
    void reset();

    /** Micro-ops produced since construction/reset. */
    uint64_t produced() const { return produced_; }

    /** The input-perturbed phase set actually being executed. */
    const std::vector<PhaseSpec> &effectivePhases() const
    {
        return phases_;
    }

  private:
    void enterNextPhase();

    Workload workload_;
    std::vector<PhaseSpec> phases_; //!< input-perturbed copy
    Rng rng_;
    std::vector<std::unique_ptr<Kernel>> kernels_; //!< one per phase
    size_t current_phase_ = 0;
    uint64_t phase_remaining_ = 0;
    uint64_t produced_ = 0;
    std::vector<MicroOp> buffer_;
    size_t buffer_pos_ = 0;
    std::vector<double> weights_; //!< enterNextPhase scratch
};

} // namespace psca

#endif // PSCA_TRACE_GENERATOR_HH
