/**
 * @file
 * Workload corpora mirroring the paper's datasets:
 *
 *  - the high-diversity training corpus (HDTR stand-in): 593
 *    applications across six categories with the Table 1 split,
 *    several short traces per application (2,648 traces total in the
 *    paper);
 *  - the held-out SPEC2017 stand-in: 20 hand-profiled applications
 *    with the Table 2 per-application input counts (118 workloads),
 *    multiple SimPoint-analogue traces per workload.
 *
 * Trace lengths are scale parameters so tests and benches can trade
 * fidelity for wall time (see ScaleConfig).
 */

#ifndef PSCA_TRACE_CORPUS_HH
#define PSCA_TRACE_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/generator.hh"

namespace psca {

/** Default corpus identity; change to draw a fresh HDTR population. */
constexpr uint64_t kDefaultCorpusSeed = 0x15ca2019ULL;

/** Table 1 category sizes (sums to 593 applications). */
struct HdtrCategorySizes
{
    int hpcPerf = 176;
    int cloudSecurity = 75;
    int aiAnalytics = 34;
    int webProductivity = 171;
    int multimedia = 80;
    int gamesRendering = 57;

    int
    total() const
    {
        return hpcPerf + cloudSecurity + aiAnalytics + webProductivity +
            multimedia + gamesRendering;
    }
};

/**
 * Build the HDTR application population.
 *
 * @param count Number of applications (<= 593 takes a category-
 *        proportional prefix; use fewer for quick runs).
 * @param corpus_seed Identity of the population.
 */
std::vector<AppGenome> buildHdtrApps(int count = 593,
                                     uint64_t corpus_seed =
                                         kDefaultCorpusSeed);

/** Deterministic per-app trace count (averages ~4.5, as 2648/593). */
int hdtrTraceCount(const AppGenome &app);

/** Build the (up to 2,648) HDTR trace list for an app population. */
std::vector<Workload> hdtrWorkloads(const std::vector<AppGenome> &apps,
                                    uint64_t trace_len_instr);

/** One SPEC2017 stand-in benchmark. */
struct SpecApp
{
    AppGenome genome;
    int numInputs = 1; //!< Table 2 workload count
    bool isFp = false; //!< SPECfp vs SPECint suite
};

/** The 20 hand-profiled SPEC2017 stand-ins (Table 2). */
std::vector<SpecApp> buildSpecApps();

/**
 * Expand one SPEC app into its test traces: numInputs workloads x
 * traces_per_workload SimPoint-analogue traces of trace_len_instr.
 */
std::vector<Workload> specWorkloads(const SpecApp &app,
                                    uint64_t trace_len_instr,
                                    int traces_per_workload);

/** Expand the whole SPEC suite (571 traces at paper scale). */
std::vector<Workload> allSpecWorkloads(const std::vector<SpecApp> &apps,
                                       uint64_t trace_len_instr,
                                       int traces_per_workload);

} // namespace psca

#endif // PSCA_TRACE_CORPUS_HH
