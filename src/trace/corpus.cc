#include "trace/corpus.hh"

#include <algorithm>

#include "common/logging.hh"

namespace psca {

std::vector<AppGenome>
buildHdtrApps(int count, uint64_t corpus_seed)
{
    const HdtrCategorySizes sizes;
    struct CatCount { AppCategory cat; int n; };
    const CatCount plan[] = {
        {AppCategory::HpcPerf, sizes.hpcPerf},
        {AppCategory::CloudSecurity, sizes.cloudSecurity},
        {AppCategory::AiAnalytics, sizes.aiAnalytics},
        {AppCategory::WebProductivity, sizes.webProductivity},
        {AppCategory::Multimedia, sizes.multimedia},
        {AppCategory::GamesRendering, sizes.gamesRendering},
    };

    const int total = sizes.total();
    count = std::clamp(count, 1, total);

    // Interleave categories so any prefix stays category-diverse.
    std::vector<AppGenome> apps;
    apps.reserve(static_cast<size_t>(count));
    int emitted_per_cat[6] = {};
    uint64_t serial = 0;
    while (static_cast<int>(apps.size()) < count) {
        for (int c = 0; c < 6 && static_cast<int>(apps.size()) < count;
             ++c) {
            // Emit from category c proportionally to its share.
            const double share = static_cast<double>(plan[c].n) /
                static_cast<double>(total);
            const double want = share *
                static_cast<double>(apps.size() + 1);
            if (emitted_per_cat[c] < plan[c].n &&
                static_cast<double>(emitted_per_cat[c]) < want) {
                apps.push_back(sampleGenome(
                    plan[c].cat, mixSeeds(corpus_seed, ++serial)));
                ++emitted_per_cat[c];
            }
        }
        ++serial;
    }
    return apps;
}

int
hdtrTraceCount(const AppGenome &app)
{
    // Deterministic 3..6, averaging ~4.47 (2648 traces / 593 apps).
    uint64_t h = app.seed;
    const uint64_t draw = splitMix64(h) % 100;
    if (draw < 18)
        return 3;
    if (draw < 43)
        return 4;
    if (draw < 78)
        return 5;
    return 6;
}

std::vector<Workload>
hdtrWorkloads(const std::vector<AppGenome> &apps,
              uint64_t trace_len_instr)
{
    std::vector<Workload> traces;
    for (const auto &app : apps) {
        const int n = hdtrTraceCount(app);
        for (int t = 0; t < n; ++t) {
            Workload w;
            w.genome = app;
            w.inputSeed = 1; // HDTR records one input per app
            w.traceIndex = static_cast<uint64_t>(t);
            w.lengthInstr = trace_len_instr;
            w.name = app.name + ".t" + std::to_string(t);
            traces.push_back(std::move(w));
        }
    }
    return traces;
}

namespace {

PhaseSpec
ph(const KernelParams &kernel, double weight, double mean_len)
{
    PhaseSpec p;
    p.kernel = kernel;
    p.weight = weight;
    p.meanLenInstr = mean_len;
    return p;
}

SpecApp
makeSpec(const char *name, bool is_fp, int inputs, uint64_t seed,
         std::vector<PhaseSpec> phases)
{
    SpecApp app;
    app.genome.name = name;
    app.genome.category =
        is_fp ? AppCategory::SpecFp : AppCategory::SpecInt;
    app.genome.seed = seed;
    app.genome.phases = std::move(phases);
    app.numInputs = inputs;
    app.isFp = is_fp;
    return app;
}

} // namespace

std::vector<SpecApp>
buildSpecApps()
{
    using KK = KernelKind;
    std::vector<SpecApp> suite;

    // Phase weights approximate each benchmark's ideal low-power
    // residency (Fig. 7: suite average ~46%, x264/imagick near zero,
    // bwaves/nab near 90%), with kernel kinds reflecting the real
    // benchmark's dominant behaviour. roms_s carries the MlpRich
    // blindspot signature (Sec. 7.1 / Fig. 9).

    // ---- SPECint stand-ins ------------------------------------------
    suite.push_back(makeSpec("600.perlbench_s", false, 4, 0x600, {
        ph({.kind = KK::Branchy, .workingSetBytes = 512 << 10,
            .predictability = 0.93}, 0.30, 280e3),
        ph({.kind = KK::PointerChase, .workingSetBytes = 8 << 20},
           0.20, 240e3),
        ph({.kind = KK::Ilp, .chains = 12}, 0.50, 280e3),
    }));
    suite.push_back(makeSpec("602.gcc_s", false, 7, 0x602, {
        ph({.kind = KK::Branchy, .workingSetBytes = 2 << 20,
            .predictability = 0.90}, 0.35, 280e3),
        ph({.kind = KK::PointerChase, .workingSetBytes = 16 << 20},
           0.20, 240e3),
        ph({.kind = KK::Ilp, .chains = 11}, 0.35, 280e3),
        ph({.kind = KK::MlpRich, .workingSetBytes = 32 << 20,
            .computePerElem = 2, .mlpDegree = 8}, 0.10, 200e3),
    }));
    suite.push_back(makeSpec("605.mcf_s", false, 7, 0x605, {
        ph({.kind = KK::PointerChase, .workingSetBytes = 64 << 20},
           0.45, 320e3),
        ph({.kind = KK::Branchy, .workingSetBytes = 1 << 20,
            .predictability = 0.92}, 0.20, 240e3),
        ph({.kind = KK::Ilp, .chains = 10}, 0.35, 280e3),
    }));
    suite.push_back(makeSpec("620.omnetpp_s", false, 9, 0x620, {
        ph({.kind = KK::PointerChase, .workingSetBytes = 32 << 20},
           0.55, 320e3),
        ph({.kind = KK::Branchy, .workingSetBytes = 4 << 20,
            .predictability = 0.88}, 0.25, 240e3),
        ph({.kind = KK::Ilp, .chains = 10}, 0.20, 240e3),
    }));
    suite.push_back(makeSpec("623.xalancbmk_s", false, 2, 0x623, {
        ph({.kind = KK::Branchy, .workingSetBytes = 2 << 20,
            .predictability = 0.90}, 0.35, 280e3),
        ph({.kind = KK::PointerChase, .workingSetBytes = 8 << 20},
           0.15, 240e3),
        ph({.kind = KK::Ilp, .chains = 12}, 0.50, 280e3),
    }));
    suite.push_back(makeSpec("625.x264_s", false, 12, 0x625, {
        ph({.kind = KK::Ilp, .chains = 14}, 0.70, 400e3),
        ph({.kind = KK::Stream, .workingSetBytes = 64 << 10,
            .computePerElem = 5}, 0.25, 320e3),
        ph({.kind = KK::Branchy, .workingSetBytes = 128 << 10,
            .predictability = 0.97}, 0.05, 160e3),
    }));
    suite.push_back(makeSpec("631.deepsjeng_s", false, 12, 0x631, {
        ph({.kind = KK::Branchy, .workingSetBytes = 1 << 20,
            .predictability = 0.90}, 0.30, 280e3),
        ph({.kind = KK::PointerChase, .workingSetBytes = 4 << 20},
           0.10, 240e3),
        ph({.kind = KK::Ilp, .chains = 12}, 0.60, 280e3),
    }));
    suite.push_back(makeSpec("641.leela_s", false, 10, 0x641, {
        ph({.kind = KK::Branchy, .workingSetBytes = 512 << 10,
            .predictability = 0.85}, 0.30, 280e3),
        ph({.kind = KK::PointerChase, .workingSetBytes = 2 << 20},
           0.15, 240e3),
        ph({.kind = KK::Ilp, .chains = 11}, 0.55, 280e3),
    }));
    suite.push_back(makeSpec("648.exchange2_s", false, 5, 0x648, {
        ph({.kind = KK::Ilp, .chains = 10}, 0.85, 320e3),
        ph({.kind = KK::Branchy, .workingSetBytes = 64 << 10,
            .predictability = 0.97}, 0.15, 240e3),
    }));
    suite.push_back(makeSpec("657.xz_s", false, 5, 0x657, {
        ph({.kind = KK::Branchy, .workingSetBytes = 16 << 20,
            .predictability = 0.80}, 0.25, 280e3),
        ph({.kind = KK::PointerChase, .workingSetBytes = 16 << 20},
           0.15, 240e3),
        ph({.kind = KK::Stream, .workingSetBytes = 4 << 20,
            .computePerElem = 3}, 0.10, 280e3),
        ph({.kind = KK::Ilp, .chains = 12}, 0.50, 280e3),
    }));

    // ---- SPECfp stand-ins -------------------------------------------
    suite.push_back(makeSpec("603.bwaves_s", true, 5, 0x603, {
        ph({.kind = KK::Stream, .workingSetBytes = 128 << 20,
            .computePerElem = 2, .fp = true}, 0.55, 400e3),
        ph({.kind = KK::FpSerial}, 0.35, 320e3),
        ph({.kind = KK::Ilp, .chains = 10, .fp = true}, 0.10, 240e3),
    }));
    suite.push_back(makeSpec("607.cactuBSSN_s", true, 6, 0x607, {
        ph({.kind = KK::Stencil, .workingSetBytes = 32 << 20,
            .strideBytes = 64}, 0.50, 360e3),
        ph({.kind = KK::FpSerial}, 0.25, 240e3),
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.25, 280e3),
    }));
    suite.push_back(makeSpec("619.lbm_s", true, 3, 0x619, {
        ph({.kind = KK::Stream, .workingSetBytes = 256 << 20,
            .computePerElem = 3, .fp = true}, 0.55, 480e3),
        ph({.kind = KK::Stencil, .workingSetBytes = 128 << 20,
            .strideBytes = 64}, 0.15, 280e3),
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.30, 280e3),
    }));
    suite.push_back(makeSpec("621.wrf_s", true, 1, 0x621, {
        ph({.kind = KK::Stencil, .workingSetBytes = 8 << 20,
            .strideBytes = 32}, 0.35, 320e3),
        ph({.kind = KK::FpSerial}, 0.15, 240e3),
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.45, 280e3),
        ph({.kind = KK::Branchy, .workingSetBytes = 1 << 20,
            .predictability = 0.92}, 0.05, 160e3),
    }));
    suite.push_back(makeSpec("627.cam4_s", true, 1, 0x627, {
        ph({.kind = KK::Stencil, .workingSetBytes = 4 << 20,
            .strideBytes = 16}, 0.30, 280e3),
        ph({.kind = KK::Branchy, .workingSetBytes = 2 << 20,
            .predictability = 0.90}, 0.15, 240e3),
        ph({.kind = KK::Ilp, .chains = 10, .fp = true}, 0.55, 280e3),
    }));
    suite.push_back(makeSpec("628.pop2_s", true, 1, 0x628, {
        ph({.kind = KK::Stencil, .workingSetBytes = 16 << 20,
            .strideBytes = 32}, 0.35, 320e3),
        ph({.kind = KK::Stream, .workingSetBytes = 32 << 20,
            .computePerElem = 2, .fp = true}, 0.15, 280e3),
        ph({.kind = KK::FpSerial}, 0.05, 200e3),
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.45, 280e3),
    }));
    suite.push_back(makeSpec("638.imagick_s", true, 12, 0x638, {
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.80, 400e3),
        ph({.kind = KK::Ilp, .chains = 6, .fp = true}, 0.15, 280e3),
        ph({.kind = KK::FpSerial}, 0.05, 200e3),
    }));
    suite.push_back(makeSpec("644.nab_s", true, 5, 0x644, {
        ph({.kind = KK::FpSerial}, 0.70, 360e3),
        ph({.kind = KK::Ilp, .chains = 3, .fp = true}, 0.15, 240e3),
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.15, 240e3),
    }));
    suite.push_back(makeSpec("649.fotonik3d_s", true, 5, 0x649, {
        ph({.kind = KK::Stencil, .workingSetBytes = 64 << 20,
            .strideBytes = 128}, 0.30, 320e3),
        ph({.kind = KK::Ilp, .chains = 12, .fp = true}, 0.45, 280e3),
        ph({.kind = KK::Stream, .workingSetBytes = 2 << 20,
            .computePerElem = 4, .fp = true}, 0.25, 240e3),
    }));
    suite.push_back(makeSpec("654.roms_s", true, 5, 0x654, {
        // The blindspot profile: in expert-counter space these
        // MlpRich phases mimic a gate-friendly L2-resident pointer
        // chase (moderate IPC, moderate miss rate, high stall count)
        // while the second memory unit still buys ~1.7x throughput.
        ph({.kind = KK::MlpRich, .workingSetBytes = 64 << 20,
            .computePerElem = 1, .mlpDegree = 12}, 0.45, 320e3),
        ph({.kind = KK::Stencil, .workingSetBytes = 16 << 20,
            .strideBytes = 64}, 0.33, 280e3),
        ph({.kind = KK::FpSerial}, 0.22, 240e3),
    }));

    return suite;
}

std::vector<Workload>
specWorkloads(const SpecApp &app, uint64_t trace_len_instr,
              int traces_per_workload)
{
    std::vector<Workload> traces;
    for (int input = 0; input < app.numInputs; ++input) {
        for (int t = 0; t < traces_per_workload; ++t) {
            Workload w;
            w.genome = app.genome;
            w.inputSeed = static_cast<uint64_t>(input) + 1;
            w.traceIndex = static_cast<uint64_t>(t);
            w.lengthInstr = trace_len_instr;
            w.name = app.genome.name + ".in" + std::to_string(input) +
                ".sp" + std::to_string(t);
            traces.push_back(std::move(w));
        }
    }
    return traces;
}

std::vector<Workload>
allSpecWorkloads(const std::vector<SpecApp> &apps,
                 uint64_t trace_len_instr, int traces_per_workload)
{
    std::vector<Workload> traces;
    for (const auto &app : apps) {
        auto t = specWorkloads(app, trace_len_instr,
                               traces_per_workload);
        traces.insert(traces.end(), t.begin(), t.end());
    }
    return traces;
}

} // namespace psca
