#include "trace/kernels.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace psca {

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Stream: return "stream";
      case KernelKind::PointerChase: return "pointer_chase";
      case KernelKind::Ilp: return "ilp";
      case KernelKind::Branchy: return "branchy";
      case KernelKind::MlpRich: return "mlp_rich";
      case KernelKind::Stencil: return "stencil";
      case KernelKind::FpSerial: return "fp_serial";
      default: return "unknown";
    }
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::IntMul: return "int_mul";
      case OpClass::IntDiv: return "int_div";
      case OpClass::FpAdd: return "fp_add";
      case OpClass::FpMul: return "fp_mul";
      case OpClass::FpDiv: return "fp_div";
      case OpClass::FpFma: return "fp_fma";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::Nop: return "nop";
      default: return "unknown";
    }
}

namespace {

/** Round up to a power of two (minimum 64 bytes). */
uint64_t
roundUpPow2(uint64_t x)
{
    return std::bit_ceil(std::max<uint64_t>(x, 64));
}

/** First data register; r0..r15 are address/loop registers. */
constexpr int8_t kDataReg = 16;

} // namespace

Kernel::Kernel(const KernelParams &params, uint64_t pc_base,
               uint64_t mem_base)
    : params_(params), pc_base_(pc_base), mem_base_(mem_base),
      ws_mask_(roundUpPow2(params.workingSetBytes) - 1),
      pc_cursor_(pc_base)
{}

namespace {

/**
 * Shared loop-structure helper: kernels emit a fixed "body" of pcs
 * each iteration so branch predictors and the I-side see realistic,
 * learnable, small-footprint loops.
 */
class LoopKernel : public Kernel
{
  public:
    using Kernel::Kernel;

  protected:
    /** Begin a new loop iteration: rewind the body pc. */
    void beginIteration() { body_pc_ = pc_base_; }

    /** Emit one non-branch uop at the next body pc. */
    MicroOp &
    put(std::vector<MicroOp> &out, OpClass cls, int8_t dst, int8_t s0,
        int8_t s1 = kNoReg)
    {
        MicroOp op;
        op.pc = body_pc_;
        body_pc_ += 4;
        op.cls = cls;
        op.dst = dst;
        op.src0 = s0;
        op.src1 = s1;
        out.push_back(op);
        return out.back();
    }

    /** Emit the loop back-branch, taken except every period-th. */
    void
    putLoopBranch(std::vector<MicroOp> &out, uint32_t period)
    {
        MicroOp op;
        op.pc = body_pc_;
        body_pc_ += 4;
        op.cls = OpClass::Branch;
        op.src0 = 0; // loop counter register
        ++iteration_;
        op.branchTaken = (iteration_ % period) != 0;
        out.push_back(op);
    }

    uint64_t body_pc_ = 0;
    uint64_t iteration_ = 0;
};

/** Streaming loads/stores with per-element compute. */
class StreamKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        while (out.size() < target) {
            beginIteration();
            // Unroll 4 independent elements per iteration.
            for (int lane = 0; lane < 4; ++lane) {
                const int8_t data = kDataReg + lane;
                auto &ld = put(out, OpClass::Load, data, 1);
                ld.addr = wrapAddr(cursor_);
                ld.memSize = 8;
                cursor_ += params_.strideBytes;
                for (int c = 0; c < params_.computePerElem; ++c)
                    put(out, arithClass(rng), data, data,
                        static_cast<int8_t>(kDataReg + 8 + (c & 3)));
                if (lane == 3) {
                    auto &st = put(out, OpClass::Store, kNoReg, data, 1);
                    st.addr = wrapAddr(store_cursor_);
                    st.memSize = 8;
                    store_cursor_ += 4 * params_.strideBytes;
                }
            }
            put(out, OpClass::IntAlu, 1, 1); // address increment
            putLoopBranch(out, 64);
        }
        out.resize(target);
    }

  private:
    uint64_t cursor_ = 0;
    uint64_t store_cursor_ = 1 << 20;
};

/**
 * Dependent-load chains; the classic latency-bound kernel. With
 * `chains` > 1, several independent chases interleave (graph/hash
 * walks often expose a handful of parallel pointer streams): each
 * chain is strictly serial, so exactly `chains` misses are in flight
 * — below the per-cluster MSHR count this is mode-insensitive
 * (gating is free), while its frontend/miss-rate telemetry is almost
 * identical to an MSHR-saturated MlpRich burst. Branch density is
 * held constant (one per ~24 uops) so only latency and occupancy
 * counters can tell the two apart.
 */
class PointerChaseKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        const int k = std::clamp<int>(params_.chains, 1, 8);
        while (out.size() < target) {
            beginIteration();
            const int8_t ptr =
                static_cast<int8_t>(kDataReg + (chain_++ % k));
            // addr calc depends on this chain's pointer value.
            put(out, OpClass::IntAlu, 2, ptr);
            auto &ld = put(out, OpClass::Load, ptr, 2);
            ld.addr = wrapAddr(rng.next() & ~7ULL);
            ld.memSize = 8;
            // A little dependent bookkeeping work.
            put(out, OpClass::IntAlu, 3, ptr);
            uops_ += 3;
            if (uops_ - last_branch_ >= 24) {
                putLoopBranch(out, 64);
                last_branch_ = uops_;
            }
        }
        out.resize(target);
    }

  private:
    uint64_t chain_ = 0;
    uint64_t uops_ = 0;
    uint64_t last_branch_ = 0;
};

/**
 * k independent arithmetic dependency chains; offered ILP tracks k.
 * Dependency distance is enforced through a global register-rotation
 * counter: each op depends on the op `m` slots earlier, with m chosen
 * so that per-op latency divides out (FP chains rotate across extra
 * registers to software-pipeline their multi-cycle latency). Loop
 * bodies are a constant 15 ops regardless of k so branch density does
 * not leak the ILP degree into frontend counters — the low-mode
 * saturation blindspot (Sec. 6.1) requires that only backend
 * occupancy/readiness telemetry can witness clipped ILP.
 */
class IlpKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        const int k = std::max<int>(1, params_.chains);
        const int rot = params_.fp ? 5 : 1;
        const int m = std::min(28, k * rot);
        while (out.size() < target) {
            beginIteration();
            for (int slot = 0; slot < 15; ++slot) {
                const int8_t reg = static_cast<int8_t>(
                    kDataReg + (gslot_++ % static_cast<uint64_t>(m)));
                // ~5% cache-resident filler loads to scratch regs;
                // they must not break the serial chains.
                if (rng.bernoulli(0.05)) {
                    auto &ld = put(out, OpClass::Load,
                                   static_cast<int8_t>(44 + (slot & 3)),
                                   1);
                    ld.addr = wrapAddr(rng.next() & ~7ULL);
                    ld.memSize = 8;
                } else {
                    // Second source is a loop-invariant register so
                    // chains stay mutually independent.
                    put(out, arithClass(rng), reg, reg, 8);
                }
            }
            putLoopBranch(out, 64);
        }
        out.resize(target);
    }

  private:
    uint64_t gslot_ = 0;
};

/** Short blocks ending in branches of configurable predictability. */
class BranchyKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        while (out.size() < target) {
            // Pick one of 32 static blocks: realistic I-footprint and
            // per-pc predictor state.
            const uint32_t block = static_cast<uint32_t>(rng.below(32));
            body_pc_ = pc_base_ + block * 64;
            const int work = 1 + static_cast<int>(rng.below(3));
            for (int i = 0; i < work; ++i) {
                // Independent per-lane updates: blocks are mostly
                // mispredict-bound, not dependence-bound.
                const int8_t lane =
                    static_cast<int8_t>(kDataReg + (i & 7));
                put(out, OpClass::IntAlu, lane, lane, 8);
            }
            if (rng.bernoulli(0.15)) {
                auto &ld = put(out, OpClass::Load,
                               static_cast<int8_t>(kDataReg + 8), 1);
                ld.addr = wrapAddr(rng.next() & ~7ULL);
                ld.memSize = 8;
            }
            MicroOp br;
            br.pc = body_pc_;
            br.cls = OpClass::Branch;
            br.src0 = kDataReg;
            // Each block has a bias; predictability is the chance the
            // branch follows it.
            const bool bias = (block & 1) != 0;
            br.branchTaken =
                rng.bernoulli(params_.predictability) ? bias : !bias;
            out.push_back(br);
        }
        out.resize(target);
    }
};

/**
 * Bursts of independent, cache-missing loads: high memory-level
 * parallelism. Miss-rate counters look "memory bound", but the wide
 * mode's second memory unit still buys real throughput — the
 * blindspot generator.
 */
class MlpRichKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        const int degree = std::max<int>(2, params_.mlpDegree);
        while (out.size() < target) {
            beginIteration();
            for (int i = 0; i < degree; ++i) {
                const int8_t reg =
                    static_cast<int8_t>(kDataReg + (i % 28));
                auto &ld = put(out, OpClass::Load, reg, 1);
                ld.addr = wrapAddr(rng.next() & ~7ULL);
                ld.memSize = 8;
                ++uops_;
                // Thin independent post-processing per load.
                for (int c = 0; c < params_.computePerElem; ++c) {
                    put(out, OpClass::IntAlu, reg, reg);
                    ++uops_;
                }
                // Constant branch density regardless of burst degree:
                // frontend counters must not leak the MLP degree (the
                // queueing blindspot is only visible to latency and
                // occupancy telemetry).
                if (uops_ - last_branch_ >= 24) {
                    putLoopBranch(out, 64);
                    last_branch_ = uops_;
                }
            }
            put(out, OpClass::IntAlu, 1, 1);
            ++uops_;
        }
        out.resize(target);
    }

  private:
    uint64_t uops_ = 0;
    uint64_t last_branch_ = 0;
};

/** Strided loads with reuse plus an FP chain; borderline intervals. */
class StencilKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        while (out.size() < target) {
            beginIteration();
            const int8_t acc = kDataReg;
            for (int tap = 0; tap < 3; ++tap) {
                const int8_t reg =
                    static_cast<int8_t>(kDataReg + 1 + tap);
                auto &ld = put(out, OpClass::Load, reg, 1);
                ld.addr = wrapAddr(cursor_ +
                                   static_cast<uint64_t>(tap) *
                                       params_.strideBytes);
                ld.memSize = 8;
            }
            put(out, OpClass::FpMul, acc, kDataReg + 1, kDataReg + 2);
            put(out, OpClass::FpFma, acc, acc, kDataReg + 3);
            if (rng.bernoulli(0.5))
                put(out, OpClass::FpAdd, acc, acc, kDataReg + 2);
            auto &st = put(out, OpClass::Store, kNoReg, acc, 1);
            st.addr = wrapAddr(cursor_ + (1 << 19));
            st.memSize = 8;
            cursor_ += 8;
            put(out, OpClass::IntAlu, 1, 1);
            putLoopBranch(out, 32);
        }
        out.resize(target);
    }

  private:
    uint64_t cursor_ = 0;
};

/** One long FP latency chain; IPC latency-bound in either mode. */
class FpSerialKernel : public LoopKernel
{
  public:
    using LoopKernel::LoopKernel;

    void
    emit(std::vector<MicroOp> &out, size_t n, Rng &rng) override
    {
        const size_t target = out.size() + n;
        while (out.size() < target) {
            beginIteration();
            const int8_t acc = kDataReg;
            for (int i = 0; i < 8; ++i) {
                const OpClass cls = rng.bernoulli(0.1)
                    ? OpClass::FpDiv
                    : (rng.bernoulli(0.5) ? OpClass::FpMul
                                          : OpClass::FpFma);
                put(out, cls, acc, acc,
                    static_cast<int8_t>(kDataReg + 1 + (i & 3)));
            }
            if (rng.bernoulli(0.25)) {
                auto &ld = put(out, OpClass::Load, kDataReg + 1, 1);
                ld.addr = wrapAddr(rng.next() & ~7ULL);
                ld.memSize = 8;
            }
            putLoopBranch(out, 64);
        }
        out.resize(target);
    }
};

} // namespace

std::unique_ptr<Kernel>
makeKernel(const KernelParams &params, uint32_t instance_id)
{
    // Give each instance private 64KB code / 256MB data regions.
    const uint64_t pc_base =
        0x400000ULL + static_cast<uint64_t>(instance_id) * 0x10000ULL;
    const uint64_t mem_base =
        0x10000000ULL + static_cast<uint64_t>(instance_id) * 0x10000000ULL;

    switch (params.kind) {
      case KernelKind::Stream:
        return std::make_unique<StreamKernel>(params, pc_base, mem_base);
      case KernelKind::PointerChase:
        return std::make_unique<PointerChaseKernel>(params, pc_base,
                                                    mem_base);
      case KernelKind::Ilp:
        return std::make_unique<IlpKernel>(params, pc_base, mem_base);
      case KernelKind::Branchy:
        return std::make_unique<BranchyKernel>(params, pc_base, mem_base);
      case KernelKind::MlpRich:
        return std::make_unique<MlpRichKernel>(params, pc_base, mem_base);
      case KernelKind::Stencil:
        return std::make_unique<StencilKernel>(params, pc_base, mem_base);
      case KernelKind::FpSerial:
        return std::make_unique<FpSerialKernel>(params, pc_base, mem_base);
      default:
        panic("unknown kernel kind");
    }
}

} // namespace psca
