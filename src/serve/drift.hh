/**
 * @file
 * Telemetry drift detection against the active firmware's training
 * scaler (DESIGN.md §15). Every block's cycle-normalized aggregate
 * feature row is projected into the active scaler's z-space — the
 * exact transform the deployed model sees — and per-feature first and
 * second moments are accumulated over a fixed window of blocks. If
 * the model still matched the telemetry distribution it was trained
 * on, the window-mean z of every feature sits near 0 and the z
 * variance near 1; a sustained mean shift or variance inflation in
 * scaler units is exactly the statistical blindspot the paper's
 * retraining story closes.
 *
 * A second, model-free signal trends the guardrail trip rate against
 * the baseline established right after the reference was set: a model
 * whose mistakes the guardrail keeps catching is drifting even if the
 * input marginals look stable.
 *
 * Determinism: plain sequential double accumulation on the (single)
 * serve loop thread — no wall clock, no sampling — so the verdict
 * sequence is a pure function of the telemetry stream.
 */

#ifndef PSCA_SERVE_DRIFT_HH
#define PSCA_SERVE_DRIFT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "sim/config.hh"

namespace psca {
namespace serve {

/** Drift-detector tuning (serve env knobs; see OPERATIONS.md). */
struct DriftConfig
{
    /** Blocks per evaluation window. */
    size_t windowBlocks = 12;
    /** Window-mean |z| above this in any feature = mean drift. */
    double zThreshold = 3.0;
    /** Window z-variance above this in any feature = spread drift. */
    double varThreshold = 16.0;
    /** Trip-rate drift when rate > max(floor, baseline * factor). */
    double tripRateFactor = 4.0;
    double tripRateFloor = 0.25;
};

/** One completed window's verdict. */
struct DriftVerdict
{
    bool drifted = false;
    double maxAbsMeanZ = 0.0;
    double maxVarZ = 0.0;
    size_t worstFeature = 0;
    double tripRate = 0.0;
    std::string reason; //!< "" when healthy
};

class DriftDetector
{
  public:
    explicit DriftDetector(DriftConfig cfg);

    /**
     * Adopt a new reference distribution (the active package's
     * per-mode scalers over @p dims features). Clears the window and
     * the guardrail-trip baseline.
     */
    void setReference(const FeatureScaler &high,
                      const FeatureScaler &low, size_t dims);

    /**
     * Observe one finished block: @p agg is the cycle-normalized
     * aggregate feature row (model column order), @p mode the mode
     * the block executed in (selects the scaler), @p trips_delta the
     * guardrail trips attributed to this block.
     */
    void observe(const std::vector<float> &agg, CoreMode mode,
                 uint64_t trips_delta);

    /** True when a full window is ready to evaluate. */
    bool windowComplete() const
    {
        return dims_ > 0 && count_ >= cfg_.windowBlocks;
    }

    /**
     * Evaluate and reset the completed window. The first window after
     * setReference() establishes the trip-rate baseline and can only
     * drift on the z statistics.
     */
    DriftVerdict takeWindow();

    /** Windows evaluated since the last setReference(). */
    uint64_t windowsEvaluated() const { return windows_; }

  private:
    DriftConfig cfg_;
    FeatureScaler high_;
    FeatureScaler low_;
    size_t dims_ = 0;
    std::vector<double> sumZ_;
    std::vector<double> sumZ2_;
    size_t count_ = 0;
    uint64_t trips_ = 0;
    double baselineTripRate_ = -1.0; //!< <0 until first window
    uint64_t windows_ = 0;
};

} // namespace serve
} // namespace psca

#endif // PSCA_SERVE_DRIFT_HH
