/**
 * @file
 * Versioned firmware rollback ring (DESIGN.md §15): the on-disk store
 * the adaptive service promotes retrained firmware into and rolls
 * back from. A ring directory holds immutable image files fw.v<N>.bin
 * plus one manifest naming the active version and the content
 * checksum of every retained image.
 *
 * Crash-safety: promote() publishes the new image and the updated
 * manifest through a single ArtifactTxn, staging the image BEFORE the
 * manifest — ArtifactTxn commits renames in stage order, so a crash
 * between the two renames leaves the old manifest pointing at the old
 * (complete, verified) image, with the new image present but
 * unreferenced. A reader can never observe a manifest that references
 * bytes that are not fully on disk. rollbackTo() rewrites only the
 * manifest (one atomic rename); image files are immutable once
 * published, which is what makes a post-probation rollback
 * byte-identical to the pre-swap state.
 *
 * Verification: the manifest records an FNV-1a checksum over each
 * image's content (everything before the image's own 8-byte
 * trailer). loadActive() checks the file against the manifest before
 * deserializing and walks back version by version on mismatch, so
 * the service always converges to the newest verifiable image.
 */

#ifndef PSCA_SERVE_RING_HH
#define PSCA_SERVE_RING_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/firmware_image.hh"

namespace psca {
namespace serve {

class FirmwareRing
{
  public:
    /**
     * Open (creating if needed) a ring rooted at @p dir, replaying
     * the manifest. A missing manifest yields an empty ring; a
     * corrupt one is quarantined and the ring restarts empty (images
     * already on disk stay behind for inspection but are unreachable
     * without their recorded checksums).
     *
     * @param keep Retained versions; pruning never drops the active
     *             version or the one promoted immediately before it.
     */
    explicit FirmwareRing(std::string dir, int keep = 4);

    bool empty() const { return entries_.empty(); }
    uint32_t activeVersion() const { return active_; }
    uint32_t latestVersion() const;
    size_t size() const { return entries_.size(); }

    std::string imagePath(uint32_t version) const;
    std::string manifestPath() const;

    /** Manifest checksum of @p version (0 when not retained). */
    uint64_t imageChecksum(uint32_t version) const;

    /** The version promoted immediately before @p version (0 if none). */
    uint32_t previousVersion(uint32_t version) const;

    /**
     * Publish @p pkg as version latest+1 and atomically make it
     * active (one transaction: image staged first, then manifest).
     * Returns the new version number, or 0 on failure — injected
     * serve.swap_crash, staging IO errors, or a failed commit — with
     * the ring unchanged either way.
     */
    uint32_t promote(const FirmwarePackage &pkg);

    /**
     * Atomically repoint the manifest's active version to @p version
     * (must be retained). The image bytes are untouched — rollback
     * restores exactly the bytes promoted earlier.
     */
    bool rollbackTo(uint32_t version);

    /**
     * Load and verify the newest usable image: try the active
     * version, and on checksum/deserialize failure walk back through
     * retained versions (repointing the manifest at the survivor).
     * False only when no retained image verifies.
     *
     * @param version Out: the version actually loaded.
     */
    bool loadActive(FirmwarePackage &pkg, uint32_t &version);

    /**
     * Verify @p version's image file against the manifest checksum
     * (content bytes and the image's own trailer word).
     */
    bool verifyImage(uint32_t version) const;

    /** verifyImage() over every retained version. */
    bool verifyAll() const;

    /**
     * Test seam: called between staging both files and committing
     * the promotion transaction. Crash-window tests use it to
     * SIGKILL the process with files staged but unpublished.
     */
    void setPromoteHook(std::function<void()> hook);

  private:
    bool readManifest();
    void writeManifestPayload(
        BinaryWriter &out, uint32_t active,
        const std::vector<std::pair<uint32_t, uint64_t>> &entries)
        const;

    std::string dir_;
    int keep_;
    uint32_t active_ = 0;
    /** (version, content checksum), oldest first. */
    std::vector<std::pair<uint32_t, uint64_t>> entries_;
    std::function<void()> promoteHook_;
};

} // namespace serve
} // namespace psca

#endif // PSCA_SERVE_RING_HH
