/**
 * @file
 * The online adaptation service (DESIGN.md §15, ROADMAP item 4): runs
 * the closed sim+controller loop indefinitely over a workload
 * schedule while managing the model lifecycle through an explicit
 * health state machine,
 *
 *   HEALTHY -> DRIFTING -> RETRAINING -> SHADOWING -> PROMOTING
 *           -> (ROLLED_BACK | HEALTHY)
 *
 * The live loop always executes the ACTIVE firmware, loaded from the
 * versioned rollback ring (serve/ring.hh) and wrapped in the
 * production guardrail. The drift detector (serve/drift.hh) watches
 * the active model's own input distribution; a drifted window
 * triggers a retrain on the current workload's record through the
 * journaled pipeline (trainDual — checkpoint/resume and the dist
 * fleet come for free). The retrained candidate runs as a SHADOW:
 * scored on the same live telemetry the active model sees, decisions
 * never applied. After PSCA_SERVE_AB_INTERVALS scored blocks the
 * candidate is promoted only if it beats the active model's
 * mispredict count without regressing estimated PPW beyond the
 * configured slack; promotion is a transactional firmware swap into
 * the ring, followed by a probation window that auto-rolls back to
 * the prior image if guardrail trips exceed the pre-swap baseline.
 *
 * Determinism: all control decisions derive from simulated telemetry
 * and seeded substreams — block counters, never wall clock — so one
 * (seed, env) pair produces a byte-identical lifecycle transition
 * sequence and final firmware at any PSCA_THREADS. The transition
 * sequence is written as a deterministic artifact
 * (<dir>/lifecycle.txt) that CI diffs across reruns.
 */

#ifndef PSCA_SERVE_SERVICE_HH
#define PSCA_SERVE_SERVICE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/builder.hh"
#include "core/guardrail.hh"
#include "core/pipeline.hh"
#include "serve/drift.hh"
#include "serve/ring.hh"

namespace psca {
namespace serve {

/** Lifecycle states (serve.state gauge exports the numeric value). */
enum class ServeState : uint8_t
{
    Healthy = 0,
    Drifting = 1,
    Retraining = 2,
    Shadowing = 3,
    Promoting = 4, //!< swapped; post-swap probation window running
    RolledBack = 5,
};

/** Printable state name ("HEALTHY", ...). */
const char *serveStateName(ServeState s);

/** Service tuning; fromEnv() reads the PSCA_SERVE_* knobs. */
struct ServeConfig
{
    /** Lifecycle management on/off (PSCA_SERVE). Off = the loop
     *  runs the bootstrap firmware forever; no serve stats. */
    bool lifecycle = true;
    size_t driftWindow = 12;        //!< PSCA_SERVE_DRIFT_WINDOW
    double driftZ = 3.0;            //!< PSCA_SERVE_DRIFT_Z
    size_t abIntervals = 16;        //!< PSCA_SERVE_AB_INTERVALS
    size_t probationIntervals = 16; //!< PSCA_SERVE_PROBATION_INTERVALS
    size_t cooldownBlocks = 24;     //!< PSCA_SERVE_COOLDOWN_BLOCKS
    double abPpwSlackPct = 2.0;     //!< PSCA_SERVE_AB_PPW_SLACK_PCT
    int ringKeep = 4;               //!< PSCA_SERVE_RING_KEEP
    uint64_t granularityInstr = 40000;
    uint64_t seed = 1;
    std::string dir; //!< ring + lifecycle artifact directory
    /** Record columns feeding the models (input order). */
    std::vector<size_t> columns{0, 1, 2, 3, 4, 5, 6, 7};
    /** Retrained forest shape (small: retrains happen inline). */
    int forestTrees = 8;
    int forestDepth = 6;

    /** Env-configured defaults (dir defaults to the cache dir). */
    static ServeConfig fromEnv();
};

/** One schedule entry: a workload served for a number of blocks. */
struct ServeSegment
{
    Workload workload;
    uint64_t blocks = 0;
};

/** Aggregate outcome of a serve run (also exported as serve.*). */
struct ServeOutcome
{
    uint64_t blocks = 0;
    uint64_t driftsDetected = 0;
    uint64_t retrains = 0;
    uint64_t retrainFailures = 0;
    uint64_t shadowsScored = 0;
    uint64_t promotions = 0;
    uint64_t rejections = 0;
    uint64_t rollbacks = 0;
    uint64_t swapFailures = 0;
    uint64_t shadowCorruptions = 0;
    uint32_t activeVersion = 0;
    /** Live PPW gain over the per-segment high-only reference, %. */
    double ppwGainPct = 0.0;
    /** Deterministic lifecycle transition lines, in order. */
    std::vector<std::string> lifecycle;
};

class Service
{
  public:
    /**
     * Bring the service up: open (or bootstrap) the firmware ring
     * under cfg.dir, load + verify the active image, and register
     * the /health provider. @p build must carry the counter ids the
     * packages were trained with.
     */
    Service(ServeConfig cfg, BuildConfig build,
            std::vector<ServeSegment> schedule);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Run up to @p max_blocks blocks (0 = the whole schedule),
     * honoring stopRequested() at block boundaries. Writes the
     * lifecycle artifact and exports serve.* stats on return.
     */
    const ServeOutcome &run(uint64_t max_blocks = 0);

    ServeState state() const { return state_; }
    uint32_t activeVersion() const { return ring_.activeVersion(); }
    const FirmwareRing &ring() const { return ring_; }
    const ServeOutcome &outcome() const { return outcome_; }

    /** The /health JSON body (thread-safe; HTTP thread calls it). */
    std::string healthJson() const;

  private:
    struct SegmentRt; //!< per-segment runtime (replayer, labels, ref)

    void transition(ServeState to, const std::string &reason);
    void lifecycleLine(const std::string &line, bool warnLevel = false);
    bool bootstrap();
    FirmwarePackage trainCandidate(const SegmentRt &seg,
                                   const std::string &name);
    void loadActivePredictor();
    void enterSegment(size_t idx);
    void stepBlock();
    void evaluateShadowGate();
    void evaluateProbation();
    void finishRun();
    std::vector<float> aggregateRow(
        const std::vector<const float *> &rows,
        const std::vector<float> &cycles) const;
    void updateHealthView();

    ServeConfig cfg_;
    BuildConfig build_;
    std::vector<ServeSegment> schedule_;
    size_t k_; //!< sub-intervals per block

    FirmwareRing ring_;
    DriftDetector drift_;
    ServeState state_ = ServeState::Healthy;
    ServeOutcome outcome_;

    // Active firmware path: package -> VM predictor -> guardrail.
    FirmwarePackage activePkg_;
    std::unique_ptr<VmPredictor> activeVm_;
    std::unique_ptr<GuardrailedPredictor> guard_;
    uint64_t lastTrips_ = 0;

    // Shadow candidate (present only while SHADOWING/PROMOTING).
    std::unique_ptr<FirmwarePackage> shadowPkg_;
    std::unique_ptr<VmPredictor> shadowVm_;

    // Current segment runtime.
    std::unique_ptr<SegmentRt> seg_;
    size_t segIdx_ = 0;
    uint64_t segBlocksDone_ = 0;

    // Decision shift register: [0] applies now, [2] just decided.
    uint8_t pending_[3] = {0, 0, 0};

    // A/B scoring window (SHADOWING).
    size_t abScored_ = 0;
    uint64_t abActiveWrong_ = 0;
    uint64_t abShadowWrong_ = 0;
    double abActiveEnergy_ = 0.0;
    double abShadowEnergy_ = 0.0;
    uint64_t abBaselineTrips_ = 0; //!< pre-swap guardrail baseline

    // Probation window (PROMOTING).
    size_t probationBlocks_ = 0;
    uint64_t probationTrips_ = 0;
    uint32_t promotedFrom_ = 0; //!< rollback target

    uint64_t cooldown_ = 0; //!< blocks before drift can re-trigger

    PpwAccumulator adaptive_;
    PpwAccumulator referenceHigh_;

    uint64_t lastPromoteBlock_ = 0;
    uint64_t lastRollbackBlock_ = 0;
    uint32_t lastRollbackVersion_ = 0;
    double lastMaxZ_ = 0.0;

    mutable std::mutex healthMu_;
    std::string healthJson_;
};

} // namespace serve
} // namespace psca

#endif // PSCA_SERVE_SERVICE_HH
