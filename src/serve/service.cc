#include "serve/service.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/firmware_image.hh"
#include "obs/http.hh"
#include "obs/stats.hh"

namespace psca {
namespace serve {

namespace {

/**
 * The /health provider hook is a plain function pointer (obs cannot
 * link against serve), so the live Service instance parks itself here.
 * One service per process — the second constructor wins the pointer,
 * matching the registry/event-sink singletons' latest-wins convention.
 */
Service *g_service = nullptr;

std::string
healthTrampoline()
{
    Service *s = g_service;
    return s ? s->healthJson() : std::string("{\n  \"state\": \"idle\"\n}\n");
}

std::string
fmt3(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Estimated energy of executing one block in the chosen mode, from
 *  the reference record's per-interval dual-mode measurements. */
double
blockEnergyNj(const TraceRecord &ref, size_t block, size_t k, bool gated)
{
    const std::vector<float> &e =
        gated ? ref.energyLowNj : ref.energyHighNj;
    double sum = 0.0;
    const size_t begin = block * k;
    for (size_t t = begin; t < begin + k && t < e.size(); ++t)
        sum += e[t];
    return sum;
}

} // namespace

const char *
serveStateName(ServeState s)
{
    switch (s) {
      case ServeState::Healthy:
        return "HEALTHY";
      case ServeState::Drifting:
        return "DRIFTING";
      case ServeState::Retraining:
        return "RETRAINING";
      case ServeState::Shadowing:
        return "SHADOWING";
      case ServeState::Promoting:
        return "PROMOTING";
      case ServeState::RolledBack:
        return "ROLLED_BACK";
    }
    return "UNKNOWN";
}

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig cfg;
    cfg.lifecycle = env::flagOr("PSCA_SERVE", true);
    cfg.driftWindow = static_cast<size_t>(
        env::intOr("PSCA_SERVE_DRIFT_WINDOW", 12, 2, 1 << 20));
    cfg.driftZ = env::doubleOr("PSCA_SERVE_DRIFT_Z", 3.0, 0.1, 1e6);
    cfg.abIntervals = static_cast<size_t>(
        env::intOr("PSCA_SERVE_AB_INTERVALS", 16, 1, 1 << 20));
    cfg.probationIntervals = static_cast<size_t>(
        env::intOr("PSCA_SERVE_PROBATION_INTERVALS", 16, 1, 1 << 20));
    cfg.cooldownBlocks = static_cast<size_t>(
        env::intOr("PSCA_SERVE_COOLDOWN_BLOCKS", 24, 0, 1 << 20));
    cfg.abPpwSlackPct =
        env::doubleOr("PSCA_SERVE_AB_PPW_SLACK_PCT", 2.0, 0.0, 100.0);
    cfg.ringKeep =
        static_cast<int>(env::intOr("PSCA_SERVE_RING_KEEP", 4, 2, 64));
    cfg.dir = env::stringOr("PSCA_SERVE_DIR",
                            (cacheDirectory() + "/serve").c_str());
    return cfg;
}

/** Per-segment runtime: the dual-mode reference record (ground truth
 *  and A/B energy estimates), its block labels, and the live
 *  replayer of the current pass. */
struct Service::SegmentRt
{
    size_t index = 0;
    Workload workload;
    TraceRecord ref;
    std::vector<uint8_t> labels;
    size_t passBlocks = 0;
    std::unique_ptr<BlockReplayer> replayer;
    uint64_t passBlockIdx = 0; //!< block within the current pass
};

Service::Service(ServeConfig cfg, BuildConfig build,
                 std::vector<ServeSegment> schedule)
    : cfg_(std::move(cfg)), build_(std::move(build)),
      schedule_(std::move(schedule)),
      k_(static_cast<size_t>(cfg_.granularityInstr /
                             build_.intervalInstr)),
      ring_(cfg_.dir, cfg_.ringKeep),
      drift_(DriftConfig{cfg_.driftWindow, cfg_.driftZ, 16.0, 4.0,
                         0.25})
{
    PSCA_ASSERT(!schedule_.empty(), "serve: empty schedule");
    PSCA_ASSERT(k_ >= 1 &&
                    cfg_.granularityInstr % build_.intervalInstr == 0,
                "serve: granularity must be a multiple of the "
                "telemetry interval");
    g_service = this;
    obs::setHealthProvider(&healthTrampoline);
    updateHealthView();
}

Service::~Service()
{
    if (g_service == this) {
        obs::setHealthProvider(nullptr);
        g_service = nullptr;
    }
}

void
Service::lifecycleLine(const std::string &line, bool warnLevel)
{
    outcome_.lifecycle.push_back(line);
    emitEvent("serve", warnLevel ? LogLevel::Warn : LogLevel::Info,
              line);
    if (warnLevel)
        warn("serve: ", line);
    else
        inform("serve: ", line);
}

void
Service::transition(ServeState to, const std::string &reason)
{
    const ServeState from = state_;
    state_ = to;
    lifecycleLine("b=" + std::to_string(outcome_.blocks) + " " +
                      serveStateName(from) + "->" +
                      serveStateName(to) + " " + reason,
                  to == ServeState::RolledBack);
    if (cfg_.lifecycle) {
        obs::StatRegistry::instance()
            .counter("serve.transitions")
            .add();
        obs::StatRegistry::instance().gauge("serve.state").set(
            static_cast<double>(static_cast<uint8_t>(to)));
    }
    updateHealthView();
}

FirmwarePackage
Service::trainCandidate(const SegmentRt &seg, const std::string &name)
{
    DualTrainOptions opts;
    opts.granularityInstr = cfg_.granularityInstr;
    opts.pSla = 0.90;
    opts.columns = cfg_.columns;
    opts.rsvWindow = 400;
    opts.seed = mixSeeds(cfg_.seed, outcome_.retrains + 1);
    const TrainedDual dual = trainDual(
        {seg.ref}, build_, opts,
        forestFactory(cfg_.forestTrees, cfg_.forestDepth));
    DualModelPredictor predictor(dual.high, dual.low, cfg_.columns,
                                 cfg_.granularityInstr, name);
    return packageFromDual(predictor, cfg_.columns);
}

void
Service::loadActivePredictor()
{
    uint32_t version = 0;
    FirmwarePackage pkg;
    PSCA_ASSERT(ring_.loadActive(pkg, version),
                "serve: no verifiable firmware in the ring");
    activePkg_ = std::move(pkg);
    // Decisions come from the flashed bytes: the VM predictor runs
    // the ring image, not the in-memory model that produced it.
    activeVm_ = std::make_unique<VmPredictor>(activePkg_);
    guard_ = std::make_unique<GuardrailedPredictor>(*activeVm_);
    lastTrips_ = 0;
    drift_.setReference(activePkg_.high.scaler, activePkg_.low.scaler,
                        activePkg_.columns.size());
    if (cfg_.lifecycle)
        obs::StatRegistry::instance()
            .gauge("serve.active_version")
            .set(static_cast<double>(ring_.activeVersion()));
    updateHealthView();
}

bool
Service::bootstrap()
{
    enterSegment(0);
    lifecycleLine("b=0 BOOTSTRAP training initial firmware on " +
                  seg_->workload.name);
    FirmwarePackage pkg = trainCandidate(*seg_, "serve-fw-v1");
    ++outcome_.retrains;
    const uint32_t v = ring_.promote(pkg);
    if (v == 0) {
        ++outcome_.swapFailures;
        lifecycleLine("b=0 BOOTSTRAP failed: initial promote did not "
                      "commit",
                      true);
        return false;
    }
    lifecycleLine("b=0 BOOTSTRAP promoted fw v" + std::to_string(v));
    return true;
}

void
Service::enterSegment(size_t idx)
{
    const ServeSegment &s = schedule_[idx];
    auto rt = std::make_unique<SegmentRt>();
    rt->index = idx;
    rt->workload = s.workload;
    rt->ref = recordTrace(s.workload, build_,
                          static_cast<uint32_t>(idx),
                          static_cast<uint32_t>(s.workload.traceIndex));
    rt->labels = blockLabels(rt->ref, k_, 0.90);
    rt->passBlocks = rt->ref.numIntervals() / k_;
    PSCA_ASSERT(rt->passBlocks >= 3,
                "serve: workload too short for the closed loop");
    seg_ = std::move(rt);
    segIdx_ = idx;
    segBlocksDone_ = 0;
}

std::vector<float>
Service::aggregateRow(const std::vector<const float *> &rows,
                      const std::vector<float> &cycles) const
{
    // Same aggregate + cycle-normalize as DualModelPredictor::decide,
    // so the drift detector watches exactly the model's input row.
    std::vector<float> agg(activePkg_.columns.size(), 0.0f);
    double total = 0.0;
    for (size_t t = 0; t < rows.size(); ++t) {
        for (size_t j = 0; j < agg.size(); ++j)
            agg[j] += rows[t][activePkg_.columns[j]];
        total += cycles[t];
    }
    const float inv =
        total > 0.0 ? static_cast<float>(1.0 / total) : 0.0f;
    for (auto &v : agg)
        v *= inv;
    return agg;
}

void
Service::stepBlock()
{
    // Fresh pass: replay the segment's trace from the top with a new
    // core, and clear in-flight decisions (they referenced blocks of
    // the finished pass).
    if (!seg_->replayer || seg_->passBlockIdx >= seg_->passBlocks) {
        seg_->replayer = std::make_unique<BlockReplayer>(
            seg_->workload, build_, k_);
        seg_->passBlockIdx = 0;
        pending_[0] = pending_[1] = pending_[2] = 0;
    }

    const bool apply_gate = pending_[0] != 0;
    const CoreMode mode =
        apply_gate ? CoreMode::LowPower : CoreMode::HighPerf;
    seg_->replayer->runBlock(mode, adaptive_);

    // Non-adaptive high-performance baseline over the same intervals,
    // from the reference record (what runClosedLoop compares against).
    const size_t base = seg_->passBlockIdx * k_;
    for (size_t t = base; t < base + k_; ++t)
        referenceHigh_.add(build_.intervalInstr,
                           static_cast<uint64_t>(seg_->ref.cyclesHigh[t]),
                           seg_->ref.energyHighNj[t]);

    const std::vector<const float *> rows = seg_->replayer->rowPtrs();
    const std::vector<float> &cycles = seg_->replayer->subCycles();

    const bool decision = guard_->decide(rows, cycles, mode);
    const uint64_t trips = guard_->trips();
    uint64_t trips_delta = trips - lastTrips_;
    lastTrips_ = trips;

    pending_[0] = pending_[1];
    pending_[1] = pending_[2];
    pending_[2] = decision ? 1 : 0;

    // Shadow scoring: the candidate sees the identical telemetry and
    // is graded (never applied) against the same ground-truth label
    // the active model's raw decision targets.
    if (state_ == ServeState::Shadowing) {
        const size_t target = seg_->passBlockIdx + 2;
        if (target < seg_->passBlocks) {
            const bool truth = seg_->labels[target] != 0;
            const bool active_raw = guard_->lastInnerDecision();
            const bool shadow_raw =
                shadowVm_->decide(rows, cycles, mode);
            if (active_raw != truth)
                ++abActiveWrong_;
            if (shadow_raw != truth)
                ++abShadowWrong_;
            double shadow_nj = blockEnergyNj(seg_->ref, target, k_,
                                             shadow_raw);
            const FaultSite &corrupt =
                FAULT_SITE("serve.shadow_corrupt");
            if (corrupt.enabled() &&
                corrupt.fires(outcome_.shadowsScored))
            {
                shadow_nj = std::nan("");
                ++outcome_.shadowCorruptions;
                if (cfg_.lifecycle)
                    obs::StatRegistry::instance()
                        .counter("serve.shadow_corruptions")
                        .add();
            }
            abActiveEnergy_ +=
                blockEnergyNj(seg_->ref, target, k_, active_raw);
            abShadowEnergy_ += shadow_nj;
            abBaselineTrips_ += trips_delta;
            ++abScored_;
            ++outcome_.shadowsScored;
            if (abScored_ >= cfg_.abIntervals)
                evaluateShadowGate();
        }
    }

    // Probation accounting, with the injected-regression site adding
    // synthetic trips keyed by (promotion ordinal, probation block).
    if (state_ == ServeState::Promoting) {
        ++probationBlocks_;
        probationTrips_ += trips_delta;
        const FaultSite &regress =
            FAULT_SITE("serve.probation_regress");
        if (regress.enabled() &&
            regress.fires(
                mixSeeds(outcome_.promotions, probationBlocks_)))
        {
            probationTrips_ += static_cast<uint64_t>(regress.param(1.0));
            if (cfg_.lifecycle)
                obs::StatRegistry::instance()
                    .counter("serve.probation_injected_trips")
                    .add();
        }
        if (probationBlocks_ >= cfg_.probationIntervals)
            evaluateProbation();
    }

    // Drift detection runs on every block; the verdict only acts in
    // HEALTHY outside the cooldown, but windows keep their cadence
    // in every state so the block->window mapping is state-free.
    drift_.observe(aggregateRow(rows, cycles), mode, trips_delta);
    if (drift_.windowComplete()) {
        const DriftVerdict v = drift_.takeWindow();
        lastMaxZ_ = v.maxAbsMeanZ;
        if (cfg_.lifecycle) {
            obs::StatRegistry::instance()
                .counter("serve.drift_windows")
                .add();
            obs::StatRegistry::instance()
                .gauge("drift.max_abs_mean_z")
                .set(v.maxAbsMeanZ);
            obs::StatRegistry::instance()
                .gauge("drift.trip_rate")
                .set(v.tripRate);
        }
        if (v.drifted && cfg_.lifecycle &&
            state_ == ServeState::Healthy && cooldown_ == 0)
        {
            ++outcome_.driftsDetected;
            if (cfg_.lifecycle)
                obs::StatRegistry::instance()
                    .counter("serve.drifts_detected")
                    .add();
            transition(ServeState::Drifting,
                       v.reason + " (feature " +
                           std::to_string(v.worstFeature) +
                           ", |z|=" + fmt3(v.maxAbsMeanZ) +
                           ", trip_rate=" + fmt3(v.tripRate) + ")");
            transition(ServeState::Retraining,
                       "retraining on " + seg_->workload.name);
            const FaultSite &rfail = FAULT_SITE("serve.retrain_fail");
            if (rfail.enabled() && rfail.fires(outcome_.retrains)) {
                ++outcome_.retrainFailures;
                if (cfg_.lifecycle)
                    obs::StatRegistry::instance()
                        .counter("serve.retrain_failures")
                        .add();
                cooldown_ = cfg_.cooldownBlocks;
                transition(ServeState::Healthy,
                           "retrain failed; keeping fw v" +
                               std::to_string(ring_.activeVersion()));
            } else {
                FirmwarePackage pkg = trainCandidate(
                    *seg_, "serve-fw-v" +
                               std::to_string(ring_.latestVersion() +
                                              1));
                ++outcome_.retrains;
                if (cfg_.lifecycle)
                    obs::StatRegistry::instance()
                        .counter("serve.retrains")
                        .add();
                shadowPkg_ =
                    std::make_unique<FirmwarePackage>(std::move(pkg));
                shadowVm_ =
                    std::make_unique<VmPredictor>(*shadowPkg_);
                abScored_ = 0;
                abActiveWrong_ = abShadowWrong_ = 0;
                abActiveEnergy_ = abShadowEnergy_ = 0.0;
                abBaselineTrips_ = 0;
                transition(ServeState::Shadowing,
                           "candidate trained; A/B scoring " +
                               std::to_string(cfg_.abIntervals) +
                               " intervals");
            }
        }
    }

    if (cooldown_ > 0) {
        --cooldown_;
        if (cooldown_ == 0 && state_ == ServeState::RolledBack)
            transition(ServeState::Healthy, "cooldown complete");
    }

    ++outcome_.blocks;
    ++segBlocksDone_;
    ++seg_->passBlockIdx;
}

void
Service::evaluateShadowGate()
{
    const bool finite = std::isfinite(abShadowEnergy_) &&
        std::isfinite(abActiveEnergy_) && abActiveEnergy_ > 0.0;
    const double slack = 1.0 + cfg_.abPpwSlackPct / 100.0;
    const bool wins = finite && abShadowWrong_ <= abActiveWrong_ &&
        abShadowEnergy_ <= abActiveEnergy_ * slack;

    const std::string score = "active(wrong=" +
        std::to_string(abActiveWrong_) +
        ", nj=" + fmt3(abActiveEnergy_) + ") shadow(wrong=" +
        std::to_string(abShadowWrong_) +
        ", nj=" + (finite ? fmt3(abShadowEnergy_)
                          : std::string("corrupt")) +
        ")";

    if (!wins) {
        ++outcome_.rejections;
        if (cfg_.lifecycle)
            obs::StatRegistry::instance()
                .counter("serve.rejections")
                .add();
        shadowVm_.reset();
        shadowPkg_.reset();
        cooldown_ = cfg_.cooldownBlocks;
        transition(ServeState::Healthy,
                   std::string(finite ? "candidate rejected "
                                      : "shadow score corrupted; "
                                        "candidate rejected ") +
                       score);
        return;
    }

    promotedFrom_ = ring_.activeVersion();
    const uint32_t v = ring_.promote(*shadowPkg_);
    shadowVm_.reset();
    shadowPkg_.reset();
    if (v == 0) {
        ++outcome_.swapFailures;
        if (cfg_.lifecycle)
            obs::StatRegistry::instance()
                .counter("serve.swap_failures")
                .add();
        cooldown_ = cfg_.cooldownBlocks;
        transition(ServeState::Healthy,
                   "swap failed; keeping fw v" +
                       std::to_string(promotedFrom_) + " " + score);
        return;
    }
    ++outcome_.promotions;
    if (cfg_.lifecycle)
        obs::StatRegistry::instance().counter("serve.promotions").add();
    lastPromoteBlock_ = outcome_.blocks;
    loadActivePredictor();
    probationBlocks_ = 0;
    probationTrips_ = 0;
    transition(ServeState::Promoting,
               "promoted fw v" + std::to_string(v) + " over v" +
                   std::to_string(promotedFrom_) + " " + score +
                   "; probation " +
                   std::to_string(cfg_.probationIntervals) +
                   " intervals");
}

void
Service::evaluateProbation()
{
    // Integer cross-multiplication: trips-per-block during probation
    // vs the pre-swap (shadow window) baseline, with one window of
    // slack — no float thresholds in the rollback decision.
    const bool regressed = probationTrips_ * cfg_.abIntervals >
        abBaselineTrips_ * cfg_.probationIntervals + cfg_.abIntervals;

    if (!regressed) {
        transition(ServeState::Healthy,
                   "probation passed (trips " +
                       std::to_string(probationTrips_) +
                       " baseline " +
                       std::to_string(abBaselineTrips_) +
                       "); fw v" +
                       std::to_string(ring_.activeVersion()) +
                       " confirmed");
        return;
    }

    const uint32_t bad = ring_.activeVersion();
    ++outcome_.rollbacks;
    if (cfg_.lifecycle)
        obs::StatRegistry::instance().counter("serve.rollbacks").add();
    PSCA_ASSERT(ring_.rollbackTo(promotedFrom_),
                "serve: rollback target lost from the ring");
    lastRollbackBlock_ = outcome_.blocks;
    lastRollbackVersion_ = promotedFrom_;
    loadActivePredictor();
    cooldown_ = cfg_.cooldownBlocks;
    transition(ServeState::RolledBack,
               "probation regression (trips " +
                   std::to_string(probationTrips_) + " baseline " +
                   std::to_string(abBaselineTrips_) +
                   "); rolled back fw v" + std::to_string(bad) +
                   " -> v" + std::to_string(promotedFrom_));
    // Post-rollback audit: the restored image must be byte-identical
    // to what was promoted (checksum vs manifest). CI greps this line.
    PSCA_ASSERT(ring_.verifyImage(promotedFrom_),
                "serve: restored firmware failed verification");
    lifecycleLine("b=" + std::to_string(outcome_.blocks) +
                  " rollback to v" + std::to_string(promotedFrom_) +
                  " verified");
}

void
Service::finishRun()
{
    outcome_.activeVersion = ring_.activeVersion();
    const double ref_ppw = referenceHigh_.ppw();
    outcome_.ppwGainPct = ref_ppw > 0.0
        ? (adaptive_.ppw() / ref_ppw - 1.0) * 100.0
        : 0.0;

    if (cfg_.lifecycle) {
        auto &reg = obs::StatRegistry::instance();
        reg.gauge("serve.blocks").set(
            static_cast<double>(outcome_.blocks));
        reg.gauge("serve.ppw_gain_pct").set(outcome_.ppwGainPct);
        reg.gauge("serve.active_version").set(
            static_cast<double>(outcome_.activeVersion));
    }

    // The deterministic lifecycle artifact: one line per transition,
    // no timestamps, so two runs with the same seed and env diff
    // clean at any PSCA_THREADS.
    std::ofstream out(cfg_.dir + "/lifecycle.txt",
                      std::ios::trunc | std::ios::binary);
    for (const std::string &line : outcome_.lifecycle)
        out << line << '\n';
    out.close();
    updateHealthView();
}

const ServeOutcome &
Service::run(uint64_t max_blocks)
{
    if (ring_.empty()) {
        if (!bootstrap()) {
            finishRun();
            return outcome_;
        }
    } else if (!seg_) {
        enterSegment(0);
        lifecycleLine("b=0 RESUME fw v" +
                      std::to_string(ring_.activeVersion()) +
                      " loaded from ring");
    }
    loadActivePredictor();

    uint64_t budget = max_blocks;
    if (budget == 0)
        for (const ServeSegment &s : schedule_)
            budget += s.blocks;

    while (outcome_.blocks < budget) {
        if (stopRequested()) {
            lifecycleLine("b=" + std::to_string(outcome_.blocks) +
                          " STOP requested; exiting cleanly");
            break;
        }
        if (segBlocksDone_ >= schedule_[segIdx_].blocks) {
            const size_t next = (segIdx_ + 1) % schedule_.size();
            enterSegment(next);
            lifecycleLine("b=" + std::to_string(outcome_.blocks) +
                          " SEGMENT " + std::to_string(next) + " " +
                          seg_->workload.name);
        }
        stepBlock();
    }

    finishRun();
    return outcome_;
}

std::string
Service::healthJson() const
{
    std::lock_guard<std::mutex> lock(healthMu_);
    return healthJson_;
}

void
Service::updateHealthView()
{
    std::string j = "{\n";
    j += "  \"state\": \"" + std::string(serveStateName(state_)) +
        "\",\n";
    j += "  \"active_version\": " +
        std::to_string(ring_.activeVersion()) + ",\n";
    j += "  \"shadow_active\": " +
        std::string(shadowPkg_ ? "true" : "false") + ",\n";
    j += "  \"blocks\": " + std::to_string(outcome_.blocks) + ",\n";
    j += "  \"drifts_detected\": " +
        std::to_string(outcome_.driftsDetected) + ",\n";
    j += "  \"promotions\": " + std::to_string(outcome_.promotions) +
        ",\n";
    j += "  \"rollbacks\": " + std::to_string(outcome_.rollbacks) +
        ",\n";
    j += "  \"last_promote_block\": " +
        std::to_string(lastPromoteBlock_) + ",\n";
    j += "  \"last_rollback_block\": " +
        std::to_string(lastRollbackBlock_) + ",\n";
    j += "  \"last_rollback_to\": " +
        std::to_string(lastRollbackVersion_) + ",\n";
    j += "  \"drift_max_abs_mean_z\": " + fmt3(lastMaxZ_) + "\n";
    j += "}\n";
    std::lock_guard<std::mutex> lock(healthMu_);
    healthJson_ = std::move(j);
}

} // namespace serve
} // namespace psca
