#include "serve/ring.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "obs/stats.hh"

namespace psca {
namespace serve {

namespace {

constexpr uint64_t kRingMagic = 0x50534341524E4731ULL; // "PSCARNG1"
constexpr uint32_t kRingVersion = 1;

/**
 * FNV-1a over an image file's content (everything before the 8-byte
 * trailer), plus the trailer word itself. Both must agree with the
 * manifest: the trailer is the image's own integrity word, and its
 * value equals the content checksum by construction (write() feeds
 * every payload byte through the running checksum and appends it).
 */
bool
checksumImageFile(const std::string &path, uint64_t &content_sum,
                  uint64_t &trailer)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    const auto size = static_cast<uint64_t>(in.tellg());
    if (size < sizeof(uint64_t))
        return false;
    in.seekg(0, std::ios::beg);
    std::string bytes(size, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(size));
    if (!in)
        return false;
    const size_t content = size - sizeof(uint64_t);
    content_sum =
        fnv1aUpdate(kFnv1aBasis, bytes.data(), content);
    std::memcpy(&trailer, bytes.data() + content, sizeof(trailer));
    return true;
}

} // namespace

FirmwareRing::FirmwareRing(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(keep < 2 ? 2 : keep)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    readManifest();
}

uint32_t
FirmwareRing::latestVersion() const
{
    return entries_.empty() ? 0 : entries_.back().first;
}

std::string
FirmwareRing::imagePath(uint32_t version) const
{
    return dir_ + "/fw.v" + std::to_string(version) + ".bin";
}

std::string
FirmwareRing::manifestPath() const
{
    return dir_ + "/ring.manifest";
}

uint64_t
FirmwareRing::imageChecksum(uint32_t version) const
{
    for (const auto &[v, sum] : entries_)
        if (v == version)
            return sum;
    return 0;
}

uint32_t
FirmwareRing::previousVersion(uint32_t version) const
{
    uint32_t prev = 0;
    for (const auto &[v, sum] : entries_) {
        if (v == version)
            return prev;
        prev = v;
    }
    return 0;
}

bool
FirmwareRing::readManifest()
{
    active_ = 0;
    entries_.clear();
    if (!std::filesystem::exists(manifestPath()))
        return true; // empty ring
    BinaryReader in(manifestPath());
    if (readFileHeader(in, kRingMagic, kRingVersion) !=
        HeaderCheck::Ok)
    {
        quarantineFile(manifestPath(), "bad ring manifest header");
        return false;
    }
    const auto active = in.get<uint32_t>();
    const auto count = in.get<uint64_t>();
    std::vector<std::pair<uint32_t, uint64_t>> entries;
    for (uint64_t i = 0; i < count && in.good(); ++i) {
        const auto v = in.get<uint32_t>();
        const auto sum = in.get<uint64_t>();
        entries.emplace_back(v, sum);
    }
    if (!in.good() || !in.verifyChecksumTrailer()) {
        quarantineFile(manifestPath(), "ring manifest checksum");
        return false;
    }
    active_ = active;
    entries_ = std::move(entries);
    return true;
}

void
FirmwareRing::writeManifestPayload(
    BinaryWriter &out, uint32_t active,
    const std::vector<std::pair<uint32_t, uint64_t>> &entries) const
{
    writeFileHeader(out, kRingMagic, kRingVersion);
    out.put<uint32_t>(active);
    out.put<uint64_t>(entries.size());
    for (const auto &[v, sum] : entries) {
        out.put<uint32_t>(v);
        out.put<uint64_t>(sum);
    }
    out.putChecksumTrailer();
}

void
FirmwareRing::setPromoteHook(std::function<void()> hook)
{
    promoteHook_ = std::move(hook);
}

uint32_t
FirmwareRing::promote(const FirmwarePackage &pkg)
{
    const uint32_t v = latestVersion() + 1;

    ArtifactTxn txn;
    // Stage order is commit (rename) order: image first, manifest
    // second, so a crash between the renames leaves the old manifest
    // pointing at the old image — never a manifest that references
    // missing or partial bytes.
    BinaryWriter &iw = txn.stage(imagePath(v));
    pkg.write(iw);
    const uint64_t sum = iw.checksum();

    // Mid-swap crash injection: the transaction dies after staging,
    // before anything is published. The ring (and the service's
    // active firmware) are untouched.
    const FaultSite &crash = FAULT_SITE("serve.swap_crash");
    if (crash.enabled() && crash.fires(v)) {
        txn.abort();
        warn("serve: injected swap crash mid-transaction promoting "
             "fw v", v, "; ring unchanged");
        return 0;
    }

    auto entries = entries_;
    entries.emplace_back(v, sum);
    std::vector<uint32_t> pruned;
    while (entries.size() > static_cast<size_t>(keep_)) {
        pruned.push_back(entries.front().first);
        entries.erase(entries.begin());
    }

    BinaryWriter &mw = txn.stage(manifestPath());
    writeManifestPayload(mw, v, entries);

    if (promoteHook_)
        promoteHook_();

    if (!txn.commit()) {
        warn("serve: promotion of fw v", v,
             " failed to commit; ring unchanged");
        return 0;
    }

    for (const uint32_t old : pruned)
        std::remove(imagePath(old).c_str());
    entries_ = std::move(entries);
    active_ = v;
    return v;
}

bool
FirmwareRing::rollbackTo(uint32_t version)
{
    if (imageChecksum(version) == 0) {
        warn("serve: rollback target fw v", version,
             " is not retained in the ring");
        return false;
    }
    // Manifest-only transaction: image files are immutable, so the
    // restored firmware is byte-identical to what was promoted.
    const bool ok = writeArtifactFile(
        manifestPath(), [&](BinaryWriter &out) {
            writeManifestPayload(out, version, entries_);
        });
    if (!ok)
        return false;
    active_ = version;
    return true;
}

bool
FirmwareRing::verifyImage(uint32_t version) const
{
    const uint64_t expect = imageChecksum(version);
    if (expect == 0)
        return false;
    uint64_t content = 0;
    uint64_t trailer = 0;
    if (!checksumImageFile(imagePath(version), content, trailer))
        return false;
    return content == expect && trailer == expect;
}

bool
FirmwareRing::verifyAll() const
{
    for (const auto &[v, sum] : entries_)
        if (!verifyImage(v))
            return false;
    return true;
}

bool
FirmwareRing::loadActive(FirmwarePackage &pkg, uint32_t &version)
{
    if (entries_.empty())
        return false;
    // The active version first, then every older retained version in
    // descending order: the newest verifiable image wins.
    std::vector<uint32_t> order{active_};
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
        if (it->first != active_)
            order.push_back(it->first);
    for (const uint32_t v : order) {
        if (!verifyImage(v)) {
            warn("serve: fw v", v, " failed ring verification; "
                 "walking back");
            continue;
        }
        FirmwarePackage loaded;
        if (!FirmwarePackage::tryLoad(imagePath(v), loaded)) {
            warn("serve: fw v", v, " failed to deserialize; "
                 "walking back");
            continue;
        }
        if (v != active_) {
            obs::StatRegistry::instance()
                .counter("serve.ring_recoveries")
                .add();
            emitEvent("serve", LogLevel::Warn,
                      "active fw v" + std::to_string(active_) +
                          " unusable; recovered to verified v" +
                          std::to_string(v));
            if (!rollbackTo(v))
                return false;
        }
        pkg = std::move(loaded);
        version = v;
        return true;
    }
    return false;
}

} // namespace serve
} // namespace psca
