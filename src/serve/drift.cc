#include "serve/drift.hh"

#include <cmath>

namespace psca {
namespace serve {

DriftDetector::DriftDetector(DriftConfig cfg) : cfg_(cfg)
{
    if (cfg_.windowBlocks < 2)
        cfg_.windowBlocks = 2;
}

void
DriftDetector::setReference(const FeatureScaler &high,
                            const FeatureScaler &low, size_t dims)
{
    high_ = high;
    low_ = low;
    dims_ = dims;
    sumZ_.assign(dims_, 0.0);
    sumZ2_.assign(dims_, 0.0);
    count_ = 0;
    trips_ = 0;
    baselineTripRate_ = -1.0;
    windows_ = 0;
}

void
DriftDetector::observe(const std::vector<float> &agg, CoreMode mode,
                       uint64_t trips_delta)
{
    if (dims_ == 0 || agg.size() < dims_)
        return;
    const FeatureScaler &scaler =
        mode == CoreMode::HighPerf ? high_ : low_;
    std::vector<float> z(dims_);
    scaler.applyRow(agg.data(), z.data());
    for (size_t j = 0; j < dims_; ++j) {
        const double zj = std::isfinite(z[j]) ? z[j] : 0.0;
        sumZ_[j] += zj;
        sumZ2_[j] += zj * zj;
    }
    ++count_;
    trips_ += trips_delta;
}

DriftVerdict
DriftDetector::takeWindow()
{
    DriftVerdict v;
    if (count_ == 0)
        return v;
    const double n = static_cast<double>(count_);
    for (size_t j = 0; j < dims_; ++j) {
        const double mean = sumZ_[j] / n;
        const double var = sumZ2_[j] / n - mean * mean;
        if (std::fabs(mean) >= v.maxAbsMeanZ) {
            v.maxAbsMeanZ = std::fabs(mean);
            v.worstFeature = j;
        }
        if (var > v.maxVarZ)
            v.maxVarZ = var;
    }
    v.tripRate = static_cast<double>(trips_) / n;

    const bool first_window = baselineTripRate_ < 0.0;
    if (first_window)
        baselineTripRate_ = v.tripRate;

    if (v.maxAbsMeanZ > cfg_.zThreshold) {
        v.drifted = true;
        v.reason = "feature mean shift";
    } else if (v.maxVarZ > cfg_.varThreshold) {
        v.drifted = true;
        v.reason = "feature variance inflation";
    } else if (!first_window &&
               v.tripRate > std::max(cfg_.tripRateFloor,
                                     baselineTripRate_ *
                                         cfg_.tripRateFactor))
    {
        v.drifted = true;
        v.reason = "guardrail trip-rate trend";
    }

    sumZ_.assign(dims_, 0.0);
    sumZ2_.assign(dims_, 0.0);
    count_ = 0;
    trips_ = 0;
    ++windows_;
    return v;
}

} // namespace serve
} // namespace psca
