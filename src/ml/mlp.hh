/**
 * @file
 * Multi-layer perceptron with ReLU hidden layers and a sigmoid
 * output, trained with mini-batch Adam on binary cross-entropy.
 * Mirrors the paper's MLP adaptation models (Listing 1, Table 3,
 * Sec. 6.3 hyperparameter search).
 *
 * Firmware cost accounting follows Listing 1: each filter evaluation
 * is fld/fmul/fadd per input (3 ops) plus ~6 ops of ReLU, so a layer
 * of F filters with N inputs costs F * (3N + 6) operations; the
 * single sigmoid-thresholded readout costs one more filter. This
 * reproduces the paper's Table 3 numbers to within a few percent.
 */

#ifndef PSCA_ML_MLP_HH
#define PSCA_ML_MLP_HH

#include <vector>

#include "common/rng.hh"
#include "ml/model.hh"

namespace psca {

/** MLP topology and training hyperparameters. */
struct MlpConfig
{
    /** Hidden layer widths, e.g. {8, 8, 4} for the paper's Best MLP. */
    std::vector<int> hiddenLayers{8, 8, 4};
    int epochs = 30;
    int batchSize = 64;
    double learningRate = 3e-3;
    double l2 = 1e-5;
    uint64_t seed = 1;
};

/** A trained MLP adaptation model. */
class MlpModel : public Model
{
  public:
    /** Construct an untrained model (He-initialized). */
    MlpModel(size_t num_inputs, const std::vector<int> &hidden_layers,
             uint64_t seed);

    size_t numInputs() const override { return numInputs_; }
    double score(const float *x) const override;

    /**
     * Lane-blocked forward pass: 8 samples per block in transposed
     * activation layout, dispatched to the AVX2 kernel when
     * available (see batch_kernels.hh). Per sample the accumulation
     * order matches score() exactly, so results are bit-identical
     * regardless of the active SIMD level (DESIGN.md §14).
     */
    void scoreBatch(const float *X, int n, double *out) const override;

    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

    /** Layer widths, input first, output (1) last. */
    const std::vector<int> &layerSizes() const { return sizes_; }

    /** Weights of layer l (rows = filters, cols = fan-in). */
    const std::vector<float> &weights(size_t l) const { return w_[l]; }
    const std::vector<float> &biases(size_t l) const { return b_[l]; }

    /**
     * Train in place with Adam on binary cross-entropy.
     * @param data Normalized training data.
     * @param cfg Optimization hyperparameters.
     */
    void train(const Dataset &data, const MlpConfig &cfg);

  private:
    friend class MlpTrainer;

    size_t numInputs_;
    std::vector<int> sizes_; //!< [in, h1, ..., hk, 1]
    std::vector<std::vector<float>> w_; //!< per layer, row-major
    std::vector<std::vector<float>> b_;
};

/** Convenience: construct + train in one call. */
std::unique_ptr<MlpModel> trainMlp(const Dataset &data,
                                   const MlpConfig &cfg);

} // namespace psca

#endif // PSCA_ML_MLP_HH
