#include "ml/quant.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"

namespace psca {
namespace quant {

namespace {

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

/** Payload type tags (see packPayload). */
constexpr uint8_t kTagForest = 1;
constexpr uint8_t kTagMlp = 2;
constexpr uint8_t kTagLinear = 3;

} // namespace

int8_t
quantizeInput(float x)
{
    const float scaled = x * static_cast<float>(kInputScale);
    // NaN-safe clamps: a NaN fails both comparisons' complements and
    // lands on the lower rail (decide() sanitizes inputs first, so
    // this is defense in depth, not a modeled behavior).
    if (!(scaled >= -128.0f))
        return -128;
    if (scaled >= 127.0f)
        return 127;
    return static_cast<int8_t>(std::lround(scaled));
}

void
quantizeInputs(const float *x, size_t n, int8_t *out)
{
    for (size_t j = 0; j < n; ++j)
        out[j] = quantizeInput(x[j]);
}

float
dequantizeInput(int8_t q)
{
    return static_cast<float>(q) /
        static_cast<float>(kInputScale);
}

bool
ucFixedPointEnabled()
{
    return env::flagOr("PSCA_UC_FIXED", false);
}

// --------------------------------------------------------------------
// QuantizedForest
// --------------------------------------------------------------------

QuantizedForest
QuantizedForest::fromForest(const RandomForest &f)
{
    QuantizedForest q;
    q.numInputs_ = f.numInputs();
    for (const auto &tree : f.trees()) {
        const auto &nodes = tree->nodes();
        const int32_t base = static_cast<int32_t>(q.feature_.size());
        q.roots_.push_back(base);
        std::vector<std::pair<int32_t, int>> stack{{0, 0}};
        while (!stack.empty()) {
            const auto [idx, depth] = stack.back();
            stack.pop_back();
            const auto &nd = nodes[static_cast<size_t>(idx)];
            if (nd.feature < 0) {
                q.maxDepth_ = std::max(q.maxDepth_, depth);
            } else {
                stack.emplace_back(nd.left, depth + 1);
                stack.emplace_back(nd.right, depth + 1);
            }
        }
        for (size_t i = 0; i < nodes.size(); ++i) {
            const auto &nd = nodes[i];
            const bool leaf = nd.feature < 0;
            const int32_t self = base + static_cast<int32_t>(i);
            // (q <= floor(S t)) <=> (q/S <= t) for integer q and
            // S = kInputScale; -129 = always false, 127 = always
            // true (quant.hh).
            int32_t qt = 127;
            if (!leaf) {
                const double ts =
                    std::floor(static_cast<double>(kInputScale) *
                               static_cast<double>(nd.threshold));
                qt = static_cast<int32_t>(
                    std::clamp(ts, -129.0, 127.0));
            }
            q.feature_.push_back(
                leaf ? int16_t{0} : static_cast<int16_t>(nd.feature));
            q.qthr_.push_back(static_cast<int16_t>(qt));
            q.left_.push_back(leaf ? self : base + nd.left);
            q.right_.push_back(leaf ? self : base + nd.right);
            const long p = std::lround(
                static_cast<double>(nd.prob) * kProbScale);
            q.qprob_.push_back(static_cast<int16_t>(
                std::clamp<long>(p, 0, kProbScale)));
        }
    }
    return q;
}

double
QuantizedForest::scoreQuantized(const int8_t *qx) const
{
    int64_t sum = 0;
    for (const int32_t root : roots_) {
        int32_t node = root;
        for (int d = 0; d < maxDepth_; ++d) {
            const size_t n = static_cast<size_t>(node);
            node = qx[static_cast<size_t>(feature_[n])] <= qthr_[n]
                ? left_[n]
                : right_[n];
        }
        sum += qprob_[static_cast<size_t>(node)];
    }
    return static_cast<double>(sum) /
        (static_cast<double>(roots_.size()) * kProbScale);
}

double
QuantizedForest::score(const float *x) const
{
    std::vector<int8_t> qx(numInputs_);
    quantizeInputs(x, numInputs_, qx.data());
    return scoreQuantized(qx.data());
}

uint32_t
QuantizedForest::opsPerInference() const
{
    // Int8 traversal: load/compare/select on bytes is 4 uc ops per
    // level (vs 8 in the float path), 2 ops per tree for the vote
    // and 2 for the final average/threshold.
    return static_cast<uint32_t>(roots_.size()) *
        (static_cast<uint32_t>(maxDepth_) * 4u + 2u) +
        2u;
}

size_t
QuantizedForest::memoryFootprintBytes() const
{
    // Per node: 1B feature, 2B threshold, 2B probability, 2B child
    // offset (the other child is adjacency-implicit in firmware).
    return feature_.size() * 7u;
}

void
QuantizedForest::serialize(BinaryWriter &w) const
{
    w.put<uint64_t>(numInputs_);
    w.put<int32_t>(maxDepth_);
    w.putVector(roots_);
    w.putVector(feature_);
    w.putVector(qthr_);
    w.putVector(left_);
    w.putVector(right_);
    w.putVector(qprob_);
}

QuantizedForest
QuantizedForest::deserialize(BinaryReader &in)
{
    QuantizedForest q;
    q.numInputs_ = in.get<uint64_t>();
    q.maxDepth_ = in.get<int32_t>();
    q.roots_ = in.getVector<int32_t>();
    q.feature_ = in.getVector<int16_t>();
    q.qthr_ = in.getVector<int16_t>();
    q.left_ = in.getVector<int32_t>();
    q.right_ = in.getVector<int32_t>();
    q.qprob_ = in.getVector<int16_t>();
    return q;
}

// --------------------------------------------------------------------
// QuantizedMlp
// --------------------------------------------------------------------

QuantizedMlp
QuantizedMlp::fromMlp(const MlpModel &m)
{
    QuantizedMlp q;
    for (int s : m.layerSizes())
        q.sizes_.push_back(s);
    const size_t layers = q.sizes_.size() - 1;

    // Interval propagation state (bounds vs the float model on the
    // dequantized input; quant.hh documents the recursion).
    double amax = 128.0 / kInputScale; //!< bound on true activations
    double err = 0.0;                  //!< carried activation error
    q.aScale_.push_back(kInputScale);

    for (size_t l = 0; l < layers; ++l) {
        const auto &w = m.weights(l);
        const auto &b = m.biases(l);
        const int fan_in = q.sizes_[l];
        const int fan_out = q.sizes_[l + 1];
        const int32_t a_scale = q.aScale_[l];

        float wmax = 0.0f;
        for (float v : w)
            wmax = std::max(wmax, std::abs(v));
        const float w_scale = wmax > 0.0f ? 127.0f / wmax : 1.0f;
        q.wScale_.push_back(w_scale);

        std::vector<int8_t> wq(w.size());
        for (size_t i = 0; i < w.size(); ++i) {
            const long v = std::lround(
                static_cast<double>(w[i]) * w_scale);
            wq[i] = static_cast<int8_t>(std::clamp<long>(v, -127, 127));
        }
        q.wq_.push_back(std::move(wq));

        std::vector<int32_t> bq(b.size());
        for (size_t f = 0; f < b.size(); ++f)
            bq[f] = static_cast<int32_t>(std::lround(
                static_cast<double>(b[f]) * w_scale * a_scale));
        q.bq_.push_back(std::move(bq));

        // Per-filter L1 weight norm and |bias| maxima drive both the
        // activation-magnitude bound and the error recursion.
        double u_max = 0.0, b_max = 0.0, out_max = 0.0;
        for (int f = 0; f < fan_out; ++f) {
            double l1 = 0.0;
            for (int i = 0; i < fan_in; ++i)
                l1 += std::abs(static_cast<double>(
                    w[static_cast<size_t>(f * fan_in + i)]));
            const double ab =
                std::abs(static_cast<double>(b[static_cast<size_t>(f)]));
            u_max = std::max(u_max, l1);
            b_max = std::max(b_max, ab);
            out_max = std::max(out_max, l1 * amax + ab);
        }

        // Quantized activations can exceed the true bound by the
        // carried error plus one grid step.
        const double aq_max = amax + err + 1.0 / a_scale;
        const double out_err = u_max * err +
            static_cast<double>(fan_in) * aq_max / (2.0 * w_scale) +
            1.0 / (2.0 * w_scale * a_scale);

        if (l + 1 == layers) {
            q.logitErrorBound_ = out_err;
            break;
        }
        // Next activation scale: largest power of two such that the
        // worst-case requantized value sits at most halfway into the
        // int16 range (so the defensive clamp can never engage).
        int32_t next_scale = 1;
        while (next_scale < (1 << 14) &&
               2.0 * next_scale * (out_max + out_err + 1.0) * 2.0 <=
                   32767.0)
            next_scale <<= 1;
        q.aScale_.push_back(next_scale);
        amax = out_max;
        err = out_err + 0.5 / next_scale;
    }
    return q;
}

double
QuantizedMlp::logitQuantized(const int8_t *qx) const
{
    const size_t layers = wq_.size();
    std::vector<int32_t> act(static_cast<size_t>(sizes_[0]));
    for (size_t i = 0; i < act.size(); ++i)
        act[i] = qx[i];
    std::vector<int32_t> next;
    for (size_t l = 0; l < layers; ++l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const double denom =
            static_cast<double>(wScale_[l]) * aScale_[l];
        const bool last = l + 1 == layers;
        if (last) {
            // Single readout filter: return the dequantized logit.
            int64_t acc = bq_[l][0];
            for (int i = 0; i < fan_in; ++i)
                acc += static_cast<int64_t>(
                           wq_[l][static_cast<size_t>(i)]) *
                    act[static_cast<size_t>(i)];
            return static_cast<double>(acc) / denom;
        }
        next.assign(static_cast<size_t>(fan_out), 0);
        const double r = static_cast<double>(aScale_[l + 1]) / denom;
        for (int f = 0; f < fan_out; ++f) {
            int64_t acc = bq_[l][static_cast<size_t>(f)];
            const int8_t *row =
                wq_[l].data() + static_cast<size_t>(f) * fan_in;
            for (int i = 0; i < fan_in; ++i)
                acc += static_cast<int64_t>(row[i]) *
                    act[static_cast<size_t>(i)];
            // Requantize (fixed-point multiply + shift on the uc),
            // ReLU, and a defensive clamp the scale choice makes
            // unreachable.
            int64_t v =
                std::llround(static_cast<double>(acc) * r);
            v = std::max<int64_t>(0, std::min<int64_t>(32767, v));
            next[static_cast<size_t>(f)] = static_cast<int32_t>(v);
        }
        act.swap(next);
    }
    return 0.0; // unreachable: layers >= 1
}

double
QuantizedMlp::score(const float *x) const
{
    std::vector<int8_t> qx(numInputs());
    quantizeInputs(x, qx.size(), qx.data());
    return sigmoid(logitQuantized(qx.data()));
}

uint32_t
QuantizedMlp::opsPerInference() const
{
    // Int8 MAC is one uc op (vs fld/fmul/fadd = 3); requantization +
    // ReLU cost ~6 ops per neuron; branch-free sigmoid on the logit.
    uint32_t ops = 0;
    for (size_t l = 0; l + 1 < sizes_.size(); ++l)
        ops += static_cast<uint32_t>(sizes_[l + 1]) *
            (static_cast<uint32_t>(sizes_[l]) + 6u);
    return ops + kExpOps;
}

size_t
QuantizedMlp::memoryFootprintBytes() const
{
    size_t bytes = 0;
    for (size_t l = 0; l < wq_.size(); ++l)
        bytes += wq_[l].size() + bq_[l].size() * sizeof(int32_t) +
            sizeof(float) + sizeof(int32_t); // scales
    return bytes;
}

void
QuantizedMlp::serialize(BinaryWriter &w) const
{
    w.putVector(sizes_);
    w.putVector(wScale_);
    w.putVector(aScale_);
    w.put<uint64_t>(wq_.size());
    for (size_t l = 0; l < wq_.size(); ++l) {
        w.putVector(wq_[l]);
        w.putVector(bq_[l]);
    }
    w.put<double>(logitErrorBound_);
}

QuantizedMlp
QuantizedMlp::deserialize(BinaryReader &in)
{
    QuantizedMlp q;
    q.sizes_ = in.getVector<int32_t>();
    q.wScale_ = in.getVector<float>();
    q.aScale_ = in.getVector<int32_t>();
    const auto layers = in.get<uint64_t>();
    for (uint64_t l = 0; l < layers && in.good(); ++l) {
        q.wq_.push_back(in.getVector<int8_t>());
        q.bq_.push_back(in.getVector<int32_t>());
    }
    q.logitErrorBound_ = in.get<double>();
    return q;
}

// --------------------------------------------------------------------
// QuantizedLinear
// --------------------------------------------------------------------

QuantizedLinear
QuantizedLinear::fromLogReg(const LogisticRegression &m)
{
    QuantizedLinear q;
    const auto &w = m.coefficients();
    double wmax = 0.0;
    for (double v : w)
        wmax = std::max(wmax, std::abs(v));
    const double w_scale = wmax > 0.0 ? 127.0 / wmax : 1.0;
    q.wScale_ = static_cast<float>(w_scale);

    q.wq_.resize(w.size());
    for (size_t j = 0; j < w.size(); ++j) {
        const long v = std::lround(w[j] * w_scale);
        q.wq_[j] =
            static_cast<int8_t>(std::clamp<long>(v, -127, 127));
    }
    q.bq_ = static_cast<int32_t>(
        std::lround(m.bias() * w_scale * kInputScale));

    // |logit_q - logit_f(dequantized x)| <= per-weight rounding times
    // the max quantized activation plus bias rounding (quant.hh).
    const double aq_max = 128.0 / kInputScale;
    q.logitErrorBound_ =
        static_cast<double>(w.size()) * aq_max / (2.0 * w_scale) +
        1.0 / (2.0 * w_scale * kInputScale);
    return q;
}

double
QuantizedLinear::logitQuantized(const int8_t *qx) const
{
    int64_t acc = bq_;
    for (size_t j = 0; j < wq_.size(); ++j)
        acc += static_cast<int64_t>(wq_[j]) * qx[j];
    return static_cast<double>(acc) /
        (static_cast<double>(wScale_) * kInputScale);
}

double
QuantizedLinear::score(const float *x) const
{
    std::vector<int8_t> qx(wq_.size());
    quantizeInputs(x, qx.size(), qx.data());
    return sigmoid(logitQuantized(qx.data()));
}

uint32_t
QuantizedLinear::opsPerInference() const
{
    return static_cast<uint32_t>(wq_.size()) + kExpOps;
}

size_t
QuantizedLinear::memoryFootprintBytes() const
{
    return wq_.size() + sizeof(int32_t) + sizeof(float);
}

void
QuantizedLinear::serialize(BinaryWriter &w) const
{
    w.put<float>(wScale_);
    w.putVector(wq_);
    w.put<int32_t>(bq_);
    w.put<double>(logitErrorBound_);
}

QuantizedLinear
QuantizedLinear::deserialize(BinaryReader &in)
{
    QuantizedLinear q;
    q.wScale_ = in.get<float>();
    q.wq_ = in.getVector<int8_t>();
    q.bq_ = in.get<int32_t>();
    q.logitErrorBound_ = in.get<double>();
    return q;
}

// --------------------------------------------------------------------
// Model adapters and firmware payloads
// --------------------------------------------------------------------

namespace {

template <typename Q>
class QuantAdapter : public Model
{
  public:
    QuantAdapter(Q q, std::string desc)
        : q_(std::move(q)), desc_(std::move(desc))
    {
    }

    size_t numInputs() const override { return q_.numInputs(); }
    double score(const float *x) const override { return q_.score(x); }
    uint32_t opsPerInference() const override
    {
        return q_.opsPerInference();
    }
    size_t memoryFootprintBytes() const override
    {
        return q_.memoryFootprintBytes();
    }
    std::string describe() const override { return desc_; }

    const Q &quantized() const { return q_; }

  private:
    Q q_;
    std::string desc_;
};

template <typename Q>
std::unique_ptr<Model>
makeAdapter(Q q, const std::string &base_desc, double threshold)
{
    auto adapter = std::make_unique<QuantAdapter<Q>>(
        std::move(q), "Quant(" + base_desc + ")");
    adapter->setThreshold(threshold);
    return adapter;
}

} // namespace

std::unique_ptr<Model>
quantize(const Model &m)
{
    if (const auto *f = dynamic_cast<const RandomForest *>(&m))
        return makeAdapter(QuantizedForest::fromForest(*f),
                           m.describe(), m.threshold());
    if (const auto *mlp = dynamic_cast<const MlpModel *>(&m))
        return makeAdapter(QuantizedMlp::fromMlp(*mlp), m.describe(),
                           m.threshold());
    if (const auto *lr = dynamic_cast<const LogisticRegression *>(&m))
        return makeAdapter(QuantizedLinear::fromLogReg(*lr),
                           m.describe(), m.threshold());
    return nullptr;
}

std::string
packPayload(const Model &m)
{
    BinaryWriter w;
    if (const auto *f = dynamic_cast<const RandomForest *>(&m)) {
        w.put<uint8_t>(kTagForest);
        QuantizedForest::fromForest(*f).serialize(w);
    } else if (const auto *mlp = dynamic_cast<const MlpModel *>(&m)) {
        w.put<uint8_t>(kTagMlp);
        QuantizedMlp::fromMlp(*mlp).serialize(w);
    } else if (const auto *lr =
                   dynamic_cast<const LogisticRegression *>(&m)) {
        w.put<uint8_t>(kTagLinear);
        QuantizedLinear::fromLogReg(*lr).serialize(w);
    } else {
        return {};
    }
    return w.takeBuffer();
}

std::unique_ptr<Model>
unpackPayload(const std::string &payload)
{
    if (payload.empty())
        return nullptr;
    BinaryReader in(payload.data(), payload.size());
    const auto tag = in.get<uint8_t>();
    switch (tag) {
    case kTagForest:
        return makeAdapter(QuantizedForest::deserialize(in), "forest",
                           0.5);
    case kTagMlp:
        return makeAdapter(QuantizedMlp::deserialize(in), "mlp", 0.5);
    case kTagLinear:
        return makeAdapter(QuantizedLinear::deserialize(in), "linear",
                           0.5);
    default:
        warn("unknown quantized payload tag ", int(tag));
        return nullptr;
    }
}

uint32_t
payloadOps(const std::string &payload)
{
    const auto model = unpackPayload(payload);
    return model ? model->opsPerInference() : 0u;
}

} // namespace quant
} // namespace psca
