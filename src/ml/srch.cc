#include "ml/srch.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace psca {

HistogramEncoder
HistogramEncoder::fit(const Dataset &data)
{
    HistogramEncoder enc;
    const size_t n = data.numSamples();
    enc.edges_.resize(data.numFeatures);
    std::vector<float> column(n);
    for (size_t j = 0; j < data.numFeatures; ++j) {
        for (size_t i = 0; i < n; ++i)
            column[i] = data.row(i)[j];
        std::sort(column.begin(), column.end());
        auto &edges = enc.edges_[j];
        edges.resize(kBuckets - 1);
        for (int k = 1; k < kBuckets; ++k) {
            const size_t pos = std::min(
                n ? n - 1 : 0,
                static_cast<size_t>(static_cast<double>(k) /
                                    kBuckets *
                                    static_cast<double>(n)));
            edges[static_cast<size_t>(k - 1)] =
                n ? column[pos] : static_cast<float>(k);
        }
    }
    return enc;
}

int
HistogramEncoder::bucketOf(size_t counter, float value) const
{
    const auto &edges = edges_[counter];
    const auto it =
        std::upper_bound(edges.begin(), edges.end(), value);
    return static_cast<int>(it - edges.begin());
}

void
HistogramEncoder::encode(const std::vector<const float *> &rows,
                         float *out) const
{
    std::fill(out, out + numFeatures(), 0.0f);
    if (rows.empty())
        return;
    const float weight = 1.0f / static_cast<float>(rows.size());
    for (const float *row : rows) {
        for (size_t j = 0; j < edges_.size(); ++j) {
            out[j * kBuckets +
                static_cast<size_t>(bucketOf(j, row[j]))] += weight;
        }
    }
}

Dataset
encodeHistogramDataset(const Dataset &per_interval,
                       const HistogramEncoder &encoder, int window)
{
    PSCA_ASSERT(window >= 1, "window must be positive");
    Dataset out;
    out.numFeatures = encoder.numFeatures();

    const size_t n = per_interval.numSamples();
    std::vector<float> features(out.numFeatures);
    std::vector<const float *> rows;

    size_t begin = 0;
    while (begin < n) {
        // Find the end of this trace's run.
        size_t end = begin;
        while (end < n &&
               per_interval.traceId[end] == per_interval.traceId[begin])
            ++end;
        for (size_t w = begin; w + static_cast<size_t>(window) <= end;
             w += static_cast<size_t>(window)) {
            rows.clear();
            for (int k = 0; k < window; ++k)
                rows.push_back(per_interval.row(w +
                                                static_cast<size_t>(k)));
            encoder.encode(rows, features.data());
            const size_t last = w + static_cast<size_t>(window) - 1;
            out.addSample(features.data(), per_interval.y[last],
                          per_interval.appId[last],
                          per_interval.traceId[last]);
        }
        begin = end;
    }
    return out;
}

SrchModel::SrchModel(const Dataset &per_interval, int window,
                     const LogRegConfig &cfg)
    : encoder_(HistogramEncoder::fit(per_interval)), window_(window)
{
    const Dataset hist =
        encodeHistogramDataset(per_interval, encoder_, window);
    lr_ = std::make_unique<LogisticRegression>(hist, cfg);
}

double
SrchModel::score(const float *histogram_features) const
{
    return lr_->score(histogram_features);
}

uint32_t
SrchModel::opsPerInference() const
{
    return lr_->opsPerInference();
}

size_t
SrchModel::memoryFootprintBytes() const
{
    return lr_->memoryFootprintBytes() +
        encoder_.numFeatures() * sizeof(float);
}

std::string
SrchModel::describe() const
{
    std::ostringstream os;
    os << "SRCH " << encoder_.numCounters() << "x"
       << HistogramEncoder::kBuckets << " window=" << window_;
    return os.str();
}

} // namespace psca
