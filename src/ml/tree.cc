#include "ml/tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/journal.hh"
#include "common/parallel.hh"

namespace psca {

namespace {

/** Binary entropy of a positive count within a total. */
double
entropy(size_t pos, size_t total)
{
    if (total == 0 || pos == 0 || pos == total)
        return 0.0;
    const double p = static_cast<double>(pos) /
        static_cast<double>(total);
    return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

} // namespace

DecisionTree::DecisionTree(const Dataset &data,
                           const std::vector<size_t> &sample_indices,
                           const TreeConfig &cfg)
    : numInputs_(data.numFeatures), cfg_(cfg)
{
    std::vector<size_t> indices = sample_indices;
    if (indices.empty()) {
        indices.resize(data.numSamples());
        std::iota(indices.begin(), indices.end(), 0);
    }
    Rng rng(cfg.seed ^ 0x7ee5eedULL);
    if (!indices.empty())
        build(data, indices, 0, indices.size(), 0, rng);
    if (nodes_.empty()) {
        Node root;
        root.prob = static_cast<float>(data.positiveRate());
        nodes_.push_back(root);
    }
}

int32_t
DecisionTree::build(const Dataset &data, std::vector<size_t> &indices,
                    size_t begin, size_t end, int depth, Rng &rng)
{
    const size_t n = end - begin;
    size_t pos = 0;
    for (size_t i = begin; i < end; ++i)
        pos += data.y[indices[i]];

    const int32_t node_id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<size_t>(node_id)].prob = static_cast<float>(
        (static_cast<double>(pos) + 0.5) / (static_cast<double>(n) + 1.0));

    const bool pure = pos == 0 || pos == n;
    if (depth >= cfg_.maxDepth || n < 2 * cfg_.minSamplesLeaf || pure)
        return node_id;

    // Candidate features: all, or a random subset (RF mode).
    std::vector<uint16_t> features;
    if (cfg_.featureSubset == 0 ||
        cfg_.featureSubset >= numInputs_) {
        features.resize(numInputs_);
        std::iota(features.begin(), features.end(), 0);
    } else {
        std::vector<uint16_t> all(numInputs_);
        std::iota(all.begin(), all.end(), 0);
        rng.shuffle(all);
        features.assign(all.begin(),
                        all.begin() +
                            static_cast<ptrdiff_t>(cfg_.featureSubset));
    }

    // Find the entropy-minimizing (feature, threshold) split by
    // sorting sample values per candidate feature.
    const double parent_h = entropy(pos, n);
    double best_gain = 1e-9;
    int best_feature = -1;
    float best_threshold = 0.0f;

    std::vector<std::pair<float, uint8_t>> vals(n);
    for (uint16_t f : features) {
        for (size_t i = 0; i < n; ++i) {
            const size_t idx = indices[begin + i];
            vals[i] = {data.row(idx)[f], data.y[idx]};
        }
        std::sort(vals.begin(), vals.end());
        size_t left_pos = 0;
        for (size_t i = 0; i + 1 < n; ++i) {
            left_pos += vals[i].second;
            if (vals[i].first == vals[i + 1].first)
                continue;
            const size_t nl = i + 1;
            const size_t nr = n - nl;
            if (nl < cfg_.minSamplesLeaf || nr < cfg_.minSamplesLeaf)
                continue;
            const double h =
                (static_cast<double>(nl) * entropy(left_pos, nl) +
                 static_cast<double>(nr) *
                     entropy(pos - left_pos, nr)) /
                static_cast<double>(n);
            const double gain = parent_h - h;
            if (gain > best_gain) {
                best_gain = gain;
                best_feature = f;
                best_threshold =
                    0.5f * (vals[i].first + vals[i + 1].first);
            }
        }
    }

    if (best_feature < 0)
        return node_id;

    // Partition in place and recurse.
    auto mid_it = std::partition(
        indices.begin() + static_cast<ptrdiff_t>(begin),
        indices.begin() + static_cast<ptrdiff_t>(end),
        [&](size_t idx) {
            return data.row(idx)[best_feature] <= best_threshold;
        });
    const size_t mid = static_cast<size_t>(
        mid_it - indices.begin());
    if (mid == begin || mid == end)
        return node_id;

    nodes_[static_cast<size_t>(node_id)].feature =
        static_cast<int16_t>(best_feature);
    nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
    const int32_t left = build(data, indices, begin, mid, depth + 1, rng);
    const int32_t right = build(data, indices, mid, end, depth + 1, rng);
    nodes_[static_cast<size_t>(node_id)].left = left;
    nodes_[static_cast<size_t>(node_id)].right = right;
    return node_id;
}

double
DecisionTree::score(const float *x) const
{
    int32_t node = 0;
    while (nodes_[static_cast<size_t>(node)].feature >= 0) {
        const Node &nd = nodes_[static_cast<size_t>(node)];
        node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
    }
    return nodes_[static_cast<size_t>(node)].prob;
}

uint32_t
DecisionTree::opsPerInference() const
{
    // Branch-free traversal: ~8 ops per level (Listing 2), trees
    // padded with trivial comparisons to constant depth, plus a
    // 5-op epilogue.
    return static_cast<uint32_t>(cfg_.maxDepth) * 8u + 5u;
}

size_t
DecisionTree::memoryFootprintBytes() const
{
    // Full-depth node array at 10 bytes per node (feature id,
    // threshold, children/prediction), as deployed in firmware; leaf
    // predictions pack into their parents, giving 2^depth nodes.
    return (1ULL << cfg_.maxDepth) * 10ULL;
}

std::string
DecisionTree::describe() const
{
    std::ostringstream os;
    os << "DecisionTree depth<=" << cfg_.maxDepth;
    return os.str();
}

void
DecisionTree::serialize(BinaryWriter &w) const
{
    w.put<uint64_t>(numInputs_);
    w.put<int32_t>(cfg_.maxDepth);
    w.put<uint64_t>(cfg_.minSamplesLeaf);
    w.put<uint64_t>(cfg_.featureSubset);
    w.put<uint64_t>(cfg_.seed);
    w.put<uint64_t>(nodes_.size());
    for (const Node &nd : nodes_) {
        w.put(nd.feature);
        w.put(nd.threshold);
        w.put(nd.prob);
        w.put(nd.left);
        w.put(nd.right);
    }
}

std::unique_ptr<DecisionTree>
DecisionTree::deserialize(BinaryReader &in)
{
    std::unique_ptr<DecisionTree> tree(new DecisionTree());
    tree->numInputs_ = in.get<uint64_t>();
    tree->cfg_.maxDepth = in.get<int32_t>();
    tree->cfg_.minSamplesLeaf = in.get<uint64_t>();
    tree->cfg_.featureSubset = in.get<uint64_t>();
    tree->cfg_.seed = in.get<uint64_t>();
    const uint64_t n = in.get<uint64_t>();
    tree->nodes_.reserve(n);
    for (uint64_t i = 0; i < n && in.good(); ++i) {
        Node nd;
        nd.feature = in.get<int16_t>();
        nd.threshold = in.get<float>();
        nd.prob = in.get<float>();
        nd.left = in.get<int32_t>();
        nd.right = in.get<int32_t>();
        // Child indices must stay inside the node array: a corrupt
        // checkpoint must fail the load, not crash score().
        if (nd.feature >= 0 &&
            (nd.left < 0 || nd.right < 0 ||
             static_cast<uint64_t>(nd.left) >= n ||
             static_cast<uint64_t>(nd.right) >= n))
        {
            return nullptr;
        }
        tree->nodes_.push_back(nd);
    }
    if (!in.good() || tree->nodes_.size() != n || tree->nodes_.empty())
        return nullptr;
    return tree;
}

RandomForest::RandomForest(const Dataset &data, const ForestConfig &cfg)
{
    const size_t n = data.numSamples();
    const size_t subset = cfg.featureSubset
        ? cfg.featureSubset
        : std::max<size_t>(1, static_cast<size_t>(
              std::round(std::sqrt(
                  static_cast<double>(data.numFeatures)))));

    // Every tree derives its own RNG substreams from the forest seed
    // (bootstrap and split-feature streams are independent per tree),
    // so trees fit concurrently into their slots and the ensemble is
    // identical at any thread count.
    trees_.resize(static_cast<size_t>(cfg.numTrees));
    auto fit_tree = [&](size_t t) {
        Rng rng = taskRng(cfg.seed ^ 0xf02e57ULL, t);
        std::vector<size_t> sample(n); // bootstrap sample
        for (auto &s : sample)
            s = static_cast<size_t>(rng.below(n ? n : 1));
        TreeConfig tc;
        tc.maxDepth = cfg.maxDepth;
        tc.minSamplesLeaf = cfg.minSamplesLeaf;
        tc.featureSubset = subset;
        tc.seed = mixSeeds(cfg.seed, t + 1);
        trees_[t] = std::make_unique<DecisionTree>(data, sample, tc);
    };

    // Checkpoint per-tree fits only when a single fit is expensive
    // enough to be worth a journal frame and an fsync: the many small
    // forests of a quickstart-sized run stay on the plain pool path
    // (zero journal overhead), campaign-scale fits resume tree by
    // tree.
    constexpr size_t kCheckpointMinSamples = 256;
    if (n >= kCheckpointMinSamples) {
        uint64_t h = data.contentHash();
        auto mix = [&h](uint64_t v) { h = mixSeeds(h, v); };
        mix(static_cast<uint64_t>(cfg.numTrees));
        mix(static_cast<uint64_t>(cfg.maxDepth));
        mix(cfg.minSamplesLeaf);
        mix(subset);
        mix(cfg.seed);
        Journal::instance().runCheckpointed(
            "forest.fit", h, static_cast<size_t>(cfg.numTrees),
            [&](size_t t, BinaryReader &in) {
                trees_[t] = DecisionTree::deserialize(in);
                return trees_[t] != nullptr && in.good();
            },
            fit_tree,
            [&](size_t t, BinaryWriter &w) {
                trees_[t]->serialize(w);
            },
            DistMode::Distributed);
    } else {
        ThreadPool::instance().parallelFor(
            static_cast<size_t>(cfg.numTrees), fit_tree);
    }
}

RandomForest::RandomForest(
    std::vector<std::unique_ptr<DecisionTree>> trees)
    : trees_(std::move(trees))
{
    PSCA_ASSERT(!trees_.empty(), "forest needs at least one tree");
}

size_t
RandomForest::numInputs() const
{
    return trees_.empty() ? 0 : trees_.front()->numInputs();
}

double
RandomForest::score(const float *x) const
{
    double sum = 0.0;
    for (const auto &tree : trees_)
        sum += tree->score(x);
    return sum / static_cast<double>(trees_.size());
}

void
RandomForest::buildFlat() const
{
    for (const auto &tree : trees_) {
        const auto &nodes = tree->nodes();
        const int32_t base = static_cast<int32_t>(flat_.node.size());
        flat_.roots.push_back(base);
        // Longest root-to-leaf path of this tree, via an explicit
        // DFS stack (trees are shallow; recursion is avoided only
        // for uniformity with the firmware compiler).
        int tree_depth = 0;
        std::vector<std::pair<int32_t, int>> stack{{0, 0}};
        while (!stack.empty()) {
            const auto [idx, depth] = stack.back();
            stack.pop_back();
            const auto &nd = nodes[static_cast<size_t>(idx)];
            if (nd.feature < 0) {
                tree_depth = std::max(tree_depth, depth);
            } else {
                stack.emplace_back(nd.left, depth + 1);
                stack.emplace_back(nd.right, depth + 1);
            }
        }
        flat_.depths.push_back(tree_depth);
        for (size_t i = 0; i < nodes.size(); ++i) {
            const auto &nd = nodes[i];
            const bool leaf = nd.feature < 0;
            const int32_t self = base + static_cast<int32_t>(i);
            FlatNode fn;
            fn.feature = leaf ? 0 : nd.feature;
            fn.threshold = leaf
                ? std::numeric_limits<float>::infinity()
                : nd.threshold;
            fn.left = leaf ? self : base + nd.left;
            fn.right = leaf ? self : base + nd.right;
            flat_.node.push_back(fn);
            flat_.prob.push_back(nd.prob);
        }
    }
}

void
RandomForest::scoreBatch(const float *X, int n, double *out) const
{
    if (n <= 0)
        return;
    std::call_once(flatOnce_, [this] { buildFlat(); });
    const size_t stride = numInputs();
    const double num_trees = static_cast<double>(trees_.size());
    const FlatNode *nodes = flat_.node.data();
    const float *probs = flat_.prob.data();
    constexpr int kLanes = 8;
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const float *base = X + static_cast<size_t>(i) * stride;
        double acc[kLanes] = {};
        for (size_t t = 0; t < flat_.roots.size(); ++t) {
            const int32_t root = flat_.roots[t];
            const int depth = flat_.depths[t];
            int32_t node[kLanes];
            for (int l = 0; l < kLanes; ++l)
                node[l] = root;
            for (int d = 0; d < depth; ++d) {
                for (int l = 0; l < kLanes; ++l) {
                    const FlatNode nd =
                        nodes[static_cast<size_t>(node[l])];
                    const float x = base[static_cast<size_t>(l) *
                                             stride +
                                         static_cast<size_t>(
                                             nd.feature)];
                    // Identical compare to DecisionTree::score();
                    // padded leaves self-loop (x <= +inf is true
                    // except for NaN, whose right child is also
                    // self), so trips past a leaf are no-ops. The
                    // mask select (not ?:) keeps the step branch-
                    // free: split outcomes are ~50/50, so a branch
                    // here mispredicts its way to several times the
                    // latency of the whole step.
                    const int32_t go_left =
                        -static_cast<int32_t>(x <= nd.threshold);
                    node[l] = nd.right +
                        ((nd.left - nd.right) & go_left);
                }
            }
            for (int l = 0; l < kLanes; ++l)
                acc[l] += static_cast<double>(
                    probs[static_cast<size_t>(node[l])]);
        }
        for (int l = 0; l < kLanes; ++l)
            out[i + l] = acc[l] / num_trees;
    }
    for (; i < n; ++i)
        out[i] = score(X + static_cast<size_t>(i) * stride);
}

uint32_t
RandomForest::opsPerInference() const
{
    uint32_t ops = 0;
    for (const auto &tree : trees_)
        ops += static_cast<uint32_t>(tree->maxDepth()) * 8u;
    // Vote/average epilogue: ~3 ops per tree plus the threshold.
    ops += static_cast<uint32_t>(trees_.size()) * 3u + 2u;
    return ops;
}

size_t
RandomForest::memoryFootprintBytes() const
{
    size_t bytes = 0;
    for (const auto &tree : trees_)
        bytes += (1ULL << tree->maxDepth()) * 10ULL;
    return bytes;
}

std::string
RandomForest::describe() const
{
    std::ostringstream os;
    os << "RF " << trees_.size() << "x depth<="
       << (trees_.empty() ? 0 : trees_.front()->maxDepth());
    return os.str();
}

std::vector<std::unique_ptr<DecisionTree>>
RandomForest::takeTrees()
{
    return std::move(trees_);
}

} // namespace psca
