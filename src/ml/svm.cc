#include "ml/svm.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.hh"

namespace psca {

Chi2Svm::Chi2Svm(const Dataset &data, const Chi2SvmConfig &cfg)
    : numInputs_(data.numFeatures), cfg_(cfg),
      shift_(data.numFeatures, 0.0f)
{
    const size_t n = data.numSamples();
    if (n == 0)
        return;

    // Fit the non-negativity shift.
    for (size_t i = 0; i < n; ++i) {
        const float *x = data.row(i);
        for (size_t j = 0; j < numInputs_; ++j)
            shift_[j] = std::min(shift_[j], x[j]);
    }

    // Shifted copy of the training data.
    std::vector<float> shifted(n * numInputs_);
    for (size_t i = 0; i < n; ++i) {
        const float *x = data.row(i);
        for (size_t j = 0; j < numInputs_; ++j)
            shifted[i * numInputs_ + j] = x[j] - shift_[j];
    }

    // Kernelized Pegasos with a hard SV budget: on margin violation,
    // add the sample as a support vector; over budget, evict the
    // smallest-|alpha| vector.
    Rng rng(cfg.seed ^ 0xc41257e4ULL);
    std::vector<size_t> sv_index; // into `shifted`
    uint64_t t = 1;
    const uint64_t total_steps =
        static_cast<uint64_t>(cfg.epochs) * n;
    for (uint64_t step = 0; step < total_steps; ++step, ++t) {
        const size_t i = static_cast<size_t>(rng.below(n));
        const float *x = &shifted[i * numInputs_];
        const double y = data.y[i] ? 1.0 : -1.0;

        double z = bias_;
        for (size_t k = 0; k < sv_index.size(); ++k)
            z += alphas_[k] * kernel(x, &sv_[k * numInputs_]);

        const double scale =
            1.0 - 1.0 / static_cast<double>(t); // lambda decay
        for (auto &a : alphas_)
            a *= scale;
        bias_ *= scale;

        if (y * z < 1.0) {
            const double eta =
                1.0 / (cfg.lambda * static_cast<double>(t));
            sv_.insert(sv_.end(), x, x + numInputs_);
            sv_index.push_back(i);
            alphas_.push_back(eta * y * cfg.lambda);
            bias_ += eta * y * cfg.lambda * 0.1;

            if (alphas_.size() > cfg.maxSupportVectors) {
                size_t victim = 0;
                for (size_t k = 1; k < alphas_.size(); ++k)
                    if (std::abs(alphas_[k]) < std::abs(alphas_[victim]))
                        victim = k;
                alphas_.erase(alphas_.begin() +
                              static_cast<ptrdiff_t>(victim));
                sv_index.erase(sv_index.begin() +
                               static_cast<ptrdiff_t>(victim));
                sv_.erase(sv_.begin() + static_cast<ptrdiff_t>(
                              victim * numInputs_),
                          sv_.begin() + static_cast<ptrdiff_t>(
                              (victim + 1) * numInputs_));
            }
        }
    }
}

double
Chi2Svm::kernel(const float *a, const float *b) const
{
    double chi2 = 0.0;
    for (size_t j = 0; j < numInputs_; ++j) {
        const double num = static_cast<double>(a[j]) - b[j];
        const double den =
            static_cast<double>(a[j]) + b[j] + 1e-3;
        chi2 += num * num / den;
    }
    return std::exp(-cfg_.gamma * chi2);
}

double
Chi2Svm::score(const float *x) const
{
    if (alphas_.empty())
        return 0.0;
    std::vector<float> shifted(numInputs_);
    for (size_t j = 0; j < numInputs_; ++j)
        shifted[j] = x[j] - shift_[j];
    double z = bias_;
    for (size_t k = 0; k < alphas_.size(); ++k)
        z += alphas_[k] * kernel(shifted.data(), &sv_[k * numInputs_]);
    // Squash the margin so the common >=0.5 threshold applies.
    return 1.0 / (1.0 + std::exp(-z));
}

void
Chi2Svm::scoreBatch(const float *X, int n, double *out) const
{
    if (n <= 0)
        return;
    if (alphas_.empty()) {
        for (int i = 0; i < n; ++i)
            out[i] = 0.0;
        return;
    }
    constexpr int kLanes = 4;
    const size_t stride = numInputs_;
    std::vector<float> shifted(kLanes * stride);
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        for (int l = 0; l < kLanes; ++l) {
            const float *x = X + static_cast<size_t>(i + l) * stride;
            float *s = shifted.data() + static_cast<size_t>(l) * stride;
            for (size_t j = 0; j < stride; ++j)
                s[j] = x[j] - shift_[j];
        }
        double z[kLanes];
        for (int l = 0; l < kLanes; ++l)
            z[l] = bias_;
        for (size_t k = 0; k < alphas_.size(); ++k) {
            const float *sv = &sv_[k * stride];
            for (int l = 0; l < kLanes; ++l)
                z[l] += alphas_[k] *
                    kernel(shifted.data() +
                               static_cast<size_t>(l) * stride,
                           sv);
        }
        for (int l = 0; l < kLanes; ++l)
            out[i + l] = 1.0 / (1.0 + std::exp(-z[l]));
    }
    for (; i < n; ++i)
        out[i] = score(X + static_cast<size_t>(i) * stride);
}

uint32_t
Chi2Svm::opsPerInference() const
{
    return static_cast<uint32_t>(alphas_.size()) *
        (8u * static_cast<uint32_t>(numInputs_) + 25u);
}

size_t
Chi2Svm::memoryFootprintBytes() const
{
    return sv_.size() * sizeof(float) + alphas_.size() * sizeof(float);
}

std::string
Chi2Svm::describe() const
{
    std::ostringstream os;
    os << "Chi2SVM " << alphas_.size() << " SVs";
    return os.str();
}

} // namespace psca
