/**
 * @file
 * SRCH: Softmax Regression on Counter Histograms, the Dubach et al.
 * baseline (Sec. 7). Counter samples within a prediction window are
 * quantile-bucketed into per-counter 10-bin histograms; a logistic
 * regression (the two-configuration special case of softmax
 * regression) predicts the best configuration from the concatenated
 * histogram tallies.
 */

#ifndef PSCA_ML_SRCH_HH
#define PSCA_ML_SRCH_HH

#include <memory>
#include <vector>

#include "ml/linear.hh"
#include "ml/model.hh"

namespace psca {

/** Quantile histogram encoder fit on tuning data. */
class HistogramEncoder
{
  public:
    static constexpr int kBuckets = 10;

    /** Fit per-counter bucket edges at the (k/10) quantiles. */
    static HistogramEncoder fit(const Dataset &data);

    size_t numCounters() const { return edges_.size(); }
    size_t numFeatures() const { return edges_.size() * kBuckets; }

    /**
     * Encode a window of raw counter sample rows into normalized
     * histogram tallies.
     *
     * @param rows Pointers to the window's sample rows.
     * @param out Receives numFeatures() values.
     */
    void encode(const std::vector<const float *> &rows,
                float *out) const;

    /** Bucket index of one value for one counter. */
    int bucketOf(size_t counter, float value) const;

  private:
    /** Per counter: kBuckets-1 ascending edges. */
    std::vector<std::vector<float>> edges_;
};

/**
 * Encode a per-interval dataset into a per-window histogram dataset:
 * every `window` consecutive samples of the same trace collapse into
 * one histogram sample labeled by the window's final label.
 */
Dataset encodeHistogramDataset(const Dataset &per_interval,
                               const HistogramEncoder &encoder,
                               int window);

/** The SRCH adaptation model: encoder + logistic regression. */
class SrchModel : public Model
{
  public:
    /**
     * Train on a per-interval dataset.
     * @param window Sub-samples folded into each histogram.
     */
    SrchModel(const Dataset &per_interval, int window,
              const LogRegConfig &cfg);

    /** Inputs are raw counters; windowing happens inside. */
    size_t numInputs() const override
    {
        return encoder_.numCounters();
    }

    /**
     * Score a pre-encoded histogram feature vector (use encoder() to
     * build it from a window of counter samples).
     */
    double score(const float *histogram_features) const override;

    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

    const HistogramEncoder &encoder() const { return encoder_; }
    int window() const { return window_; }

  private:
    HistogramEncoder encoder_;
    int window_;
    std::unique_ptr<LogisticRegression> lr_;
};

} // namespace psca

#endif // PSCA_ML_SRCH_HH
