#include "ml/dataset.hh"

#include <cmath>

#include "common/serialize.hh"

namespace psca {

uint64_t
Dataset::contentHash() const
{
    uint64_t h = fnv1aUpdate(kFnv1aBasis, &numFeatures,
                             sizeof(numFeatures));
    h = fnv1aUpdate(h, x.data(), x.size() * sizeof(float));
    h = fnv1aUpdate(h, y.data(), y.size());
    h = fnv1aUpdate(h, appId.data(), appId.size() * sizeof(uint32_t));
    h = fnv1aUpdate(h, traceId.data(),
                    traceId.size() * sizeof(uint32_t));
    return h;
}

FeatureScaler
FeatureScaler::fit(const Dataset &data)
{
    FeatureScaler scaler;
    const size_t f = data.numFeatures;
    const size_t n = data.numSamples();
    scaler.mean.assign(f, 0.0f);
    scaler.invStd.assign(f, 1.0f);
    if (n == 0)
        return scaler;

    std::vector<double> sum(f, 0.0), sum_sq(f, 0.0);
    for (size_t i = 0; i < n; ++i) {
        const float *row = data.row(i);
        for (size_t j = 0; j < f; ++j) {
            sum[j] += row[j];
            sum_sq[j] += static_cast<double>(row[j]) * row[j];
        }
    }
    for (size_t j = 0; j < f; ++j) {
        const double mean = sum[j] / static_cast<double>(n);
        const double var =
            std::max(0.0, sum_sq[j] / static_cast<double>(n) -
                              mean * mean);
        scaler.mean[j] = static_cast<float>(mean);
        scaler.invStd[j] = var > 1e-18
            ? static_cast<float>(1.0 / std::sqrt(var))
            : 0.0f; // constant feature contributes nothing
    }
    return scaler;
}

Dataset
FeatureScaler::apply(const Dataset &data) const
{
    PSCA_ASSERT(data.numFeatures == mean.size(),
                "scaler/dataset feature mismatch");
    Dataset out = data;
    const size_t n = data.numSamples();
    for (size_t i = 0; i < n; ++i) {
        float *row = out.x.data() + i * out.numFeatures;
        for (size_t j = 0; j < out.numFeatures; ++j)
            row[j] = (row[j] - mean[j]) * invStd[j];
    }
    return out;
}

} // namespace psca
