/**
 * @file
 * In-memory training/evaluation dataset: row-major feature matrix of
 * cycle-normalized counter values, binary gating labels (y=1 means
 * "low-power mode meets the SLA two intervals ahead"), and grouping
 * metadata (application / trace identity) used for application-level
 * cross-validation partitioning (Sec. 4.3).
 */

#ifndef PSCA_ML_DATASET_HH
#define PSCA_ML_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace psca {

/** One labeled telemetry dataset. */
struct Dataset
{
    size_t numFeatures = 0;
    /** Row-major samples x numFeatures. */
    std::vector<float> x;
    /** Binary labels (1 = gate / low-power safe). */
    std::vector<uint8_t> y;
    /** Application id of each sample (for app-level partitioning). */
    std::vector<uint32_t> appId;
    /** Trace id of each sample (RSV is computed per trace). */
    std::vector<uint32_t> traceId;

    size_t
    numSamples() const
    {
        return numFeatures ? x.size() / numFeatures : 0;
    }

    const float *row(size_t i) const { return x.data() + i * numFeatures; }

    /** Append one sample. */
    void
    addSample(const float *features, uint8_t label, uint32_t app_id,
              uint32_t trace_id)
    {
        x.insert(x.end(), features, features + numFeatures);
        y.push_back(label);
        appId.push_back(app_id);
        traceId.push_back(trace_id);
    }

    /** Copy the selected sample indices into a new dataset. */
    Dataset
    subset(const std::vector<size_t> &indices) const
    {
        Dataset out;
        out.numFeatures = numFeatures;
        out.x.reserve(indices.size() * numFeatures);
        out.y.reserve(indices.size());
        for (size_t i : indices)
            out.addSample(row(i), y[i], appId[i], traceId[i]);
        return out;
    }

    /**
     * FNV-1a over every sample byte (features, labels, grouping ids)
     * plus the feature width: the stable content identity used to
     * key checkpointed work that consumes this dataset.
     */
    uint64_t contentHash() const;

    /** Fraction of positive (gate) labels. */
    double
    positiveRate() const
    {
        if (y.empty())
            return 0.0;
        size_t pos = 0;
        for (uint8_t label : y)
            pos += label;
        return static_cast<double>(pos) / static_cast<double>(y.size());
    }
};

/**
 * Per-feature affine normalization (z-score), fit on tuning data and
 * applied at inference time in firmware. Constant features map to 0.
 */
struct FeatureScaler
{
    std::vector<float> mean;
    std::vector<float> invStd;

    /** Fit on a dataset. */
    static FeatureScaler fit(const Dataset &data);

    /** Apply in place to a dataset copy. */
    Dataset apply(const Dataset &data) const;

    /** Apply to one feature vector. */
    void
    applyRow(const float *in, float *out) const
    {
        for (size_t j = 0; j < mean.size(); ++j)
            out[j] = (in[j] - mean[j]) * invStd[j];
    }
};

} // namespace psca

#endif // PSCA_ML_DATASET_HH
