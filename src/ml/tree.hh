/**
 * @file
 * CART binary decision tree with entropy splits, and a bagged
 * random-forest ensemble — the paper's best adaptation model (Best
 * RF: 8 trees, depth 8, Sec. 6.3 / Table 3).
 *
 * Firmware cost accounting follows Listing 2: each level of a
 * branch-free tree traversal costs ~8 microcontroller operations, and
 * trees are padded to full depth with trivial comparisons so every
 * prediction costs the same; the ensemble vote adds a few ops per
 * tree. Memory is 10 bytes per node with 2^depth..2^(depth+1) nodes,
 * reproducing Table 3's footprints.
 */

#ifndef PSCA_ML_TREE_HH
#define PSCA_ML_TREE_HH

#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "ml/model.hh"

namespace psca {

/** Decision-tree training configuration. */
struct TreeConfig
{
    int maxDepth = 8;
    size_t minSamplesLeaf = 4;
    /**
     * Features examined per split: 0 = all (single CART tree);
     * otherwise a random subset of this size (random-forest mode).
     */
    size_t featureSubset = 0;
    uint64_t seed = 1;
};

/** One trained CART decision tree. */
class DecisionTree : public Model
{
  public:
    /** Train a tree on (a bootstrap sample of) the data. */
    DecisionTree(const Dataset &data,
                 const std::vector<size_t> &sample_indices,
                 const TreeConfig &cfg);

    size_t numInputs() const override { return numInputs_; }
    double score(const float *x) const override; //!< leaf P(y=1)
    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

    int maxDepth() const { return cfg_.maxDepth; }

    /** Flattened node storage, exposed for the firmware compiler. */
    struct Node
    {
        int16_t feature = -1;   //!< -1 for leaves
        float threshold = 0.0f;
        float prob = 0.5f;      //!< P(y=1) at this node
        int32_t left = -1;      //!< child indices; -1 for leaves
        int32_t right = -1;
    };

    const std::vector<Node> &nodes() const { return nodes_; }

    /**
     * Serialize the trained tree for checkpoint/resume. Nodes are
     * written field by field (never as raw structs) so the byte
     * stream is identical across builds regardless of padding.
     */
    void serialize(BinaryWriter &w) const;

    /** Rebuild a trained tree from serialize() output. */
    static std::unique_ptr<DecisionTree> deserialize(BinaryReader &in);

  private:
    DecisionTree() = default; //!< deserialize() fills the members

    int32_t build(const Dataset &data, std::vector<size_t> &indices,
                  size_t begin, size_t end, int depth, Rng &rng);

    size_t numInputs_ = 0;
    TreeConfig cfg_;
    std::vector<Node> nodes_;
};

/** Random-forest training configuration. */
struct ForestConfig
{
    int numTrees = 8;
    int maxDepth = 8;
    size_t minSamplesLeaf = 4;
    /** 0 = sqrt(num_features). */
    size_t featureSubset = 0;
    uint64_t seed = 1;
};

/** Bagged ensemble of CART trees; score = mean leaf probability. */
class RandomForest : public Model
{
  public:
    RandomForest(const Dataset &data, const ForestConfig &cfg);

    /**
     * Build a forest from already-trained trees (used by the
     * post-silicon app-specific retraining flow of Sec. 7.3, which
     * combines general and application-specific trees).
     */
    explicit RandomForest(
        std::vector<std::unique_ptr<DecisionTree>> trees);

    size_t numInputs() const override;
    double score(const float *x) const override;

    /**
     * Batched scoring over a flattened, full-depth-padded SoA copy
     * of the ensemble: 8 samples walk each tree in lockstep with
     * branchless (cmov) steps, so the dependent-load chains of the
     * walks overlap instead of serializing. Leaves self-loop with a
     * +inf threshold, making the walk a fixed-trip-count loop while
     * visiting exactly the nodes score() visits; per-sample leaf
     * probabilities accumulate in tree order, so every result is
     * bit-identical to score() (DESIGN.md §14).
     */
    void scoreBatch(const float *X, int n, double *out) const override;

    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

    const std::vector<std::unique_ptr<DecisionTree>> &trees() const
    {
        return trees_;
    }

    /** Move the trees out (for ensemble merging). */
    std::vector<std::unique_ptr<DecisionTree>> takeTrees();

  private:
    /**
     * Flattened node storage for scoreBatch(): one SoA array over
     * all trees, every leaf padded into a self-loop (feature 0,
     * threshold +inf, children = self) so a depth-bounded walk needs
     * no per-step leaf test. Built lazily on first batched call.
     */
    /**
     * One packed node: everything a traversal step reads sits in 16
     * bytes (a single cache-line touch), instead of four scattered
     * per-field arrays — the walk is load-bound, so this is what
     * buys the batched speedup.
     */
    struct alignas(16) FlatNode
    {
        int32_t feature;
        float threshold;
        int32_t left;
        int32_t right;
    };

    struct FlatNodes
    {
        std::vector<FlatNode> node;
        std::vector<float> prob;     //!< per node, read once at leaf
        std::vector<int32_t> roots;  //!< per-tree root index
        std::vector<int32_t> depths; //!< per-tree deepest leaf
    };

    void buildFlat() const;

    std::vector<std::unique_ptr<DecisionTree>> trees_;
    mutable FlatNodes flat_;
    mutable std::once_flag flatOnce_;
};

} // namespace psca

#endif // PSCA_ML_TREE_HH
