#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/simd.hh"
#include "ml/batch_kernels.hh"

namespace psca {

namespace {

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

} // namespace

MlpModel::MlpModel(size_t num_inputs,
                   const std::vector<int> &hidden_layers, uint64_t seed)
    : numInputs_(num_inputs)
{
    PSCA_ASSERT(num_inputs > 0, "MLP needs at least one input");
    sizes_.push_back(static_cast<int>(num_inputs));
    for (int h : hidden_layers) {
        PSCA_ASSERT(h > 0, "hidden layer width must be positive");
        sizes_.push_back(h);
    }
    sizes_.push_back(1);

    Rng rng(seed);
    for (size_t l = 0; l + 1 < sizes_.size(); ++l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const double scale = std::sqrt(2.0 / fan_in); // He init
        std::vector<float> w(static_cast<size_t>(fan_in) * fan_out);
        for (auto &v : w)
            v = static_cast<float>(rng.gaussian(0.0, scale));
        w_.push_back(std::move(w));
        b_.emplace_back(static_cast<size_t>(fan_out), 0.0f);
    }
}

double
MlpModel::score(const float *x) const
{
    std::vector<float> act(x, x + numInputs_);
    std::vector<float> next;
    for (size_t l = 0; l < w_.size(); ++l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        next.assign(static_cast<size_t>(fan_out), 0.0f);
        const bool last = l + 1 == w_.size();
        for (int f = 0; f < fan_out; ++f) {
            const float *row = w_[l].data() +
                static_cast<size_t>(f) * fan_in;
            float sum = b_[l][static_cast<size_t>(f)];
            for (int i = 0; i < fan_in; ++i)
                sum += row[i] * act[static_cast<size_t>(i)];
            next[static_cast<size_t>(f)] =
                last ? sum : std::max(0.0f, sum); // ReLU
        }
        act.swap(next);
    }
    return sigmoid(act[0]);
}

namespace mlkern {

void
mlpForwardBlockScalar(const MlpView &m, const float *xt,
                      float *scratch, float *logits)
{
    constexpr int W = kMlpLanes;
    int max_width = 0;
    for (int l = 0; l <= m.numLayers; ++l)
        max_width = std::max(max_width, m.sizes[l]);

    float *act = scratch;
    float *next = scratch + static_cast<size_t>(max_width) * W;
    const int fan_in0 = m.sizes[0];
    for (int i = 0; i < fan_in0 * W; ++i)
        act[i] = xt[i];

    for (int l = 0; l < m.numLayers; ++l) {
        const int fan_in = m.sizes[l];
        const int fan_out = m.sizes[l + 1];
        const bool last = l + 1 == m.numLayers;
        for (int f = 0; f < fan_out; ++f) {
            const float *row =
                m.weights[l] + static_cast<size_t>(f) * fan_in;
            const float bias = m.biases[l][static_cast<size_t>(f)];
            float sum[W];
            for (int w = 0; w < W; ++w)
                sum[w] = bias;
            for (int i = 0; i < fan_in; ++i) {
                const float wi = row[i];
                const float *ai = act + static_cast<size_t>(i) * W;
                for (int w = 0; w < W; ++w)
                    sum[w] += wi * ai[w];
            }
            float *nf = next + static_cast<size_t>(f) * W;
            for (int w = 0; w < W; ++w)
                nf[w] = last ? sum[w] : std::max(0.0f, sum[w]);
        }
        std::swap(act, next);
    }
    for (int l = 0; l < W; ++l)
        logits[l] = act[l];
}

} // namespace mlkern

void
MlpModel::scoreBatch(const float *X, int n, double *out) const
{
    if (n <= 0)
        return;
    constexpr int W = mlkern::kMlpLanes;
    std::vector<const float *> wp, bp;
    for (size_t l = 0; l < w_.size(); ++l) {
        wp.push_back(w_[l].data());
        bp.push_back(b_[l].data());
    }
    mlkern::MlpView view;
    view.numLayers = static_cast<int>(w_.size());
    view.sizes = sizes_.data();
    view.weights = wp.data();
    view.biases = bp.data();

    const int max_width =
        *std::max_element(sizes_.begin(), sizes_.end());
    std::vector<float> xt(numInputs_ * W);
    std::vector<float> scratch(2 * static_cast<size_t>(max_width) * W);
    float logits[W];
    const bool avx2 =
        simd::useAvx2() && mlkern::mlpForwardAvx2Compiled();

    for (int i = 0; i < n; i += W) {
        const int lanes = std::min(W, n - i);
        // Transpose the block; short tail blocks pad with zeros
        // (padded lanes are computed and discarded).
        for (size_t j = 0; j < numInputs_; ++j)
            for (int l = 0; l < W; ++l)
                xt[j * W + static_cast<size_t>(l)] =
                    l < lanes
                        ? X[static_cast<size_t>(i + l) * numInputs_ + j]
                        : 0.0f;
        (avx2 ? mlkern::mlpForwardBlockAvx2
              : mlkern::mlpForwardBlockScalar)(
            view, xt.data(), scratch.data(), logits);
        for (int l = 0; l < lanes; ++l)
            out[i + l] = sigmoid(static_cast<double>(logits[l]));
    }
}

uint32_t
MlpModel::opsPerInference() const
{
    // The paper's Table 3 accounting: each hidden filter costs
    // 3 * fan_in (fld/fmul/fadd per input) + 5 (activation) ops; the
    // scalar readout is folded into the final layer at +2 ops. This
    // reproduces 292 / 678 / 6,162 ops for the paper's three MLP
    // configurations exactly.
    uint32_t ops = 2;
    for (size_t l = 0; l + 2 < sizes_.size(); ++l) {
        ops += static_cast<uint32_t>(sizes_[l + 1]) *
            (3u * static_cast<uint32_t>(sizes_[l]) + 5u);
    }
    return ops;
}

size_t
MlpModel::memoryFootprintBytes() const
{
    size_t params = 0;
    for (size_t l = 0; l < w_.size(); ++l)
        params += w_[l].size() + b_[l].size();
    return params * sizeof(float);
}

std::string
MlpModel::describe() const
{
    std::ostringstream os;
    os << "MLP";
    for (size_t l = 1; l + 1 < sizes_.size(); ++l)
        os << (l == 1 ? " " : "/") << sizes_[l];
    return os.str();
}

void
MlpModel::train(const Dataset &data, const MlpConfig &cfg)
{
    PSCA_ASSERT(data.numFeatures == numInputs_,
                "dataset feature count mismatch");
    const size_t n = data.numSamples();
    if (n == 0)
        return;

    // Adam state per layer.
    const size_t num_layers = w_.size();
    std::vector<std::vector<float>> mw(num_layers), vw(num_layers);
    std::vector<std::vector<float>> mb(num_layers), vb(num_layers);
    std::vector<std::vector<float>> gw(num_layers), gb(num_layers);
    for (size_t l = 0; l < num_layers; ++l) {
        mw[l].assign(w_[l].size(), 0.0f);
        vw[l].assign(w_[l].size(), 0.0f);
        mb[l].assign(b_[l].size(), 0.0f);
        vb[l].assign(b_[l].size(), 0.0f);
        gw[l].resize(w_[l].size());
        gb[l].resize(b_[l].size());
    }

    // Per-layer activations for one sample (forward scratch).
    std::vector<std::vector<float>> act(num_layers + 1);
    std::vector<std::vector<float>> delta(num_layers + 1);
    for (size_t l = 0; l <= num_layers; ++l) {
        act[l].resize(static_cast<size_t>(sizes_[l]));
        delta[l].resize(static_cast<size_t>(sizes_[l]));
    }

    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    double beta1_t = 1.0, beta2_t = 1.0;

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(cfg.seed ^ 0xada3adaULL);

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        rng.shuffle(order);
        size_t pos = 0;
        while (pos < n) {
            const size_t batch_end =
                std::min(n, pos + static_cast<size_t>(cfg.batchSize));
            const double inv_batch =
                1.0 / static_cast<double>(batch_end - pos);
            for (size_t l = 0; l < num_layers; ++l) {
                std::fill(gw[l].begin(), gw[l].end(), 0.0f);
                std::fill(gb[l].begin(), gb[l].end(), 0.0f);
            }

            for (size_t s = pos; s < batch_end; ++s) {
                const size_t idx = order[s];
                const float *x = data.row(idx);
                std::copy(x, x + numInputs_, act[0].begin());

                // Forward.
                for (size_t l = 0; l < num_layers; ++l) {
                    const int fan_in = sizes_[l];
                    const int fan_out = sizes_[l + 1];
                    const bool last = l + 1 == num_layers;
                    for (int f = 0; f < fan_out; ++f) {
                        const float *row = w_[l].data() +
                            static_cast<size_t>(f) * fan_in;
                        float sum = b_[l][static_cast<size_t>(f)];
                        for (int i = 0; i < fan_in; ++i)
                            sum += row[i] * act[l][static_cast<size_t>(i)];
                        act[l + 1][static_cast<size_t>(f)] =
                            last ? sum : std::max(0.0f, sum);
                    }
                }

                // Backward (BCE with sigmoid output: dL/dz = p - y).
                const double p = sigmoid(act[num_layers][0]);
                delta[num_layers][0] = static_cast<float>(
                    p - static_cast<double>(data.y[idx]));
                for (size_t l = num_layers; l-- > 0;) {
                    const int fan_in = sizes_[l];
                    const int fan_out = sizes_[l + 1];
                    std::fill(delta[l].begin(), delta[l].end(), 0.0f);
                    for (int f = 0; f < fan_out; ++f) {
                        const float d =
                            delta[l + 1][static_cast<size_t>(f)];
                        if (d == 0.0f)
                            continue;
                        float *grow = gw[l].data() +
                            static_cast<size_t>(f) * fan_in;
                        const float *wrow = w_[l].data() +
                            static_cast<size_t>(f) * fan_in;
                        for (int i = 0; i < fan_in; ++i) {
                            grow[i] += d * act[l][static_cast<size_t>(i)];
                            delta[l][static_cast<size_t>(i)] +=
                                d * wrow[i];
                        }
                        gb[l][static_cast<size_t>(f)] += d;
                    }
                    // ReLU derivative on the pre-activation sign,
                    // equivalent to gating on the activation value.
                    if (l > 0) {
                        for (int i = 0; i < fan_in; ++i) {
                            if (act[l][static_cast<size_t>(i)] <= 0.0f)
                                delta[l][static_cast<size_t>(i)] = 0.0f;
                        }
                    }
                }
            }

            // Adam update.
            beta1_t *= beta1;
            beta2_t *= beta2;
            const double lr = cfg.learningRate *
                std::sqrt(1.0 - beta2_t) / (1.0 - beta1_t);
            for (size_t l = 0; l < num_layers; ++l) {
                for (size_t k = 0; k < w_[l].size(); ++k) {
                    const double g = gw[l][k] * inv_batch +
                        cfg.l2 * w_[l][k];
                    mw[l][k] = static_cast<float>(
                        beta1 * mw[l][k] + (1 - beta1) * g);
                    vw[l][k] = static_cast<float>(
                        beta2 * vw[l][k] + (1 - beta2) * g * g);
                    w_[l][k] -= static_cast<float>(
                        lr * mw[l][k] / (std::sqrt(vw[l][k]) + eps));
                }
                for (size_t k = 0; k < b_[l].size(); ++k) {
                    const double g = gb[l][k] * inv_batch;
                    mb[l][k] = static_cast<float>(
                        beta1 * mb[l][k] + (1 - beta1) * g);
                    vb[l][k] = static_cast<float>(
                        beta2 * vb[l][k] + (1 - beta2) * g * g);
                    b_[l][k] -= static_cast<float>(
                        lr * mb[l][k] / (std::sqrt(vb[l][k]) + eps));
                }
            }
            pos = batch_end;
        }
    }
}

std::unique_ptr<MlpModel>
trainMlp(const Dataset &data, const MlpConfig &cfg)
{
    auto model = std::make_unique<MlpModel>(
        data.numFeatures, cfg.hiddenLayers, cfg.seed);
    model->train(data, cfg);
    return model;
}

} // namespace psca
