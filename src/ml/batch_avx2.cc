/**
 * @file
 * AVX2 build of the blocked MLP forward kernel. This translation
 * unit is the only one compiled with -mavx2, and it is compiled with
 * FMA contraction disabled (-mno-fma -ffp-contract=off in
 * CMakeLists) so every lane performs the same mul-then-add sequence
 * as MlpModel::score() and the results stay bit-identical to the
 * scalar kernel (DESIGN.md §14).
 */

#include "ml/batch_kernels.hh"

#if defined(PSCA_HAVE_AVX2) && defined(__x86_64__)

#include <immintrin.h>

namespace psca {
namespace mlkern {

bool
mlpForwardAvx2Compiled()
{
    return true;
}

void
mlpForwardBlockAvx2(const MlpView &m, const float *xt, float *scratch,
                    float *logits)
{
    constexpr int W = kMlpLanes;
    int max_width = 0;
    for (int l = 0; l <= m.numLayers; ++l)
        max_width = max_width > m.sizes[l] ? max_width : m.sizes[l];

    float *act = scratch;
    float *next = scratch + static_cast<size_t>(max_width) * W;
    const int fan_in0 = m.sizes[0];
    for (int i = 0; i < fan_in0 * W; ++i)
        act[i] = xt[i];

    const __m256 zero = _mm256_setzero_ps();
    for (int l = 0; l < m.numLayers; ++l) {
        const int fan_in = m.sizes[l];
        const int fan_out = m.sizes[l + 1];
        const bool last = l + 1 == m.numLayers;
        for (int f = 0; f < fan_out; ++f) {
            const float *row =
                m.weights[l] + static_cast<size_t>(f) * fan_in;
            __m256 sum = _mm256_set1_ps(
                m.biases[l][static_cast<size_t>(f)]);
            for (int i = 0; i < fan_in; ++i) {
                const __m256 wi = _mm256_set1_ps(row[i]);
                const __m256 ai = _mm256_loadu_ps(
                    act + static_cast<size_t>(i) * W);
                sum = _mm256_add_ps(sum, _mm256_mul_ps(wi, ai));
            }
            // vmaxps(sum, 0) returns the second operand for NaN and
            // for the -0/+0 tie, matching std::max(0.0f, sum).
            if (!last)
                sum = _mm256_max_ps(sum, zero);
            _mm256_storeu_ps(next + static_cast<size_t>(f) * W, sum);
        }
        float *tmp = act;
        act = next;
        next = tmp;
    }
    for (int l = 0; l < W; ++l)
        logits[l] = act[l];
}

} // namespace mlkern
} // namespace psca

#else // !PSCA_HAVE_AVX2

namespace psca {
namespace mlkern {

bool
mlpForwardAvx2Compiled()
{
    return false;
}

void
mlpForwardBlockAvx2(const MlpView &m, const float *xt, float *scratch,
                    float *logits)
{
    mlpForwardBlockScalar(m, xt, scratch, logits);
}

} // namespace mlkern
} // namespace psca

#endif // PSCA_HAVE_AVX2
