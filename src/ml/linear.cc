#include "ml/linear.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>

#include "common/rng.hh"

namespace psca {

namespace {

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

} // namespace

void
lbfgsMinimize(
    size_t dim,
    const std::function<double(const std::vector<double> &,
                               std::vector<double> &)> &eval,
    std::vector<double> &x, int max_iterations, int memory,
    double tolerance)
{
    PSCA_ASSERT(x.size() == dim, "initial point has wrong dimension");
    std::vector<double> grad(dim), new_grad(dim);
    double fx = eval(x, grad);

    std::vector<std::vector<double>> s_hist, y_hist;
    std::vector<double> rho_hist;

    for (int iter = 0; iter < max_iterations; ++iter) {
        double gnorm = std::sqrt(dot(grad, grad));
        if (gnorm < tolerance)
            break;

        // Two-loop recursion for the search direction d = -H * g.
        std::vector<double> d = grad;
        std::vector<double> alpha(s_hist.size());
        for (size_t k = s_hist.size(); k-- > 0;) {
            alpha[k] = rho_hist[k] * dot(s_hist[k], d);
            for (size_t i = 0; i < dim; ++i)
                d[i] -= alpha[k] * y_hist[k][i];
        }
        if (!s_hist.empty()) {
            const auto &s = s_hist.back();
            const auto &y = y_hist.back();
            const double gamma = dot(s, y) / std::max(dot(y, y), 1e-300);
            for (auto &v : d)
                v *= gamma;
        }
        for (size_t k = 0; k < s_hist.size(); ++k) {
            const double beta = rho_hist[k] * dot(y_hist[k], d);
            for (size_t i = 0; i < dim; ++i)
                d[i] += (alpha[k] - beta) * s_hist[k][i];
        }
        for (auto &v : d)
            v = -v;

        // Backtracking Armijo line search.
        const double dg = dot(d, grad);
        if (dg >= 0.0)
            break; // not a descent direction; numerical breakdown
        double step = 1.0;
        std::vector<double> new_x(dim);
        double new_fx = fx;
        bool accepted = false;
        for (int ls = 0; ls < 32; ++ls) {
            for (size_t i = 0; i < dim; ++i)
                new_x[i] = x[i] + step * d[i];
            new_fx = eval(new_x, new_grad);
            if (new_fx <= fx + 1e-4 * step * dg) {
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if (!accepted)
            break;

        // Curvature pair.
        std::vector<double> s(dim), yv(dim);
        for (size_t i = 0; i < dim; ++i) {
            s[i] = new_x[i] - x[i];
            yv[i] = new_grad[i] - grad[i];
        }
        const double sy = dot(s, yv);
        if (sy > 1e-12) {
            s_hist.push_back(std::move(s));
            y_hist.push_back(std::move(yv));
            rho_hist.push_back(1.0 / sy);
            if (static_cast<int>(s_hist.size()) > memory) {
                s_hist.erase(s_hist.begin());
                y_hist.erase(y_hist.begin());
                rho_hist.erase(rho_hist.begin());
            }
        }

        if (std::abs(fx - new_fx) <
            tolerance * std::max(1.0, std::abs(fx)))
        {
            x = new_x;
            grad = new_grad;
            break;
        }
        x = new_x;
        grad = new_grad;
        fx = new_fx;
    }
}

LogisticRegression::LogisticRegression(const Dataset &data,
                                       const LogRegConfig &cfg)
    : w_(data.numFeatures, 0.0)
{
    const size_t n = data.numSamples();
    const size_t dim = data.numFeatures + 1; // weights + bias

    auto eval = [&](const std::vector<double> &p,
                    std::vector<double> &grad) {
        std::fill(grad.begin(), grad.end(), 0.0);
        double loss = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const float *x = data.row(i);
            double z = p[data.numFeatures];
            for (size_t j = 0; j < data.numFeatures; ++j)
                z += p[j] * x[j];
            const double prob = sigmoid(z);
            const double y = data.y[i];
            loss += -(y * std::log(std::max(prob, 1e-12)) +
                      (1 - y) * std::log(std::max(1 - prob, 1e-12)));
            const double d = prob - y;
            for (size_t j = 0; j < data.numFeatures; ++j)
                grad[j] += d * x[j];
            grad[data.numFeatures] += d;
        }
        const double inv_n = n ? 1.0 / static_cast<double>(n) : 1.0;
        loss *= inv_n;
        for (auto &g : grad)
            g *= inv_n;
        for (size_t j = 0; j < data.numFeatures; ++j) {
            loss += 0.5 * cfg.l2 * p[j] * p[j];
            grad[j] += cfg.l2 * p[j];
        }
        return loss;
    };

    std::vector<double> params(dim, 0.0);
    if (n > 0) {
        lbfgsMinimize(dim, eval, params, cfg.maxIterations,
                      cfg.lbfgsMemory, cfg.tolerance);
    }
    std::copy(params.begin(),
              params.begin() + static_cast<ptrdiff_t>(data.numFeatures),
              w_.begin());
    b_ = params[data.numFeatures];
}

double
LogisticRegression::score(const float *x) const
{
    double z = b_;
    for (size_t j = 0; j < w_.size(); ++j)
        z += w_[j] * x[j];
    return sigmoid(z);
}

void
LogisticRegression::scoreBatch(const float *X, int n,
                               double *out) const
{
    constexpr int kLanes = 8;
    const size_t stride = w_.size();
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const float *base = X + static_cast<size_t>(i) * stride;
        double z[kLanes];
        for (int l = 0; l < kLanes; ++l)
            z[l] = b_;
        for (size_t j = 0; j < stride; ++j) {
            const double wj = w_[j];
            for (int l = 0; l < kLanes; ++l)
                z[l] += wj * base[static_cast<size_t>(l) * stride + j];
        }
        for (int l = 0; l < kLanes; ++l)
            out[i + l] = sigmoid(z[l]);
    }
    for (; i < n; ++i)
        out[i] = score(X + static_cast<size_t>(i) * stride);
}

uint32_t
LogisticRegression::opsPerInference() const
{
    return 3u * static_cast<uint32_t>(w_.size()) + kExpOps;
}

size_t
LogisticRegression::memoryFootprintBytes() const
{
    return (w_.size() + 1) * sizeof(float);
}

std::string
LogisticRegression::describe() const
{
    return "LogisticRegression";
}

LinearSvmEnsemble::LinearSvmEnsemble(const Dataset &data,
                                     const LinearSvmConfig &cfg)
    : numInputs_(data.numFeatures)
{
    const size_t n = data.numSamples();
    Rng rng(cfg.seed ^ 0x57a91e4aULL);

    for (int m = 0; m < cfg.ensembleSize; ++m) {
        std::vector<double> w(numInputs_ + 1, 0.0);
        if (n > 0) {
            // Pegasos: SGD on the hinge loss with 1/(lambda t) steps.
            uint64_t t = 1;
            for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
                for (size_t step = 0; step < n; ++step, ++t) {
                    const size_t i = static_cast<size_t>(rng.below(n));
                    const float *x = data.row(i);
                    const double y = data.y[i] ? 1.0 : -1.0;
                    double z = w[numInputs_];
                    for (size_t j = 0; j < numInputs_; ++j)
                        z += w[j] * x[j];
                    const double eta =
                        1.0 / (cfg.lambda * static_cast<double>(t));
                    for (size_t j = 0; j < numInputs_; ++j)
                        w[j] *= 1.0 - eta * cfg.lambda;
                    if (y * z < 1.0) {
                        for (size_t j = 0; j < numInputs_; ++j)
                            w[j] += eta * y * x[j];
                        w[numInputs_] += eta * y * 0.1;
                    }
                }
            }
        }
        members_.push_back(std::move(w));
    }
}

double
LinearSvmEnsemble::score(const float *x) const
{
    int votes = 0;
    for (const auto &w : members_) {
        double z = w[numInputs_];
        for (size_t j = 0; j < numInputs_; ++j)
            z += w[j] * x[j];
        votes += z >= 0.0 ? 1 : 0;
    }
    return static_cast<double>(votes) /
        static_cast<double>(members_.size());
}

void
LinearSvmEnsemble::scoreBatch(const float *X, int n, double *out) const
{
    constexpr int kLanes = 8;
    const size_t stride = numInputs_;
    int i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const float *base = X + static_cast<size_t>(i) * stride;
        int votes[kLanes] = {};
        for (const auto &w : members_) {
            double z[kLanes];
            for (int l = 0; l < kLanes; ++l)
                z[l] = w[numInputs_];
            for (size_t j = 0; j < stride; ++j) {
                const double wj = w[j];
                for (int l = 0; l < kLanes; ++l)
                    z[l] +=
                        wj * base[static_cast<size_t>(l) * stride + j];
            }
            for (int l = 0; l < kLanes; ++l)
                votes[l] += z[l] >= 0.0 ? 1 : 0;
        }
        for (int l = 0; l < kLanes; ++l)
            out[i + l] = static_cast<double>(votes[l]) /
                static_cast<double>(members_.size());
    }
    for (; i < n; ++i)
        out[i] = score(X + static_cast<size_t>(i) * stride);
}

uint32_t
LinearSvmEnsemble::opsPerInference() const
{
    // 3 ops per input per member plus per-member compare/vote.
    return static_cast<uint32_t>(members_.size()) *
        (3u * static_cast<uint32_t>(numInputs_) + 8u) +
        4u;
}

size_t
LinearSvmEnsemble::memoryFootprintBytes() const
{
    return members_.size() * (numInputs_ + 1) * sizeof(float);
}

std::string
LinearSvmEnsemble::describe() const
{
    std::ostringstream os;
    os << "LinearSVM x" << members_.size();
    return os.str();
}

} // namespace psca
