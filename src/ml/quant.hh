/**
 * @file
 * Int8/fixed-point inference path modeling the 500-MIPS adaptation
 * microcontroller (Sec. 5). The float models are trained as before;
 * quantization is a post-training transform producing firmware-ready
 * integer tables, enabled at packaging time with `PSCA_UC_FIXED=1`.
 *
 * Scheme (DESIGN.md §14):
 *  - Inputs snap to a fixed global grid: q = clamp(round(S x),
 *    -128, 127) with S = kInputScale = 32, i.e. Q3.5 covering
 *    [-4, 4). Z-scored telemetry concentrates within a few sigma
 *    (decide() sanitizes the rest), and the finer step matters:
 *    tree splits that separate workload clusters can sit closer to
 *    the data than a coarser grid's snap radius, flipping whole
 *    clusters at once (measured in BENCH_quant.json as the
 *    disagreement/rail-clip gauges).
 *  - Trees: thresholds snap to int16 qthr = clamp(floor(S t),
 *    -129, 127). For integer q, (q <= floor(S t)) <=> (q/S <= t),
 *    and the clamp sentinels -129/127 encode always-false /
 *    always-true, so the integer traversal takes EXACTLY the same
 *    path as the float tree on the dequantized input — trees
 *    quantize bit-exactly. Leaf probabilities are int16 at scale
 *    2^14; the vote average divides an exact integer sum by
 *    numTrees * 2^14, so it is exact whenever the float average is.
 *  - MLP / logistic regression: per-layer symmetric int8 weights
 *    (scale W_l = 127 / max|w|), int32 biases and accumulators,
 *    int16 activations on power-of-2 scales chosen from data-free
 *    interval bounds so no intermediate can saturate. Each model
 *    carries logitErrorBound(), a provable bound (vs the float model
 *    on the dequantized input) computed by propagating weight-,
 *    bias- and requantization-rounding intervals layer by layer.
 *
 * Firmware cost model (int8): a MAC is one uc op (vs 3 for
 * fld/fmul/fadd in the float path, Listing 1), a tree level is 4 ops
 * (vs 8), and requantization adds ~6 ops per neuron.
 */

#ifndef PSCA_ML_QUANT_HH
#define PSCA_ML_QUANT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/model.hh"
#include "ml/tree.hh"

namespace psca {
namespace quant {

/** Input grid: q = clamp(round(kInputScale * x)) in int8 (Q3.5). */
constexpr int kInputScale = 32;

/** Leaf-probability scale (int16): qprob = round(p * 2^14). */
constexpr int kProbScale = 1 << 14;

/** Quantize one feature onto the int8 input grid. */
int8_t quantizeInput(float x);

/** Quantize a feature vector onto the input grid. */
void quantizeInputs(const float *x, size_t n, int8_t *out);

/** Dequantized value of a grid point (exact: q / kInputScale). */
float dequantizeInput(int8_t q);

/** True when `PSCA_UC_FIXED=1` selects the fixed-point uc path. */
bool ucFixedPointEnabled();

/** Integer-table random forest; traversal is bit-exact (see @file). */
class QuantizedForest
{
  public:
    static QuantizedForest fromForest(const RandomForest &f);

    size_t numInputs() const { return numInputs_; }

    /** Quantize the input, then integer-traverse; see scoreQuantized. */
    double score(const float *x) const;

    /**
     * Integer traversal over already-quantized features. Selects the
     * same leaves as the float forest on the dequantized input;
     * returns sum(qprob) / (numTrees * 2^14).
     */
    double scoreQuantized(const int8_t *qx) const;

    uint32_t opsPerInference() const;
    size_t memoryFootprintBytes() const;

    void serialize(BinaryWriter &w) const;
    static QuantizedForest deserialize(BinaryReader &in);

  private:
    size_t numInputs_ = 0;
    int maxDepth_ = 0;
    std::vector<int32_t> roots_;
    // Flattened nodes across all trees (leaves: qthr = 127 with
    // left = right = self, so depth-bounded walks are safe).
    std::vector<int16_t> feature_;
    std::vector<int16_t> qthr_; //!< [-129, 127]; see @file
    std::vector<int32_t> left_;
    std::vector<int32_t> right_;
    std::vector<int16_t> qprob_;
};

/** Int8-weight MLP with int16 activations and an error bound. */
class QuantizedMlp
{
  public:
    static QuantizedMlp fromMlp(const MlpModel &m);

    size_t numInputs() const
    {
        return sizes_.empty() ? 0 : static_cast<size_t>(sizes_[0]);
    }

    /** Quantize the input, integer-forward, sigmoid of the logit. */
    double score(const float *x) const;

    /** Pre-sigmoid fixed-point logit for quantized features. */
    double logitQuantized(const int8_t *qx) const;

    /**
     * Provable bound on |quantized logit - float logit on the
     * dequantized input| (interval arithmetic; see @file).
     */
    double logitErrorBound() const { return logitErrorBound_; }

    uint32_t opsPerInference() const;
    size_t memoryFootprintBytes() const;

    void serialize(BinaryWriter &w) const;
    static QuantizedMlp deserialize(BinaryReader &in);

  private:
    std::vector<int32_t> sizes_; //!< layer widths, input first
    std::vector<float> wScale_;  //!< per layer: wq = round(w * s)
    std::vector<int32_t> aScale_; //!< per layer input act. scale (2^k)
    std::vector<std::vector<int8_t>> wq_;  //!< row-major like MlpModel
    std::vector<std::vector<int32_t>> bq_; //!< at scale W_l * A_l
    double logitErrorBound_ = 0.0;
};

/** Int8-weight logistic regression with an error bound. */
class QuantizedLinear
{
  public:
    static QuantizedLinear fromLogReg(const LogisticRegression &m);

    size_t numInputs() const { return wq_.size(); }
    double score(const float *x) const;
    double logitQuantized(const int8_t *qx) const;
    double logitErrorBound() const { return logitErrorBound_; }

    uint32_t opsPerInference() const;
    size_t memoryFootprintBytes() const;

    void serialize(BinaryWriter &w) const;
    static QuantizedLinear deserialize(BinaryReader &in);

  private:
    float wScale_ = 1.0f;
    std::vector<int8_t> wq_;
    int32_t bq_ = 0; //!< at scale wScale_ * kInputScale
    double logitErrorBound_ = 0.0;
};

/**
 * Quantize any supported model (RandomForest, MlpModel,
 * LogisticRegression) behind the Model interface, preserving the
 * decision threshold. Returns nullptr for unsupported model types
 * (the firmware packager then keeps the float path).
 */
std::unique_ptr<Model> quantize(const Model &m);

/**
 * Serialize a supported model's quantized form as a self-describing
 * firmware payload blob (type tag + tables). Empty string when the
 * model type has no quantized form.
 */
std::string packPayload(const Model &m);

/** Ops-per-inference of a packed payload (int8 cost model). */
uint32_t payloadOps(const std::string &payload);

/**
 * Rebuild a scoring Model from packPayload() output (used by the
 * firmware loader when the package carries fixed-point slots).
 * Returns nullptr on an empty payload.
 */
std::unique_ptr<Model> unpackPayload(const std::string &payload);

} // namespace quant
} // namespace psca

#endif // PSCA_ML_QUANT_HH
