/**
 * @file
 * Common interface for adaptation models (Sec. 2.3): trained offline,
 * then executed in inference mode on the microcontroller. Each model
 * reports its firmware cost (operations per prediction and memory
 * footprint) so the ops-budget machinery of Sec. 5 can decide the
 * finest prediction granularity it supports.
 */

#ifndef PSCA_ML_MODEL_HH
#define PSCA_ML_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hh"

namespace psca {

/** A trained binary adaptation model. */
class Model
{
  public:
    virtual ~Model() = default;

    /** Number of input counters the model consumes. */
    virtual size_t numInputs() const = 0;

    /**
     * Raw score for one (already normalized) feature vector; higher
     * means "gate" is more likely. Probabilistic models return a
     * probability in [0, 1].
     */
    virtual double score(const float *x) const = 0;

    /**
     * Raw scores for n row-major feature vectors (stride =
     * numInputs()): out[i] = score(X + i * numInputs()), bitwise.
     * The base implementation is the scalar loop; vectorized
     * overrides keep each sample's operation order (and therefore
     * its exact double result) and only parallelize across samples
     * (DESIGN.md §14).
     */
    virtual void
    scoreBatch(const float *X, int n, double *out) const
    {
        for (int i = 0; i < n; ++i)
            out[i] = score(X + static_cast<size_t>(i) * numInputs());
    }

    /** Binary decision: score >= threshold. */
    bool
    predict(const float *x) const
    {
        return score(x) >= threshold_;
    }

    /**
     * Batched decisions: out[i] = 1.0f when sample i gates, else
     * 0.0f. Exactly predict() per sample — the scores come from
     * scoreBatch() and the threshold compare stays in double — so
     * batched scoring loops are bit-identical to the scalar path.
     */
    void
    predictBatch(const float *X, int n, float *out) const
    {
        std::vector<double> scores(static_cast<size_t>(n > 0 ? n : 0));
        scoreBatch(X, n, scores.data());
        for (int i = 0; i < n; ++i)
            out[i] = scores[static_cast<size_t>(i)] >= threshold_
                ? 1.0f
                : 0.0f;
    }

    /**
     * Decision threshold (the model's "sensitivity", Sec. 6.3). Lower
     * thresholds gate more aggressively; raising the threshold trades
     * PGOS for fewer false-positive gating decisions.
     */
    double threshold() const { return threshold_; }
    void setThreshold(double t) { threshold_ = t; }

    /** Firmware operations per prediction (Table 3 accounting). */
    virtual uint32_t opsPerInference() const = 0;

    /** Firmware memory footprint in bytes (Table 3 accounting). */
    virtual size_t memoryFootprintBytes() const = 0;

    /** Short description, e.g. "MLP 8/8/4". */
    virtual std::string describe() const = 0;

  private:
    double threshold_ = 0.5;
};

} // namespace psca

#endif // PSCA_ML_MODEL_HH
