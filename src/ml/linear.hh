/**
 * @file
 * Linear adaptation models: logistic regression trained with L-BFGS
 * (the paper trains its LR/SRCH baselines with scikit-learn's L-BFGS)
 * and a bagged linear-SVM ensemble trained with Pegasos-style
 * subgradient descent on the hinge loss.
 *
 * Firmware cost convention: an inner product costs 3 ops per input
 * (fld/fmul/fadd, Listing 1), and a branch-free exp() evaluation
 * costs ~122 ops (math.h exp() is up to 60 ops with 12 branches; the
 * firmware version is unrolled). This makes LR on 12 counters cost
 * 158 ops and SRCH on 150 histogram features cost 572 ops — both
 * exactly the paper's Table 3 / Sec. 7 numbers.
 */

#ifndef PSCA_ML_LINEAR_HH
#define PSCA_ML_LINEAR_HH

#include <functional>
#include <vector>

#include "ml/model.hh"

namespace psca {

/** Ops for a branch-free firmware exp() (probability output). */
constexpr uint32_t kExpOps = 122;

/** Logistic-regression training configuration. */
struct LogRegConfig
{
    double l2 = 1e-4;
    int maxIterations = 200;
    int lbfgsMemory = 8;
    double tolerance = 1e-7;
};

/** Logistic regression: sigmoid(w . x + b). */
class LogisticRegression : public Model
{
  public:
    LogisticRegression(const Dataset &data, const LogRegConfig &cfg);

    size_t numInputs() const override { return w_.size(); }
    double score(const float *x) const override;

    /**
     * 8-lane blocked dot products; per lane the feature order (and
     * the double accumulation) matches score() exactly, so results
     * are bit-identical (DESIGN.md §14).
     */
    void scoreBatch(const float *X, int n, double *out) const override;

    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

    const std::vector<double> &coefficients() const { return w_; }
    double bias() const { return b_; }

  private:
    std::vector<double> w_;
    double b_ = 0.0;
};

/** Linear-SVM ensemble configuration. */
struct LinearSvmConfig
{
    int ensembleSize = 5;
    double lambda = 1e-4;  //!< Pegasos regularization
    int epochs = 10;
    uint64_t seed = 1;
};

/**
 * Ensemble of linear SVMs trained on bootstrap samples; the score is
 * the fraction of members voting "gate".
 */
class LinearSvmEnsemble : public Model
{
  public:
    LinearSvmEnsemble(const Dataset &data, const LinearSvmConfig &cfg);

    size_t numInputs() const override { return numInputs_; }
    double score(const float *x) const override;

    /** 8-lane blocked member votes, bit-identical to score(). */
    void scoreBatch(const float *X, int n, double *out) const override;

    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

  private:
    size_t numInputs_;
    /** Per member: numInputs weights then a bias. */
    std::vector<std::vector<double>> members_;
};

/**
 * Minimize a smooth function with L-BFGS (two-loop recursion and
 * backtracking Armijo line search). Exposed for reuse and testing.
 *
 * @param dim Parameter count.
 * @param eval Computes loss and gradient at a point: f(x, grad_out).
 * @param x In: initial point; out: the minimizer found.
 */
void lbfgsMinimize(
    size_t dim,
    const std::function<double(const std::vector<double> &,
                               std::vector<double> &)> &eval,
    std::vector<double> &x, int max_iterations = 200, int memory = 8,
    double tolerance = 1e-7);

} // namespace psca

#endif // PSCA_ML_LINEAR_HH
