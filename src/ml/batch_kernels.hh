/**
 * @file
 * Lane-blocked MLP forward kernels behind the batched scoring path
 * (DESIGN.md §14). Eight samples flow through the network together
 * in transposed activation blocks (`act[neuron][lane]`); per lane
 * the accumulation order is exactly MlpModel::score() — sum starts
 * at the bias and adds `w[i] * act[i]` in ascending i — so the AVX2
 * and scalar kernels produce bit-identical logits. The AVX2 twin
 * lives in its own translation unit compiled with -mavx2 but without
 * FMA contraction, preserving that guarantee.
 */

#ifndef PSCA_ML_BATCH_KERNELS_HH
#define PSCA_ML_BATCH_KERNELS_HH

namespace psca {
namespace mlkern {

/** Samples per block; also the AVX2 float vector width. */
constexpr int kMlpLanes = 8;

/** Borrowed view of an MLP's layers for the forward kernels. */
struct MlpView
{
    int numLayers = 0;          //!< number of weight layers
    const int *sizes = nullptr; //!< numLayers + 1 widths, input first
    /** Per-layer row-major weights [fan_out x fan_in] and biases. */
    const float *const *weights = nullptr;
    const float *const *biases = nullptr;
};

/**
 * Forward kMlpLanes samples. @p xt holds the transposed input block
 * (`xt[i * kMlpLanes + lane]` = feature i of lane); @p scratch must
 * hold at least 2 * maxWidth * kMlpLanes floats; @p logits receives
 * the kMlpLanes pre-sigmoid outputs.
 */
void mlpForwardBlockScalar(const MlpView &m, const float *xt,
                           float *scratch, float *logits);

/**
 * AVX2 twin of mlpForwardBlockScalar(); bit-identical results.
 * Falls back to the scalar kernel in binaries built without AVX2.
 */
void mlpForwardBlockAvx2(const MlpView &m, const float *xt,
                         float *scratch, float *logits);

/** True when this binary carries the real AVX2 kernel. */
bool mlpForwardAvx2Compiled();

} // namespace mlkern
} // namespace psca

#endif // PSCA_ML_BATCH_KERNELS_HH
