/**
 * @file
 * Budgeted chi-square kernel SVM, the "sophisticated kernel" entry of
 * Table 3. Trained with kernelized Pegasos subgradient descent under
 * a hard support-vector budget (the paper caps at 1,000 SVs). The
 * chi-square kernel operates on shifted-non-negative features, the
 * natural domain for counter data.
 *
 * Firmware cost: evaluating one support vector costs ~8 ops per
 * input dimension (sub, mul, add, div, accumulate per Listing-1-style
 * scalar code) plus ~25 ops for the exp; 12 inputs gives 121 ops per
 * SV and ~121k ops at the 1,000-SV budget, matching Table 3.
 */

#ifndef PSCA_ML_SVM_HH
#define PSCA_ML_SVM_HH

#include <vector>

#include "ml/model.hh"

namespace psca {

/** Chi-square SVM training configuration. */
struct Chi2SvmConfig
{
    size_t maxSupportVectors = 1000;
    double gamma = 0.5;    //!< kernel bandwidth
    double lambda = 1e-4;  //!< Pegasos regularization
    int epochs = 4;
    uint64_t seed = 1;
};

/** Budgeted chi-square kernel SVM. */
class Chi2Svm : public Model
{
  public:
    Chi2Svm(const Dataset &data, const Chi2SvmConfig &cfg);

    size_t numInputs() const override { return numInputs_; }
    double score(const float *x) const override;

    /**
     * Blocked scoring: 4 samples share each support-vector row while
     * it is hot in cache. Per sample every kernel evaluation and the
     * accumulation order match score() exactly, so results are
     * bit-identical (DESIGN.md §14).
     */
    void scoreBatch(const float *X, int n, double *out) const override;

    uint32_t opsPerInference() const override;
    size_t memoryFootprintBytes() const override;
    std::string describe() const override;

    size_t numSupportVectors() const { return alphas_.size(); }

  private:
    double kernel(const float *a, const float *b) const;

    size_t numInputs_;
    Chi2SvmConfig cfg_;
    /** Per-feature shift making inputs non-negative. */
    std::vector<float> shift_;
    /** Support vectors, row-major (shifted feature space). */
    std::vector<float> sv_;
    std::vector<double> alphas_; //!< signed dual weights
    double bias_ = 0.0;
};

} // namespace psca

#endif // PSCA_ML_SVM_HH
