#include "obs/report.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

bool
reportEnabled()
{
    return env::flagOr("PSCA_REPORT", true);
}

std::string
reportPath(const std::string &name)
{
    const std::string dir = env::stringOr("PSCA_REPORT_DIR", "");
    if (dir.empty())
        return name + ".json";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir + "/" + name + ".json";
}

void
writeRunReport(const std::string &name)
{
    if (!reportEnabled())
        return;
    // Pull the fault-site fire tallies into the registry so every
    // injection shows up next to the degradation counters it caused.
    // Only sites that actually fired are exported: a fault-free run's
    // report stays byte-identical to one built without fault sites.
    auto &reg = StatRegistry::instance();
    FaultRegistry::instance().forEachSite(
        [&reg](const FaultSite &site) {
            if (site.fireCount() > 0) {
                reg.gauge("fault." + site.name() + ".fires")
                    .set(static_cast<double>(site.fireCount()));
            }
        });
    // Drain any buffered log output first so a consumer tailing the
    // log sees every line from the run before the report appears.
    std::fflush(stderr);
    std::fflush(stdout);
    const std::string path = reportPath(name);
    if (!reg.dumpJson(path, name)) {
        warn("run report '", path,
             "' is truncated: stream error during write (disk "
             "full?)");
        return;
    }
    inform("run report written to ", path);
}

RunReportGuard::~RunReportGuard()
{
    writeRunReport(name_);
}

} // namespace obs
} // namespace psca
