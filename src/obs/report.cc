#include "obs/report.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

bool
reportEnabled()
{
    const char *env = std::getenv("PSCA_REPORT");
    return !(env && std::strcmp(env, "0") == 0);
}

std::string
reportPath(const std::string &name)
{
    const char *dir = std::getenv("PSCA_REPORT_DIR");
    if (!dir || !*dir)
        return name + ".json";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return std::string(dir) + "/" + name + ".json";
}

void
writeRunReport(const std::string &name)
{
    if (!reportEnabled())
        return;
    // Drain any buffered log output first so a consumer tailing the
    // log sees every line from the run before the report appears.
    std::fflush(stderr);
    std::fflush(stdout);
    const std::string path = reportPath(name);
    StatRegistry::instance().dumpJson(path, name);
    inform("run report written to ", path);
}

RunReportGuard::~RunReportGuard()
{
    writeRunReport(name_);
}

} // namespace obs
} // namespace psca
