#include "obs/report.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

bool
reportEnabled()
{
    return env::flagOr("PSCA_REPORT", true);
}

std::string
reportPath(const std::string &name)
{
    const std::string dir = env::stringOr("PSCA_REPORT_DIR", "");
    if (dir.empty())
        return name + ".json";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir + "/" + name + ".json";
}

void
writeRunReport(const std::string &name)
{
    if (!reportEnabled())
        return;
    // Pull the fault-site fire tallies into the registry so every
    // injection shows up next to the degradation counters it caused.
    // Only sites that actually fired are exported: a fault-free run's
    // report stays byte-identical to one built without fault sites.
    auto &reg = StatRegistry::instance();
    FaultRegistry::instance().forEachSite(
        [&reg](const FaultSite &site) {
            if (site.fireCount() > 0) {
                reg.gauge("fault." + site.name() + ".fires")
                    .set(static_cast<double>(site.fireCount()));
            }
        });
    // Same only-when-active rule for the checkpoint/resume layer:
    // with the journal disabled (or never entered) no runner.* gauges
    // exist, so those reports stay byte-identical to a build without
    // the journal. Counts are process accounting — they describe this
    // run's execution, not its results, and legitimately differ
    // between a resumed and an uninterrupted run (DESIGN.md §11).
    const JournalStats js = Journal::globalStats();
    if (js.active) {
        auto set = [&reg](const char *name, uint64_t v) {
            reg.gauge(name).set(static_cast<double>(v));
        };
        set("runner.units_skipped", js.unitsSkipped);
        set("runner.units_executed", js.unitsExecuted);
        if (js.unitRetries > 0)
            set("runner.unit_retries", js.unitRetries);
        if (js.verifyFailures > 0)
            set("runner.verify_failures", js.verifyFailures);
        if (js.tornTails > 0)
            set("runner.torn_tails", js.tornTails);
        if (js.quarantines > 0)
            set("runner.journal_quarantines", js.quarantines);
        if (js.scopesRetired > 0)
            set("runner.scopes_retired", js.scopesRetired);
        if (js.softTimeouts > 0)
            set("runner.soft_timeouts", js.softTimeouts);
    }
    // Drain any buffered log output first so a consumer tailing the
    // log sees every line from the run before the report appears.
    std::fflush(stderr);
    std::fflush(stdout);
    const std::string path = reportPath(name);
    if (!reg.dumpJson(path, name)) {
        warn("run report '", path,
             "' is truncated: stream error during write (disk "
             "full?)");
        return;
    }
    inform("run report written to ", path);
}

RunReportGuard::~RunReportGuard()
{
    writeRunReport(name_);
}

} // namespace obs
} // namespace psca
