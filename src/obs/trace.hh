/**
 * @file
 * Span tracing (DESIGN.md §12): completed phase scopes, pool tasks,
 * journal units, and instant markers (memo hits/misses, fault fires)
 * recorded into per-thread buffers and exported as Chrome/Perfetto
 * trace-event JSON ({"traceEvents": [...]}), so any run opens as a
 * flame view in Perfetto or chrome://tracing.
 *
 * Off by default: enabled by PSCA_TRACE=<out.json> (PSCA_TRACE=0 or
 * an empty value keeps it off), or programmatically via enable().
 * When disabled, the hot path is one relaxed atomic load per scope
 * and no stat names are registered, so reports stay byte-identical
 * to an untraced build.
 *
 * Recording path: each thread appends to its own buffer (a mutex
 * uncontended except during a drain) and batches are drained into a
 * bounded central store; past PSCA_TRACE_MAX_EVENTS the newest
 * events are counted as dropped rather than grown without bound.
 * finalize() — called by guardedMain on exit, or at process exit for
 * bare binaries — merges, sorts by timestamp, and writes the file.
 */

#ifndef PSCA_OBS_TRACE_HH
#define PSCA_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psca {
namespace obs {

class Counter;

/** Steady-clock origin shared by spans, events, and live views. */
uint64_t processBaseNs();

/** Small dense id for the calling thread (0, 1, 2, ... by arrival). */
int threadTag();

/** One integer span argument; the key must outlive the run. */
struct SpanArg
{
    const char *key = nullptr;
    long long value = 0;
};

class TraceLog
{
  public:
    /** Args retained per event (extras are dropped). */
    static constexpr int kMaxArgs = 3;

    /** Central-store bounds for PSCA_TRACE_MAX_EVENTS. */
    static constexpr size_t kMinEvents = 1024;
    static constexpr size_t kMaxEvents = 64u << 20;
    static constexpr size_t kDefaultMaxEvents = 1u << 20;

    /** The process-wide log; reads PSCA_TRACE on first use. */
    static TraceLog &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Start recording into @p path (idempotent re-arm after finalize). */
    void enable(const std::string &path);

    /** Record a completed span [start_ns, end_ns] (absolute steady). */
    void span(const char *name, uint64_t start_ns, uint64_t end_ns,
              const SpanArg *args, int nargs);

    /** Record a zero-duration instant marker. */
    void instant(const char *name, const SpanArg *args, int nargs);

    /**
     * Drain all buffers, sort, write the JSON file, and disable
     * recording. No-op when disabled. Safe to call more than once.
     */
    void finalize();

    uint64_t
    recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::string path() const;

  private:
    struct Ev
    {
        std::string name;
        char ph;        //!< 'X' complete span, 'i' instant
        int tid;
        uint64_t tsNs;  //!< relative to processBaseNs()
        uint64_t durNs; //!< spans only
        int nargs;
        SpanArg args[kMaxArgs];
    };

    /** One thread's append buffer; shared_ptr outlives the thread. */
    struct ThreadBuf
    {
        std::mutex mu;
        int tid = 0;
        std::vector<Ev> ev;
    };

    /** Buffered events per thread before a central drain. */
    static constexpr size_t kDrainBatch = 4096;

    TraceLog();

    void record(Ev &&e);
    ThreadBuf *myBuf();
    void drainInto(ThreadBuf &buf); //!< central_ under mu_
    void writeFileLocked();

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> recorded_{0};
    std::atomic<uint64_t> dropped_{0};

    mutable std::mutex mu_; //!< path_, central_, bufs_, maxEvents_
    std::string path_;
    size_t maxEvents_ = kDefaultMaxEvents;
    std::vector<Ev> central_;
    std::vector<std::shared_ptr<ThreadBuf>> bufs_;
    Counter *recordedCounter_ = nullptr;
    Counter *droppedCounter_ = nullptr;
};

/** Record an instant marker iff tracing is on (hot-path helper). */
inline void
traceInstant(const char *name)
{
    auto &t = TraceLog::instance();
    if (t.enabled())
        t.instant(name, nullptr, 0);
}

inline void
traceInstant(const char *name, SpanArg arg)
{
    auto &t = TraceLog::instance();
    if (t.enabled())
        t.instant(name, &arg, 1);
}

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_TRACE_HH
