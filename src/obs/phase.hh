/**
 * @file
 * Phase tracing: RAII scopes that nest into a process-wide phase tree
 * with per-phase wall time and call counts (trace recording, PF
 * selection, scaler fit, model training, cross-validation, closed-loop
 * replay, ...). The tree is emitted with the stat-registry run report.
 *
 * Like the registry, the tracer is single-threaded by design: one
 * stack, no locks, ~two steady_clock reads per scope.
 */

#ifndef PSCA_OBS_PHASE_HH
#define PSCA_OBS_PHASE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace psca {
namespace obs {

class Histogram;

/** One phase's accumulated time, entered count, and sub-phases. */
struct PhaseNode
{
    std::string name;
    uint64_t calls = 0;
    uint64_t wallNs = 0;
    std::vector<std::unique_ptr<PhaseNode>> children;

    /** Child by name, created on first use (insertion order kept). */
    PhaseNode *findOrAddChild(const std::string &child_name);
};

/** The process-wide phase tree and the currently open scope stack. */
class PhaseTracer
{
  public:
    static PhaseTracer &instance();

    /** Enter a sub-phase of the current phase. */
    PhaseNode *push(const std::string &name);

    /** Leave the current phase, crediting its elapsed time. */
    void pop(uint64_t elapsed_ns);

    const PhaseNode &root() const { return root_; }

    /** Drop all recorded phases (open scopes keep working). */
    void reset();

  private:
    PhaseTracer();

    PhaseNode root_;
    std::vector<PhaseNode *> stack_;
};

/** RAII phase scope: push on construction, pop on destruction. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const std::string &name);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    std::chrono::steady_clock::time_point start_;
};

/** RAII timer recording its elapsed nanoseconds into a histogram. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(hist), start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    std::chrono::steady_clock::time_point start_;
};

/** Nanoseconds elapsed since a steady_clock time point. */
uint64_t elapsedNs(std::chrono::steady_clock::time_point start);

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_PHASE_HH
