/**
 * @file
 * Phase tracing: RAII scopes that nest into a process-wide phase tree
 * with per-phase wall time and call counts (trace recording, PF
 * selection, scaler fit, model training, cross-validation, closed-loop
 * replay, ...). The tree is emitted with the stat-registry run report;
 * with PSCA_TRACE set, every closed scope is also exported as a
 * Chrome-trace span (obs/trace.hh).
 *
 * Threading (DESIGN.md §8/§12): every thread has its own scope stack
 * (thread_local). The push/pop hot path is sharded: call counts and
 * wall-time credits are relaxed atomics on the nodes, and each thread
 * memoizes (parent, name) -> node lookups in a thread-local cache, so
 * the tracer mutex is taken only to CREATE a node (first arrival of a
 * name under a parent) or to freeze the tree for a dump — steady-state
 * push/pop touches no shared lock. reset() bumps an epoch that
 * invalidates the caches. When the thread pool runs a task on a
 * worker, the submitter's current phase is captured and the worker's
 * stack is rooted there for the task's duration (beginTask/endTask,
 * wired via ThreadPool context hooks), so worker-side scopes nest
 * under the phase that spawned them.
 *
 * Live view: when open-scope tracking is on (enabled by the HTTP
 * endpoint), each thread additionally keeps its currently open scopes
 * with start times in a registered slot, so /phases can show what is
 * running right now and for how long.
 */

#ifndef PSCA_OBS_PHASE_HH
#define PSCA_OBS_PHASE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace psca {
namespace obs {

class Histogram;

/** One phase's accumulated time, entered count, and sub-phases. */
struct PhaseNode
{
    std::string name;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> wallNs{0};
    std::vector<std::unique_ptr<PhaseNode>> children;

    /** Child by name, created on first use (insertion order kept). */
    PhaseNode *findOrAddChild(const std::string &child_name);
};

/** The process-wide phase tree and per-thread open-scope stacks. */
class PhaseTracer
{
  public:
    static PhaseTracer &instance();

    /** Enter a sub-phase of this thread's current phase. */
    PhaseNode *push(const std::string &name);

    /** Leave this thread's current phase, crediting elapsed time. */
    void pop(uint64_t elapsed_ns);

    /** This thread's innermost open phase (the tree root if none). */
    PhaseNode *current();

    /**
     * Re-root this thread's stack at @p parent for the duration of a
     * pool task, so scopes opened by the task nest under the phase
     * that submitted the parallel region; endTask() restores the
     * thread's own stack. At most one task is active per thread
     * (nested parallel regions run inline).
     */
    void beginTask(PhaseNode *parent);
    void endTask();

    const PhaseNode &root() const { return root_; }

    /**
     * Lock that freezes the tree STRUCTURE for a consistent dump
     * (node creation takes the same mutex). Counts and wall times on
     * the nodes are atomics and may still tick during the traversal.
     */
    std::unique_lock<std::mutex> lockTree() const
    {
        return std::unique_lock<std::mutex>(treeMu_);
    }

    /**
     * Drop all recorded phases. Must not run concurrently with open
     * scopes on other threads (call it between parallel regions):
     * their stacks hold raw pointers into the tree being cleared.
     */
    void reset();

    /**
     * Turn per-thread open-scope tracking on/off (off by default: the
     * live view costs an extra mutexed push/pop per scope and is only
     * needed while something can ask "what is running right now").
     */
    void setLiveScopes(bool on);

    /** Visit every currently open scope with its elapsed time. */
    void forEachOpenScope(
        const std::function<void(int tid, const std::string &name,
                                 uint64_t open_ns)> &fn) const;

    /** One thread's open scopes with start times (live view only). */
    struct OpenSlot
    {
        std::mutex mu;
        int tid = 0;
        std::vector<std::pair<const PhaseNode *, uint64_t>> open;
    };

  private:
    PhaseTracer();

    PhaseNode *childFor(PhaseNode *parent, const std::string &name);
    void openScopePush(const PhaseNode *node);
    void openScopePop(const PhaseNode *node);

    mutable std::mutex treeMu_; //!< guards the tree STRUCTURE
    PhaseNode root_;
    std::atomic<uint64_t> epoch_{0}; //!< bumped by reset()
    std::atomic<bool> liveScopes_{false};

    mutable std::mutex slotsMu_; //!< guards the slot registry
    std::vector<std::shared_ptr<OpenSlot>> slots_;
};

/**
 * RAII phase scope: push on construction, pop on destruction. The
 * optional args (at most TraceLog::kMaxArgs; keys must be string
 * literals) annotate the exported trace span — e.g.
 * ScopedPhase("crossval_fold", {{"fold", fold}}).
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const std::string &name);
    ScopedPhase(const std::string &name,
                std::initializer_list<SpanArg> args);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    std::chrono::steady_clock::time_point start_;
    PhaseNode *node_;
    SpanArg args_[TraceLog::kMaxArgs];
    int nargs_ = 0;
};

/** RAII timer recording its elapsed nanoseconds into a histogram. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(hist), start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    std::chrono::steady_clock::time_point start_;
};

/** Nanoseconds elapsed since a steady_clock time point. */
uint64_t elapsedNs(std::chrono::steady_clock::time_point start);

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_PHASE_HH
