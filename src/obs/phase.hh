/**
 * @file
 * Phase tracing: RAII scopes that nest into a process-wide phase tree
 * with per-phase wall time and call counts (trace recording, PF
 * selection, scaler fit, model training, cross-validation, closed-loop
 * replay, ...). The tree is emitted with the stat-registry run report.
 *
 * Threading (DESIGN.md §8): every thread has its own scope stack
 * (thread_local), while the tree itself — node creation, call
 * counts, wall-time credits — is guarded by one tracer mutex taken
 * per push/pop. Scopes are coarse (a trace replay, a fold, a tree
 * fit), so the lock is uncontended in practice. When the thread
 * pool runs a task on a worker, the submitter's current phase is
 * captured and the worker's stack is rooted there for the task's
 * duration (beginTask/endTask, wired via ThreadPool context hooks),
 * so worker-side scopes nest under the phase that spawned them.
 */

#ifndef PSCA_OBS_PHASE_HH
#define PSCA_OBS_PHASE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psca {
namespace obs {

class Histogram;

/** One phase's accumulated time, entered count, and sub-phases. */
struct PhaseNode
{
    std::string name;
    uint64_t calls = 0;
    uint64_t wallNs = 0;
    std::vector<std::unique_ptr<PhaseNode>> children;

    /** Child by name, created on first use (insertion order kept). */
    PhaseNode *findOrAddChild(const std::string &child_name);
};

/** The process-wide phase tree and per-thread open-scope stacks. */
class PhaseTracer
{
  public:
    static PhaseTracer &instance();

    /** Enter a sub-phase of this thread's current phase. */
    PhaseNode *push(const std::string &name);

    /** Leave this thread's current phase, crediting elapsed time. */
    void pop(uint64_t elapsed_ns);

    /** This thread's innermost open phase (the tree root if none). */
    PhaseNode *current();

    /**
     * Re-root this thread's stack at @p parent for the duration of a
     * pool task, so scopes opened by the task nest under the phase
     * that submitted the parallel region; endTask() restores the
     * thread's own stack. At most one task is active per thread
     * (nested parallel regions run inline).
     */
    void beginTask(PhaseNode *parent);
    void endTask();

    const PhaseNode &root() const { return root_; }

    /**
     * Lock that freezes the tree for a consistent dump. Dump paths
     * hold it across the whole traversal; push/pop take the same
     * mutex per operation.
     */
    std::unique_lock<std::mutex> lockTree() const
    {
        return std::unique_lock<std::mutex>(treeMu_);
    }

    /**
     * Drop all recorded phases. Must not run concurrently with open
     * scopes on other threads (call it between parallel regions):
     * their stacks hold raw pointers into the tree being cleared.
     */
    void reset();

  private:
    PhaseTracer();

    mutable std::mutex treeMu_; //!< guards every node in the tree
    PhaseNode root_;
};

/** RAII phase scope: push on construction, pop on destruction. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const std::string &name);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    std::chrono::steady_clock::time_point start_;
};

/** RAII timer recording its elapsed nanoseconds into a histogram. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(hist), start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    std::chrono::steady_clock::time_point start_;
};

/** Nanoseconds elapsed since a steady_clock time point. */
uint64_t elapsedNs(std::chrono::steady_clock::time_point start);

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_PHASE_HH
