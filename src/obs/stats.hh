/**
 * @file
 * Process-wide performance-statistics registry: named counters,
 * gauges, and log2-bucketed value/duration histograms (elbencho-style
 * buckets with min/max, exact integer moment sums for mean/variance,
 * and percentile queries), dumped as a machine-readable JSON run
 * report or a human text table at the end of a run.
 *
 * Design constraints (see DESIGN.md, "Observability overhead" and
 * §8 "Concurrency architecture"):
 *
 *  - Stat objects are looked up by name once (the registry's map is
 *    mutex-guarded for registration) and then mutated through a
 *    stable reference; objects are never deallocated, so cached
 *    references stay valid for the process lifetime, including
 *    across reset().
 *  - Mutation is safe under the parallel execution layer
 *    (common/parallel.hh). Counters are sharded per thread: add() is
 *    one relaxed fetch_add on a cache line no other running thread
 *    touches, so the hot path stays an uncontended add and the final
 *    value() (read after the pool joins) is the exact deterministic
 *    sum regardless of thread count. Gauges are relaxed atomics.
 *    Histograms take a private mutex per add(): they are recorded at
 *    decision granularity (once per tens of thousands of simulated
 *    instructions), where an uncontended lock is noise. Moments are
 *    kept as exact 128-bit integer sums (value and value squared), so
 *    mean/variance are order-invariant, covered by the bit-identity
 *    contract, and merge deterministically across shards: any merge
 *    order of per-shard snapshots reproduces the single-registry
 *    report byte for byte (DESIGN.md §12).
 *  - Every stat is mergeable: Counter/Gauge/Histogram values combine
 *    through StatSnapshot (obs/snapshot.hh) with commutative,
 *    associative rules (sum / max / exact bucket+moment sums), the
 *    primitive the distributed coordinator consumes.
 */

#ifndef PSCA_OBS_STATS_HH
#define PSCA_OBS_STATS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace psca {

class BinaryReader;
class BinaryWriter;

namespace obs {

/**
 * Exact 128-bit accumulator for histogram moments. Addition is
 * commutative and associative (mod 2^128 on overflow, which takes
 * ~4e9 samples at the moment clamp), so accumulation order — and
 * snapshot merge order — can never perturb the derived mean/variance.
 */
using Uint128 = unsigned __int128;

struct HistogramSnapshot;

/**
 * Monotonically increasing event count, sharded so concurrent
 * writers on different threads land on different cache lines. The
 * shard is picked by a per-thread round-robin id, so up to kShards
 * threads mutate completely contention-free; value() sums shards.
 */
class Counter
{
  public:
    /** Shards (power of two); more threads than this share lines. */
    static constexpr size_t kShards = 16;

    void
    add(uint64_t n = 1)
    {
        shards_[shardIndex()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const auto &s : shards_)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

    void
    reset()
    {
        for (auto &s : shards_)
            s.value.store(0, std::memory_order_relaxed);
    }

  private:
    /** This thread's shard slot, assigned round-robin on first use. */
    static size_t shardIndex();

    struct alignas(64) Shard
    {
        std::atomic<uint64_t> value{0};
    };

    std::array<Shard, kShards> shards_{};
};

/** Last-written instantaneous value (residencies, budgets, rates). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log2-bucketed histogram of non-negative integer values (durations
 * in nanoseconds, operation counts, sizes).
 *
 * Buckets 0..7 hold the exact values 0..7; above that each power of
 * two is split into kBucketFraction sub-buckets, so the relative
 * bucket width is 1/kBucketFraction (25%) everywhere — percentile
 * queries are exact in the linear region and within one bucket width
 * (a factor of 1.25) beyond it. Alongside the buckets the histogram
 * keeps exact min/max and exact integer moment sums (values saturate
 * at 2^kMaxLog2 for the moments, matching the bucket clamp), from
 * which mean/variance derive deterministically.
 */
class Histogram
{
  public:
    /** Sub-buckets per power of two (must be a power of two). */
    static constexpr uint32_t kBucketFraction = 4;
    /** log2 of the largest non-clamped value (~2^47 ns = 39 hours). */
    static constexpr uint32_t kMaxLog2 = 48;
    /** Linear region: values < 2 * kBucketFraction map to themselves. */
    static constexpr uint64_t kLinearMax = 2 * kBucketFraction;
    static constexpr size_t kNumBuckets =
        kLinearMax + (kMaxLog2 - 3) * kBucketFraction;

    /** Values at-or-above this saturate in the moment sums. */
    static constexpr uint64_t kMomentClamp = 1ULL << kMaxLog2;

    void
    add(uint64_t v)
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++buckets_[bucketIndex(v)];
        ++count_;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        const uint64_t m = v < kMomentClamp ? v : kMomentClamp;
        sum_ += m;
        sumSq_ += static_cast<Uint128>(m) * m;
    }

    uint64_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return count_;
    }

    uint64_t
    min() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return count_ ? min_ : 0;
    }

    uint64_t
    max() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return max_;
    }

    double mean() const;

    /** Population variance (E[x^2] - E[x]^2, clamped at 0). */
    double variance() const;

    double stddev() const;

    /**
     * Value at-or-above p percent of samples (p in (0, 100]): the
     * midpoint of the bucket containing the rank, clamped to the
     * exact [min, max]. Returns 0 on an empty histogram.
     */
    uint64_t percentile(double p) const;

    uint64_t
    bucketCount(size_t idx) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return buckets_[idx];
    }

    /** Bucket of a value; values >= 2^kMaxLog2 clamp to the last. */
    static size_t
    bucketIndex(uint64_t v)
    {
        if (v < kLinearMax)
            return static_cast<size_t>(v);
        const uint32_t hi =
            static_cast<uint32_t>(std::bit_width(v)) - 1;
        if (hi >= kMaxLog2)
            return kNumBuckets - 1;
        const uint64_t sub =
            (v >> (hi - 2)) & (kBucketFraction - 1);
        return kLinearMax +
            static_cast<size_t>(hi - 3) * kBucketFraction +
            static_cast<size_t>(sub);
    }

    /** Smallest value mapping to a bucket. */
    static uint64_t
    bucketLowerBound(size_t idx)
    {
        if (idx < kLinearMax)
            return idx;
        const uint32_t hi = 3 +
            static_cast<uint32_t>((idx - kLinearMax) / kBucketFraction);
        const uint64_t sub = (idx - kLinearMax) % kBucketFraction;
        return (1ULL << hi) + (sub << (hi - 2));
    }

    /** Largest value mapping to a bucket (clamp bucket: UINT64_MAX). */
    static uint64_t
    bucketUpperBound(size_t idx)
    {
        return idx + 1 < kNumBuckets ? bucketLowerBound(idx + 1) - 1
                                     : UINT64_MAX;
    }

    void reset();

    /** Consistent copy of every field for merging/serialization. */
    HistogramSnapshot snapshot() const;

    /** Fold another histogram's samples in (sharded aggregation). */
    void merge(const HistogramSnapshot &other);

    /** Binary round-trip in the serialize.hh cache idiom. */
    void serialize(BinaryWriter &out) const;
    void deserialize(BinaryReader &in);

  private:
    friend struct HistogramSnapshot;

    mutable std::mutex mu_; //!< guards every field below
    uint64_t count_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
    Uint128 sum_ = 0;   //!< exact sum of (clamped) values
    Uint128 sumSq_ = 0; //!< exact sum of (clamped) squares
    std::array<uint64_t, kNumBuckets> buckets_{};
};

/**
 * Plain-data copy of a Histogram, the unit of cross-shard merging.
 * merge() is commutative and associative, so folding N shards in any
 * order yields bit-identical state — and therefore byte-identical
 * derived mean/variance/percentiles in reports.
 */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t min = UINT64_MAX;
    uint64_t max = 0;
    Uint128 sum = 0;
    Uint128 sumSq = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};

    double mean() const;
    double variance() const;
    double stddev() const;

    /** Same bucket-midpoint percentile as Histogram::percentile(). */
    uint64_t percentile(double p) const;

    void merge(const HistogramSnapshot &other);

    void serialize(BinaryWriter &out) const;

    /** False (with the reader failed) on a bucket-layout mismatch. */
    bool deserialize(BinaryReader &in);
};

/**
 * The process-wide registry of named stats. Names are dotted paths
 * ("controller.decision_latency_ns"); dumps sort them, so related
 * stats group naturally.
 */
class StatRegistry
{
  public:
    /**
     * Registries are constructible standalone (shard-local
     * aggregation, tests); instance() remains the process-wide one
     * that reports and hot-path call sites use.
     */
    StatRegistry() = default;

    static StatRegistry &instance();

    /** Find-or-create; the reference is valid for process lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Lookup without creating (nullptr when absent). */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Zero every stat's value; registered objects stay alive. */
    void reset();

    /**
     * Visit every stat (sorted by name, under the registry lock; the
     * callbacks must not touch the registry). Values are read at
     * visit time — quiesce writers first for an exact snapshot.
     */
    void forEachCounter(
        const std::function<void(const std::string &, uint64_t)> &fn)
        const;
    void forEachGauge(
        const std::function<void(const std::string &, double)> &fn)
        const;
    void forEachHistogram(
        const std::function<void(const std::string &,
                                 const Histogram &)> &fn) const;

    /**
     * Write the full run report (counters, gauges, histogram
     * summaries, and the phase tree) as one JSON object.
     */
    void writeJson(std::ostream &os,
                   const std::string &report_name) const;

    /**
     * writeJson() to a file; fatal() when the file cannot open.
     * @return false when the stream errored after opening (full
     *         disk, quota) — the file on disk is truncated JSON.
     */
    bool dumpJson(const std::string &path,
                  const std::string &report_name) const;

    /** Human-readable table + phase tree. */
    void dumpText(std::ostream &os) const;

  private:
    mutable std::mutex mu_; //!< guards the maps during registration
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * The report's "phases" array ("[\n    {...}\n  ]", report
 * indentation), shared by StatRegistry::writeJson and the /phases
 * endpoint. Takes the tracer's tree lock for the traversal.
 */
void writePhaseTreeJson(std::ostream &os);

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_STATS_HH
