#include "obs/snapshot.hh"

#include <atomic>
#include <cstdio>
#include <ostream>

#include "common/serialize.hh"
#include "obs/json.hh"

namespace psca {
namespace obs {

void
StatSnapshot::capture(const StatRegistry &reg)
{
    counters.clear();
    gauges.clear();
    histograms.clear();
    reg.forEachCounter([this](const std::string &name, uint64_t v) {
        counters[name] = v;
    });
    reg.forEachGauge([this](const std::string &name, double v) {
        gauges[name] = v;
    });
    reg.forEachHistogram(
        [this](const std::string &name, const Histogram &h) {
            histograms[name] = h.snapshot();
        });
}

void
StatSnapshot::merge(const StatSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges) {
        const auto it = gauges.find(name);
        if (it == gauges.end())
            gauges[name] = v;
        else if (v > it->second)
            it->second = v;
    }
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);
}

void
StatSnapshot::serialize(BinaryWriter &out) const
{
    out.put<uint64_t>(counters.size());
    for (const auto &[name, v] : counters) {
        out.putString(name);
        out.put(v);
    }
    out.put<uint64_t>(gauges.size());
    for (const auto &[name, v] : gauges) {
        out.putString(name);
        out.put(v);
    }
    out.put<uint64_t>(histograms.size());
    for (const auto &[name, h] : histograms) {
        out.putString(name);
        h.serialize(out);
    }
}

bool
StatSnapshot::deserialize(BinaryReader &in)
{
    counters.clear();
    gauges.clear();
    histograms.clear();
    const uint64_t nc = in.get<uint64_t>();
    for (uint64_t i = 0; i < nc && in.good(); ++i) {
        const std::string name = in.getString();
        counters[name] = in.get<uint64_t>();
    }
    const uint64_t ng = in.get<uint64_t>();
    for (uint64_t i = 0; i < ng && in.good(); ++i) {
        const std::string name = in.getString();
        gauges[name] = in.get<double>();
    }
    const uint64_t nh = in.get<uint64_t>();
    for (uint64_t i = 0; i < nh && in.good(); ++i) {
        const std::string name = in.getString();
        if (!histograms[name].deserialize(in))
            return false;
    }
    return in.good();
}

bool
StatSnapshot::writeFile(const std::string &path) const
{
    BinaryWriter out(path);
    writeFileHeader(out, kSnapshotMagic, kSnapshotVersion);
    serialize(out);
    out.putChecksumTrailer();
    return out.good();
}

bool
StatSnapshot::readFile(const std::string &path)
{
    counters.clear();
    gauges.clear();
    histograms.clear();
    BinaryReader in(path);
    if (!in.good()) {
        warn("stat snapshot '", path, "': cannot open");
        return false;
    }
    const HeaderCheck hc =
        readFileHeader(in, kSnapshotMagic, kSnapshotVersion);
    if (hc != HeaderCheck::Ok) {
        warn("stat snapshot '", path, "': ", headerCheckName(hc));
        return false;
    }
    if (!deserialize(in) || !in.verifyChecksumTrailer()) {
        warn("stat snapshot '", path,
             "': corrupt payload or checksum mismatch");
        counters.clear();
        gauges.clear();
        histograms.clear();
        return false;
    }
    return true;
}

namespace {

void
writeHistogramJson(std::ostream &os, const HistogramSnapshot &h,
                   const std::string &indent)
{
    os << "{\n";
    os << indent << "  \"count\": " << h.count << ",\n";
    os << indent << "  \"min\": " << (h.count ? h.min : 0) << ",\n";
    os << indent << "  \"max\": " << h.max << ",\n";
    os << indent << "  \"mean\": ";
    jsonNumber(os, h.mean());
    os << ",\n" << indent << "  \"stddev\": ";
    jsonNumber(os, h.stddev());
    os << ",\n";
    os << indent << "  \"p50\": " << h.percentile(50.0) << ",\n";
    os << indent << "  \"p95\": " << h.percentile(95.0) << ",\n";
    os << indent << "  \"p99\": " << h.percentile(99.0) << ",\n";
    os << indent << "  \"buckets\": [";
    bool first = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h.buckets[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "[" << Histogram::bucketLowerBound(i) << ", "
           << h.buckets[i] << "]";
    }
    os << "]\n" << indent << "}";
}

} // namespace

void
StatSnapshot::writeSections(std::ostream &os,
                            bool trailing_comma) const
{
    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << v;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        jsonNumber(os, v);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        writeHistogramJson(os, h, "    ");
        first = false;
    }
    os << (first ? "" : "\n  ") << "}";
    os << (trailing_comma ? ",\n" : "\n");
}

void
StatSnapshot::writeJson(std::ostream &os,
                        const std::string &report_name) const
{
    os << "{\n";
    os << "  \"report\": \"" << jsonEscape(report_name) << "\",\n";
    os << "  \"schema\": 1,\n";
    writeSections(os, /*trailing_comma=*/false);
    os << "}\n";
}

namespace {
std::atomic<LiveSnapshotAugmenter> g_augmenter{nullptr};
} // namespace

void
setLiveSnapshotAugmenter(LiveSnapshotAugmenter fn)
{
    g_augmenter.store(fn, std::memory_order_release);
}

LiveSnapshotAugmenter
liveSnapshotAugmenter()
{
    return g_augmenter.load(std::memory_order_acquire);
}

} // namespace obs
} // namespace psca
