/**
 * @file
 * Mergeable stat snapshots (DESIGN.md §12): a plain-data copy of a
 * StatRegistry that can be serialized to a compact checksummed binary
 * blob, shipped across a process boundary, and folded into another
 * snapshot. The merge rules are commutative and associative —
 * counters sum, gauges take the max (order-invariant; shards that
 * agree on a configuration gauge reproduce it exactly), histograms
 * add buckets/counts and exact integer moment sums — so N shards
 * merged in ANY order reproduce the single-registry report byte for
 * byte. This is the aggregation primitive the distributed
 * coordinator (ROADMAP 1) and the fleet scenario (ROADMAP 2) build
 * on, and the /stats.json endpoint serves from.
 */

#ifndef PSCA_OBS_SNAPSHOT_HH
#define PSCA_OBS_SNAPSHOT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/stats.hh"

namespace psca {

class BinaryReader;
class BinaryWriter;

namespace obs {

/** On-disk snapshot format identity ("PSCASNAP", revision 1). */
constexpr uint64_t kSnapshotMagic = 0x50534341534e4150ULL;
constexpr uint32_t kSnapshotVersion = 1;

/** One registry's stats, detached from the live atomic objects. */
struct StatSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Copy every stat out of @p reg (values read at call time). */
    void capture(const StatRegistry &reg);

    /**
     * Fold another shard in: counters sum, gauges max, histograms
     * merge exactly. Commutative and associative.
     */
    void merge(const StatSnapshot &other);

    /** Payload codec (no header/trailer; see writeFile/readFile). */
    void serialize(BinaryWriter &out) const;
    bool deserialize(BinaryReader &in);

    /**
     * Whole-file codec in the serialize.hh cache idiom: standard
     * (magic, version) header, payload, FNV-1a checksum trailer.
     * writeFile() returns false on an IO error (partial file left for
     * the caller); readFile() returns false — without quarantining,
     * that is the caller's policy — on any open/header/checksum
     * failure, leaving *this empty.
     */
    bool writeFile(const std::string &path) const;
    bool readFile(const std::string &path);

    /**
     * The "counters"/"gauges"/"histograms" report sections, exactly
     * as StatRegistry::writeJson() emits them (two-space indent,
     * sorted names). With @p trailing_comma the last section is
     * followed by ",\n" for embedding before further sections.
     */
    void writeSections(std::ostream &os, bool trailing_comma) const;

    /** A standalone report object (no phases/events sections). */
    void writeJson(std::ostream &os,
                   const std::string &report_name) const;
};

/**
 * Hook applied to the snapshot served by /stats.json, letting a
 * subsystem that holds remote shards (the fleet coordinator merges
 * every worker's latest ScopeLeave snapshot) fold them into the live
 * view. Deliberately NOT applied to end-of-run report files — those
 * must stay byte-identical across fleet shapes. Function pointer, not
 * std::function: obs/ cannot link dist/.
 */
using LiveSnapshotAugmenter = void (*)(StatSnapshot &snap);

/** Install (or clear, with nullptr) the /stats.json augmenter. */
void setLiveSnapshotAugmenter(LiveSnapshotAugmenter fn);

/** The installed augmenter, or nullptr. */
LiveSnapshotAugmenter liveSnapshotAugmenter();

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_SNAPSHOT_HH
