/**
 * @file
 * Embedded live-stats HTTP endpoint (DESIGN.md §12): a minimal
 * single-threaded HTTP/1.0 server over POSIX sockets serving the
 * process telemetry while a run executes, so a long campaign on
 * another machine is observable with curl:
 *
 *   /stats.json  the full live report (stats, events, phase tree)
 *   /events      the recent structured event log; ?since=<seq>
 *                returns only events at or after that sequence
 *                number, so operators can tail transitions without
 *                re-downloading the whole ring
 *   /health      the adaptive-service health view (state machine
 *                state, active/shadow firmware versions, last
 *                promote/rollback) when a service registered a
 *                provider; {"state": "idle"} otherwise
 *   /phases      cumulative phase tree + currently open scopes
 *   /            endpoint index
 *
 * Off by default; enabled by PSCA_HTTP_PORT (0 picks an ephemeral
 * port, logged and queryable via port()). Binds 127.0.0.1 unless
 * PSCA_HTTP_BIND says otherwise — the payload is telemetry, but
 * exposing it beyond the host is an explicit choice. Responses are
 * built under the same locks the run report takes, one request per
 * connection; this is an observability tap, not a web server.
 */

#ifndef PSCA_OBS_HTTP_HH
#define PSCA_OBS_HTTP_HH

#include <atomic>
#include <string>
#include <thread>

namespace psca {
namespace obs {

/**
 * Provider of the /health JSON body. Same function-pointer idiom as
 * the live-snapshot augmenter and the dist-scope hook: obs cannot
 * link the serve layer, so the service registers a callback at
 * construction. Must be thread-safe — it runs on the HTTP thread.
 */
using HealthProviderFn = std::string (*)();

/** Install (or clear, with nullptr) the /health provider. */
void setHealthProvider(HealthProviderFn fn);

/** The installed provider (nullptr when none). */
HealthProviderFn healthProvider();

class HttpServer
{
  public:
    /** The process-wide endpoint (started explicitly, not lazily). */
    static HttpServer &instance();

    /**
     * Start serving on @p port (0 = ephemeral) at @p bind_addr.
     * False (with a warning) when the socket cannot be set up or the
     * server is already running. Enables live open-scope tracking.
     */
    bool start(int port, const std::string &bind_addr = "127.0.0.1");

    /**
     * Start from PSCA_HTTP_PORT/PSCA_HTTP_BIND if set; false when
     * the variable is absent or startup failed.
     */
    static bool maybeStartFromEnv();

    /** Join the accept loop and close the socket. Idempotent. */
    void stop();

    bool
    running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /** The bound port (resolved for port 0); 0 when not running. */
    int
    port() const
    {
        return port_.load(std::memory_order_relaxed);
    }

    ~HttpServer() { stop(); }

  private:
    HttpServer() = default;

    void acceptLoop();
    void handleConnection(int fd);

    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<int> port_{0};
    int listenFd_ = -1;
    std::thread thread_;
};

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_HTTP_HH
