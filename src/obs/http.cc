#include "obs/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/phase.hh"
#include "obs/snapshot.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

namespace {

std::atomic<HealthProviderFn> g_health_provider{nullptr};

} // namespace

void
setHealthProvider(HealthProviderFn fn)
{
    g_health_provider.store(fn, std::memory_order_relaxed);
}

HealthProviderFn
healthProvider()
{
    return g_health_provider.load(std::memory_order_relaxed);
}

namespace {

std::string
statsBody()
{
    // Same byte layout as StatRegistry::writeJson("live"), but built
    // from an explicit snapshot so the live-snapshot augmenter (the
    // fleet coordinator folding in worker shards) can run between
    // capture and emit. Final run reports never pass through the
    // augmenter, so they stay byte-identical across fleet shapes.
    StatSnapshot snap;
    snap.capture(StatRegistry::instance());
    if (LiveSnapshotAugmenter fn = liveSnapshotAugmenter())
        fn(snap);
    std::ostringstream os;
    os << "{\n";
    os << "  \"report\": \"live\",\n";
    os << "  \"schema\": 1,\n";
    snap.writeSections(os, /*trailing_comma=*/true);
    EventLog::instance().writeReportSection(os);
    os << "  \"phases\": ";
    writePhaseTreeJson(os);
    os << "\n}\n";
    return os.str();
}

std::string
eventsBody(uint64_t since)
{
    std::ostringstream os;
    os << "{\n  \"report\": \"events\",\n  \"events\": ";
    EventLog::instance().writeJson(os, "  ", since);
    os << "\n}\n";
    return os.str();
}

std::string
healthBody()
{
    if (HealthProviderFn fn = healthProvider())
        return fn();
    return "{\n  \"state\": \"idle\"\n}\n";
}

/** Value of @p key in an urlencoded query string, or @p def. */
uint64_t
queryParamU64(const std::string &query, const std::string &key,
              uint64_t def)
{
    size_t pos = 0;
    while (pos < query.size()) {
        size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const size_t eq = query.find('=', pos);
        if (eq != std::string::npos && eq < amp &&
            query.compare(pos, eq - pos, key) == 0)
        {
            const std::string value =
                query.substr(eq + 1, amp - eq - 1);
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (end && *end == '\0' && end != value.c_str())
                return v;
            return def;
        }
        pos = amp + 1;
    }
    return def;
}

std::string
phasesBody()
{
    std::ostringstream os;
    os << "{\n  \"report\": \"phases\",\n  \"phases\": ";
    writePhaseTreeJson(os);
    os << ",\n  \"open\": [";
    bool first = true;
    PhaseTracer::instance().forEachOpenScope(
        [&](int tid, const std::string &name, uint64_t open_ns) {
            os << (first ? "\n" : ",\n") << "    {\"tid\": " << tid
               << ", \"name\": \"" << jsonEscape(name)
               << "\", \"open_ms\": ";
            jsonNumber(os, static_cast<double>(open_ns) / 1e6);
            os << "}";
            first = false;
        });
    os << (first ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

std::string
indexBody()
{
    return "{\n  \"endpoints\": [\"/stats.json\", \"/events\", "
           "\"/health\", \"/phases\"]\n}\n";
}

void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; nothing to salvage
        off += static_cast<size_t>(n);
    }
}

void
sendResponse(int fd, const char *status, const std::string &body)
{
    std::string resp;
    resp.reserve(body.size() + 128);
    resp += "HTTP/1.0 ";
    resp += status;
    resp += "\r\nContent-Type: application/json\r\nContent-Length: ";
    resp += std::to_string(body.size());
    resp += "\r\nConnection: close\r\n\r\n";
    resp += body;
    sendAll(fd, resp);
}

} // namespace

HttpServer &
HttpServer::instance()
{
    static HttpServer server;
    return server;
}

bool
HttpServer::maybeStartFromEnv()
{
    long long port = 0;
    if (!env::intIfSet("PSCA_HTTP_PORT", port, 0, 65535))
        return false;
    return instance().start(
        static_cast<int>(port),
        env::stringOr("PSCA_HTTP_BIND", "127.0.0.1"));
}

bool
HttpServer::start(int port, const std::string &bind_addr)
{
    if (running()) {
        warn("live-stats endpoint already running on port ",
             this->port());
        return false;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("live-stats endpoint: socket() failed (",
             std::strerror(errno), ")");
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        warn("live-stats endpoint: bad bind address '", bind_addr,
             "' (expected IPv4 dotted quad)");
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0)
    {
        warn("live-stats endpoint: cannot listen on ", bind_addr, ":",
             port, " (", std::strerror(errno), ")");
        ::close(fd);
        return false;
    }

    sockaddr_in bound = {};
    socklen_t blen = sizeof(bound);
    int resolved = port;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0)
        resolved = static_cast<int>(ntohs(bound.sin_port));

    listenFd_ = fd;
    port_.store(resolved, std::memory_order_relaxed);
    stopRequested_.store(false, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
    PhaseTracer::instance().setLiveScopes(true);
    // Registered only when the endpoint is on, so endpoint-free runs
    // keep their reports byte-identical.
    StatRegistry::instance().counter("http.requests");
    thread_ = std::thread([this] { acceptLoop(); });
    inform("live-stats endpoint on http://", bind_addr, ":", resolved,
           " (/stats.json /events /health /phases)");
    return true;
}

void
HttpServer::stop()
{
    if (!running_.exchange(false, std::memory_order_relaxed))
        return;
    stopRequested_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    port_.store(0, std::memory_order_relaxed);
    PhaseTracer::instance().setLiveScopes(false);
}

void
HttpServer::acceptLoop()
{
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        pollfd pfd = {};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 250);
        if (pr <= 0)
            continue; // timeout (re-check stop) or transient error
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        handleConnection(client);
        ::close(client);
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Read until the end of the request head (or a small cap — the
    // only thing consulted is the request line).
    std::string req;
    char buf[1024];
    while (req.size() < 8192 &&
           req.find("\r\n\r\n") == std::string::npos)
    {
        pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, 2000) <= 0)
            return; // slow or dead client; drop it
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<size_t>(n));
    }
    const size_t sp1 = req.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : req.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
        sendResponse(fd, "400 Bad Request",
                     "{\"error\": \"bad request\"}\n");
        return;
    }
    const std::string method = req.substr(0, sp1);
    std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string query;
    const size_t q = path.find('?');
    if (q != std::string::npos) {
        query = path.substr(q + 1);
        path.resize(q);
    }

    StatRegistry::instance().counter("http.requests").add();
    if (method != "GET") {
        sendResponse(fd, "405 Method Not Allowed",
                     "{\"error\": \"GET only\"}\n");
        return;
    }
    if (path == "/stats.json")
        sendResponse(fd, "200 OK", statsBody());
    else if (path == "/events")
        sendResponse(fd, "200 OK",
                     eventsBody(queryParamU64(query, "since", 0)));
    else if (path == "/health")
        sendResponse(fd, "200 OK", healthBody());
    else if (path == "/phases")
        sendResponse(fd, "200 OK", phasesBody());
    else if (path == "/" || path == "/index.json")
        sendResponse(fd, "200 OK", indexBody());
    else
        sendResponse(fd, "404 Not Found",
                     "{\"error\": \"unknown endpoint\"}\n");
}

} // namespace obs
} // namespace psca
