/**
 * @file
 * Bounded structured event log (DESIGN.md §12): notable run events —
 * guardrail trips, artifact quarantines, vm-trap failsafes,
 * checkpoint/resume transitions, watchdog fires — recorded as
 * (sequence, timestamp, severity, category, message) tuples in a
 * fixed-capacity ring. When full, the OLDEST events are dropped (and
 * counted): the drop policy is deterministic, never sampled, so two
 * runs producing the same event sequence retain the same tail.
 *
 * The log is serialized into run reports (only when non-empty, so
 * event-free reports keep their prior byte layout) and served live by
 * the /events HTTP endpoint. Common-layer code reaches it through
 * emitEvent() in common/logging.hh; the sink is registered at
 * static-init time by this translation unit.
 */

#ifndef PSCA_OBS_EVENTS_HH
#define PSCA_OBS_EVENTS_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace psca {
namespace obs {

class EventLog
{
  public:
    struct Event
    {
        uint64_t seq;    //!< 0-based, never reused within a run
        uint64_t tNs;    //!< steady clock, relative to process base
        LogLevel level;  //!< Debug/Info/Warn severity
        std::string category; //!< dotted source tag ("guardrail")
        std::string msg;
    };

    /** Capacity bounds for PSCA_EVENTS_MAX. */
    static constexpr size_t kMinCapacity = 16;
    static constexpr size_t kMaxCapacity = 1 << 20;
    static constexpr size_t kDefaultCapacity = 1024;

    /** The process-wide log, sized by PSCA_EVENTS_MAX on first use. */
    static EventLog &instance();

    /** A standalone log with an explicit capacity (tests, shards). */
    explicit EventLog(size_t capacity);

    void log(const char *category, LogLevel level, std::string msg);

    /** Events appended since construction/clear (kept + dropped). */
    uint64_t logged() const;

    /** Events evicted by the capacity bound. */
    uint64_t dropped() const;

    /** Events currently retained. */
    size_t size() const;

    /** Copy of the retained events, oldest first. */
    std::vector<Event> snapshot() const;

    /** Forget everything, including the drop/sequence accounting. */
    void clear();

    /**
     * The {"logged", "dropped", "log": [...]} JSON object at report
     * indentation (object lines indented by @p indent + 2 spaces).
     * @p since drops events with seq < since — the /events?since=N
     * incremental-polling path; 0 (the default) writes every retained
     * event, so existing callers keep their exact byte layout.
     */
    void writeJson(std::ostream &os, const std::string &indent,
                   uint64_t since = 0) const;

    /**
     * The report's optional `"events": {...},` section: nothing is
     * written when no event was ever logged.
     */
    void writeReportSection(std::ostream &os) const;

  private:
    mutable std::mutex mu_;
    std::deque<Event> ring_;
    const size_t capacity_;
    uint64_t seq_ = 0;
    uint64_t dropped_ = 0;
};

/** Printable severity name ("debug"/"info"/"warn"). */
const char *eventLevelName(LogLevel level);

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_EVENTS_HH
