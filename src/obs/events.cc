#include "obs/events.hh"

#include <ostream>
#include <utility>

#include "common/env.hh"
#include "obs/json.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace psca {
namespace obs {

namespace {

size_t
configuredCapacity()
{
    const long long cap = env::intOr(
        "PSCA_EVENTS_MAX",
        static_cast<long long>(EventLog::kDefaultCapacity),
        static_cast<long long>(EventLog::kMinCapacity),
        static_cast<long long>(EventLog::kMaxCapacity));
    return static_cast<size_t>(cap);
}

/**
 * Bridge common/logging.hh's emitEvent() into the process log.
 * Registered at static-init time; the hook target in logging.cc is a
 * constant-initialized pointer, so cross-TU order is harmless.
 */
const bool g_sink_registered = [] {
    setEventSink([](const char *category, LogLevel level,
                    const std::string &msg) {
        EventLog::instance().log(category, level, msg);
    });
    return true;
}();

} // namespace

const char *
eventLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Quiet:
        break;
    }
    return "?";
}

EventLog &
EventLog::instance()
{
    static EventLog log(configuredCapacity());
    return log;
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity)
{}

void
EventLog::log(const char *category, LogLevel level, std::string msg)
{
    const uint64_t t = steadyNowNs() - processBaseNs();
    uint64_t newly_dropped = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ring_.push_back(
            Event{seq_++, t, level, category, std::move(msg)});
        while (ring_.size() > capacity_) {
            ring_.pop_front();
            ++dropped_;
            ++newly_dropped;
        }
    }
    // Accounting counters are created lazily on the first event, so a
    // run without events keeps its report byte-identical to before.
    auto &reg = StatRegistry::instance();
    reg.counter("events.logged").add();
    if (newly_dropped)
        reg.counter("events.dropped").add(newly_dropped);
}

uint64_t
EventLog::logged() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
}

uint64_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

size_t
EventLog::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

std::vector<EventLog::Event>
EventLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<Event>(ring_.begin(), ring_.end());
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    seq_ = 0;
    dropped_ = 0;
}

void
EventLog::writeJson(std::ostream &os, const std::string &indent,
                    uint64_t since) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n";
    os << indent << "  \"logged\": " << seq_ << ",\n";
    os << indent << "  \"dropped\": " << dropped_ << ",\n";
    os << indent << "  \"log\": [";
    bool first = true;
    for (const auto &e : ring_) {
        if (e.seq < since)
            continue;
        os << (first ? "\n" : ",\n") << indent << "    {\"seq\": "
           << e.seq << ", \"t_ms\": ";
        jsonNumber(os, static_cast<double>(e.tNs) / 1e6);
        os << ", \"level\": \"" << eventLevelName(e.level)
           << "\", \"category\": \"" << jsonEscape(e.category)
           << "\", \"msg\": \"" << jsonEscape(e.msg) << "\"}";
        first = false;
    }
    os << (first ? "" : "\n" + indent + "  ") << "]\n"
       << indent << "}";
}

void
EventLog::writeReportSection(std::ostream &os) const
{
    if (logged() == 0)
        return;
    os << "  \"events\": ";
    writeJson(os, "  ");
    os << ",\n";
}

} // namespace obs
} // namespace psca
