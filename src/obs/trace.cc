#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

uint64_t
processBaseNs()
{
    static const uint64_t base = steadyNowNs();
    return base;
}

int
threadTag()
{
    static std::atomic<int> next{0};
    thread_local const int tag =
        next.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

namespace {

/**
 * Bridge the common-layer trace hooks (journal units, fault fires,
 * quarantines) into the process TraceLog. Registered at static-init
 * time; the targets in logging.cc are constant-initialized pointers.
 */
bool
hookEnabled()
{
    return TraceLog::instance().enabled();
}

void
hookSpan(const char *name, uint64_t start_ns, uint64_t end_ns,
         const char *k1, long long v1, const char *k2, long long v2)
{
    SpanArg args[2];
    int n = 0;
    if (k1)
        args[n++] = SpanArg{k1, v1};
    if (k2)
        args[n++] = SpanArg{k2, v2};
    TraceLog::instance().span(name, start_ns, end_ns, args, n);
}

void
hookInstant(const char *name, const char *key, long long value)
{
    if (key) {
        SpanArg arg{key, value};
        TraceLog::instance().instant(name, &arg, 1);
    } else {
        TraceLog::instance().instant(name, nullptr, 0);
    }
}

const bool g_trace_hooks_registered = [] {
    setTraceHooks(hookEnabled, hookSpan, hookInstant);
    return true;
}();

} // namespace

TraceLog &
TraceLog::instance()
{
    static TraceLog log;
    return log;
}

TraceLog::TraceLog()
{
    maxEvents_ = static_cast<size_t>(env::intOr(
        "PSCA_TRACE_MAX_EVENTS",
        static_cast<long long>(kDefaultMaxEvents),
        static_cast<long long>(kMinEvents),
        static_cast<long long>(kMaxEvents)));
    const std::string path = env::stringOr("PSCA_TRACE", "");
    if (!path.empty() && path != "0")
        enable(path);
}

void
TraceLog::enable(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        path_ = path;
        auto &reg = StatRegistry::instance();
        recordedCounter_ = &reg.counter("trace.events");
        droppedCounter_ = &reg.counter("trace.dropped");
    }
    enabled_.store(true, std::memory_order_relaxed);
    // Bare binaries (tests, tools) never call finalize(); flush at
    // process exit. guardedMain finalizes earlier, making this a
    // no-op there.
    static std::once_flag once;
    std::call_once(
        once, [] { std::atexit([] { instance().finalize(); }); });
}

std::string
TraceLog::path() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
}

TraceLog::ThreadBuf *
TraceLog::myBuf()
{
    thread_local const std::shared_ptr<ThreadBuf> buf = [this] {
        auto b = std::make_shared<ThreadBuf>();
        b->tid = threadTag();
        b->ev.reserve(kDrainBatch);
        std::lock_guard<std::mutex> lock(mu_);
        bufs_.push_back(b);
        return b;
    }();
    return buf.get();
}

void
TraceLog::record(Ev &&e)
{
    ThreadBuf *b = myBuf();
    bool drain;
    {
        std::lock_guard<std::mutex> lock(b->mu);
        b->ev.push_back(std::move(e));
        drain = b->ev.size() >= kDrainBatch;
    }
    recorded_.fetch_add(1, std::memory_order_relaxed);
    if (recordedCounter_)
        recordedCounter_->add();
    if (drain) {
        std::lock_guard<std::mutex> lock(mu_);
        drainInto(*b);
    }
}

void
TraceLog::drainInto(ThreadBuf &buf)
{
    std::vector<Ev> local;
    {
        std::lock_guard<std::mutex> lock(buf.mu);
        local.swap(buf.ev);
    }
    uint64_t over = 0;
    for (auto &e : local) {
        if (central_.size() >= maxEvents_) {
            ++over;
            continue;
        }
        central_.push_back(std::move(e));
    }
    if (over) {
        dropped_.fetch_add(over, std::memory_order_relaxed);
        if (droppedCounter_)
            droppedCounter_->add(over);
    }
}

void
TraceLog::span(const char *name, uint64_t start_ns, uint64_t end_ns,
               const SpanArg *args, int nargs)
{
    if (!enabled())
        return;
    const uint64_t base = processBaseNs();
    Ev ev;
    ev.name = name;
    ev.ph = 'X';
    ev.tid = threadTag();
    ev.tsNs = start_ns > base ? start_ns - base : 0;
    ev.durNs = end_ns > start_ns ? end_ns - start_ns : 0;
    ev.nargs = nargs < 0 ? 0 : (nargs > kMaxArgs ? kMaxArgs : nargs);
    for (int i = 0; i < ev.nargs; ++i)
        ev.args[i] = args[i];
    record(std::move(ev));
}

void
TraceLog::instant(const char *name, const SpanArg *args, int nargs)
{
    if (!enabled())
        return;
    const uint64_t base = processBaseNs();
    const uint64_t now = steadyNowNs();
    Ev ev;
    ev.name = name;
    ev.ph = 'i';
    ev.tid = threadTag();
    ev.tsNs = now > base ? now - base : 0;
    ev.durNs = 0;
    ev.nargs = nargs < 0 ? 0 : (nargs > kMaxArgs ? kMaxArgs : nargs);
    for (int i = 0; i < ev.nargs; ++i)
        ev.args[i] = args[i];
    record(std::move(ev));
}

namespace {

/** Microseconds with millisecond-of-a-microsecond precision. */
void
writeMicros(std::ostream &os, uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ns) / 1e3);
    os << buf;
}

} // namespace

void
TraceLog::writeFileLocked()
{
    std::ofstream out(path_);
    if (!out) {
        warn("cannot open trace file '", path_, "' for writing");
        return;
    }
    out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": \"psca\"}}";
    for (const auto &e : central_) {
        out << ",\n{\"name\": \"" << jsonEscape(e.name)
            << "\", \"ph\": \"" << e.ph << "\", \"pid\": 1, "
            << "\"tid\": " << e.tid << ", \"ts\": ";
        writeMicros(out, e.tsNs);
        if (e.ph == 'X') {
            out << ", \"dur\": ";
            writeMicros(out, e.durNs);
        } else {
            out << ", \"s\": \"t\"";
        }
        if (e.nargs > 0) {
            out << ", \"args\": {";
            for (int i = 0; i < e.nargs; ++i) {
                if (i)
                    out << ", ";
                out << "\"" << jsonEscape(e.args[i].key)
                    << "\": " << e.args[i].value;
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n]\n}\n";
    out.flush();
    if (!out)
        warn("trace file '", path_, "' is truncated (disk full?)");
}

void
TraceLog::finalize()
{
    if (!enabled_.exchange(false, std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &b : bufs_)
        drainInto(*b);
    std::stable_sort(central_.begin(), central_.end(),
                     [](const Ev &a, const Ev &b) {
                         return a.tsNs != b.tsNs ? a.tsNs < b.tsNs
                                                 : a.tid < b.tid;
                     });
    writeFileLocked();
    inform("trace written to ", path_, " (",
           central_.size(), " events, ",
           dropped_.load(std::memory_order_relaxed), " dropped)");
    central_.clear();
    central_.shrink_to_fit();
}

} // namespace obs
} // namespace psca
