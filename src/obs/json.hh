/**
 * @file
 * Shared JSON emission helpers for the obs layer. Every producer of
 * report-shaped output (stat registry, snapshots, event log, HTTP
 * endpoint, trace exporter) uses these, so escaping and number
 * formatting stay byte-identical across all of them.
 */

#ifndef PSCA_OBS_JSON_HH
#define PSCA_OBS_JSON_HH

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace psca {
namespace obs {

/** Minimal JSON string escaping (names are ASCII identifiers). */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Print a double as JSON (finite; non-finite becomes 0). */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_JSON_HH
