/**
 * @file
 * Run-report emission: every bench binary and example ends by dumping
 * the stat registry (counters, gauges, histograms, phase tree) as one
 * JSON object, so the performance trajectory of the repo is diffable
 * across runs and PRs.
 *
 * Environment:
 *  - PSCA_REPORT=0        disable report files entirely
 *  - PSCA_REPORT_DIR=dir  directory for report files (default: cwd)
 */

#ifndef PSCA_OBS_REPORT_HH
#define PSCA_OBS_REPORT_HH

#include <string>

namespace psca {
namespace obs {

/** True unless PSCA_REPORT=0 disabled report emission. */
bool reportEnabled();

/** Path the report for @p name will be written to (<name>.json). */
std::string reportPath(const std::string &name);

/**
 * Dump the registry + phase tree to reportPath(name) and log the
 * location. No-op when reports are disabled.
 */
void writeRunReport(const std::string &name);

/** RAII report: emits writeRunReport(name) at scope exit. */
class RunReportGuard
{
  public:
    explicit RunReportGuard(std::string name) : name_(std::move(name))
    {}

    ~RunReportGuard();

    RunReportGuard(const RunReportGuard &) = delete;
    RunReportGuard &operator=(const RunReportGuard &) = delete;

  private:
    std::string name_;
};

} // namespace obs
} // namespace psca

#endif // PSCA_OBS_REPORT_HH
