#include "obs/stats.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/phase.hh"
#include "obs/snapshot.hh"

namespace psca {
namespace obs {

size_t
Counter::shardIndex()
{
    // Round-robin shard assignment: the first kShards threads each
    // get a private cache line; beyond that, threads share lines but
    // stay correct (the adds are atomic).
    static std::atomic<size_t> next_id{0};
    thread_local const size_t id =
        next_id.fetch_add(1, std::memory_order_relaxed) %
        Counter::kShards;
    return id;
}

namespace {

/** 128-bit sums fit doubles' range (2^128 < 1e39) exactly enough. */
double
u128ToDouble(Uint128 v)
{
    return static_cast<double>(v);
}

void
putU128(BinaryWriter &out, Uint128 v)
{
    out.put<uint64_t>(static_cast<uint64_t>(v));
    out.put<uint64_t>(static_cast<uint64_t>(v >> 64));
}

Uint128
getU128(BinaryReader &in)
{
    const uint64_t lo = in.get<uint64_t>();
    const uint64_t hi = in.get<uint64_t>();
    return (static_cast<Uint128>(hi) << 64) | lo;
}

} // namespace

double
HistogramSnapshot::mean() const
{
    return count ? u128ToDouble(sum) / static_cast<double>(count)
                 : 0.0;
}

double
HistogramSnapshot::variance() const
{
    if (!count)
        return 0.0;
    const double n = static_cast<double>(count);
    const double m = u128ToDouble(sum) / n;
    const double v = u128ToDouble(sumSq) / n - m * m;
    return v > 0.0 ? v : 0.0;
}

double
HistogramSnapshot::stddev() const
{
    return std::sqrt(variance());
}

uint64_t
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0;
    if (p <= 0.0)
        return min;
    if (p >= 100.0)
        return max;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;

    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        cum += buckets[i];
        if (cum >= rank) {
            const uint64_t lo = Histogram::bucketLowerBound(i);
            const uint64_t hi = i + 1 < Histogram::kNumBuckets
                ? Histogram::bucketUpperBound(i)
                : max;
            uint64_t mid = lo + (hi - lo) / 2;
            // The exact extrema beat the bucket resolution.
            if (mid < min)
                mid = min;
            if (mid > max)
                mid = max;
            return mid;
        }
    }
    return max;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    // An empty shard carries min=UINT64_MAX / max=0: the identity
    // element for both folds, so no emptiness check is needed.
    if (other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    sum += other.sum;
    sumSq += other.sumSq;
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
}

void
HistogramSnapshot::serialize(BinaryWriter &out) const
{
    out.put(count);
    out.put(min);
    out.put(max);
    putU128(out, sum);
    putU128(out, sumSq);
    out.put<uint64_t>(Histogram::kNumBuckets);
    for (uint64_t b : buckets)
        out.put(b);
}

bool
HistogramSnapshot::deserialize(BinaryReader &in)
{
    count = in.get<uint64_t>();
    min = in.get<uint64_t>();
    max = in.get<uint64_t>();
    sum = getU128(in);
    sumSq = getU128(in);
    const uint64_t n = in.get<uint64_t>();
    if (!in.good() || n != Histogram::kNumBuckets)
        return false;
    for (auto &b : buckets)
        b = in.get<uint64_t>();
    return in.good();
}

double
Histogram::mean() const
{
    return snapshot().mean();
}

double
Histogram::variance() const
{
    return snapshot().variance();
}

double
Histogram::stddev() const
{
    return snapshot().stddev();
}

uint64_t
Histogram::percentile(double p) const
{
    return snapshot().percentile(p);
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    HistogramSnapshot s;
    s.count = count_;
    s.min = min_;
    s.max = max_;
    s.sum = sum_;
    s.sumSq = sumSq_;
    s.buckets = buckets_;
    return s;
}

void
Histogram::merge(const HistogramSnapshot &other)
{
    std::lock_guard<std::mutex> lock(mu_);
    count_ += other.count;
    if (other.min < min_)
        min_ = other.min;
    if (other.max > max_)
        max_ = other.max;
    sum_ += other.sum;
    sumSq_ += other.sumSq;
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets[i];
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    count_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
    sum_ = 0;
    sumSq_ = 0;
    buckets_.fill(0);
}

void
Histogram::serialize(BinaryWriter &out) const
{
    snapshot().serialize(out);
}

void
Histogram::deserialize(BinaryReader &in)
{
    HistogramSnapshot s;
    const bool ok = s.deserialize(in);
    PSCA_ASSERT(ok,
                "histogram bucket-count mismatch (stale format?)");
    std::lock_guard<std::mutex> lock(mu_);
    count_ = s.count;
    min_ = s.min;
    max_ = s.max;
    sum_ = s.sum;
    sumSq_ = s.sumSq;
    buckets_ = s.buckets;
}

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
StatRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
StatRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
StatRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
StatRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

void
StatRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
StatRegistry::forEachCounter(
    const std::function<void(const std::string &, uint64_t)> &fn)
    const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        fn(name, c->value());
}

void
StatRegistry::forEachGauge(
    const std::function<void(const std::string &, double)> &fn) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, g] : gauges_)
        fn(name, g->value());
}

void
StatRegistry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)>
        &fn) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, h] : histograms_)
        fn(name, *h);
}

namespace {

void
writePhaseJson(std::ostream &os, const PhaseNode &node,
               const std::string &indent)
{
    const uint64_t calls =
        node.calls.load(std::memory_order_relaxed);
    const uint64_t wall_ns =
        node.wallNs.load(std::memory_order_relaxed);
    os << indent << "{\"name\": \"" << jsonEscape(node.name)
       << "\", \"calls\": " << calls << ", \"wall_ms\": ";
    jsonNumber(os, static_cast<double>(wall_ns) / 1e6);
    if (node.children.empty()) {
        os << "}";
        return;
    }
    os << ", \"children\": [\n";
    for (size_t i = 0; i < node.children.size(); ++i) {
        writePhaseJson(os, *node.children[i], indent + "  ");
        if (i + 1 < node.children.size())
            os << ",";
        os << "\n";
    }
    os << indent << "]}";
}

void
writePhaseText(std::ostream &os, const PhaseNode &node, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
    char buf[64];
    std::snprintf(
        buf, sizeof(buf), "%10.3f ms  x%-8llu ",
        static_cast<double>(
            node.wallNs.load(std::memory_order_relaxed)) /
            1e6,
        static_cast<unsigned long long>(
            node.calls.load(std::memory_order_relaxed)));
    os << buf << node.name << "\n";
    for (const auto &child : node.children)
        writePhaseText(os, *child, depth + 1);
}

} // namespace

void
StatRegistry::writeJson(std::ostream &os,
                        const std::string &report_name) const
{
    // Delegating the stat sections to the snapshot codec guarantees a
    // merged-snapshot report and a live-registry report are the same
    // bytes (the §12 merge contract); capture() takes the registry
    // lock internally.
    StatSnapshot snap;
    snap.capture(*this);
    os << "{\n";
    os << "  \"report\": \"" << jsonEscape(report_name) << "\",\n";
    os << "  \"schema\": 1,\n";
    snap.writeSections(os, /*trailing_comma=*/true);

    // Structured events ride along only when something was logged, so
    // an event-free run's report keeps the pre-§12 byte layout.
    EventLog::instance().writeReportSection(os);

    os << "  \"phases\": ";
    writePhaseTreeJson(os);
    os << "\n}\n";
}

void
writePhaseTreeJson(std::ostream &os)
{
    os << "[\n";
    // Freeze the phase tree for the whole traversal: a straggler
    // scope closing on another thread must not mutate nodes mid-dump.
    const auto tree_lock = PhaseTracer::instance().lockTree();
    const PhaseNode &root = PhaseTracer::instance().root();
    for (size_t i = 0; i < root.children.size(); ++i) {
        writePhaseJson(os, *root.children[i], "    ");
        if (i + 1 < root.children.size())
            os << ",";
        os << "\n";
    }
    os << "  ]";
}

bool
StatRegistry::dumpJson(const std::string &path,
                       const std::string &report_name) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open run-report file '", path, "'");
    writeJson(out, report_name);
    out.flush();
    return static_cast<bool>(out);
}

void
StatRegistry::dumpText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!counters_.empty()) {
        os << "counters:\n";
        for (const auto &[name, c] : counters_)
            os << "  " << std::left << std::setw(42) << name
               << std::right << std::setw(16) << c->value() << "\n";
    }
    if (!gauges_.empty()) {
        os << "gauges:\n";
        for (const auto &[name, g] : gauges_) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%16.6g", g->value());
            os << "  " << std::left << std::setw(42) << name
               << std::right << buf << "\n";
        }
    }
    if (!histograms_.empty()) {
        os << "histograms:"
           << "              count       mean        p50        p95"
           << "        p99        max\n";
        for (const auto &[name, h] : histograms_) {
            char buf[128];
            std::snprintf(
                buf, sizeof(buf),
                "%10llu %10.1f %10llu %10llu %10llu %10llu",
                static_cast<unsigned long long>(h->count()),
                h->mean(),
                static_cast<unsigned long long>(h->percentile(50.0)),
                static_cast<unsigned long long>(h->percentile(95.0)),
                static_cast<unsigned long long>(h->percentile(99.0)),
                static_cast<unsigned long long>(h->max()));
            os << "  " << std::left << std::setw(36) << name
               << std::right << buf << "\n";
        }
    }
    const auto tree_lock = PhaseTracer::instance().lockTree();
    const PhaseNode &root = PhaseTracer::instance().root();
    if (!root.children.empty()) {
        os << "phases:\n";
        for (const auto &child : root.children)
            writePhaseText(os, *child, 1);
    }
}

} // namespace obs
} // namespace psca
