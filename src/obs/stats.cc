#include "obs/stats.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "obs/phase.hh"

namespace psca {
namespace obs {

size_t
Counter::shardIndex()
{
    // Round-robin shard assignment: the first kShards threads each
    // get a private cache line; beyond that, threads share lines but
    // stay correct (the adds are atomic).
    static std::atomic<size_t> next_id{0};
    thread_local const size_t id =
        next_id.fetch_add(1, std::memory_order_relaxed) %
        Counter::kShards;
    return id;
}

double
Histogram::stddev() const
{
    return std::sqrt(variance());
}

uint64_t
Histogram::percentile(double p) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0)
        return 0;
    if (p <= 0.0)
        return min_;
    if (p >= 100.0)
        return max_;
    uint64_t rank = static_cast<uint64_t>(std::ceil(
        p / 100.0 * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;

    uint64_t cum = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= rank) {
            const uint64_t lo = bucketLowerBound(i);
            const uint64_t hi =
                i + 1 < kNumBuckets ? bucketUpperBound(i) : max_;
            uint64_t mid = lo + (hi - lo) / 2;
            // The exact extrema beat the bucket resolution.
            if (mid < min_)
                mid = min_;
            if (mid > max_)
                mid = max_;
            return mid;
        }
    }
    return max_;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    count_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    buckets_.fill(0);
}

void
Histogram::serialize(BinaryWriter &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    out.put(count_);
    out.put(min_);
    out.put(max_);
    out.put(mean_);
    out.put(m2_);
    out.put<uint64_t>(kNumBuckets);
    for (uint64_t b : buckets_)
        out.put(b);
}

void
Histogram::deserialize(BinaryReader &in)
{
    std::lock_guard<std::mutex> lock(mu_);
    count_ = in.get<uint64_t>();
    min_ = in.get<uint64_t>();
    max_ = in.get<uint64_t>();
    mean_ = in.get<double>();
    m2_ = in.get<double>();
    const uint64_t n = in.get<uint64_t>();
    PSCA_ASSERT(n == kNumBuckets,
                "histogram bucket-count mismatch (stale format?)");
    for (auto &b : buckets_)
        b = in.get<uint64_t>();
}

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
StatRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
StatRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
StatRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
StatRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

void
StatRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Print a double as JSON (finite; non-finite becomes 0). */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

void
writeHistogramJson(std::ostream &os, const Histogram &h,
                   const std::string &indent)
{
    os << "{\n";
    os << indent << "  \"count\": " << h.count() << ",\n";
    os << indent << "  \"min\": " << h.min() << ",\n";
    os << indent << "  \"max\": " << h.max() << ",\n";
    os << indent << "  \"mean\": ";
    jsonNumber(os, h.mean());
    os << ",\n" << indent << "  \"stddev\": ";
    jsonNumber(os, h.stddev());
    os << ",\n";
    os << indent << "  \"p50\": " << h.percentile(50.0) << ",\n";
    os << indent << "  \"p95\": " << h.percentile(95.0) << ",\n";
    os << indent << "  \"p99\": " << h.percentile(99.0) << ",\n";
    os << indent << "  \"buckets\": [";
    bool first = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h.bucketCount(i) == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "[" << Histogram::bucketLowerBound(i) << ", "
           << h.bucketCount(i) << "]";
    }
    os << "]\n" << indent << "}";
}

void
writePhaseJson(std::ostream &os, const PhaseNode &node,
               const std::string &indent)
{
    os << indent << "{\"name\": \"" << jsonEscape(node.name)
       << "\", \"calls\": " << node.calls << ", \"wall_ms\": ";
    jsonNumber(os, static_cast<double>(node.wallNs) / 1e6);
    if (node.children.empty()) {
        os << "}";
        return;
    }
    os << ", \"children\": [\n";
    for (size_t i = 0; i < node.children.size(); ++i) {
        writePhaseJson(os, *node.children[i], indent + "  ");
        if (i + 1 < node.children.size())
            os << ",";
        os << "\n";
    }
    os << indent << "]}";
}

void
writePhaseText(std::ostream &os, const PhaseNode &node, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%10.3f ms  x%-8llu ",
                  static_cast<double>(node.wallNs) / 1e6,
                  static_cast<unsigned long long>(node.calls));
    os << buf << node.name << "\n";
    for (const auto &child : node.children)
        writePhaseText(os, *child, depth + 1);
}

} // namespace

void
StatRegistry::writeJson(std::ostream &os,
                        const std::string &report_name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\n";
    os << "  \"report\": \"" << jsonEscape(report_name) << "\",\n";
    os << "  \"schema\": 1,\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        jsonNumber(os, g->value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        writeHistogramJson(os, *h, "    ");
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"phases\": [\n";
    // Freeze the phase tree for the whole traversal: a straggler
    // scope closing on another thread must not mutate nodes mid-dump.
    const auto tree_lock = PhaseTracer::instance().lockTree();
    const PhaseNode &root = PhaseTracer::instance().root();
    for (size_t i = 0; i < root.children.size(); ++i) {
        writePhaseJson(os, *root.children[i], "    ");
        if (i + 1 < root.children.size())
            os << ",";
        os << "\n";
    }
    os << "  ]\n}\n";
}

bool
StatRegistry::dumpJson(const std::string &path,
                       const std::string &report_name) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open run-report file '", path, "'");
    writeJson(out, report_name);
    out.flush();
    return static_cast<bool>(out);
}

void
StatRegistry::dumpText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!counters_.empty()) {
        os << "counters:\n";
        for (const auto &[name, c] : counters_)
            os << "  " << std::left << std::setw(42) << name
               << std::right << std::setw(16) << c->value() << "\n";
    }
    if (!gauges_.empty()) {
        os << "gauges:\n";
        for (const auto &[name, g] : gauges_) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%16.6g", g->value());
            os << "  " << std::left << std::setw(42) << name
               << std::right << buf << "\n";
        }
    }
    if (!histograms_.empty()) {
        os << "histograms:"
           << "              count       mean        p50        p95"
           << "        p99        max\n";
        for (const auto &[name, h] : histograms_) {
            char buf[128];
            std::snprintf(
                buf, sizeof(buf),
                "%10llu %10.1f %10llu %10llu %10llu %10llu",
                static_cast<unsigned long long>(h->count()),
                h->mean(),
                static_cast<unsigned long long>(h->percentile(50.0)),
                static_cast<unsigned long long>(h->percentile(95.0)),
                static_cast<unsigned long long>(h->percentile(99.0)),
                static_cast<unsigned long long>(h->max()));
            os << "  " << std::left << std::setw(36) << name
               << std::right << buf << "\n";
        }
    }
    const auto tree_lock = PhaseTracer::instance().lockTree();
    const PhaseNode &root = PhaseTracer::instance().root();
    if (!root.children.empty()) {
        os << "phases:\n";
        for (const auto &child : root.children)
            writePhaseText(os, *child, 1);
    }
}

} // namespace obs
} // namespace psca
