#include "obs/phase.hh"

#include "common/parallel.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

namespace {

/**
 * This thread's open-scope stack. Lazily rooted at the tree root the
 * first time the thread pushes a scope; pool tasks re-root it at the
 * submitter's phase via beginTask/endTask.
 */
thread_local std::vector<PhaseNode *> tls_stack;

/** Saved stack while this thread runs a pool task (one level deep). */
thread_local std::vector<PhaseNode *> tls_saved_stack;

/** ThreadPool context hooks: carry the submitter's phase to workers. */
void *
captureContext()
{
    return PhaseTracer::instance().current();
}

void
enterContext(void *ctx)
{
    PhaseTracer::instance().beginTask(static_cast<PhaseNode *>(ctx));
}

void
exitContext()
{
    PhaseTracer::instance().endTask();
}

/**
 * Register the hooks at static-init time so the first parallelFor —
 * whoever triggers it — already propagates phase context. The hook
 * targets in parallel.cc are plain function pointers
 * (constant-initialized), so cross-TU init order is harmless.
 */
const bool g_hooks_registered = [] {
    ThreadPool::setContextHooks(captureContext, enterContext,
                                exitContext);
    return true;
}();

} // namespace

uint64_t
elapsedNs(std::chrono::steady_clock::time_point start)
{
    const auto d = std::chrono::steady_clock::now() - start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d)
            .count());
}

PhaseNode *
PhaseNode::findOrAddChild(const std::string &child_name)
{
    for (auto &c : children)
        if (c->name == child_name)
            return c.get();
    children.push_back(std::make_unique<PhaseNode>());
    children.back()->name = child_name;
    return children.back().get();
}

PhaseTracer::PhaseTracer()
{
    root_.name = "run";
}

PhaseTracer &
PhaseTracer::instance()
{
    static PhaseTracer tracer;
    return tracer;
}

PhaseNode *
PhaseTracer::current()
{
    return tls_stack.empty() ? &root_ : tls_stack.back();
}

PhaseNode *
PhaseTracer::push(const std::string &name)
{
    std::lock_guard<std::mutex> lock(treeMu_);
    PhaseNode *parent = tls_stack.empty() ? &root_ : tls_stack.back();
    PhaseNode *node = parent->findOrAddChild(name);
    ++node->calls;
    tls_stack.push_back(node);
    return node;
}

void
PhaseTracer::pop(uint64_t elapsed_ns)
{
    std::lock_guard<std::mutex> lock(treeMu_);
    if (tls_stack.empty())
        return; // unbalanced pop; keep the root usable
    tls_stack.back()->wallNs += elapsed_ns;
    tls_stack.pop_back();
}

void
PhaseTracer::beginTask(PhaseNode *parent)
{
    tls_saved_stack.swap(tls_stack);
    tls_stack.clear();
    if (parent)
        tls_stack.push_back(parent);
}

void
PhaseTracer::endTask()
{
    tls_stack.swap(tls_saved_stack);
    tls_saved_stack.clear();
}

void
PhaseTracer::reset()
{
    std::lock_guard<std::mutex> lock(treeMu_);
    root_.children.clear();
    root_.calls = 0;
    root_.wallNs = 0;
    // Open ScopedPhases on this thread hold pointers into the cleared
    // tree; rewind the stack so later pushes re-root cleanly.
    tls_stack.clear();
}

ScopedPhase::ScopedPhase(const std::string &name)
    : start_(std::chrono::steady_clock::now())
{
    PhaseTracer::instance().push(name);
}

ScopedPhase::~ScopedPhase()
{
    PhaseTracer::instance().pop(elapsedNs(start_));
}

ScopedTimer::~ScopedTimer()
{
    hist_.add(elapsedNs(start_));
}

} // namespace obs
} // namespace psca
