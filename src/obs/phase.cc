#include "obs/phase.hh"

#include "obs/stats.hh"

namespace psca {
namespace obs {

uint64_t
elapsedNs(std::chrono::steady_clock::time_point start)
{
    const auto d = std::chrono::steady_clock::now() - start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d)
            .count());
}

PhaseNode *
PhaseNode::findOrAddChild(const std::string &child_name)
{
    for (auto &c : children)
        if (c->name == child_name)
            return c.get();
    children.push_back(std::make_unique<PhaseNode>());
    children.back()->name = child_name;
    return children.back().get();
}

PhaseTracer::PhaseTracer()
{
    root_.name = "run";
    stack_.push_back(&root_);
}

PhaseTracer &
PhaseTracer::instance()
{
    static PhaseTracer tracer;
    return tracer;
}

PhaseNode *
PhaseTracer::push(const std::string &name)
{
    PhaseNode *node = stack_.back()->findOrAddChild(name);
    ++node->calls;
    stack_.push_back(node);
    return node;
}

void
PhaseTracer::pop(uint64_t elapsed_ns)
{
    if (stack_.size() <= 1)
        return; // unbalanced pop; keep the root usable
    stack_.back()->wallNs += elapsed_ns;
    stack_.pop_back();
}

void
PhaseTracer::reset()
{
    root_.children.clear();
    root_.calls = 0;
    root_.wallNs = 0;
    // Open ScopedPhases hold no pointers into the tree (they only
    // talk to the stack), but the stack itself must be rewound.
    stack_.assign(1, &root_);
}

ScopedPhase::ScopedPhase(const std::string &name)
    : start_(std::chrono::steady_clock::now())
{
    PhaseTracer::instance().push(name);
}

ScopedPhase::~ScopedPhase()
{
    PhaseTracer::instance().pop(elapsedNs(start_));
}

ScopedTimer::~ScopedTimer()
{
    hist_.add(elapsedNs(start_));
}

} // namespace obs
} // namespace psca
