#include "obs/phase.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/stats.hh"

namespace psca {
namespace obs {

namespace {

/**
 * This thread's open-scope stack. Lazily rooted at the tree root the
 * first time the thread pushes a scope; pool tasks re-root it at the
 * submitter's phase via beginTask/endTask.
 */
thread_local std::vector<PhaseNode *> tls_stack;

/** Saved stack while this thread runs a pool task (one level deep). */
thread_local std::vector<PhaseNode *> tls_saved_stack;

/**
 * Per-thread (parent, name) -> child memo so steady-state push never
 * touches the tracer mutex. Invalidated wholesale when the tracer
 * epoch moves (reset()).
 */
struct ChildKey
{
    const PhaseNode *parent;
    std::string name;

    bool
    operator==(const ChildKey &o) const
    {
        return parent == o.parent && name == o.name;
    }
};

struct ChildKeyHash
{
    size_t
    operator()(const ChildKey &k) const
    {
        return std::hash<const void *>()(k.parent) * 1099511628211ULL ^
            std::hash<std::string>()(k.name);
    }
};

thread_local std::unordered_map<ChildKey, PhaseNode *, ChildKeyHash>
    tls_child_cache;
thread_local uint64_t tls_cache_epoch = ~0ULL;

/** ThreadPool context hooks: carry the submitter's phase to workers. */
void *
captureContext()
{
    return PhaseTracer::instance().current();
}

void
enterContext(void *ctx)
{
    PhaseTracer::instance().beginTask(static_cast<PhaseNode *>(ctx));
}

void
exitContext()
{
    PhaseTracer::instance().endTask();
}

/**
 * ThreadPool task-span hooks: with tracing on, each claimed pool task
 * becomes a "pool.task" span carrying its index, so imbalance across
 * workers is visible in the flame view.
 */
thread_local uint64_t tls_task_start_ns = 0;

void
taskSpanBegin(size_t)
{
    tls_task_start_ns =
        TraceLog::instance().enabled() ? steadyNowNs() : 0;
}

void
taskSpanEnd(size_t index)
{
    if (!tls_task_start_ns)
        return;
    auto &tl = TraceLog::instance();
    if (tl.enabled()) {
        SpanArg arg{"index", static_cast<long long>(index)};
        tl.span("pool.task", tls_task_start_ns, steadyNowNs(), &arg,
                1);
    }
    tls_task_start_ns = 0;
}

/**
 * Register the hooks at static-init time so the first parallelFor —
 * whoever triggers it — already propagates phase context. The hook
 * targets in parallel.cc are plain function pointers
 * (constant-initialized), so cross-TU init order is harmless.
 */
const bool g_hooks_registered = [] {
    ThreadPool::setContextHooks(captureContext, enterContext,
                                exitContext);
    ThreadPool::setTaskSpanHooks(taskSpanBegin, taskSpanEnd);
    return true;
}();

} // namespace

uint64_t
elapsedNs(std::chrono::steady_clock::time_point start)
{
    const auto d = std::chrono::steady_clock::now() - start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d)
            .count());
}

PhaseNode *
PhaseNode::findOrAddChild(const std::string &child_name)
{
    for (auto &c : children)
        if (c->name == child_name)
            return c.get();
    children.push_back(std::make_unique<PhaseNode>());
    children.back()->name = child_name;
    return children.back().get();
}

PhaseTracer::PhaseTracer()
{
    root_.name = "run";
}

PhaseTracer &
PhaseTracer::instance()
{
    static PhaseTracer tracer;
    return tracer;
}

PhaseNode *
PhaseTracer::current()
{
    return tls_stack.empty() ? &root_ : tls_stack.back();
}

PhaseNode *
PhaseTracer::childFor(PhaseNode *parent, const std::string &name)
{
    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (tls_cache_epoch != epoch) {
        tls_child_cache.clear();
        tls_cache_epoch = epoch;
    }
    const ChildKey key{parent, name};
    const auto it = tls_child_cache.find(key);
    if (it != tls_child_cache.end())
        return it->second;
    PhaseNode *node;
    {
        std::lock_guard<std::mutex> lock(treeMu_);
        node = parent->findOrAddChild(name);
    }
    tls_child_cache.emplace(key, node);
    return node;
}

PhaseNode *
PhaseTracer::push(const std::string &name)
{
    PhaseNode *parent = tls_stack.empty() ? &root_ : tls_stack.back();
    PhaseNode *node = childFor(parent, name);
    node->calls.fetch_add(1, std::memory_order_relaxed);
    tls_stack.push_back(node);
    if (liveScopes_.load(std::memory_order_relaxed))
        openScopePush(node);
    return node;
}

void
PhaseTracer::pop(uint64_t elapsed_ns)
{
    if (tls_stack.empty())
        return; // unbalanced pop; keep the root usable
    PhaseNode *node = tls_stack.back();
    node->wallNs.fetch_add(elapsed_ns, std::memory_order_relaxed);
    openScopePop(node);
    tls_stack.pop_back();
}

void
PhaseTracer::beginTask(PhaseNode *parent)
{
    tls_saved_stack.swap(tls_stack);
    tls_stack.clear();
    if (parent)
        tls_stack.push_back(parent);
}

void
PhaseTracer::endTask()
{
    tls_stack.swap(tls_saved_stack);
    tls_saved_stack.clear();
}

void
PhaseTracer::reset()
{
    // Clear the live-view slots FIRST: their entries point at nodes
    // the tree clear below destroys.
    {
        std::lock_guard<std::mutex> lock(slotsMu_);
        for (auto &slot : slots_) {
            std::lock_guard<std::mutex> slock(slot->mu);
            slot->open.clear();
        }
    }
    {
        std::lock_guard<std::mutex> lock(treeMu_);
        root_.children.clear();
        root_.calls.store(0, std::memory_order_relaxed);
        root_.wallNs.store(0, std::memory_order_relaxed);
    }
    // Invalidate every thread's child memo (checked against the
    // epoch on its next push); this thread's eagerly.
    epoch_.fetch_add(1, std::memory_order_release);
    tls_child_cache.clear();
    tls_cache_epoch = epoch_.load(std::memory_order_relaxed);
    // Open ScopedPhases on this thread hold pointers into the cleared
    // tree; rewind the stack so later pushes re-root cleanly.
    tls_stack.clear();
}

void
PhaseTracer::setLiveScopes(bool on)
{
    liveScopes_.store(on, std::memory_order_relaxed);
}

namespace {

/** This thread's live-view slot (created on first gated push). */
thread_local std::shared_ptr<PhaseTracer::OpenSlot> tls_slot;

} // namespace

void
PhaseTracer::openScopePush(const PhaseNode *node)
{
    if (!tls_slot) {
        tls_slot = std::make_shared<OpenSlot>();
        tls_slot->tid = threadTag();
        std::lock_guard<std::mutex> lock(slotsMu_);
        slots_.push_back(tls_slot);
    }
    std::lock_guard<std::mutex> lock(tls_slot->mu);
    tls_slot->open.emplace_back(node, steadyNowNs());
}

void
PhaseTracer::openScopePop(const PhaseNode *node)
{
    // Tracking may have been toggled mid-scope: pop only a matching
    // top entry so the live stack never misattributes.
    if (!tls_slot)
        return;
    std::lock_guard<std::mutex> lock(tls_slot->mu);
    if (!tls_slot->open.empty() &&
        tls_slot->open.back().first == node)
        tls_slot->open.pop_back();
}

void
PhaseTracer::forEachOpenScope(
    const std::function<void(int tid, const std::string &name,
                             uint64_t open_ns)> &fn) const
{
    const uint64_t now = steadyNowNs();
    std::lock_guard<std::mutex> lock(slotsMu_);
    for (const auto &slot : slots_) {
        std::lock_guard<std::mutex> slock(slot->mu);
        for (const auto &[node, start] : slot->open)
            fn(slot->tid, node->name,
               now > start ? now - start : 0);
    }
}

ScopedPhase::ScopedPhase(const std::string &name)
    : start_(std::chrono::steady_clock::now())
{
    node_ = PhaseTracer::instance().push(name);
}

ScopedPhase::ScopedPhase(const std::string &name,
                         std::initializer_list<SpanArg> args)
    : start_(std::chrono::steady_clock::now())
{
    node_ = PhaseTracer::instance().push(name);
    for (const SpanArg &a : args) {
        if (nargs_ >= TraceLog::kMaxArgs)
            break;
        args_[nargs_++] = a;
    }
}

ScopedPhase::~ScopedPhase()
{
    const uint64_t ns = elapsedNs(start_);
    PhaseTracer::instance().pop(ns);
    auto &tl = TraceLog::instance();
    if (tl.enabled()) {
        const uint64_t end = steadyNowNs();
        tl.span(node_->name.c_str(), end > ns ? end - ns : 0, end,
                args_, nargs_);
    }
}

ScopedTimer::~ScopedTimer()
{
    hist_.add(elapsedNs(start_));
}

} // namespace obs
} // namespace psca
