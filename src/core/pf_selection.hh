/**
 * @file
 * Telemetry information-content maximization (Sec. 6.2): two
 * heuristic screens cull dead and low-signal counters, then the
 * adapted Perona-Freeman spectral algorithm (Alg. 1) repeatedly
 * extracts the most-redundant group of counters from the covariance
 * matrix's second eigenvector, keeps one representative, and removes
 * the rest — yielding a ranked list of counters with maximal mutual
 * information to the full telemetry stream.
 */

#ifndef PSCA_CORE_PF_SELECTION_HH
#define PSCA_CORE_PF_SELECTION_HH

#include <cstdint>
#include <vector>

#include "core/builder.hh"
#include "math/matrix.hh"

namespace psca {

/** Screen and selection thresholds (paper values as defaults). */
struct PfConfig
{
    /** Screen 1: a counter is flagged in a trace when it reads zero
     *  for more than this fraction of intervals... (paper: 0.15; our
     *  simulator has no OS/interrupt background noise, so exact-zero
     *  reads are far more common than on silicon and the thresholds
     *  are correspondingly looser to land at a comparable survivor
     *  population). */
    double zeroFractionPerTrace = 0.5;
    /** ...and removed when flagged in more than this fraction of
     *  traces (paper: 0.05). */
    double flaggedTraceFraction = 0.4;
    /** Screen 2: remove this bottom fraction by standard deviation. */
    double stdDevCullFraction = 0.3;
    /** Alg. 1 tau: relative second-eigenvector coefficient bound for
     *  group membership. */
    double similarityThreshold = 0.92;
    /** Counters to rank. */
    size_t numToSelect = 32;
    /** Cap on samples used for the covariance estimate. */
    size_t maxSamples = 4096;
};

/** Outcome of the screens + PF ranking. */
struct PfResult
{
    /** Ranked selected counters (registry ids; best first). */
    std::vector<uint16_t> selected;
    /** Counters surviving both screens (registry ids). */
    std::vector<uint16_t> survivors;
    /** Population size after the low-activity screen only. */
    size_t afterActivityScreen = 0;
};

/**
 * Run the screens and PF ranking over full-registry records (records
 * must have been recorded with all 936 counters).
 *
 * @param records Full-width telemetry records.
 * @param cfg Thresholds.
 * @param mode Which mode's telemetry to analyze.
 */
PfResult pfCounterSelection(const std::vector<TraceRecord> &records,
                            const PfConfig &cfg, CoreMode mode);

/**
 * Top-(k+1) eigenpairs of a symmetric PSD matrix via power iteration
 * with deflation; fast path for PF's second-eigenvector queries on
 * ~300x300 covariance matrices.
 */
Matrix leadingEigenvectors(const Matrix &sym, size_t count,
                           int iterations = 200);

} // namespace psca

#endif // PSCA_CORE_PF_SELECTION_HH
