/**
 * @file
 * The closed adaptation loop (Figs. 1 and 3): during execution, the
 * telemetry system snapshots counters every 10k instructions; at each
 * prediction-granularity boundary the microcontroller runs the
 * adaptation model appropriate to the current cluster configuration
 * on the just-finished block's (cycle-normalized) counters, and the
 * resulting decision is applied two blocks later — one full block of
 * slack for transport and inference.
 *
 * Two predictor adapters cover the model families: DualModelPredictor
 * wraps a pair of (scaler, model) for the high-perf/low-power
 * telemetry distributions; SrchPredictor wraps the Dubach-style
 * histogram models that consume the block's raw sub-interval rows.
 */

#ifndef PSCA_CORE_CONTROLLER_HH
#define PSCA_CORE_CONTROLLER_HH

#include <memory>
#include <string>

#include "core/builder.hh"
#include "core/metrics.hh"
#include "core/sla.hh"
#include "ml/model.hh"
#include "ml/srch.hh"
#include "sim/core.hh"

namespace psca {

/** Controller-facing decision interface. */
class GatePredictor
{
  public:
    virtual ~GatePredictor() = default;

    /** Prediction granularity in instructions. */
    virtual uint64_t granularity() const = 0;

    /**
     * Decide the configuration two blocks ahead.
     *
     * @param sub_rows Raw counter-delta rows of the finished block's
     *        10k sub-intervals.
     * @param sub_cycles Cycles of each sub-interval.
     * @param mode Cluster configuration the block executed in.
     * @return true to gate (low-power mode).
     */
    virtual bool decide(const std::vector<const float *> &sub_rows,
                        const std::vector<float> &sub_cycles,
                        CoreMode mode) = 0;

    /** Firmware ops per prediction, for budget checking. */
    virtual uint32_t opsPerInference() const = 0;

    virtual std::string name() const = 0;
};

/** One mode's scaler+model slot. */
struct ScaledModel
{
    FeatureScaler scaler;
    std::shared_ptr<Model> model;
};

/**
 * Standard dual-model predictor: per-mode z-scaled aggregate counters
 * into a per-mode model (Sec. 4.1 trains one model per telemetry
 * mode).
 */
class DualModelPredictor : public GatePredictor
{
  public:
    /**
     * @param columns Record-column indices forming the model inputs.
     */
    DualModelPredictor(ScaledModel high, ScaledModel low,
                       std::vector<size_t> columns,
                       uint64_t granularity, std::string name);

    uint64_t granularity() const override { return granularity_; }
    bool decide(const std::vector<const float *> &sub_rows,
                const std::vector<float> &sub_cycles,
                CoreMode mode) override;
    uint32_t opsPerInference() const override;
    std::string name() const override { return name_; }

    const ScaledModel &highSlot() const { return high_; }
    const ScaledModel &lowSlot() const { return low_; }

  private:
    ScaledModel high_;
    ScaledModel low_;
    std::vector<size_t> columns_;
    uint64_t granularity_;
    std::string name_;
};

/** SRCH predictor: per-mode histogram models on raw sub-rows. */
class SrchPredictor : public GatePredictor
{
  public:
    SrchPredictor(std::shared_ptr<SrchModel> high,
                  std::shared_ptr<SrchModel> low,
                  std::vector<size_t> columns, uint64_t granularity,
                  std::string name);

    uint64_t granularity() const override { return granularity_; }
    bool decide(const std::vector<const float *> &sub_rows,
                const std::vector<float> &sub_cycles,
                CoreMode mode) override;
    uint32_t opsPerInference() const override;
    std::string name() const override { return name_; }

  private:
    std::shared_ptr<SrchModel> high_;
    std::shared_ptr<SrchModel> low_;
    std::vector<size_t> columns_;
    uint64_t granularity_;
    std::string name_;
};

/**
 * Replays one workload block by block for closed-loop control: the
 * per-block simulate / snapshot / fault-inject / account machinery
 * that runClosedLoop() and the serve loop (src/serve) share. The
 * caller picks each block's cluster mode (the applied decision) and
 * receives the controller's telemetry view of the finished block;
 * ground-truth deltas feed energy/performance accounting regardless
 * of injected telemetry faults, exactly as in the batch loop.
 *
 * Determinism: fault draws are keyed by the workload's stable
 * identity mixed with the sub-interval index (traceKey()), so a given
 * PSCA_FAULTS + PSCA_FAULT_SEED produces a bit-identical fault
 * sequence at any PSCA_THREADS, and per-interval PpwAccumulator adds
 * happen in the same order as before the extraction, so accumulated
 * float sums are bit-identical too.
 */
class BlockReplayer
{
  public:
    /** Totals of one replayed block. */
    struct BlockStats
    {
        uint64_t instructions = 0;
        uint64_t cycles = 0;
    };

    /**
     * @param k Sub-intervals per block (granularity / interval).
     */
    BlockReplayer(const Workload &workload, const BuildConfig &cfg,
                  size_t k);

    /**
     * Simulate the next block in @p mode. The controller's
     * (fault-injected) telemetry view lands in subRows()/subCycles();
     * per-interval energy/perf accounting accumulates into @p acc.
     */
    BlockStats runBlock(CoreMode mode, PpwAccumulator &acc);

    /** Telemetry view of the last block's sub-intervals. */
    const std::vector<std::vector<float>> &subRows() const
    {
        return subRows_;
    }
    const std::vector<float> &subCycles() const { return subCycles_; }

    /** subRows() as the row-pointer list predictors consume. */
    std::vector<const float *> rowPtrs() const;

    /** Stable fault-stream identity of this workload. */
    uint64_t traceKey() const { return traceKey_; }

    /** Blocks replayed so far. */
    uint64_t blocksRun() const { return block_; }

    /** Cumulative cluster mode switches of the simulated core. */
    uint64_t modeSwitches() const;

  private:
    BuildConfig cfg_;
    size_t k_;
    bool faultsOn_;
    uint64_t traceKey_;
    ClusteredCore core_;
    PowerModel power_;
    TraceGenerator gen_;
    std::vector<uint64_t> prev_;
    std::vector<uint64_t> deltaAll_;
    std::vector<uint64_t> view_;
    std::vector<std::vector<float>> subRows_;
    std::vector<float> subCycles_;
    std::vector<float> carryRow_;
    float carryCycles_ = 0.0f;
    uint64_t block_ = 0;
};

/** Outcome of one closed-loop adaptive run. */
struct ClosedLoopResult
{
    /** PPW gain over the non-adaptive high-performance run, percent. */
    double ppwGainPct = 0.0;
    /** Average performance relative to high-perf mode, percent. */
    double perfRelativePct = 100.0;
    /** Fraction of blocks executed in low-power mode. */
    double lowResidency = 0.0;
    /** Offline-quality metrics of the predictions actually made. */
    ConfusionCounts confusion;
    double pgos = 0.0;
    double rsv = 0.0;
    uint64_t numPredictions = 0;
    uint64_t modeSwitches = 0;
    /** Microcontroller ops consumed by inference. */
    uint64_t ucOps = 0;
};

/**
 * Run one workload under predictive cluster gating.
 *
 * @param workload The trace to execute.
 * @param reference Its dual-mode record (ground-truth labels and the
 *        non-adaptive baseline for PPW).
 * @param predictor The adaptation model pair.
 * @param cfg Recording configuration (must match the reference).
 * @param sla SLA used for labels and RSV windows.
 */
ClosedLoopResult runClosedLoop(const Workload &workload,
                               const TraceRecord &reference,
                               GatePredictor &predictor,
                               const BuildConfig &cfg,
                               const SlaSpec &sla);

} // namespace psca

#endif // PSCA_CORE_CONTROLLER_HH
