#include "core/controller.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/fault.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"
#include "sim/core.hh"
#include "uc/budget.hh"

namespace psca {

DualModelPredictor::DualModelPredictor(ScaledModel high,
                                       ScaledModel low,
                                       std::vector<size_t> columns,
                                       uint64_t granularity,
                                       std::string name)
    : high_(std::move(high)), low_(std::move(low)),
      columns_(std::move(columns)), granularity_(granularity),
      name_(std::move(name))
{}

bool
DualModelPredictor::decide(const std::vector<const float *> &sub_rows,
                           const std::vector<float> &sub_cycles,
                           CoreMode mode)
{
    // Aggregate the block and cycle-normalize (Sec. 4.1).
    std::vector<float> agg(columns_.size(), 0.0f);
    double cycles = 0.0;
    for (size_t t = 0; t < sub_rows.size(); ++t) {
        for (size_t j = 0; j < columns_.size(); ++j)
            agg[j] += sub_rows[t][columns_[j]];
        cycles += sub_cycles[t];
    }
    const float inv =
        cycles > 0.0 ? static_cast<float>(1.0 / cycles) : 0.0f;
    for (auto &v : agg)
        v *= inv;

    const ScaledModel &slot =
        mode == CoreMode::HighPerf ? high_ : low_;
    std::vector<float> scaled(agg.size());
    slot.scaler.applyRow(agg.data(), scaled.data());

    // Input sanitation (always on): faulted telemetry can hand the
    // model NaN/Inf or values far outside the trained distribution.
    // Non-finite inputs veto straight to high-performance mode (the
    // fail-safe configuration); finite outliers are clamped to a
    // generous z-score envelope no healthy snapshot reaches.
    constexpr float kMaxAbsZ = 24.0f;
    size_t clamped = 0;
    for (auto &z : scaled) {
        if (!std::isfinite(z)) {
            obs::StatRegistry::instance()
                .counter("controller.sanitize_vetoes")
                .add();
            return false;
        }
        if (z > kMaxAbsZ) {
            z = kMaxAbsZ;
            ++clamped;
        } else if (z < -kMaxAbsZ) {
            z = -kMaxAbsZ;
            ++clamped;
        }
    }
    if (clamped > 0) {
        obs::StatRegistry::instance()
            .counter("controller.sanitized_inputs")
            .add(clamped);
    }
    return slot.model->predict(scaled.data());
}

uint32_t
DualModelPredictor::opsPerInference() const
{
    return std::max(high_.model->opsPerInference(),
                    low_.model->opsPerInference());
}

SrchPredictor::SrchPredictor(std::shared_ptr<SrchModel> high,
                             std::shared_ptr<SrchModel> low,
                             std::vector<size_t> columns,
                             uint64_t granularity, std::string name)
    : high_(std::move(high)), low_(std::move(low)),
      columns_(std::move(columns)), granularity_(granularity),
      name_(std::move(name))
{}

bool
SrchPredictor::decide(const std::vector<const float *> &sub_rows,
                      const std::vector<float> &sub_cycles,
                      CoreMode mode)
{
    const auto &model = mode == CoreMode::HighPerf ? high_ : low_;

    // Build per-sub-interval normalized rows in model column order.
    std::vector<std::vector<float>> rows(sub_rows.size());
    std::vector<const float *> row_ptrs;
    for (size_t t = 0; t < sub_rows.size(); ++t) {
        rows[t].resize(columns_.size());
        const float inv = sub_cycles[t] > 0.0f
            ? 1.0f / sub_cycles[t]
            : 0.0f;
        for (size_t j = 0; j < columns_.size(); ++j)
            rows[t][j] = sub_rows[t][columns_[j]] * inv;
        row_ptrs.push_back(rows[t].data());
    }

    std::vector<float> features(model->encoder().numFeatures());
    model->encoder().encode(row_ptrs, features.data());
    // Same fail-safe as DualModelPredictor: a non-finite feature
    // (corrupt telemetry) vetoes to high-performance mode.
    for (const float f : features) {
        if (!std::isfinite(f)) {
            obs::StatRegistry::instance()
                .counter("controller.sanitize_vetoes")
                .add();
            return false;
        }
    }
    return model->predict(features.data());
}

uint32_t
SrchPredictor::opsPerInference() const
{
    return std::max(high_->opsPerInference(),
                    low_->opsPerInference());
}

BlockReplayer::BlockReplayer(const Workload &workload,
                             const BuildConfig &cfg, size_t k)
    : cfg_(cfg), k_(k),
      // Fault injection corrupts only the controller's telemetry
      // view (subRows_/subCycles_); ground-truth deltas still feed
      // energy and performance accounting. Draws are keyed by the
      // workload's deterministic identity mixed with the sub-interval
      // index, so fault sequences are identical at any thread count.
      faultsOn_(FaultRegistry::instance().anyEnabled()),
      traceKey_(mixSeeds(
          workload.genome.seed,
          mixSeeds(workload.inputSeed, workload.traceIndex))),
      core_(cfg.core), power_(cfg.power, cfg.core.clockGhz),
      gen_(workload),
      subRows_(k, std::vector<float>(cfg.counterIds.size())),
      subCycles_(k), carryRow_(cfg.counterIds.size(), 0.0f)
{
    core_.reset();
    core_.setMode(CoreMode::HighPerf);
    if (cfg_.warmupInstr > 0)
        core_.run(gen_, cfg_.warmupInstr);
    prev_ = core_.counters().raw();
    deltaAll_.resize(prev_.size());
}

BlockReplayer::BlockStats
BlockReplayer::runBlock(CoreMode mode, PpwAccumulator &acc)
{
    auto &reg = obs::StatRegistry::instance();
    core_.setMode(mode);
    const CoreMode block_mode = core_.mode();
    const uint64_t b = block_++;
    BlockStats totals;

    for (size_t t = 0; t < k_; ++t) {
        const IntervalStats stats =
            core_.run(gen_, cfg_.intervalInstr);
        totals.instructions += stats.instructions;
        totals.cycles += stats.cycles;
        const auto &now = core_.counters().raw();
        for (size_t i = 0; i < now.size(); ++i)
            deltaAll_[i] = now[i] - prev_[i];
        prev_ = now;
        bool dropped = false;
        if (faultsOn_) {
            view_ = deltaAll_;
            dropped = applyTelemetryFaults(
                view_, mixSeeds(traceKey_, b * k_ + t));
        }
        if (dropped) {
            // Snapshot lost in flight: the controller reuses its
            // previous view of this lane rather than reading
            // garbage (zeros at the very start of the run).
            subRows_[t] = carryRow_;
            subCycles_[t] = carryCycles_;
            reg.counter("controller.snapshot_carryforwards").add();
        } else {
            const auto &src = faultsOn_ ? view_ : deltaAll_;
            for (size_t j = 0; j < cfg_.counterIds.size(); ++j)
                subRows_[t][j] =
                    static_cast<float>(src[cfg_.counterIds[j]]);
            subCycles_[t] = static_cast<float>(stats.cycles);
            if (faultsOn_) {
                carryRow_ = subRows_[t];
                carryCycles_ = subCycles_[t];
            }
        }
        acc.add(stats.instructions, stats.cycles,
                power_.intervalEnergyNj(deltaAll_, stats.cycles,
                                        block_mode));
    }
    return totals;
}

std::vector<const float *>
BlockReplayer::rowPtrs() const
{
    std::vector<const float *> ptrs;
    ptrs.reserve(k_);
    for (size_t t = 0; t < k_; ++t)
        ptrs.push_back(subRows_[t].data());
    return ptrs;
}

uint64_t
BlockReplayer::modeSwitches() const
{
    return core_.counters().value(Ctr::ModeSwitches);
}

ClosedLoopResult
runClosedLoop(const Workload &workload, const TraceRecord &reference,
              GatePredictor &predictor, const BuildConfig &cfg,
              const SlaSpec &sla)
{
    PSCA_ASSERT(predictor.granularity() % cfg.intervalInstr == 0,
                "granularity must be a multiple of the interval");
    const size_t k = predictor.granularity() / cfg.intervalInstr;
    const size_t blocks = reference.numIntervals() / k;

    ClosedLoopResult result;
    if (blocks == 0)
        return result;

    obs::ScopedPhase phase("closed_loop_replay");
    auto &reg = obs::StatRegistry::instance();
    obs::Histogram &decision_lat =
        reg.histogram("controller.decision_latency_ns");
    obs::Histogram &ops_hist =
        reg.histogram("controller.ops_per_inference");
    obs::Counter &gate_ctr = reg.counter("controller.gate_decisions");
    obs::Counter &stay_ctr =
        reg.counter("controller.nogate_decisions");

    BlockReplayer replayer(workload, cfg, k);

    const auto labels = blockLabels(reference, k, sla.pSla);
    const UcBudget budget;
    const uint64_t ops_budget =
        budget.opsBudget(predictor.granularity());
    reg.gauge("controller.ops_budget")
        .set(static_cast<double>(ops_budget));
    if (predictor.opsPerInference() > ops_budget) {
        reg.counter("controller.budget_overruns").add();
        warn("predictor '", predictor.name(), "' needs ",
             predictor.opsPerInference(), " ops but the ",
             predictor.granularity(), "-instruction budget is ",
             ops_budget);
    }

    std::vector<uint8_t> predictions(blocks, 0); // applied config
    const uint64_t trace_key = replayer.traceKey();
    const FaultSite &miss_site = FAULT_SITE("uc.deadline_miss");

    PpwAccumulator adaptive;
    uint64_t low_blocks = 0;
    // Decisions waiting to be applied (decision at block b applies
    // at block b+2).
    std::vector<uint8_t> pending(blocks + 2, 0);

    for (size_t b = 0; b < blocks; ++b) {
        const CoreMode block_mode = pending[b]
            ? CoreMode::LowPower
            : CoreMode::HighPerf;
        predictions[b] = pending[b];
        low_blocks += pending[b];

        replayer.runBlock(block_mode, adaptive);

        // Microcontroller inference for block b+2. A deadline miss
        // (injected, or deterministic-on-overrun when the site's
        // param >= 1 and the model's static ops exceed the budget)
        // means the result arrives too late to matter: the
        // controller carries the most recently scheduled decision
        // forward instead of consuming a stale or partial one.
        bool deadline_missed = false;
        if (miss_site.enabled()) {
            deadline_missed = miss_site.param(0.0) >= 1.0
                ? predictor.opsPerInference() > ops_budget
                : miss_site.fires(mixSeeds(trace_key, b));
        }
        if (deadline_missed) {
            reg.counter("controller.deadline_misses").add();
            result.ucOps += predictor.opsPerInference();
            if (b + 2 < pending.size())
                pending[b + 2] = pending[b + 1];
            continue;
        }
        const std::vector<const float *> row_ptrs =
            replayer.rowPtrs();
        const auto decide_start = std::chrono::steady_clock::now();
        const bool gate = predictor.decide(
            row_ptrs, replayer.subCycles(), block_mode);
        decision_lat.add(obs::elapsedNs(decide_start));
        ops_hist.add(predictor.opsPerInference());
        (gate ? gate_ctr : stay_ctr).add();
        result.ucOps += predictor.opsPerInference();
        ++result.numPredictions;
        if (b + 2 < pending.size())
            pending[b + 2] = gate ? 1 : 0;
    }

    // Reference (non-adaptive high-performance) totals.
    PpwAccumulator high_only;
    for (size_t b = 0; b < blocks; ++b) {
        for (size_t t = b * k; t < (b + 1) * k; ++t) {
            high_only.add(
                cfg.intervalInstr,
                static_cast<uint64_t>(reference.cyclesHigh[t]),
                reference.energyHighNj[t]);
        }
    }

    result.ppwGainPct =
        high_only.ppw() > 0.0
        ? (adaptive.ppw() / high_only.ppw() - 1.0) * 100.0
        : 0.0;
    result.perfRelativePct = adaptive.cycles()
        ? static_cast<double>(high_only.cycles()) /
            static_cast<double>(adaptive.cycles()) * 100.0
        : 100.0;
    result.lowResidency = static_cast<double>(low_blocks) /
        static_cast<double>(blocks);
    result.modeSwitches = replayer.modeSwitches();

    for (size_t b = 0; b < blocks; ++b)
        result.confusion.add(predictions[b] != 0, labels[b] != 0);
    result.pgos = result.confusion.pgos();
    const uint64_t window = sla.windowPredictions(
        cfg.core.clockGhz * 1e9 *
            static_cast<double>(cfg.core.retireWidth),
        predictor.granularity());
    result.rsv = rsvForTrace(predictions, labels, window);

    reg.counter("controller.predictions").add(result.numPredictions);
    reg.counter("controller.mode_transitions")
        .add(result.modeSwitches);
    result.confusion.exportTo(reg, "controller.confusion");
    reg.gauge("controller.last_rsv").set(result.rsv);
    reg.gauge("controller.last_pgos").set(result.pgos);
    return result;
}

} // namespace psca
