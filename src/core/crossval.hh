/**
 * @file
 * Design-time model evaluation (Sec. 4.3): k-fold cross-validation
 * with application-level partitioning (all telemetry of one app lands
 * entirely in the tuning or the validation set, so code shared across
 * samples cannot leak), sensitivity calibration (Sec. 6.3: pick the
 * decision threshold that keeps tuning-set RSV under a target), and
 * per-fold PGOS/RSV aggregation into mean/std summaries.
 */

#ifndef PSCA_CORE_CROSSVAL_HH
#define PSCA_CORE_CROSSVAL_HH

#include <functional>
#include <memory>
#include <string>

#include "core/metrics.hh"
#include "ml/model.hh"

namespace psca {

/** One fold's app-level index split. */
struct FoldSplit
{
    std::vector<size_t> tuneIdx;
    std::vector<size_t> validIdx;
};

/**
 * Random app-level split.
 *
 * @param tune_fraction Fraction of applications assigned to tuning.
 * @param max_tune_apps Cap on tuning applications (0 = no cap); this
 *        is the Fig. 4 training-set-diversity knob.
 */
FoldSplit appLevelSplit(const Dataset &data, double tune_fraction,
                        uint64_t seed, size_t max_tune_apps = 0);

/** Metrics from evaluating one trained model on one dataset. */
struct EvalResult
{
    ConfusionCounts confusion;
    double pgos = 0.0;
    double rsv = 0.0;
};

/**
 * Evaluate a model's offline predictions on a dataset (already in the
 * model's normalized feature space). RSV windows are per trace.
 */
EvalResult evaluateModel(const Model &model, const Dataset &data,
                         uint64_t rsv_window);

/**
 * Sensitivity calibration: raise the decision threshold to the
 * smallest candidate keeping RSV on the tuning set at or below
 * target_rsv (Sec. 6.3 trains to < 1.0%).
 */
void calibrateThreshold(Model &model, const Dataset &tune,
                        uint64_t rsv_window, double target_rsv = 0.01);

/** Builds a trained model from normalized tuning data. */
using ModelFactory = std::function<std::unique_ptr<Model>(
    const Dataset &tune, uint64_t fold_seed)>;

/** Cross-validation options. */
struct CrossValOptions
{
    int folds = 8;
    double tuneFraction = 0.8;
    size_t maxTuneApps = 0;    //!< 0 = all (Fig. 4 varies this)
    size_t maxTuneSamples = 0; //!< 0 = all (wall-time knob)
    uint64_t rsvWindow = 1600;
    bool calibrate = true;
    double targetRsv = 0.01;
    uint64_t seed = 7;
    /**
     * Non-empty: checkpoint each fold under this tag, so an
     * interrupted sweep resumes fold-by-fold. The tag must uniquely
     * identify the model factory and sweep point (the factory is a
     * closure the journal cannot hash); the dataset content and the
     * numeric options above are hashed automatically. Empty (the
     * default): folds are not checkpointed.
     */
    std::string checkpointTag;
};

/** Aggregated cross-validation statistics. */
struct CrossValSummary
{
    double pgosMean = 0.0;
    double pgosStd = 0.0;
    double rsvMean = 0.0;
    double rsvStd = 0.0;
    double accuracyMean = 0.0;
    std::vector<EvalResult> folds;
};

/**
 * Run k folds: app-level split, z-score scaling fit on tuning data,
 * model training, optional threshold calibration, validation metrics.
 */
CrossValSummary crossValidate(const Dataset &data,
                              const ModelFactory &factory,
                              const CrossValOptions &opts);

} // namespace psca

#endif // PSCA_CORE_CROSSVAL_HH
