/**
 * @file
 * The deployable firmware package: what a post-silicon update ships
 * (Sec. 3.2 — adaptation behaviour changes with "the ease of a
 * firmware update", pushed through ordinary datacenter infrastructure
 * management). A package carries, per telemetry mode, the compiled
 * branch-free program, the feature scaler, the record-column map, the
 * decision threshold, and the prediction granularity.
 *
 * VmPredictor executes a loaded package through the firmware VM, so
 * the controller's decisions come from exactly the bytes that would
 * be flashed — closing the loop from training to deployment.
 */

#ifndef PSCA_CORE_FIRMWARE_IMAGE_HH
#define PSCA_CORE_FIRMWARE_IMAGE_HH

#include <memory>
#include <string>

#include "core/controller.hh"
#include "ml/model.hh"
#include "uc/vm.hh"

namespace psca {

class BinaryWriter;

/** One mode's firmware slot. */
struct FirmwareSlot
{
    UcProgram program;
    FeatureScaler scaler;
    float threshold = 0.5f;
    /**
     * Int8/fixed-point model tables (quant::packPayload), present
     * when the package was built with `PSCA_UC_FIXED=1`. Empty in
     * float-only packages.
     */
    std::string quantPayload;
    /** Ops per inference under the int8 cost model (quant.hh). */
    uint32_t quantOps = 0;
};

/** A complete deployable adaptation firmware package. */
struct FirmwarePackage
{
    std::string name;
    uint64_t granularityInstr = 40000;
    /** Record columns feeding the model, in input order. */
    std::vector<uint32_t> columns;
    /** True when the uc runs the int8 tables instead of the VM. */
    bool fixedPoint = false;
    FirmwareSlot high;
    FirmwareSlot low;

    /** Serialize to a flashable file. */
    void save(const std::string &path) const;

    /**
     * Serialize the image (header through checksum trailer) into an
     * open writer. Used by save() and by multi-image transactional
     * publishes (ArtifactTxn), where several packages must appear
     * under their final names together or not at all.
     */
    void write(BinaryWriter &out) const;

    /** Load a package; fatal on malformed images. */
    static FirmwarePackage load(const std::string &path);

    /**
     * Non-fatal load: false on a missing, truncated, or corrupt
     * image, @p out untouched on failure. The serve rollback ring
     * uses this to walk back to the newest verifiable version
     * instead of aborting the process.
     */
    static bool tryLoad(const std::string &path, FirmwarePackage &out);
};

/**
 * Build a package from a trained dual predictor by compiling both
 * models (supported model classes: MLP, random forest, logistic
 * regression).
 */
FirmwarePackage packageFromDual(const DualModelPredictor &predictor,
                                const std::vector<size_t> &columns);

/** Runs a loaded firmware package through the VM. */
class VmPredictor : public GatePredictor
{
  public:
    explicit VmPredictor(FirmwarePackage package);

    uint64_t granularity() const override
    {
        return package_.granularityInstr;
    }
    bool decide(const std::vector<const float *> &sub_rows,
                const std::vector<float> &sub_cycles,
                CoreMode mode) override;
    uint32_t opsPerInference() const override;
    std::string name() const override { return package_.name; }

    /** Cumulative microcontroller ops actually executed. */
    uint64_t vmOpsExecuted() const { return vm_.totalOps(); }

  private:
    FirmwarePackage package_;
    UcVm vm_;
    /** Deserialized int8 scorers when the package is fixed-point. */
    std::unique_ptr<Model> quantHigh_;
    std::unique_ptr<Model> quantLow_;
};

} // namespace psca

#endif // PSCA_CORE_FIRMWARE_IMAGE_HH
