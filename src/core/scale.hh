/**
 * @file
 * Experiment scale knobs. The paper's corpora (2,648 traces averaging
 * 5M instructions, 571 SimPoints of 200M instructions) are reduced by
 * default so the full bench suite runs in minutes on one core; set
 * PSCA_SCALE=full for long runs or PSCA_SCALE=quick for smoke tests.
 * The structure (app counts, category mix, label pipeline) never
 * changes — only trace lengths, trace counts, fold counts, and
 * training epochs.
 */

#ifndef PSCA_CORE_SCALE_HH
#define PSCA_CORE_SCALE_HH

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/env.hh"

namespace psca {

/** Scale parameters shared by tests and benches. */
struct ScaleConfig
{
    int hdtrApps = 593;
    int hdtrTracesPerApp = 2;      //!< cap (paper averages ~4.5)
    uint64_t hdtrTraceLen = 700000;
    uint64_t specTraceLen = 1200000;
    int specTracesPerWorkload = 1; //!< SimPoints per workload
    int pfApps = 48;               //!< apps in the 936-counter pass
    uint64_t pfTraceLen = 150000;
    int folds = 8;                 //!< paper: 32
    int mlpEpochs = 12;
    size_t maxTuneSamples = 6000;  //!< 0 = unlimited

    /** Resolve from $PSCA_SCALE (quick | default | full). */
    static ScaleConfig
    fromEnv()
    {
        const std::string scale = env::enumOr(
            "PSCA_SCALE", {"quick", "default", "full"}, "default");
        ScaleConfig cfg;
        if (scale == "quick") {
            cfg.hdtrApps = 140;
            cfg.hdtrTracesPerApp = 1;
            cfg.hdtrTraceLen = 400000;
            cfg.specTraceLen = 600000;
            cfg.pfApps = 24;
            cfg.pfTraceLen = 100000;
            cfg.folds = 4;
            cfg.mlpEpochs = 8;
            cfg.maxTuneSamples = 3000;
        } else if (scale == "full") {
            cfg.hdtrTracesPerApp = 4;
            cfg.hdtrTraceLen = 2000000;
            cfg.specTraceLen = 3000000;
            cfg.specTracesPerWorkload = 3;
            cfg.pfApps = 96;
            cfg.pfTraceLen = 300000;
            cfg.folds = 32;
            cfg.mlpEpochs = 30;
            cfg.maxTuneSamples = 0;
        }
        return cfg;
    }
};

} // namespace psca

#endif // PSCA_CORE_SCALE_HH
