#include "core/metrics.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace psca {

void
ConfusionCounts::exportTo(obs::StatRegistry &reg,
                          const std::string &prefix) const
{
    obs::Counter &tp = reg.counter(prefix + ".tp");
    obs::Counter &fp = reg.counter(prefix + ".fp");
    obs::Counter &tn = reg.counter(prefix + ".tn");
    obs::Counter &fn = reg.counter(prefix + ".fn");
    tp.add(truePositive);
    fp.add(falsePositive);
    tn.add(trueNegative);
    fn.add(falseNegative);

    // Derived gauges from the registry's running totals, not just
    // this report, so repeated exports (one per trace) aggregate.
    ConfusionCounts cumulative;
    cumulative.truePositive = tp.value();
    cumulative.falsePositive = fp.value();
    cumulative.trueNegative = tn.value();
    cumulative.falseNegative = fn.value();
    reg.gauge(prefix + ".pgos").set(cumulative.pgos());
    reg.gauge(prefix + ".accuracy").set(cumulative.accuracy());
}

double
rsvForTrace(const std::vector<uint8_t> &predictions,
            const std::vector<uint8_t> &labels, uint64_t window)
{
    PSCA_ASSERT(predictions.size() == labels.size(),
                "prediction/label length mismatch");
    const size_t n = predictions.size();
    if (n == 0)
        return 0.0;
    const size_t w = static_cast<size_t>(
        std::min<uint64_t>(window, n));

    // Prefix sums of the false-positive indicator
    // (1{pred != label} * (1 - label), Eq. 2).
    std::vector<uint32_t> prefix(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
        const bool fp = predictions[i] != labels[i] && labels[i] == 0;
        prefix[i + 1] = prefix[i] + (fp ? 1 : 0);
    }

    size_t violating = 0;
    size_t windows = 0;
    for (size_t start = 0; start + w <= n; ++start) {
        const double expectation =
            static_cast<double>(prefix[start + w] - prefix[start]) /
            static_cast<double>(w);
        violating += expectation > 0.5 ? 1 : 0;
        ++windows;
    }
    return windows ? static_cast<double>(violating) /
            static_cast<double>(windows)
                   : 0.0;
}

double
rsvOverTraces(const std::vector<std::vector<uint8_t>> &predictions,
              const std::vector<std::vector<uint8_t>> &labels,
              uint64_t window)
{
    PSCA_ASSERT(predictions.size() == labels.size(),
                "trace count mismatch");
    if (predictions.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t t = 0; t < predictions.size(); ++t)
        sum += rsvForTrace(predictions[t], labels[t], window);
    return sum / static_cast<double>(predictions.size());
}

} // namespace psca
