/**
 * @file
 * Watchdog supervision and resumable process lifecycle around the
 * journal layer (common/journal.hh). Every bench, example, and CLI
 * main body runs inside runner::guardedMain(), which provides:
 *
 *  - Signal-driven checkpointing: the first SIGINT/SIGTERM sets the
 *    cooperative stop flag (requestStop()); checkpointed regions
 *    drain their in-flight units, journal them, and unwind with
 *    RunInterrupted, so the run report still flushes and the process
 *    exits with kResumableExit. A second signal force-exits
 *    immediately (still kResumableExit — the journal is append-safe
 *    at any instant).
 *
 *  - A run deadline (PSCA_DEADLINE_S): a watchdog thread requests a
 *    cooperative stop when the budget expires and force-exits after a
 *    grace period (PSCA_DEADLINE_GRACE_S, default 30 s) if the run
 *    has not unwound by itself. CI timeouts thus become planned
 *    checkpoints instead of lost work.
 *
 *  - Per-unit soft timeouts (PSCA_UNIT_TIMEOUT_S): the watchdog
 *    polls the journal's in-flight table and warns (once per unit,
 *    counted as runner.soft_timeouts) about units running past the
 *    threshold. Advisory only — deterministic work must never be
 *    killed mid-unit, and the bounded retry/requeue inside
 *    runCheckpointed() already handles failing units.
 *
 * Exit-code contract: 0 = complete; kResumableExit (75, the sysexits
 * EX_TEMPFAIL convention) = interrupted but resumable — re-running
 * the same command continues from the journal; anything else = error.
 */

#ifndef PSCA_CORE_RUNNER_HH
#define PSCA_CORE_RUNNER_HH

#include <sys/types.h>

#include <atomic>
#include <functional>

namespace psca {
namespace runner {

/**
 * Exit status of an interrupted-but-resumable run (sysexits
 * EX_TEMPFAIL): the journal holds every completed unit, re-running
 * the same command resumes.
 */
constexpr int kResumableExit = 75;

/**
 * Run @p body under signal handlers and the watchdog. Returns the
 * body's return value, or kResumableExit when the body unwound with
 * RunInterrupted (stop request, deadline). Other exceptions are
 * reported and return 1. Nested calls run the body directly.
 */
int guardedMain(const std::function<int()> &body);

/**
 * Fork-and-respawn supervisor for crash-resume (DESIGN.md §13).
 * Calls @p spawn to start one child process, waits for it, and while
 * it dies abnormally (killed by a signal) or exits with
 * kResumableExit — both of which the journal makes resumable —
 * respawns it, up to @p max_restarts times, counting
 * runner.supervisor_restarts. A clean exit (0) or a hard error (any
 * other code) ends supervision immediately with that code; so does a
 * pending stop request (SIGINT on the supervisor itself).
 *
 * @p current_child, when given, always holds the pid of the running
 * child (or -1 between children) — chaos harnesses use it to aim a
 * SIGKILL at whatever incarnation is currently alive.
 */
int supervise(const std::function<pid_t()> &spawn, int max_restarts,
              const char *what,
              std::atomic<pid_t> *current_child = nullptr);

} // namespace runner
} // namespace psca

#endif // PSCA_CORE_RUNNER_HH
