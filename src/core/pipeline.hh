/**
 * @file
 * End-to-end training pipeline: the standard counter plans (PF-ranked
 * and the Eyerman-style expert set used by CHARSTAR), dual-mode model
 * training with sensitivity calibration, the five evaluation
 * predictors of Sec. 7 (SRCH at 10M and 40k, the CHARSTAR-equivalent
 * MLP at 20k, Best MLP at 50k, Best RF at 40k), and the post-silicon
 * customization flows of Sec. 7.3 (SLA relabel-and-retrain and
 * app-specific forest merging).
 */

#ifndef PSCA_CORE_PIPELINE_HH
#define PSCA_CORE_PIPELINE_HH

#include <memory>

#include "core/builder.hh"
#include "core/controller.hh"
#include "core/crossval.hh"
#include "core/pf_selection.hh"
#include "core/scale.hh"
#include "ml/mlp.hh"
#include "ml/tree.hh"

namespace psca {

/** The 8 expert counters used by the CHARSTAR-equivalent baseline. */
std::vector<uint16_t> charstarCounterIds();

/**
 * Counter layout of the main recordings: the PF ranking's top
 * counters followed by any expert counters not already present.
 */
struct CounterPlan
{
    /** Registry ids recorded per interval, in column order. */
    std::vector<uint16_t> recordIds;
    /** PF-ranked registry ids (subset of recordIds). */
    std::vector<uint16_t> pfRanked;

    /** Columns of the top-r PF counters. */
    std::vector<size_t> pfColumns(size_t r) const;
    /** Columns of the CHARSTAR expert counters. */
    std::vector<size_t> charstarColumns() const;
    /** Column of one registry id (fatal if absent). */
    size_t columnOf(uint16_t id) const;
};

/** Build the plan from a PF ranking. */
CounterPlan makeCounterPlan(const std::vector<uint16_t> &pf_ranked);

/**
 * Run (or load from cache) the full 936-counter PF recording pass on
 * a subset of HDTR applications and return the ranked counters.
 */
std::vector<uint16_t> runPfSelectionPass(const ScaleConfig &scale,
                                         const PfConfig &pf_cfg);

/** Everything the standard experiments need from one setup call. */
struct ExperimentContext
{
    ScaleConfig scale;
    BuildConfig build;           //!< recording config (plan counters)
    CounterPlan plan;
    SlaSpec sla;
    std::vector<TraceRecord> hdtr;
    std::vector<TraceRecord> spec;
    std::vector<SpecApp> specApps;
    std::vector<Workload> specWorkloadsList; //!< parallel to spec
};

/**
 * One-stop setup: PF pass, counter plan, HDTR + SPEC recordings (all
 * disk-cached). Every bench binary starts here.
 *
 * @param need_spec Also record the SPEC test corpus.
 */
ExperimentContext setupExperiment(const ScaleConfig &scale,
                                  bool need_spec = true);

/** Options for dual-mode model training. */
struct DualTrainOptions
{
    uint64_t granularityInstr = 40000;
    double pSla = 0.90;
    std::vector<size_t> columns;
    bool calibrate = true;
    double targetRsv = 0.01;
    uint64_t rsvWindow = 1600;
    uint64_t seed = 1;
};

/** Train one scaler+model pair per telemetry mode. */
struct TrainedDual
{
    ScaledModel high;
    ScaledModel low;
};

TrainedDual trainDual(const std::vector<TraceRecord> &records,
                      const BuildConfig &build,
                      const DualTrainOptions &opts,
                      const ModelFactory &factory);

/**
 * The standard RandomForest ModelFactory (@p trees × depth @p depth)
 * shared by the Best-RF pipeline, the CLI trainer, and the serve
 * layer's background retrains.
 */
ModelFactory forestFactory(int trees, int depth);

/** Named predictor bundle for the evaluation benches. */
struct NamedPredictor
{
    std::string name;
    std::unique_ptr<GatePredictor> predictor;
};

/** Best RF (8 trees depth 8, PF-12 counters, 40k interval). */
NamedPredictor makeBestRf(const ExperimentContext &ctx, double p_sla,
                          uint64_t seed = 11);

/** Best MLP (3 layers 8/8/4, PF-12 counters, 50k interval). */
NamedPredictor makeBestMlp(const ExperimentContext &ctx, double p_sla,
                           uint64_t seed = 12);

/** CHARSTAR-equivalent (1 layer, 10 filters, expert-8, 20k). */
NamedPredictor makeCharstar(const ExperimentContext &ctx, double p_sla,
                            uint64_t seed = 13);

/** SRCH (PF-15 counters, 10-bucket histograms) at a granularity. */
NamedPredictor makeSrch(const ExperimentContext &ctx, double p_sla,
                        uint64_t granularity, uint64_t seed = 14);

/** Aggregate closed-loop results over a set of traces. */
struct SuiteResult
{
    double ppwGainPct = 0.0;
    double rsvPct = 0.0;
    double pgosPct = 0.0;
    double perfRelativePct = 0.0;
    double lowResidencyPct = 0.0;
    std::vector<ClosedLoopResult> perTrace;
};

/**
 * Evaluate one predictor closed-loop across traces; aggregates are
 * unweighted means across traces, as in the paper's suite averages.
 */
SuiteResult evaluateSuite(const ExperimentContext &ctx,
                          GatePredictor &predictor,
                          const std::vector<size_t> &trace_indices,
                          double p_sla);

/**
 * Post-silicon app-specific retraining (Sec. 7.3): combine a 4-tree
 * forest trained on HDTR with a 4-tree forest trained on the target
 * application's other workloads.
 */
NamedPredictor makeAppSpecificRf(const ExperimentContext &ctx,
                                 const std::vector<TraceRecord> &app,
                                 double p_sla, uint64_t seed = 15);

} // namespace psca

#endif // PSCA_CORE_PIPELINE_HH
