/**
 * @file
 * Fail-safe guardrail (Sec. 3.1 mentions that the production design
 * carries one; the paper evaluates without it so that model quality
 * is visible — we implement it as an optional wrapper so both
 * configurations can be measured).
 *
 * The guardrail is deliberately model-free: it compares the IPC
 * observed while gated against a reactive estimate of what
 * high-performance mode would deliver (the IPC last seen in high
 * mode, decayed), and when the shortfall persists it forces
 * high-performance mode for a hold-off period regardless of the
 * model's predictions. This bounds the damage of any blindspot at
 * the cost of some PPW (the reactive estimate is itself imperfect).
 */

#ifndef PSCA_CORE_GUARDRAIL_HH
#define PSCA_CORE_GUARDRAIL_HH

#include <memory>

#include "core/controller.hh"

namespace psca {

/** Guardrail tuning. */
struct GuardrailConfig
{
    /** Trip when gated IPC falls below this fraction of the
     *  high-mode reference estimate. */
    double tripRatio = 0.88;
    /** Consecutive violating blocks before tripping. */
    int patience = 1;
    /** Blocks to force high-performance mode after a trip. */
    int holdoffBlocks = 6;
    /** Decay of the high-mode IPC reference per gated block. */
    double referenceDecay = 0.995;
};

/**
 * Wraps any GatePredictor with the fail-safe. The wrapper observes
 * per-block IPC through the sub-interval cycles the controller
 * already forwards, maintains the reactive high-mode reference, and
 * vetoes gate decisions while tripped.
 */
class GuardrailedPredictor : public GatePredictor
{
  public:
    GuardrailedPredictor(GatePredictor &inner,
                         const GuardrailConfig &cfg = GuardrailConfig{});

    uint64_t granularity() const override;
    bool decide(const std::vector<const float *> &sub_rows,
                const std::vector<float> &sub_cycles,
                CoreMode mode) override;
    uint32_t opsPerInference() const override;
    std::string name() const override;

    /** Times the guardrail forced high-performance mode. */
    uint64_t trips() const { return trips_; }

    /**
     * The wrapped model's raw decision from the most recent decide()
     * call, before any guardrail veto. The serve loop's A/B scorer
     * compares model quality (active raw vs shadow raw) without
     * re-implementing the guardrail outside this class.
     */
    bool lastInnerDecision() const { return lastInner_; }

  private:
    GatePredictor &inner_;
    GuardrailConfig cfg_;
    double highIpcRef_ = 0.0;
    int violationStreak_ = 0;
    int holdoffRemaining_ = 0;
    uint64_t trips_ = 0;
    bool lastInner_ = false;
};

} // namespace psca

#endif // PSCA_CORE_GUARDRAIL_HH
