#include "core/pf_selection.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/journal.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "math/stats.hh"

namespace psca {

namespace {

/**
 * Everything screen 1's per-record flag rows depend on: the selected
 * mode's delta matrix of every record plus the screening threshold.
 */
uint64_t
screenConfigHash(const std::vector<TraceRecord> &records,
                 const PfConfig &cfg, CoreMode mode)
{
    uint64_t h = kFnv1aBasis;
    const uint64_t thresh =
        static_cast<uint64_t>(cfg.zeroFractionPerTrace * 1e9);
    h = fnv1aUpdate(h, &thresh, sizeof(thresh));
    const uint8_t m = static_cast<uint8_t>(mode);
    h = fnv1aUpdate(h, &m, sizeof(m));
    for (const auto &r : records) {
        const auto &deltas =
            mode == CoreMode::LowPower ? r.deltaLow : r.deltaHigh;
        h = fnv1aUpdate(h, &r.numCounters, sizeof(r.numCounters));
        h = fnv1aUpdate(h, deltas.data(),
                        deltas.size() * sizeof(float));
    }
    return h;
}

} // namespace

Matrix
leadingEigenvectors(const Matrix &sym, size_t count, int iterations)
{
    const size_t n = sym.rows();
    Matrix work = sym;
    Matrix vecs(count, n);
    Rng rng(0x91e17ULL);

    for (size_t k = 0; k < count; ++k) {
        std::vector<double> v(n);
        for (auto &x : v)
            x = rng.gaussian();
        double eigenvalue = 0.0;
        for (int it = 0; it < iterations; ++it) {
            std::vector<double> next = work.multiply(v);
            double norm = 0.0;
            for (double x : next)
                norm += x * x;
            norm = std::sqrt(norm);
            if (norm < 1e-300)
                break;
            for (auto &x : next)
                x /= norm;
            eigenvalue = norm;
            v.swap(next);
        }
        for (size_t j = 0; j < n; ++j)
            vecs(k, j) = v[j];
        // Deflate: work -= lambda * v v^T.
        for (size_t i = 0; i < n; ++i) {
            const double vi = eigenvalue * v[i];
            for (size_t j = 0; j < n; ++j)
                work(i, j) -= vi * v[j];
        }
    }
    return vecs;
}

PfResult
pfCounterSelection(const std::vector<TraceRecord> &records,
                   const PfConfig &cfg, CoreMode mode)
{
    PfResult result;
    PSCA_ASSERT(!records.empty(), "PF selection needs records");
    const size_t width = records.front().numCounters;
    const bool low = mode == CoreMode::LowPower;

    // ---- Screen 1: low-activity counters ------------------------------
    // Scan each record independently (a 0/1 flag per counter), then
    // sum the per-record flag rows in record order; integer sums make
    // the merge exact at any thread count. Each record's flag row is
    // checkpointed, so an interrupted PF selection resumes mid-screen.
    std::vector<std::vector<uint32_t>> flags_per_record =
        checkpointedMap<std::vector<uint32_t>>(
            "pf.screen1", screenConfigHash(records, cfg, mode),
            records.size(),
            [](BinaryWriter &w, const std::vector<uint32_t> &flags) {
                w.putVector(flags);
            },
            [](BinaryReader &in) {
                return in.getVector<uint32_t>();
            },
            [&](size_t r) {
                const auto &record = records[r];
                std::vector<uint32_t> flags(width, 0);
                const size_t n = record.numIntervals();
                if (n == 0)
                    return flags;
                std::vector<uint32_t> zeros(width, 0);
                for (size_t t = 0; t < n; ++t) {
                    const float *row = low ? record.rowLow(t)
                                           : record.rowHigh(t);
                    for (size_t j = 0; j < width; ++j)
                        zeros[j] += row[j] == 0.0f ? 1 : 0;
                }
                for (size_t j = 0; j < width; ++j) {
                    if (static_cast<double>(zeros[j]) >
                        cfg.zeroFractionPerTrace *
                            static_cast<double>(n))
                        flags[j] = 1;
                }
                return flags;
            },
            DistMode::Distributed);
    std::vector<uint32_t> flagged(width, 0);
    for (const auto &flags : flags_per_record)
        for (size_t j = 0; j < width; ++j)
            flagged[j] += flags[j];
    std::vector<uint16_t> active;
    for (size_t j = 0; j < width; ++j) {
        if (static_cast<double>(flagged[j]) <=
            cfg.flaggedTraceFraction *
                static_cast<double>(records.size()))
            active.push_back(static_cast<uint16_t>(j));
    }
    result.afterActivityScreen = active.size();

    // ---- Build the cycle-normalized sample matrix ----------------------
    size_t total_intervals = 0;
    for (const auto &record : records)
        total_intervals += record.numIntervals();
    const size_t stride = std::max<size_t>(
        1, total_intervals / cfg.maxSamples);

    std::vector<std::vector<double>> samples; // per active counter
    samples.resize(active.size());
    size_t global_t = 0;
    for (const auto &record : records) {
        for (size_t t = 0; t < record.numIntervals();
             ++t, ++global_t) {
            if (global_t % stride != 0)
                continue;
            const float *row = low ? record.rowLow(t)
                                   : record.rowHigh(t);
            const double cyc = low ? record.cyclesLow[t]
                                   : record.cyclesHigh[t];
            const double inv = cyc > 0.0 ? 1.0 / cyc : 0.0;
            for (size_t j = 0; j < active.size(); ++j)
                samples[j].push_back(row[active[j]] * inv);
        }
    }

    // ---- Screen 2: cull the bottom half by standard deviation ----------
    std::vector<double> sigma(active.size());
    for (size_t j = 0; j < active.size(); ++j)
        sigma[j] = stddev(samples[j]);
    std::vector<size_t> order(active.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return sigma[a] > sigma[b]; });
    const size_t keep = std::max<size_t>(
        cfg.numToSelect,
        static_cast<size_t>(static_cast<double>(active.size()) *
                            (1.0 - cfg.stdDevCullFraction)));
    order.resize(std::min(keep, order.size()));

    std::vector<uint16_t> survivors;
    std::vector<std::vector<double>> kept;
    for (size_t idx : order) {
        survivors.push_back(active[idx]);
        kept.push_back(std::move(samples[idx]));
    }
    result.survivors = survivors;

    // ---- Standardize rows (covariance -> correlation scale) ------------
    const size_t t_count = kept.empty() ? 0 : kept.front().size();
    for (size_t j = 0; j < kept.size(); ++j) {
        const double m = mean(kept[j]);
        const double s = stddev(kept[j]);
        const double inv = s > 1e-18 ? 1.0 / s : 0.0;
        for (auto &v : kept[j])
            v = (v - m) * inv;
    }

    // ---- Alg. 1: iterative second-eigenvector group extraction ---------
    std::vector<size_t> remaining(kept.size());
    std::iota(remaining.begin(), remaining.end(), 0);

    while (result.selected.size() < cfg.numToSelect &&
           remaining.size() > 1) {
        const size_t n = remaining.size();
        Matrix data(n, t_count);
        for (size_t i = 0; i < n; ++i)
            for (size_t t = 0; t < t_count; ++t)
                data(i, t) = kept[remaining[i]][t];
        const Matrix cov = rowCovariance(data);
        const Matrix vecs = leadingEigenvectors(cov, 2);

        // Pick the strongest coefficient of the second eigenvector.
        size_t best = 0;
        double best_mag = -1.0;
        for (size_t i = 0; i < n; ++i) {
            const double mag = std::abs(vecs(1, i));
            if (mag > best_mag) {
                best_mag = mag;
                best = i;
            }
        }
        result.selected.push_back(survivors[remaining[best]]);

        // Remove the whole interchangeable group: large second-
        // eigenvector coefficients relative to the pick (Alg. 1), or
        // near-perfect direct correlation with the pick (duplicate
        // event encodings create degenerate eigenspaces that mix
        // groups, so the spectral test alone can miss exact twins;
        // rows are standardized, so cov == correlation here).
        const double var_best = std::max(cov(best, best), 1e-300);
        std::vector<size_t> next;
        for (size_t i = 0; i < n; ++i) {
            if (i == best)
                continue;
            const double rel = best_mag > 1e-300
                ? std::abs(vecs(1, i)) / best_mag
                : 0.0;
            const double corr = std::abs(cov(best, i)) /
                std::sqrt(var_best * std::max(cov(i, i), 1e-300));
            if (rel <= cfg.similarityThreshold && corr < 0.98)
                next.push_back(remaining[i]);
        }
        remaining.swap(next);
    }
    // Top up with any ungrouped leftovers (these were never judged
    // redundant to a pick), never with removed group members.
    for (size_t i : remaining) {
        if (result.selected.size() >= cfg.numToSelect)
            break;
        result.selected.push_back(survivors[i]);
    }
    return result;
}

} // namespace psca
