#include "core/pipeline.hh"

#include <algorithm>

#include "common/parallel.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"

namespace psca {

std::vector<uint16_t>
charstarCounterIds()
{
    // The Eyerman-et-al.-style expert counter set of Sec. 7: three
    // CHARSTAR counters are tile-gating specific, so the paper (and
    // we) substitute general CPI-stack counters.
    static const char *const names[] = {
        "Branch Mispredictions",
        "Instruction Cache Misses",
        "L1 Data Cache Misses",
        "L2 Cache Misses",
        "Instructions Retired", // IPC once cycle-normalized
        "I-TLB Misses",
        "D-TLB Misses",
        "Stall Count",
    };
    const auto &reg = CounterRegistry::instance();
    std::vector<uint16_t> ids;
    for (const char *name : names)
        ids.push_back(reg.indexOf(name));
    return ids;
}

std::vector<size_t>
CounterPlan::pfColumns(size_t r) const
{
    PSCA_ASSERT(r <= pfRanked.size(), "not enough PF counters ranked");
    std::vector<size_t> cols;
    for (size_t i = 0; i < r; ++i)
        cols.push_back(columnOf(pfRanked[i]));
    return cols;
}

std::vector<size_t>
CounterPlan::charstarColumns() const
{
    std::vector<size_t> cols;
    for (uint16_t id : charstarCounterIds())
        cols.push_back(columnOf(id));
    return cols;
}

size_t
CounterPlan::columnOf(uint16_t id) const
{
    for (size_t j = 0; j < recordIds.size(); ++j)
        if (recordIds[j] == id)
            return j;
    fatal("counter id ", id, " not in the record plan");
}

CounterPlan
makeCounterPlan(const std::vector<uint16_t> &pf_ranked)
{
    CounterPlan plan;
    plan.pfRanked = pf_ranked;
    plan.recordIds = pf_ranked;
    for (uint16_t id : charstarCounterIds()) {
        if (std::find(plan.recordIds.begin(), plan.recordIds.end(),
                      id) == plan.recordIds.end())
            plan.recordIds.push_back(id);
    }
    return plan;
}

std::vector<uint16_t>
runPfSelectionPass(const ScaleConfig &scale, const PfConfig &pf_cfg)
{
    obs::ScopedPhase phase("pf_selection");
    // Record all 936 counters on a category-diverse app subset.
    const auto apps = buildHdtrApps(scale.pfApps);
    std::vector<Workload> workloads;
    std::vector<uint32_t> app_ids;
    for (size_t a = 0; a < apps.size(); ++a) {
        Workload w;
        w.genome = apps[a];
        w.inputSeed = 1;
        w.traceIndex = 0;
        w.lengthInstr = scale.pfTraceLen;
        w.name = apps[a].name + ".pf";
        workloads.push_back(std::move(w));
        app_ids.push_back(static_cast<uint32_t>(a));
    }

    BuildConfig cfg;
    cfg.counterIds.resize(kNumTelemetryCounters);
    for (size_t i = 0; i < kNumTelemetryCounters; ++i)
        cfg.counterIds[i] = static_cast<uint16_t>(i);

    const auto records = recordCorpus(workloads, app_ids, cfg, "pf936");
    const PfResult result =
        pfCounterSelection(records, pf_cfg, CoreMode::LowPower);
    inform("PF selection: ", kNumTelemetryCounters, " -> ",
           result.afterActivityScreen, " (activity) -> ",
           result.survivors.size(), " (stddev) -> ranked ",
           result.selected.size());
    return result.selected;
}

ExperimentContext
setupExperiment(const ScaleConfig &scale, bool need_spec)
{
    obs::ScopedPhase phase("setup_experiment");
    inform("experiment setup (", ThreadPool::instance().numThreads(),
           " threads; set PSCA_THREADS to override)");
    ExperimentContext ctx;
    ctx.scale = scale;

    PfConfig pf_cfg;
    ctx.plan = makeCounterPlan(runPfSelectionPass(scale, pf_cfg));

    ctx.build.counterIds = ctx.plan.recordIds;

    // HDTR corpus.
    const auto apps = buildHdtrApps(scale.hdtrApps);
    std::vector<Workload> workloads;
    std::vector<uint32_t> app_ids;
    for (size_t a = 0; a < apps.size(); ++a) {
        const int traces = std::min(hdtrTraceCount(apps[a]),
                                    scale.hdtrTracesPerApp);
        for (int t = 0; t < traces; ++t) {
            Workload w;
            w.genome = apps[a];
            w.inputSeed = 1;
            w.traceIndex = static_cast<uint64_t>(t);
            w.lengthInstr = scale.hdtrTraceLen;
            w.name = apps[a].name + ".t" + std::to_string(t);
            workloads.push_back(std::move(w));
            app_ids.push_back(static_cast<uint32_t>(a));
        }
    }
    ctx.hdtr = recordCorpus(workloads, app_ids, ctx.build, "hdtr");

    if (need_spec) {
        ctx.specApps = buildSpecApps();
        std::vector<uint32_t> spec_app_ids;
        for (size_t a = 0; a < ctx.specApps.size(); ++a) {
            auto traces = specWorkloads(ctx.specApps[a],
                                        scale.specTraceLen,
                                        scale.specTracesPerWorkload);
            for (auto &w : traces) {
                ctx.specWorkloadsList.push_back(w);
                spec_app_ids.push_back(static_cast<uint32_t>(a));
            }
        }
        ctx.spec = recordCorpus(ctx.specWorkloadsList, spec_app_ids,
                                ctx.build, "spec");
    }
    return ctx;
}

TrainedDual
trainDual(const std::vector<TraceRecord> &records,
          const BuildConfig &build, const DualTrainOptions &opts,
          const ModelFactory &factory)
{
    obs::ScopedPhase phase("train_dual");
    TrainedDual dual;
    for (int m = 0; m < 2; ++m) {
        const CoreMode mode =
            m == 0 ? CoreMode::HighPerf : CoreMode::LowPower;
        AssemblyOptions asm_opts;
        asm_opts.granularityInstr = opts.granularityInstr;
        asm_opts.pSla = opts.pSla;
        asm_opts.telemetryMode = mode;
        asm_opts.columns = opts.columns;
        const Dataset raw =
            assembleDataset(records, asm_opts, build.intervalInstr);

        ScaledModel slot;
        {
            obs::ScopedPhase fit_phase("scaler_fit");
            slot.scaler = FeatureScaler::fit(raw);
        }
        const Dataset scaled = slot.scaler.apply(raw);
        {
            obs::ScopedPhase train_phase("model_training");
            slot.model = factory(
                scaled,
                mixSeeds(opts.seed, static_cast<uint64_t>(m) + 1));
        }
        if (opts.calibrate) {
            obs::ScopedPhase cal_phase("threshold_calibration");
            calibrateThreshold(*slot.model, scaled, opts.rsvWindow,
                               opts.targetRsv);
        }
        (m == 0 ? dual.high : dual.low) = std::move(slot);
    }
    return dual;
}

namespace {

/** RSV window for a granularity at this core's peak throughput. */
uint64_t
rsvWindowFor(const ExperimentContext &ctx, uint64_t granularity)
{
    const double peak_ips = ctx.build.core.clockGhz * 1e9 *
        static_cast<double>(ctx.build.core.retireWidth);
    return ctx.sla.windowPredictions(peak_ips, granularity);
}

NamedPredictor
wrapDual(std::string name, TrainedDual dual,
         std::vector<size_t> columns, uint64_t granularity)
{
    NamedPredictor np;
    np.name = name;
    np.predictor = std::make_unique<DualModelPredictor>(
        std::move(dual.high), std::move(dual.low), std::move(columns),
        granularity, std::move(name));
    return np;
}

} // namespace

ModelFactory
forestFactory(int trees, int depth)
{
    return [trees, depth](const Dataset &tune,
                          uint64_t s) -> std::unique_ptr<Model> {
        ForestConfig fc;
        fc.numTrees = trees;
        fc.maxDepth = depth;
        fc.seed = s;
        return std::make_unique<RandomForest>(tune, fc);
    };
}

NamedPredictor
makeBestRf(const ExperimentContext &ctx, double p_sla, uint64_t seed)
{
    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.pSla = p_sla;
    opts.columns = ctx.plan.pfColumns(12);
    opts.rsvWindow = rsvWindowFor(ctx, opts.granularityInstr);
    opts.seed = seed;

    TrainedDual dual =
        trainDual(ctx.hdtr, ctx.build, opts, forestFactory(8, 8));
    return wrapDual("Best RF", std::move(dual), opts.columns,
                    opts.granularityInstr);
}

NamedPredictor
makeBestMlp(const ExperimentContext &ctx, double p_sla, uint64_t seed)
{
    DualTrainOptions opts;
    opts.granularityInstr = 50000;
    opts.pSla = p_sla;
    opts.columns = ctx.plan.pfColumns(12);
    opts.rsvWindow = rsvWindowFor(ctx, opts.granularityInstr);
    opts.seed = seed;

    const int epochs = ctx.scale.mlpEpochs;
    TrainedDual dual = trainDual(
        ctx.hdtr, ctx.build, opts,
        [epochs](const Dataset &tune,
                 uint64_t s) -> std::unique_ptr<Model> {
            MlpConfig mc;
            mc.hiddenLayers = {8, 8, 4};
            mc.epochs = epochs;
            mc.seed = s;
            return trainMlp(tune, mc);
        });
    return wrapDual("Best MLP", std::move(dual), opts.columns,
                    opts.granularityInstr);
}

NamedPredictor
makeCharstar(const ExperimentContext &ctx, double p_sla, uint64_t seed)
{
    DualTrainOptions opts;
    opts.granularityInstr = 20000;
    opts.pSla = p_sla;
    opts.columns = ctx.plan.charstarColumns();
    opts.rsvWindow = rsvWindowFor(ctx, opts.granularityInstr);
    opts.seed = seed;
    // CHARSTAR predates the blindspot work: no sensitivity
    // calibration beyond the default threshold.
    opts.calibrate = false;

    const int epochs = ctx.scale.mlpEpochs;
    TrainedDual dual = trainDual(
        ctx.hdtr, ctx.build, opts,
        [epochs](const Dataset &tune,
                 uint64_t s) -> std::unique_ptr<Model> {
            MlpConfig mc;
            mc.hiddenLayers = {10};
            mc.epochs = epochs;
            mc.seed = s;
            return trainMlp(tune, mc);
        });
    return wrapDual("CHARSTAR MLP", std::move(dual), opts.columns,
                    opts.granularityInstr);
}

NamedPredictor
makeSrch(const ExperimentContext &ctx, double p_sla,
         uint64_t granularity, uint64_t seed)
{
    const std::vector<size_t> columns = ctx.plan.pfColumns(
        std::min<size_t>(15, ctx.plan.pfRanked.size()));
    const int window = static_cast<int>(
        granularity / ctx.build.intervalInstr);

    std::shared_ptr<SrchModel> models[2];
    for (int m = 0; m < 2; ++m) {
        const CoreMode mode =
            m == 0 ? CoreMode::HighPerf : CoreMode::LowPower;
        AssemblyOptions asm_opts;
        asm_opts.granularityInstr = ctx.build.intervalInstr;
        asm_opts.pSla = p_sla;
        asm_opts.telemetryMode = mode;
        asm_opts.columns = columns;
        const Dataset per_interval =
            assembleDataset(ctx.hdtr, asm_opts,
                            ctx.build.intervalInstr);
        LogRegConfig lr;
        models[m] =
            std::make_shared<SrchModel>(per_interval, window, lr);
        (void)seed;
    }

    NamedPredictor np;
    np.name = "SRCH@" + std::to_string(granularity / 1000) + "k";
    np.predictor = std::make_unique<SrchPredictor>(
        models[0], models[1], columns, granularity, np.name);
    return np;
}

SuiteResult
evaluateSuite(const ExperimentContext &ctx, GatePredictor &predictor,
              const std::vector<size_t> &trace_indices, double p_sla)
{
    obs::ScopedPhase phase("evaluate_suite");
    SuiteResult suite;
    SlaSpec sla = ctx.sla;
    sla.pSla = p_sla;

    double ppw = 0.0, rsv = 0.0, pgos = 0.0, perf = 0.0, res = 0.0;
    for (size_t idx : trace_indices) {
        ClosedLoopResult r = runClosedLoop(
            ctx.specWorkloadsList[idx], ctx.spec[idx], predictor,
            ctx.build, sla);
        ppw += r.ppwGainPct;
        rsv += r.rsv * 100.0;
        pgos += r.pgos * 100.0;
        perf += r.perfRelativePct;
        res += r.lowResidency * 100.0;
        suite.perTrace.push_back(std::move(r));
    }
    const double n =
        std::max<double>(1.0, static_cast<double>(trace_indices.size()));
    suite.ppwGainPct = ppw / n;
    suite.rsvPct = rsv / n;
    suite.pgosPct = pgos / n;
    suite.perfRelativePct = perf / n;
    suite.lowResidencyPct = res / n;

    // Headline aggregates of the most recent suite evaluation, so
    // bench run reports carry RSV/PGOS without recomputation.
    auto &reg = obs::StatRegistry::instance();
    reg.gauge("suite.ppw_gain_pct").set(suite.ppwGainPct);
    reg.gauge("suite.rsv_pct").set(suite.rsvPct);
    reg.gauge("suite.pgos_pct").set(suite.pgosPct);
    reg.gauge("suite.perf_relative_pct").set(suite.perfRelativePct);
    reg.gauge("suite.low_residency_pct").set(suite.lowResidencyPct);
    return suite;
}

NamedPredictor
makeAppSpecificRf(const ExperimentContext &ctx,
                  const std::vector<TraceRecord> &app, double p_sla,
                  uint64_t seed)
{
    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.pSla = p_sla;
    opts.columns = ctx.plan.pfColumns(12);
    opts.rsvWindow = rsvWindowFor(ctx, opts.granularityInstr);
    opts.seed = seed;

    TrainedDual dual;
    for (int m = 0; m < 2; ++m) {
        const CoreMode mode =
            m == 0 ? CoreMode::HighPerf : CoreMode::LowPower;
        AssemblyOptions asm_opts;
        asm_opts.granularityInstr = opts.granularityInstr;
        asm_opts.pSla = p_sla;
        asm_opts.telemetryMode = mode;
        asm_opts.columns = opts.columns;

        const Dataset general_raw =
            assembleDataset(ctx.hdtr, asm_opts, ctx.build.intervalInstr);
        const Dataset app_raw =
            assembleDataset(app, asm_opts, ctx.build.intervalInstr);

        ScaledModel slot;
        slot.scaler = FeatureScaler::fit(general_raw);
        const Dataset general = slot.scaler.apply(general_raw);
        const Dataset app_scaled = slot.scaler.apply(app_raw);

        // 4 general trees + 4 app-specific trees = the Sec. 7.3
        // combined Best RF (8 trees, depth 8).
        ForestConfig fc;
        fc.numTrees = 4;
        fc.maxDepth = 8;
        fc.seed = mixSeeds(seed, static_cast<uint64_t>(m) * 2 + 1);
        RandomForest general_rf(general, fc);
        fc.seed = mixSeeds(seed, static_cast<uint64_t>(m) * 2 + 2);
        RandomForest app_rf(app_scaled, fc);

        auto trees = general_rf.takeTrees();
        auto app_trees = app_rf.takeTrees();
        for (auto &t : app_trees)
            trees.push_back(std::move(t));
        auto merged = std::make_shared<RandomForest>(std::move(trees));
        calibrateThreshold(*merged, app_scaled, opts.rsvWindow,
                           opts.targetRsv);
        slot.model = std::move(merged);
        (m == 0 ? dual.high : dual.low) = std::move(slot);
    }
    return wrapDual("App-Specific RF", std::move(dual), opts.columns,
                    opts.granularityInstr);
}

} // namespace psca
