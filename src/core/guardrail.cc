#include "core/guardrail.hh"

#include "common/logging.hh"
#include "obs/stats.hh"

namespace psca {

GuardrailedPredictor::GuardrailedPredictor(GatePredictor &inner,
                                           const GuardrailConfig &cfg)
    : inner_(inner), cfg_(cfg)
{}

uint64_t
GuardrailedPredictor::granularity() const
{
    return inner_.granularity();
}

uint32_t
GuardrailedPredictor::opsPerInference() const
{
    // The guardrail adds a handful of compares to the firmware loop.
    return inner_.opsPerInference() + 8;
}

std::string
GuardrailedPredictor::name() const
{
    return inner_.name() + "+guardrail";
}

bool
GuardrailedPredictor::decide(
    const std::vector<const float *> &sub_rows,
    const std::vector<float> &sub_cycles, CoreMode mode)
{
    // Block IPC from the sub-interval cycles (equal instructions per
    // sub-interval, so IPC ~ 1 / mean cycles).
    double cycles = 0.0;
    for (float c : sub_cycles)
        cycles += c;
    const double block_ipc = cycles > 0.0
        ? static_cast<double>(sub_cycles.size()) * 10000.0 / cycles
        : 0.0;

    if (mode == CoreMode::HighPerf) {
        // Refresh the reactive reference whenever we can observe the
        // wide configuration directly.
        highIpcRef_ = block_ipc;
        violationStreak_ = 0;
    } else {
        highIpcRef_ *= cfg_.referenceDecay;
        if (highIpcRef_ > 0.0 &&
            block_ipc < cfg_.tripRatio * highIpcRef_) {
            ++violationStreak_;
        } else {
            violationStreak_ = 0;
        }
        if (violationStreak_ >= cfg_.patience &&
            holdoffRemaining_ == 0) {
            ++trips_;
            holdoffRemaining_ = cfg_.holdoffBlocks;
            violationStreak_ = 0;
            obs::StatRegistry::instance()
                .counter("controller.guardrail_trips")
                .add();
            emitEvent("guardrail", LogLevel::Warn,
                      "guardrail trip #" + std::to_string(trips_) +
                          ": IPC below " +
                          std::to_string(cfg_.tripRatio) +
                          " of reference; forcing high-perf for " +
                          std::to_string(cfg_.holdoffBlocks) +
                          " blocks");
        }
    }

    const bool inner_gate = inner_.decide(sub_rows, sub_cycles, mode);
    lastInner_ = inner_gate;
    if (holdoffRemaining_ > 0) {
        --holdoffRemaining_;
        return false; // veto: force high-performance mode
    }
    return inner_gate;
}

} // namespace psca
