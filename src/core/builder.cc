#include "core/builder.hh"

#include <atomic>
#include <filesystem>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/journal.hh"
#include "common/parallel.hh"
#include "common/serialize.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"
#include "sim/core.hh"
#include "sim/memo.hh"
#include "trace/decoded.hh"
#include "trace/generator.hh"

namespace psca {

namespace {

/** Bump when record semantics change, to invalidate stale caches. */
constexpr uint32_t kCacheVersion = 4; // 4: file header + checksum
constexpr uint64_t kCacheMagic = 0x50534341435253ULL; // "PSCACRS"

/** Stable hash of everything that affects record contents. */
uint64_t
configHash(const std::vector<Workload> &workloads,
           const BuildConfig &cfg)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ kCacheVersion;
    auto mix = [&h](uint64_t v) { h = mixSeeds(h, v); };
    for (const auto &w : workloads) {
        for (char c : w.name)
            mix(static_cast<uint64_t>(c));
        mix(w.genome.seed);
        mix(w.inputSeed);
        mix(w.traceIndex);
        mix(w.lengthInstr);
        for (const auto &p : w.genome.phases) {
            mix(static_cast<uint64_t>(p.kernel.kind));
            mix(p.kernel.workingSetBytes);
            mix(static_cast<uint64_t>(p.kernel.chains));
            mix(static_cast<uint64_t>(p.weight * 1e6));
            mix(static_cast<uint64_t>(p.meanLenInstr));
        }
    }
    mix(cfg.intervalInstr);
    mix(cfg.warmupInstr);
    for (uint16_t id : cfg.counterIds)
        mix(id);
    mix(static_cast<uint64_t>(cfg.core.robSize));
    mix(static_cast<uint64_t>(cfg.core.dramSlotCycles));
    mix(static_cast<uint64_t>(cfg.core.mshrsPerCluster));
    return h;
}

void
writeRecord(BinaryWriter &out, const TraceRecord &r)
{
    out.putString(r.name);
    out.put(r.appId);
    out.put(r.traceId);
    out.put(r.numCounters);
    out.putVector(r.deltaHigh);
    out.putVector(r.deltaLow);
    out.putVector(r.cyclesHigh);
    out.putVector(r.cyclesLow);
    out.putVector(r.energyHighNj);
    out.putVector(r.energyLowNj);
}

TraceRecord
readRecord(BinaryReader &in)
{
    TraceRecord r;
    r.name = in.getString();
    r.appId = in.get<uint32_t>();
    r.traceId = in.get<uint32_t>();
    r.numCounters = in.get<uint16_t>();
    r.deltaHigh = in.getVector<float>();
    r.deltaLow = in.getVector<float>();
    r.cyclesHigh = in.getVector<float>();
    r.cyclesLow = in.getVector<float>();
    r.energyHighNj = in.getVector<float>();
    r.energyLowNj = in.getVector<float>();
    return r;
}

/**
 * One fixed-mode recording pass over a pre-decoded trace. The full
 * per-interval counter deltas come from the simulation memo cache
 * when available (a fixed-mode replay is a pure function of the
 * memo key); either way the projection to the record's float
 * columns runs below, so records are byte-identical whether the
 * deltas were replayed or memoized.
 */
void
recordMode(const DecodedTrace &trace, uint64_t trace_hash,
           const BuildConfig &cfg, CoreMode mode,
           std::vector<float> &deltas, std::vector<float> &cycles,
           std::vector<float> &energy)
{
    const size_t n_intervals =
        static_cast<size_t>((trace.size() - cfg.warmupInstr) /
                            cfg.intervalInstr);
    const size_t n_ctr = cfg.counterIds.size();
    deltas.reserve(n_intervals * n_ctr);
    cycles.reserve(n_intervals);
    energy.reserve(n_intervals);

    const MemoKey key{trace_hash, coreConfigHash(cfg.core), mode};
    auto &memo = SimMemo::instance();
    MemoIntervals intervals;
    if (!memo.lookup(key, intervals) ||
        intervals.size() != n_intervals)
    {
        intervals.clear();
        intervals.reserve(n_intervals);
        ClusteredCore core(cfg.core);
        core.reset();
        core.setMode(mode);
        size_t cursor = 0;
        if (cfg.warmupInstr > 0) {
            core.run(trace, 0, cfg.warmupInstr);
            cursor = static_cast<size_t>(cfg.warmupInstr);
        }
        std::vector<uint64_t> prev(core.counters().raw());
        for (size_t t = 0; t < n_intervals; ++t) {
            core.run(trace, cursor, cfg.intervalInstr);
            cursor += static_cast<size_t>(cfg.intervalInstr);
            const auto &now = core.counters().raw();
            std::vector<uint64_t> delta_all(now.size());
            for (size_t i = 0; i < now.size(); ++i)
                delta_all[i] = now[i] - prev[i];
            prev = now;
            intervals.push_back(std::move(delta_all));
        }
        memo.store(key, intervals);
    }

    PowerModel power(cfg.power, cfg.core.clockGhz);
    const uint16_t cycles_idx = CounterRegistry::index(Ctr::Cycles);
    for (const auto &delta_all : intervals) {
        for (size_t i = 0; i < n_ctr; ++i)
            deltas.push_back(static_cast<float>(
                delta_all[cfg.counterIds[i]]));
        const uint64_t cyc = delta_all[cycles_idx];
        cycles.push_back(static_cast<float>(cyc));
        energy.push_back(static_cast<float>(
            power.intervalEnergyNj(delta_all, cyc, mode)));
    }
}

} // namespace

std::string
cacheDirectory()
{
    std::string dir = env::stringOr("PSCA_CACHE_DIR", "psca_cache");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

TraceRecord
recordTrace(const Workload &workload, const BuildConfig &cfg,
            uint32_t app_id, uint32_t trace_id)
{
    PSCA_ASSERT(!cfg.counterIds.empty(),
                "recording requires a counter list");
    obs::ScopedPhase phase("record_trace");
    obs::StatRegistry::instance().counter("record.traces").add();
    TraceRecord record;
    record.name = workload.name;
    record.appId = app_id;
    record.traceId = trace_id;
    record.numCounters = static_cast<uint16_t>(cfg.counterIds.size());

    // Decode the workload's uop stream once; both fixed-mode passes
    // replay the same read-only SoA trace. The memo key mixes the
    // content hash with the warmup/interval split because those
    // boundaries determine how the deltas are sliced.
    const uint64_t n_intervals = workload.lengthInstr / cfg.intervalInstr;
    TraceGenerator gen(workload);
    const DecodedTrace trace = decodeTrace(
        gen, cfg.warmupInstr + n_intervals * cfg.intervalInstr);
    const uint64_t trace_hash = mixSeeds(
        mixSeeds(trace.contentHash(), cfg.warmupInstr),
        cfg.intervalInstr);

    // The two fixed-mode passes are independent simulations writing
    // disjoint vectors; run them as a two-task region. Inside a
    // recordCorpus fan-out this degenerates to the serial pair
    // (nested regions run inline).
    ThreadPool::instance().parallelFor(2, [&](size_t m) {
        if (m == 0)
            recordMode(trace, trace_hash, cfg, CoreMode::HighPerf,
                       record.deltaHigh, record.cyclesHigh,
                       record.energyHighNj);
        else
            recordMode(trace, trace_hash, cfg, CoreMode::LowPower,
                       record.deltaLow, record.cyclesLow,
                       record.energyLowNj);
    });
    PSCA_ASSERT(record.cyclesHigh.size() == record.cyclesLow.size(),
                "mode runs disagree on interval count");
    return record;
}

std::vector<TraceRecord>
recordCorpus(const std::vector<Workload> &workloads,
             const std::vector<uint32_t> &app_ids,
             const BuildConfig &cfg, const std::string &cache_tag)
{
    PSCA_ASSERT(workloads.size() == app_ids.size(),
                "workload/app-id list mismatch");
    obs::ScopedPhase phase("record_corpus." + cache_tag);

    const uint64_t hash = configHash(workloads, cfg);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    const std::string path =
        cacheDirectory() + "/" + cache_tag + "_" + hex + ".bin";

    // Try the cache. Any integrity failure — wrong magic or version
    // (stale/foreign file), truncation, checksum mismatch, or an
    // injected persist.cache_corrupt fault — quarantines the file
    // with a named reason and falls through to a full re-record.
    {
        auto corrupt = [&](const char *reason) {
            const QuarantineResult q = quarantineFile(path, reason);
            obs::StatRegistry::instance()
                .counter("record.cache_quarantined")
                .add();
            if (q.collided)
                obs::StatRegistry::instance()
                    .counter("record.cache_quarantine_collisions")
                    .add();
        };
        BinaryReader in(path);
        if (in.good()) {
            const FaultSite &fault =
                FAULT_SITE("persist.cache_corrupt");
            const HeaderCheck hdr =
                readFileHeader(in, kCacheMagic, kCacheVersion);
            if (fault.enabled() && fault.fires(hash)) {
                corrupt("injected checksum fault");
            } else if (hdr != HeaderCheck::Ok) {
                corrupt(headerCheckName(hdr));
            } else if (in.get<uint64_t>() != hash || !in.good()) {
                corrupt("config-hash mismatch");
            } else {
                const auto n = in.get<uint64_t>();
                std::vector<TraceRecord> records;
                records.reserve(n);
                for (uint64_t i = 0; i < n && in.good(); ++i)
                    records.push_back(readRecord(in));
                if (in.good() && records.size() == n &&
                    in.verifyChecksumTrailer())
                {
                    obs::StatRegistry::instance()
                        .counter("record.cache_hits")
                        .add();
                    inform("loaded ", records.size(),
                           " cached records from ", path);
                    return records;
                }
                corrupt("truncated or checksum mismatch");
            }
        }
    }

    inform("recording ", workloads.size(), " traces (tag=", cache_tag,
           ", dual-mode simulation, ",
           ThreadPool::instance().numThreads(),
           " threads; cached to ", path, ")");
    // Each trace records independently (fresh core, fresh generator,
    // no RNG shared across tasks), so the fan-out maps into index
    // slots: the cache file and every consumer see records in
    // workload order regardless of thread count. The map is
    // checkpointed — every completed record is journaled under
    // (tag, config hash), so a killed run resumes with only the
    // remaining workloads and still produces byte-identical records.
    const std::string scope = "corpus." + cache_tag;
    std::atomic<size_t> progress{0};
    std::vector<TraceRecord> records = checkpointedMap<TraceRecord>(
        scope, hash, workloads.size(),
        [](BinaryWriter &w, const TraceRecord &r) {
            writeRecord(w, r);
        },
        [](BinaryReader &in) { return readRecord(in); },
        [&](size_t i) {
            TraceRecord r = recordTrace(workloads[i], cfg,
                                        app_ids[i],
                                        static_cast<uint32_t>(i));
            const size_t done =
                progress.fetch_add(1, std::memory_order_relaxed) + 1;
            if (done % 200 == 0)
                inform("  ", done, "/", workloads.size(), " traces");
            return r;
        },
        DistMode::Distributed);

    const bool stored = writeArtifactFile(path, [&](BinaryWriter &out) {
        writeFileHeader(out, kCacheMagic, kCacheVersion);
        out.put(hash);
        out.put<uint64_t>(records.size());
        for (const auto &r : records)
            writeRecord(out, r);
        out.putChecksumTrailer();
    });
    if (!stored) {
        // Surface the short write: the transactional store already
        // dropped the partial temp, so the next run re-records
        // rather than deserializing a truncation.
        warn("record cache '", path, "': write failed");
        obs::StatRegistry::instance()
            .counter("record.cache_write_failures")
            .add();
    } else {
        // The whole-corpus cache now supersedes the per-record
        // checkpoints; retiring the scope deletes them and compacts
        // the journal on the next replay.
        Journal::instance().retireScope(scope, hash);
    }
    return records;
}

std::vector<uint8_t>
blockLabels(const TraceRecord &record, size_t k, double p_sla)
{
    PSCA_ASSERT(k >= 1, "granularity must cover >= 1 interval");
    const size_t blocks = record.numIntervals() / k;
    std::vector<uint8_t> labels(blocks);
    for (size_t b = 0; b < blocks; ++b) {
        double ch = 0.0, cl = 0.0;
        for (size_t t = b * k; t < (b + 1) * k; ++t) {
            ch += record.cyclesHigh[t];
            cl += record.cyclesLow[t];
        }
        // IPC_low / IPC_high == cyclesHigh / cyclesLow.
        labels[b] = cl > 0.0 && ch / cl >= p_sla ? 1 : 0;
    }
    return labels;
}

Dataset
assembleDataset(const std::vector<TraceRecord> &records,
                const AssemblyOptions &opts, uint64_t interval_instr)
{
    obs::ScopedPhase phase("assemble_dataset");
    PSCA_ASSERT(opts.granularityInstr % interval_instr == 0,
                "granularity must be a multiple of the interval");
    const size_t k = opts.granularityInstr / interval_instr;

    Dataset out;
    if (records.empty())
        return out;

    std::vector<size_t> columns = opts.columns;
    if (columns.empty()) {
        columns.resize(records.front().numCounters);
        for (size_t j = 0; j < columns.size(); ++j)
            columns[j] = j;
    }
    out.numFeatures = columns.size();

    // Assemble each record's samples independently, then concatenate
    // the partial datasets in record order — bit-identical to the
    // serial per-record loop at any thread count.
    std::vector<Dataset> parts =
        ThreadPool::instance().parallelMap<Dataset>(
            records.size(), [&](size_t r) {
                const auto &record = records[r];
                Dataset part;
                part.numFeatures = out.numFeatures;
                std::vector<float> features(part.numFeatures);
                const auto labels = blockLabels(record, k, opts.pSla);
                const size_t blocks = labels.size();
                const bool low =
                    opts.telemetryMode == CoreMode::LowPower;
                for (size_t b = 0; b + 2 < blocks; ++b) {
                    double cyc = 0.0;
                    std::vector<double> agg(part.numFeatures, 0.0);
                    for (size_t t = b * k; t < (b + 1) * k; ++t) {
                        const float *row =
                            low ? record.rowLow(t) : record.rowHigh(t);
                        for (size_t j = 0; j < columns.size(); ++j)
                            agg[j] += row[columns[j]];
                        cyc += low ? record.cyclesLow[t]
                                   : record.cyclesHigh[t];
                    }
                    const double inv = cyc > 0.0 ? 1.0 / cyc : 0.0;
                    for (size_t j = 0; j < part.numFeatures; ++j)
                        features[j] = static_cast<float>(agg[j] * inv);
                    part.addSample(features.data(), labels[b + 2],
                                   record.appId, record.traceId);
                }
                return part;
            });
    for (const auto &part : parts) {
        out.x.insert(out.x.end(), part.x.begin(), part.x.end());
        out.y.insert(out.y.end(), part.y.begin(), part.y.end());
        out.appId.insert(out.appId.end(), part.appId.begin(),
                         part.appId.end());
        out.traceId.insert(out.traceId.end(), part.traceId.begin(),
                           part.traceId.end());
    }
    return out;
}

double
idealLowPowerResidency(const std::vector<TraceRecord> &records,
                       double p_sla)
{
    uint64_t gate = 0, total = 0;
    for (const auto &record : records) {
        const auto labels = blockLabels(record, 1, p_sla);
        for (uint8_t y : labels)
            gate += y;
        total += labels.size();
    }
    return total ? static_cast<double>(gate) /
            static_cast<double>(total)
                 : 0.0;
}

} // namespace psca
