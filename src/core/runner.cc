#include "core/runner.hh"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "dist/dist.hh"
#include "obs/http.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace psca {
namespace runner {

namespace {

std::atomic<int> g_signalCount{0};

extern "C" void
onStopSignal(int)
{
    // Async-signal-safe: one relaxed atomic increment, one relaxed
    // store inside requestStop(). Anything heavier (logging, IO)
    // happens on the threads that poll the flag.
    const int prior =
        g_signalCount.fetch_add(1, std::memory_order_relaxed);
    if (prior == 0) {
        requestStop();
    } else {
        // Second signal: the user is insisting. The journal is
        // append-atomic at any instant, so a hard exit stays
        // resumable — only the currently in-flight units are lost.
        _exit(kResumableExit);
    }
}

/**
 * The watchdog: one background thread that enforces the run deadline
 * and surfaces stuck units. Joined (via stop()) before guardedMain
 * returns so it never outlives the body's stack.
 */
class Watchdog
{
  public:
    Watchdog(double deadline_s, double grace_s, double unit_timeout_s)
        : deadlineS_(deadline_s), graceS_(grace_s),
          unitTimeoutS_(unit_timeout_s),
          start_(std::chrono::steady_clock::now())
    {
        if (deadlineS_ > 0 || unitTimeoutS_ > 0)
            thread_ = std::thread([this] { loop(); });
    }

    ~Watchdog() { stop(); }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            done_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        bool stop_requested = false;
        for (;;) {
            cv_.wait_for(lock, std::chrono::milliseconds(250),
                         [this] { return done_; });
            if (done_)
                return;
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            if (deadlineS_ > 0 && !stop_requested &&
                elapsed >= deadlineS_)
            {
                stop_requested = true;
                warn("deadline: PSCA_DEADLINE_S=", deadlineS_,
                     " reached after ", elapsed,
                     " s; requesting checkpoint-and-stop (grace ",
                     graceS_, " s)");
                emitEvent("watchdog", LogLevel::Warn,
                          "deadline reached; requesting "
                          "checkpoint-and-stop");
                requestStop();
            }
            if (deadlineS_ > 0 && stop_requested &&
                elapsed >= deadlineS_ + graceS_)
            {
                warn("deadline: run did not unwind within the grace "
                     "period; forcing resumable exit");
                _exit(kResumableExit);
            }
            if (unitTimeoutS_ > 0)
                scanInFlight();
        }
    }

    void
    scanInFlight()
    {
        Journal::instance().forEachInFlight(
            [this](const std::string &scope, uint64_t unit,
                   double secs) {
                if (secs < unitTimeoutS_)
                    return;
                const std::string key =
                    scope + "#" + std::to_string(unit);
                if (!warned_.insert(key).second)
                    return;
                Journal::instance().noteSoftTimeout();
                warn("watchdog: unit ", unit, " of scope '", scope,
                     "' has run ", secs,
                     " s (> PSCA_UNIT_TIMEOUT_S=", unitTimeoutS_,
                     "); advisory only, not killed");
                emitEvent("watchdog", LogLevel::Warn,
                          "unit " + std::to_string(unit) +
                              " of scope '" + scope +
                              "' exceeded the soft unit timeout");
            });
    }

    const double deadlineS_;
    const double graceS_;
    const double unitTimeoutS_;
    const std::chrono::steady_clock::time_point start_;

    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    std::set<std::string> warned_; //!< scope#unit already reported

    std::thread thread_;
};

} // namespace

int
guardedMain(const std::function<int()> &body)
{
    static std::atomic<bool> entered{false};
    if (entered.exchange(true)) {
        // Nested (an example calling a library main helper): the
        // outer guard already owns signals and the watchdog.
        return body();
    }

    clearStopRequest();
    g_signalCount.store(0, std::memory_order_relaxed);

    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    struct sigaction old_int = {};
    struct sigaction old_term = {};
    sigaction(SIGINT, &sa, &old_int);
    sigaction(SIGTERM, &sa, &old_term);

    const double deadline_s =
        env::doubleOr("PSCA_DEADLINE_S", 0.0, 0.0, 1e9);
    const double grace_s =
        env::doubleOr("PSCA_DEADLINE_GRACE_S", 30.0, 0.0, 1e9);
    const double unit_timeout_s =
        env::doubleOr("PSCA_UNIT_TIMEOUT_S", 0.0, 0.0, 1e9);

    // Arm the telemetry plane before the body spawns threads: the
    // trace log parses PSCA_TRACE on first touch, and the live
    // endpoint starts if PSCA_HTTP_PORT is set.
    obs::TraceLog::instance();
    obs::HttpServer::maybeStartFromEnv();
    // Join the fleet (or start serving one) if PSCA_DIST_ROLE says
    // so; a no-op otherwise. Must come after the telemetry plane so
    // dist gauges and spans land in it.
    dist::maybeInitFromEnv();
    const double linger_s =
        env::doubleOr("PSCA_HTTP_LINGER_S", 0.0, 0.0, 86400.0);

    int status = 0;
    {
        Watchdog watchdog(deadline_s, grace_s, unit_timeout_s);
        try {
            status = body();
            if (stopRequested()) {
                // Stop arrived after the last checkpointed region
                // (or the body swallowed it): still signal resumable.
                status = kResumableExit;
            }
        } catch (const RunInterrupted &e) {
            // Run reports and stats flushed during unwinding (their
            // guards sit inside the body). Completed units are
            // journaled; the same command resumes.
            inform("interrupted: ", e.what());
            inform("exiting with resumable status ", kResumableExit,
                   "; re-run the same command to resume");
            emitEvent("checkpoint", LogLevel::Info,
                      "run interrupted; exiting with resumable "
                      "status");
            status = kResumableExit;
        } catch (const std::exception &e) {
            warn("uncaught exception: ", e.what());
            status = 1;
        }
        watchdog.stop();
    }

    // Leave the fleet before the telemetry plane goes down: the
    // coordinator broadcasts Shutdown (and withdraws its address
    // file), a worker sends Bye.
    dist::shutdown();

    // Orderly telemetry shutdown: optionally hold the live endpoint
    // open so a scraper can take a final reading, then stop it and
    // flush the span trace (also covered by atexit for bare mains).
    obs::HttpServer &http = obs::HttpServer::instance();
    if (http.running() && linger_s > 0 && !stopRequested()) {
        inform("http: lingering ", linger_s,
               " s for final scrapes (PSCA_HTTP_LINGER_S)");
        const auto linger_until = std::chrono::steady_clock::now() +
            std::chrono::duration<double>(linger_s);
        while (std::chrono::steady_clock::now() < linger_until &&
               !stopRequested())
        {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    }
    http.stop();
    obs::TraceLog::instance().finalize();

    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
    entered.store(false);
    return status;
}

int
supervise(const std::function<pid_t()> &spawn, int max_restarts,
          const char *what, std::atomic<pid_t> *current_child)
{
    int restarts = 0;
    for (;;) {
        const pid_t pid = spawn();
        if (pid < 0) {
            warn("supervise: cannot spawn ", what);
            return 1;
        }
        if (current_child)
            current_child->store(pid);
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(pid, &status, 0);
        } while (r < 0 && errno == EINTR);
        if (current_child)
            current_child->store(-1);
        if (r < 0) {
            warn("supervise: waitpid failed for ", what, " (",
                 std::strerror(errno), ")");
            return 1;
        }

        const bool signaled = WIFSIGNALED(status);
        const int code =
            WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        if (!signaled && code == 0)
            return 0;
        if (!signaled && code != kResumableExit) {
            // A hard error, not a crash: the journal would just
            // replay into the same failure. Surface it.
            warn("supervise: ", what, " exited with status ", code,
                 "; not restarting");
            return code;
        }
        if (stopRequested()) {
            inform("supervise: stop requested; not restarting ",
                   what);
            return kResumableExit;
        }
        if (restarts >= max_restarts) {
            warn("supervise: ", what, " died ", restarts + 1,
                 " times (restart budget ", max_restarts,
                 " exhausted)");
            return signaled ? 1 : kResumableExit;
        }
        ++restarts;
        obs::StatRegistry::instance()
            .counter("runner.supervisor_restarts")
            .add();
        warn("supervise: ", what,
             signaled ? " killed by signal " : " exited with status ",
             signaled ? WTERMSIG(status) : code, "; restarting (",
             restarts, "/", max_restarts,
             ") — the journal resumes completed work");
        emitEvent("supervisor", LogLevel::Warn,
                  std::string(what) + " died; restart " +
                      std::to_string(restarts) + "/" +
                      std::to_string(max_restarts));
    }
}

} // namespace runner
} // namespace psca
