/**
 * @file
 * Dataset construction (Sec. 4.1): each workload trace is simulated
 * once per cluster configuration; telemetry counters, cycles, and
 * energy are snapshotted every 10k instructions. Records store raw
 * per-interval counter deltas so features can be re-aggregated to any
 * coarser prediction granularity ("sum over successive intervals and
 * re-normalize") and labels can be recomputed for any SLA threshold
 * (the post-silicon relabeling of Sec. 7.3).
 *
 * Ground truth: y_t = 1 iff low-power-mode IPC in interval t is at
 * least pSla of high-performance-mode IPC; the training sample pairs
 * counters x_t with label y_{t+2} (Fig. 3's pipeline timing).
 *
 * Records are cached on disk keyed by a hash of the workload and
 * configuration, since corpus-scale dual-mode simulation is the
 * dominant cost of every experiment.
 */

#ifndef PSCA_CORE_BUILDER_HH
#define PSCA_CORE_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "power/power_model.hh"
#include "sim/config.hh"
#include "trace/corpus.hh"

namespace psca {

/** Recording configuration. */
struct BuildConfig
{
    uint64_t intervalInstr = 10000;
    uint64_t warmupInstr = 50000;
    /** Registry ids of the counters to record per interval. */
    std::vector<uint16_t> counterIds;
    CoreConfig core;
    PowerModelConfig power;
};

/** Dual-mode telemetry record of one trace. */
struct TraceRecord
{
    std::string name;
    uint32_t appId = 0;
    uint32_t traceId = 0;
    uint16_t numCounters = 0;

    /** Raw counter deltas, intervals x numCounters, per mode. */
    std::vector<float> deltaHigh;
    std::vector<float> deltaLow;
    std::vector<float> cyclesHigh; //!< per interval
    std::vector<float> cyclesLow;
    std::vector<float> energyHighNj;
    std::vector<float> energyLowNj;

    size_t numIntervals() const { return cyclesHigh.size(); }

    const float *
    rowHigh(size_t t) const
    {
        return deltaHigh.data() + t * numCounters;
    }

    const float *
    rowLow(size_t t) const
    {
        return deltaLow.data() + t * numCounters;
    }

    /** IPC ratio low/high of interval t (= cyclesHigh/cyclesLow). */
    double
    ipcRatio(size_t t) const
    {
        return cyclesLow[t] > 0.0f
            ? static_cast<double>(cyclesHigh[t]) / cyclesLow[t]
            : 1.0;
    }
};

/** Simulate one workload in both modes and record telemetry. */
TraceRecord recordTrace(const Workload &workload,
                        const BuildConfig &cfg, uint32_t app_id,
                        uint32_t trace_id);

/**
 * Record a list of workloads, using/maintaining the on-disk cache.
 *
 * @param cache_tag Human-readable cache file prefix (e.g. "hdtr").
 * @param app_ids Parallel app-id list (same length as workloads).
 */
std::vector<TraceRecord> recordCorpus(
    const std::vector<Workload> &workloads,
    const std::vector<uint32_t> &app_ids, const BuildConfig &cfg,
    const std::string &cache_tag);

/** Directory used for record caches ($PSCA_CACHE_DIR or psca_cache). */
std::string cacheDirectory();

/** Feature/label assembly options. */
struct AssemblyOptions
{
    /** Prediction granularity; multiple of the record interval. */
    uint64_t granularityInstr = 10000;
    double pSla = 0.90;
    /** Which mode's telemetry forms the features. */
    CoreMode telemetryMode = CoreMode::LowPower;
    /** Record-column subset to keep (empty = all columns). */
    std::vector<size_t> columns;
};

/**
 * Assemble an ML dataset from records: aggregate intervals to the
 * requested granularity, cycle-normalize, and pair x_t with y_{t+2}.
 */
Dataset assembleDataset(const std::vector<TraceRecord> &records,
                        const AssemblyOptions &opts,
                        uint64_t interval_instr);

/** Ground-truth gate labels of one record at block granularity k. */
std::vector<uint8_t> blockLabels(const TraceRecord &record, size_t k,
                                 double p_sla);

/** Instruction-weighted ideal low-power residency (Fig. 7). */
double idealLowPowerResidency(const std::vector<TraceRecord> &records,
                              double p_sla);

} // namespace psca

#endif // PSCA_CORE_BUILDER_HH
