/**
 * @file
 * Service level agreement specification (Sec. 3.1): low-power mode
 * must achieve at least pSla of high-performance-mode IPC over every
 * tSla window, guaranteed for at least `guarantee` of windows.
 */

#ifndef PSCA_CORE_SLA_HH
#define PSCA_CORE_SLA_HH

#include <cstdint>

namespace psca {

/** An SLA contract. */
struct SlaSpec
{
    /** Minimum low-power/high-perf IPC ratio (paper default 0.90). */
    double pSla = 0.90;
    /** Measurement window in seconds (paper: 1 ms). */
    double tSlaSeconds = 1e-3;
    /** Fraction of windows that must meet the threshold (99%). */
    double guarantee = 0.99;

    /**
     * Number of predictions per SLA window: W = R * T_SLA * (1/L)
     * with R the peak instruction throughput (paper example: 16 GIPS,
     * 1 ms, 10k-instruction predictions -> W = 1600).
     *
     * @param peak_ips Peak instructions per second.
     * @param granularity_instr Prediction interval L.
     */
    uint64_t
    windowPredictions(double peak_ips,
                      uint64_t granularity_instr) const
    {
        const double w = peak_ips * tSlaSeconds /
            static_cast<double>(granularity_instr);
        return w < 1.0 ? 1 : static_cast<uint64_t>(w);
    }
};

} // namespace psca

#endif // PSCA_CORE_SLA_HH
