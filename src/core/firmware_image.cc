#include "core/firmware_image.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/journal.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/quant.hh"
#include "ml/tree.hh"
#include "obs/stats.hh"
#include "uc/compilers.hh"

namespace psca {

namespace {

constexpr uint64_t kMagic = 0x50534341465731ULL; // "PSCAFW1"
constexpr uint32_t kFwVersion = 4; // 4: fixed-point slot payloads
                                   //    (PSCA_UC_FIXED); 3: padding-
                                   //    free instruction encoding
                                   //    (byte-reproducible images);
                                   //    2: checksum trailer

// UcInst carries an alignment hole after its uint8_t opcode, so a
// raw putVector would serialize uninitialized padding and two images
// compiled from the same model would differ byte-for-byte. Encode
// each field instead: images must be reproducible so the resume and
// fleet-publish paths can compare them with cmp.
void
writeCode(BinaryWriter &out, const std::vector<UcInst> &code)
{
    out.put<uint64_t>(code.size());
    for (const UcInst &inst : code) {
        out.put(inst.op);
        out.put(inst.dst);
        out.put(inst.a);
        out.put(inst.b);
        out.put(inst.imm);
        out.put(inst.ia);
        out.put(inst.ib);
    }
}

std::vector<UcInst>
readCode(BinaryReader &in)
{
    std::vector<UcInst> code(in.get<uint64_t>());
    for (UcInst &inst : code) {
        inst.op = in.get<UcOpcode>();
        inst.dst = in.get<uint16_t>();
        inst.a = in.get<uint16_t>();
        inst.b = in.get<uint16_t>();
        inst.imm = in.get<float>();
        inst.ia = in.get<int32_t>();
        inst.ib = in.get<int32_t>();
    }
    return code;
}

void
writeSlot(BinaryWriter &out, const FirmwareSlot &slot)
{
    writeCode(out, slot.program.code);
    out.putVector(slot.program.mem);
    out.put(slot.program.numInputs);
    out.putVector(slot.scaler.mean);
    out.putVector(slot.scaler.invStd);
    out.put(slot.threshold);
    out.putString(slot.quantPayload);
    out.put(slot.quantOps);
}

FirmwareSlot
readSlot(BinaryReader &in)
{
    FirmwareSlot slot;
    slot.program.code = readCode(in);
    slot.program.mem = in.getVector<float>();
    slot.program.numInputs = in.get<uint16_t>();
    slot.scaler.mean = in.getVector<float>();
    slot.scaler.invStd = in.getVector<float>();
    slot.threshold = in.get<float>();
    slot.quantPayload = in.getString();
    slot.quantOps = in.get<uint32_t>();
    return slot;
}

/** Compile whichever supported model class the slot holds. */
UcProgram
compileAny(const Model &model)
{
    if (const auto *mlp = dynamic_cast<const MlpModel *>(&model))
        return compileMlp(*mlp);
    if (const auto *rf = dynamic_cast<const RandomForest *>(&model))
        return compileForest(*rf);
    if (const auto *lr =
            dynamic_cast<const LogisticRegression *>(&model))
        return compileLogistic(*lr);
    fatal("no firmware compiler for model class '", model.describe(),
          "'");
}

} // namespace

void
FirmwarePackage::write(BinaryWriter &out) const
{
    writeFileHeader(out, kMagic, kFwVersion);
    out.putString(name);
    out.put(granularityInstr);
    out.putVector(columns);
    out.put<uint8_t>(fixedPoint ? 1 : 0);
    writeSlot(out, high);
    writeSlot(out, low);
    out.putChecksumTrailer();
}

void
FirmwarePackage::save(const std::string &path) const
{
    // Transactional publish: a crash mid-save must never leave a
    // torn image under the final name — load() treats corruption as
    // fatal (an image is flashed, not rebuilt), so the rename is the
    // commit point.
    const bool ok = writeArtifactFile(
        path, [this](BinaryWriter &out) { write(out); });
    PSCA_ASSERT(ok, "firmware image write failed");
}

bool
FirmwarePackage::tryLoad(const std::string &path, FirmwarePackage &out)
{
    BinaryReader in(path);
    if (readFileHeader(in, kMagic, kFwVersion) != HeaderCheck::Ok)
        return false;
    FirmwarePackage pkg;
    pkg.name = in.getString();
    pkg.granularityInstr = in.get<uint64_t>();
    pkg.columns = in.getVector<uint32_t>();
    pkg.fixedPoint = in.get<uint8_t>() != 0;
    pkg.high = readSlot(in);
    pkg.low = readSlot(in);
    if (!in.good() || !in.verifyChecksumTrailer())
        return false;
    out = std::move(pkg);
    return true;
}

FirmwarePackage
FirmwarePackage::load(const std::string &path)
{
    BinaryReader in(path);
    const HeaderCheck hdr = readFileHeader(in, kMagic, kFwVersion);
    if (hdr == HeaderCheck::BadVersion)
        fatal("firmware image '", path,
              "': version mismatch (stale or future format)");
    if (hdr != HeaderCheck::Ok)
        fatal("'", path, "' is not a psca firmware image");
    // A firmware image is flashed, not rebuilt: unlike the caches
    // there is no fallback here, so any corruption is fatal. The
    // serve layer's rollback ring uses tryLoad() instead — it can
    // fall back to an earlier version.
    FirmwarePackage pkg;
    if (!tryLoad(path, pkg))
        fatal("firmware image '", path,
              "' is truncated or failed checksum");
    return pkg;
}

FirmwarePackage
packageFromDual(const DualModelPredictor &predictor,
                const std::vector<size_t> &columns)
{
    FirmwarePackage pkg;
    pkg.name = predictor.name() + ".fw";
    pkg.granularityInstr = predictor.granularity();
    for (size_t c : columns)
        pkg.columns.push_back(static_cast<uint32_t>(c));

    pkg.high.program = compileAny(*predictor.highSlot().model);
    pkg.high.scaler = predictor.highSlot().scaler;
    pkg.high.threshold =
        static_cast<float>(predictor.highSlot().model->threshold());
    pkg.low.program = compileAny(*predictor.lowSlot().model);
    pkg.low.scaler = predictor.lowSlot().scaler;
    pkg.low.threshold =
        static_cast<float>(predictor.lowSlot().model->threshold());

    // PSCA_UC_FIXED=1: also carry the int8 tables; the package then
    // declares itself fixed-point and VmPredictor scores with the
    // quantized path under the int8 ops budget (quant.hh).
    if (quant::ucFixedPointEnabled()) {
        pkg.high.quantPayload =
            quant::packPayload(*predictor.highSlot().model);
        pkg.low.quantPayload =
            quant::packPayload(*predictor.lowSlot().model);
        if (!pkg.high.quantPayload.empty() &&
            !pkg.low.quantPayload.empty()) {
            pkg.fixedPoint = true;
            pkg.high.quantOps =
                quant::payloadOps(pkg.high.quantPayload);
            pkg.low.quantOps = quant::payloadOps(pkg.low.quantPayload);
        } else {
            warn("PSCA_UC_FIXED=1 but model class has no quantized "
                 "form; packaging the float path only");
            pkg.high.quantPayload.clear();
            pkg.low.quantPayload.clear();
        }
    }
    return pkg;
}

VmPredictor::VmPredictor(FirmwarePackage package)
    : package_(std::move(package))
{
    if (package_.fixedPoint) {
        quantHigh_ = quant::unpackPayload(package_.high.quantPayload);
        quantLow_ = quant::unpackPayload(package_.low.quantPayload);
        PSCA_ASSERT(quantHigh_ && quantLow_,
                    "fixed-point package lacks quantized payloads");
    }
}

uint32_t
VmPredictor::opsPerInference() const
{
    // Fixed-point packages run the int8 tables, so the ops budget is
    // charged at the int8 cost model (1 op per MAC, quant.hh).
    if (package_.fixedPoint)
        return std::max(package_.high.quantOps,
                        package_.low.quantOps);
    return static_cast<uint32_t>(
        std::max(package_.high.program.staticOpCount(),
                 package_.low.program.staticOpCount()));
}

bool
VmPredictor::decide(const std::vector<const float *> &sub_rows,
                    const std::vector<float> &sub_cycles,
                    CoreMode mode)
{
    // Aggregate + cycle-normalize the block, as the telemetry
    // convergence point does before handing data to firmware.
    std::vector<float> agg(package_.columns.size(), 0.0f);
    double cycles = 0.0;
    for (size_t t = 0; t < sub_rows.size(); ++t) {
        for (size_t j = 0; j < agg.size(); ++j)
            agg[j] += sub_rows[t][package_.columns[j]];
        cycles += sub_cycles[t];
    }
    const float inv =
        cycles > 0.0 ? static_cast<float>(1.0 / cycles) : 0.0f;
    for (auto &v : agg)
        v *= inv;

    const FirmwareSlot &slot =
        mode == CoreMode::HighPerf ? package_.high : package_.low;
    std::vector<float> scaled(agg.size());
    slot.scaler.applyRow(agg.data(), scaled.data());

    // Same input sanitation as DualModelPredictor: the firmware path
    // sees the identical faulted telemetry view.
    constexpr float kMaxAbsZ = 24.0f;
    size_t clamped = 0;
    for (auto &z : scaled) {
        if (!std::isfinite(z)) {
            obs::StatRegistry::instance()
                .counter("controller.sanitize_vetoes")
                .add();
            return false;
        }
        if (z > kMaxAbsZ) {
            z = kMaxAbsZ;
            ++clamped;
        } else if (z < -kMaxAbsZ) {
            z = -kMaxAbsZ;
            ++clamped;
        }
    }
    if (clamped > 0) {
        obs::StatRegistry::instance()
            .counter("controller.sanitized_inputs")
            .add(clamped);
    }

    if (package_.fixedPoint) {
        // The uc runs the int8 tables; the sanitized features snap to
        // the int8 grid inside the quantized scorer.
        const Model &model = mode == CoreMode::HighPerf ? *quantHigh_
                                                        : *quantLow_;
        return model.score(scaled.data()) >= slot.threshold;
    }

    const double score =
        vm_.run(slot.program, scaled.data(), scaled.size());
    if (vm_.trapped()) {
        // The inference aborted mid-program; its score is garbage.
        // Fail safe to the high-performance configuration.
        obs::StatRegistry::instance()
            .counter("controller.vm_trap_failsafes")
            .add();
        emitEvent("vm", LogLevel::Warn,
                  "vm trap during inference; failing safe to the "
                  "high-performance configuration");
        return false;
    }
    return score >= slot.threshold;
}

} // namespace psca
