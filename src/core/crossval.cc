#include "core/crossval.hh"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>

#include "common/journal.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "math/stats.hh"
#include "obs/phase.hh"

namespace psca {

namespace {

/** Exact round-trip serialization of one fold's (optional) result. */
void
writeFoldResult(BinaryWriter &w, const std::optional<EvalResult> &r)
{
    w.put<uint8_t>(r.has_value() ? 1 : 0);
    if (!r)
        return;
    w.put(r->confusion.truePositive);
    w.put(r->confusion.falsePositive);
    w.put(r->confusion.trueNegative);
    w.put(r->confusion.falseNegative);
    w.put(r->pgos);
    w.put(r->rsv);
}

std::optional<EvalResult>
readFoldResult(BinaryReader &in)
{
    if (in.get<uint8_t>() == 0)
        return std::nullopt;
    EvalResult r;
    r.confusion.truePositive = in.get<uint64_t>();
    r.confusion.falsePositive = in.get<uint64_t>();
    r.confusion.trueNegative = in.get<uint64_t>();
    r.confusion.falseNegative = in.get<uint64_t>();
    r.pgos = in.get<double>();
    r.rsv = in.get<double>();
    return r;
}

/** Everything a fold result depends on besides the factory tag. */
uint64_t
crossValConfigHash(const Dataset &data, const CrossValOptions &opts)
{
    uint64_t h = data.contentHash();
    auto mix = [&h](uint64_t v) { h = mixSeeds(h, v); };
    mix(static_cast<uint64_t>(opts.folds));
    mix(static_cast<uint64_t>(opts.tuneFraction * 1e9));
    mix(opts.maxTuneApps);
    mix(opts.maxTuneSamples);
    mix(opts.rsvWindow);
    mix(opts.calibrate ? 1 : 0);
    mix(static_cast<uint64_t>(opts.targetRsv * 1e9));
    mix(opts.seed);
    return h;
}

} // namespace

FoldSplit
appLevelSplit(const Dataset &data, double tune_fraction, uint64_t seed,
              size_t max_tune_apps)
{
    std::vector<uint32_t> apps;
    for (uint32_t id : data.appId)
        if (std::find(apps.begin(), apps.end(), id) == apps.end())
            apps.push_back(id);

    Rng rng(seed ^ 0xf01d5ULL);
    rng.shuffle(apps);

    size_t tune_count = static_cast<size_t>(
        tune_fraction * static_cast<double>(apps.size()) + 0.5);
    tune_count = std::clamp<size_t>(tune_count, 1,
                                    apps.size() > 1 ? apps.size() - 1
                                                    : 1);
    if (max_tune_apps > 0)
        tune_count = std::min(tune_count, max_tune_apps);

    std::vector<bool> is_tune_app;
    std::map<uint32_t, bool> assignment;
    for (size_t i = 0; i < apps.size(); ++i)
        assignment[apps[i]] = i < tune_count;

    FoldSplit split;
    for (size_t i = 0; i < data.numSamples(); ++i) {
        if (assignment[data.appId[i]])
            split.tuneIdx.push_back(i);
        else
            split.validIdx.push_back(i);
    }
    return split;
}

EvalResult
evaluateModel(const Model &model, const Dataset &data,
              uint64_t rsv_window)
{
    EvalResult result;
    // Group prediction/label sequences per trace for RSV. Decisions
    // come from the batched kernels in chunks (the dataset matrix is
    // contiguous row-major); predictBatch() is bit-identical to the
    // scalar predict() loop it replaced.
    std::map<uint32_t, std::pair<std::vector<uint8_t>,
                                 std::vector<uint8_t>>> traces;
    const size_t n = data.numSamples();
    constexpr size_t kChunk = 1024;
    std::vector<float> decisions(std::min(n, kChunk));
    for (size_t begin = 0; begin < n; begin += kChunk) {
        const size_t count = std::min(kChunk, n - begin);
        model.predictBatch(data.row(begin), static_cast<int>(count),
                           decisions.data());
        for (size_t o = 0; o < count; ++o) {
            const size_t i = begin + o;
            const bool pred = decisions[o] != 0.0f;
            result.confusion.add(pred, data.y[i] != 0);
            auto &entry = traces[data.traceId[i]];
            entry.first.push_back(pred ? 1 : 0);
            entry.second.push_back(data.y[i]);
        }
    }
    result.pgos = result.confusion.pgos();

    double rsv_sum = 0.0;
    for (const auto &[id, seqs] : traces)
        rsv_sum += rsvForTrace(seqs.first, seqs.second, rsv_window);
    result.rsv = traces.empty()
        ? 0.0
        : rsv_sum / static_cast<double>(traces.size());
    return result;
}

void
calibrateThreshold(Model &model, const Dataset &tune,
                   uint64_t rsv_window, double target_rsv)
{
    static const double kCandidates[] = {0.50, 0.55, 0.60, 0.65,
                                         0.70, 0.75, 0.80, 0.85,
                                         0.90, 0.95};
    for (double t : kCandidates) {
        model.setThreshold(t);
        if (evaluateModel(model, tune, rsv_window).rsv <= target_rsv)
            return;
    }
    // Even the most conservative candidate violates; keep it.
    model.setThreshold(kCandidates[std::size(kCandidates) - 1]);
}

CrossValSummary
crossValidate(const Dataset &data, const ModelFactory &factory,
              const CrossValOptions &opts)
{
    obs::ScopedPhase phase("cross_validation");
    CrossValSummary summary;
    std::vector<double> pgos, rsv, acc;

    // Each fold derives everything from fold_seed = mixSeeds(seed,
    // fold + 1) — the same substream rule the serial loop used — so
    // folds train and evaluate concurrently and the aggregation below
    // (in fold order, skipped folds preserved as nullopt) reproduces
    // the serial summary bit for bit.
    auto run_fold = [&](size_t fold) -> std::optional<EvalResult> {
        obs::ScopedPhase fold_phase(
            "crossval.fold",
            {{"fold", static_cast<long long>(fold)}});
        const uint64_t fold_seed = taskSeed(opts.seed, fold);
        FoldSplit split = appLevelSplit(data, opts.tuneFraction,
                                        fold_seed, opts.maxTuneApps);
        if (split.tuneIdx.empty() || split.validIdx.empty())
            return std::nullopt;

        if (opts.maxTuneSamples > 0 &&
            split.tuneIdx.size() > opts.maxTuneSamples) {
            Rng rng(fold_seed ^ 0x5ab5a3ULL);
            rng.shuffle(split.tuneIdx);
            split.tuneIdx.resize(opts.maxTuneSamples);
        }

        Dataset tune_raw = data.subset(split.tuneIdx);
        const FeatureScaler scaler = FeatureScaler::fit(tune_raw);
        const Dataset tune = scaler.apply(tune_raw);
        const Dataset valid = scaler.apply(data.subset(split.validIdx));

        std::unique_ptr<Model> model = factory(tune, fold_seed);
        if (opts.calibrate) {
            calibrateThreshold(*model, tune, opts.rsvWindow,
                               opts.targetRsv);
        }

        return evaluateModel(*model, valid, opts.rsvWindow);
    };

    // With a checkpoint tag, every completed fold is journaled under
    // (tag, dataset + options hash): an interrupted sweep re-enters
    // with only the remaining folds. Untagged calls are not
    // checkpointed — the model factory is an arbitrary closure, so
    // only the caller can name the sweep point it represents.
    std::vector<std::optional<EvalResult>> fold_results;
    if (!opts.checkpointTag.empty()) {
        fold_results = checkpointedMap<std::optional<EvalResult>>(
            "crossval." + opts.checkpointTag,
            crossValConfigHash(data, opts),
            static_cast<size_t>(opts.folds), writeFoldResult,
            readFoldResult, run_fold, DistMode::Distributed);
    } else {
        fold_results =
            ThreadPool::instance()
                .parallelMap<std::optional<EvalResult>>(
                    static_cast<size_t>(opts.folds), run_fold);
    }

    for (const auto &eval : fold_results) {
        if (!eval)
            continue;
        summary.folds.push_back(*eval);
        pgos.push_back(eval->pgos);
        rsv.push_back(eval->rsv);
        acc.push_back(eval->confusion.accuracy());
    }

    summary.pgosMean = mean(pgos);
    summary.pgosStd = stddev(pgos);
    summary.rsvMean = mean(rsv);
    summary.rsvStd = stddev(rsv);
    summary.accuracyMean = mean(acc);
    return summary;
}

} // namespace psca
