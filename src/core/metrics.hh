/**
 * @file
 * The paper's prediction-quality metrics (Sec. 4.2): the confusion
 * taxonomy (true/false positives with "positive" = gate / low-power),
 * PGOS (percentage of gating opportunities seized, Eq. 1), and RSV
 * (rate of SLA violations, Eqs. 2-4) computed over sliding windows of
 * W predictions per trace.
 */

#ifndef PSCA_CORE_METRICS_HH
#define PSCA_CORE_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace psca {

namespace obs {
class StatRegistry;
} // namespace obs

/** Confusion counts for gate (positive) vs no-gate decisions. */
struct ConfusionCounts
{
    uint64_t truePositive = 0;  //!< gated, correctly
    uint64_t falsePositive = 0; //!< gated when it should not have
    uint64_t trueNegative = 0;  //!< stayed wide, correctly
    uint64_t falseNegative = 0; //!< missed a gating opportunity

    void
    add(bool predicted_gate, bool truth_gate)
    {
        if (predicted_gate && truth_gate)
            ++truePositive;
        else if (predicted_gate && !truth_gate)
            ++falsePositive;
        else if (!predicted_gate && !truth_gate)
            ++trueNegative;
        else
            ++falseNegative;
    }

    uint64_t
    total() const
    {
        return truePositive + falsePositive + trueNegative +
            falseNegative;
    }

    /** PGOS / recall (Eq. 1); 1.0 when there are no opportunities. */
    double
    pgos() const
    {
        const uint64_t opportunities = truePositive + falseNegative;
        return opportunities
            ? static_cast<double>(truePositive) /
                static_cast<double>(opportunities)
            : 1.0;
    }

    /** Overall accuracy. */
    double
    accuracy() const
    {
        const uint64_t t = total();
        return t ? static_cast<double>(truePositive + trueNegative) /
                static_cast<double>(t)
                 : 1.0;
    }

    void
    merge(const ConfusionCounts &o)
    {
        truePositive += o.truePositive;
        falsePositive += o.falsePositive;
        trueNegative += o.trueNegative;
        falseNegative += o.falseNegative;
    }

    /**
     * Accumulate these counts into the stat registry (counters
     * "<prefix>.tp/fp/tn/fn") and refresh the derived
     * "<prefix>.pgos" / "<prefix>.accuracy" gauges from the
     * registry's cumulative totals, so PGOS/RSV appear in the run
     * report without recomputation at the call sites.
     */
    void exportTo(obs::StatRegistry &reg,
                  const std::string &prefix) const;
};

/**
 * RSV (Eqs. 2-4): slide a window of W predictions across each
 * trace's prediction/label sequence; a window "violates" when the
 * expected false-positive indicator exceeds 0.5; RSV is the violating
 * fraction of windows.
 *
 * @param predictions Per-interval gate decisions of one trace.
 * @param labels Ground-truth gate labels, same length.
 * @param window W, from SlaSpec::windowPredictions().
 */
double rsvForTrace(const std::vector<uint8_t> &predictions,
                   const std::vector<uint8_t> &labels, uint64_t window);

/** Mean RSV across traces (each trace contributes one RSV value). */
double rsvOverTraces(
    const std::vector<std::vector<uint8_t>> &predictions,
    const std::vector<std::vector<uint8_t>> &labels, uint64_t window);

} // namespace psca

#endif // PSCA_CORE_METRICS_HH
