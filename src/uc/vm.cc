#include "uc/vm.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/fault.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"

namespace psca {

uint32_t
UcVm::opCost(UcOpcode op)
{
    switch (op) {
      case UcOpcode::Relu: return 6;
      case UcOpcode::Exp: return 122;
      case UcOpcode::Halt: return 0;
      default: return 1;
    }
}

uint64_t
UcProgram::staticOpCount() const
{
    uint64_t ops = 0;
    for (const auto &inst : code)
        ops += UcVm::opCost(inst.op);
    return ops;
}

size_t
UcProgram::imageBytes() const
{
    return code.size() * 8 + mem.size() * sizeof(float);
}

double
UcVm::run(const UcProgram &program, const float *inputs,
          size_t num_inputs)
{
    PSCA_ASSERT(num_inputs >= program.numInputs,
                "program expects more inputs than provided");
    if (fregs_.size() < 256)
        fregs_.assign(256, 0.0f);
    if (iregs_.size() < 64)
        iregs_.assign(64, 0);

    static obs::Counter &ops_ctr =
        obs::StatRegistry::instance().counter("uc.ops_executed");
    static obs::Counter &runs_ctr =
        obs::StatRegistry::instance().counter("uc.inferences");
    static obs::Histogram &duration_hist =
        obs::StatRegistry::instance().histogram("uc.inference_ns");
    const auto t0 = std::chrono::steady_clock::now();

    // Injected trap: abort after a seed-chosen prefix of the program,
    // as if the microcontroller faulted mid-inference. Keyed by this
    // VM's run index — inference order is serial per controller, so
    // the trap sequence is thread-count independent.
    ++runs_;
    trapped_ = false;
    size_t trap_at = program.code.size();
    const FaultSite &trap = FAULT_SITE("uc.vm_trap");
    if (trap.enabled() && trap.fires(runs_)) {
        trap_at = static_cast<size_t>(
            trap.draw(runs_, 0, program.code.size()));
    }

    ops_ = 0;
    double result = 0.0;
    bool halted = false;
    for (size_t pc = 0; pc < program.code.size(); ++pc) {
        if (halted)
            break;
        if (pc == trap_at) {
            trapped_ = true;
            break;
        }
        const auto &inst = program.code[pc];
        ops_ += opCost(inst.op);
        switch (inst.op) {
          case UcOpcode::LoadImm:
            fregs_[inst.dst] = inst.imm;
            break;
          case UcOpcode::LoadInput:
            fregs_[inst.dst] = inputs[inst.a];
            break;
          case UcOpcode::LoadInputInd:
            PSCA_ASSERT(iregs_[inst.a] >= 0 &&
                        static_cast<size_t>(iregs_[inst.a]) <
                            num_inputs,
                        "input index out of range");
            fregs_[inst.dst] =
                inputs[static_cast<size_t>(iregs_[inst.a])];
            break;
          case UcOpcode::LoadMem:
            fregs_[inst.dst] = program.mem[inst.a];
            break;
          case UcOpcode::LoadMemInd: {
            const size_t addr = static_cast<size_t>(
                iregs_[inst.a] + inst.ib);
            PSCA_ASSERT(addr < program.mem.size(),
                        "memory index out of range");
            fregs_[inst.dst] = program.mem[addr];
            break;
          }
          case UcOpcode::Move:
            fregs_[inst.dst] = fregs_[inst.a];
            break;
          case UcOpcode::Add:
            fregs_[inst.dst] = fregs_[inst.a] + fregs_[inst.b];
            break;
          case UcOpcode::Sub:
            fregs_[inst.dst] = fregs_[inst.a] - fregs_[inst.b];
            break;
          case UcOpcode::Mul:
            fregs_[inst.dst] = fregs_[inst.a] * fregs_[inst.b];
            break;
          case UcOpcode::Div:
            fregs_[inst.dst] = fregs_[inst.a] / fregs_[inst.b];
            break;
          case UcOpcode::CmpGt:
            fregs_[inst.dst] =
                fregs_[inst.a] > fregs_[inst.b] ? 1.0f : 0.0f;
            break;
          case UcOpcode::Relu:
            fregs_[inst.dst] = std::max(fregs_[inst.a], 0.0f);
            break;
          case UcOpcode::Exp:
            fregs_[inst.dst] = std::exp(fregs_[inst.a]);
            break;
          case UcOpcode::IFromF:
            iregs_[inst.dst] = static_cast<int32_t>(fregs_[inst.a]);
            break;
          case UcOpcode::ILoadImm:
            iregs_[inst.dst] = inst.ia;
            break;
          case UcOpcode::IMulAddImm:
            iregs_[inst.dst] = iregs_[inst.a] * inst.ia + inst.ib;
            break;
          case UcOpcode::IAdd:
            iregs_[inst.dst] = iregs_[inst.a] + iregs_[inst.b];
            break;
          case UcOpcode::Halt:
            result = fregs_[inst.dst];
            halted = true;
            break;
        }
    }
    total_ops_ += ops_;
    if (trapped_) {
        obs::StatRegistry::instance().counter("uc.vm_traps").add();
    } else if (!halted) {
        warn("firmware program missing Halt");
    }
    ops_ctr.add(ops_);
    runs_ctr.add();
    duration_hist.add(obs::elapsedNs(t0));
    return result;
}

} // namespace psca
