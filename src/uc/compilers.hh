/**
 * @file
 * Model-to-firmware compilers. Each compiler lowers a trained
 * adaptation model into a branch-free UcProgram (Sec. 5, Listings
 * 1-2): MLPs become sequences of load/multiply/accumulate triples
 * with Relu macro-ops; random forests become index-arithmetic tree
 * walks over full-depth node tables (trees are padded with trivial
 * comparisons so every prediction costs the same); logistic
 * regression becomes one inner product plus a branch-free sigmoid.
 *
 * Tests verify both that compiled programs reproduce the native
 * models' scores and that their executed op counts match the models'
 * advertised Table 3 costs.
 */

#ifndef PSCA_UC_COMPILERS_HH
#define PSCA_UC_COMPILERS_HH

#include "ml/linear.hh"
#include "ml/mlp.hh"
#include "ml/tree.hh"
#include "uc/vm.hh"

namespace psca {

/** Lower an MLP to firmware. */
UcProgram compileMlp(const MlpModel &model);

/** Lower a random forest to firmware (padded, branch-free trees). */
UcProgram compileForest(const RandomForest &model);

/** Lower a logistic regression to firmware. */
UcProgram compileLogistic(const LogisticRegression &model);

} // namespace psca

#endif // PSCA_UC_COMPILERS_HH
