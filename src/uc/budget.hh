/**
 * @file
 * Microcontroller computation budget (Sec. 5, Table 3 left). The CPU
 * retires up to 16,000 MIPS (2 GHz x 8-wide); the microcontroller is
 * 500 MIPS single-issue, of which 50% of cycles are safely available
 * for adaptation inference without disturbing existing real-time
 * work. A model predicting every L instructions may therefore spend
 * at most L / 32 / 2 microcontroller operations per prediction.
 */

#ifndef PSCA_UC_BUDGET_HH
#define PSCA_UC_BUDGET_HH

#include <cstdint>

namespace psca {

/** The budget arithmetic of Table 3. */
struct UcBudget
{
    double cpuMips = 16000.0;
    double ucMips = 500.0;
    double dutyAvailable = 0.5;

    /** Total microcontroller ops elapsing per L CPU instructions. */
    uint64_t
    maxOps(uint64_t granularity_instr) const
    {
        return static_cast<uint64_t>(
            static_cast<double>(granularity_instr) * ucMips / cpuMips);
    }

    /** Ops available for one prediction at granularity L. */
    uint64_t
    opsBudget(uint64_t granularity_instr) const
    {
        return static_cast<uint64_t>(
            static_cast<double>(maxOps(granularity_instr)) *
            dutyAvailable);
    }

    /**
     * Finest prediction granularity (multiple of 10k instructions,
     * 10k..10M) whose budget covers ops_per_inference; returns 0 when
     * even 10M instructions is insufficient.
     */
    uint64_t
    finestGranularity(uint64_t ops_per_inference) const
    {
        for (uint64_t l = 10000; l <= 10000000; l += 10000)
            if (opsBudget(l) >= ops_per_inference)
                return l;
        return 0;
    }
};

} // namespace psca

#endif // PSCA_UC_BUDGET_HH
