/**
 * @file
 * Firmware virtual machine modeling the paper's on-die
 * microcontroller: a 500-MIPS single-issue scalar machine with
 * integer and floating-point operations and no vector unit (Sec. 3).
 *
 * Adaptation models are compiled to straight-line, branch-free
 * programs (the paper hand-optimizes firmware to remove conditional
 * branches, Listing 2). The VM counts executed operations so the
 * Table 3 ops-per-prediction numbers are measured, not asserted:
 * every opcode costs one microcontroller operation except the two
 * macro-ops Relu (6 ops, the x87 sequence of Listing 1) and Exp
 * (122 ops, an unrolled branch-free exp()).
 */

#ifndef PSCA_UC_VM_HH
#define PSCA_UC_VM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace psca {

/** Firmware opcodes. */
enum class UcOpcode : uint8_t
{
    LoadImm,     //!< f[dst] = imm
    LoadInput,   //!< f[dst] = input[a]
    LoadInputInd,//!< f[dst] = input[i[a]]
    LoadMem,     //!< f[dst] = mem[a]
    LoadMemInd,  //!< f[dst] = mem[i[a] + b]
    Move,        //!< f[dst] = f[a]
    Add,         //!< f[dst] = f[a] + f[b]
    Sub,         //!< f[dst] = f[a] - f[b]
    Mul,         //!< f[dst] = f[a] * f[b]
    Div,         //!< f[dst] = f[a] / f[b]
    CmpGt,       //!< f[dst] = f[a] > f[b] ? 1.0 : 0.0
    Relu,        //!< f[dst] = max(f[a], 0); 6-op macro (Listing 1)
    Exp,         //!< f[dst] = exp(f[a]); 122-op macro
    IFromF,      //!< i[dst] = (int)f[a]
    ILoadImm,    //!< i[dst] = ia (immediate)
    IMulAddImm,  //!< i[dst] = i[a] * ia + ib
    IAdd,        //!< i[dst] = i[a] + i[b]
    Halt         //!< stop; f[dst] is the prediction score
};

/** One firmware instruction. */
struct UcInst
{
    UcOpcode op = UcOpcode::Halt;
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    float imm = 0.0f;
    int32_t ia = 0;
    int32_t ib = 0;
};

/** A compiled firmware program plus its constant memory image. */
struct UcProgram
{
    std::vector<UcInst> code;
    std::vector<float> mem;
    uint16_t numInputs = 0;

    /** Static operation count (what one execution will cost). */
    uint64_t staticOpCount() const;

    /** Firmware image size in bytes (code + constant memory). */
    size_t imageBytes() const;
};

/** Executes firmware programs, counting microcontroller operations. */
class UcVm
{
  public:
    /**
     * Run a program on one input vector.
     * @return The prediction score left by Halt.
     */
    double run(const UcProgram &program, const float *inputs,
               size_t num_inputs);

    /** Operations executed by the last run(). */
    uint64_t opsExecuted() const { return ops_; }

    /** Cumulative operations across all runs. */
    uint64_t totalOps() const { return total_ops_; }

    /**
     * True when the last run() hit an injected trap (uc.vm_trap
     * fault site) and aborted mid-program. The score returned by
     * that run is garbage; callers must fail safe instead of acting
     * on it.
     */
    bool trapped() const { return trapped_; }

    /** Microcode cost of an opcode in microcontroller operations. */
    static uint32_t opCost(UcOpcode op);

  private:
    std::vector<float> fregs_;
    std::vector<int32_t> iregs_;
    uint64_t ops_ = 0;
    uint64_t total_ops_ = 0;
    uint64_t runs_ = 0;
    bool trapped_ = false;
};

} // namespace psca

#endif // PSCA_UC_VM_HH
