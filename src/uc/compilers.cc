#include "uc/compilers.hh"

#include <cmath>
#include <limits>

namespace psca {

namespace {

/** Register allocation map shared by the compilers. */
constexpr uint16_t kInputBase = 0;    //!< inputs land in f[0..63]
constexpr uint16_t kBankA = 64;       //!< layer activations (even)
constexpr uint16_t kBankB = 128;      //!< layer activations (odd)
constexpr uint16_t kAcc = 250;        //!< accumulator
constexpr uint16_t kTmp = 251;
constexpr uint16_t kTmp2 = 252;
constexpr uint16_t kZero = 253;
constexpr uint16_t kOne = 254;

void
emit(UcProgram &prog, UcOpcode op, uint16_t dst, uint16_t a = 0,
     uint16_t b = 0, float imm = 0.0f, int32_t ia = 0, int32_t ib = 0)
{
    prog.code.push_back(UcInst{op, dst, a, b, imm, ia, ib});
}

/** Load the raw counter inputs into the register file. */
void
emitInputPrologue(UcProgram &prog, size_t num_inputs)
{
    PSCA_ASSERT(num_inputs <= 64, "too many inputs for register file");
    prog.numInputs = static_cast<uint16_t>(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i) {
        emit(prog, UcOpcode::LoadInput,
             static_cast<uint16_t>(kInputBase + i),
             static_cast<uint16_t>(i));
    }
}

/** sigmoid(f[src]) -> f[dst], branch-free. */
void
emitSigmoid(UcProgram &prog, uint16_t dst, uint16_t src)
{
    emit(prog, UcOpcode::LoadImm, kZero, 0, 0, 0.0f);
    emit(prog, UcOpcode::LoadImm, kOne, 0, 0, 1.0f);
    emit(prog, UcOpcode::Sub, kTmp, kZero, src);     // -z
    emit(prog, UcOpcode::Exp, kTmp, kTmp);           // exp(-z)
    emit(prog, UcOpcode::Add, kTmp, kTmp, kOne);     // 1 + exp(-z)
    emit(prog, UcOpcode::Div, dst, kOne, kTmp);      // 1 / (1+exp(-z))
}

} // namespace

UcProgram
compileMlp(const MlpModel &model)
{
    UcProgram prog;
    emitInputPrologue(prog, model.numInputs());

    const auto &sizes = model.layerSizes();
    const size_t num_layers = sizes.size() - 1;

    uint16_t in_base = kInputBase;
    for (size_t l = 0; l < num_layers; ++l) {
        const int fan_in = sizes[l];
        const int fan_out = sizes[l + 1];
        const uint16_t out_base = (l % 2 == 0) ? kBankA : kBankB;
        const bool last = l + 1 == num_layers;

        // Stash the layer's weights and biases in constant memory.
        const size_t w_base = prog.mem.size();
        const auto &w = model.weights(l);
        prog.mem.insert(prog.mem.end(), w.begin(), w.end());
        const size_t b_base = prog.mem.size();
        const auto &b = model.biases(l);
        prog.mem.insert(prog.mem.end(), b.begin(), b.end());

        for (int f = 0; f < fan_out; ++f) {
            emit(prog, UcOpcode::LoadMem, kAcc,
                 static_cast<uint16_t>(b_base + f));
            for (int i = 0; i < fan_in; ++i) {
                // The Listing 1 triple: fld / fmul / fadd.
                emit(prog, UcOpcode::LoadMem, kTmp,
                     static_cast<uint16_t>(w_base +
                                           static_cast<size_t>(f) *
                                               fan_in + i));
                emit(prog, UcOpcode::Mul, kTmp, kTmp,
                     static_cast<uint16_t>(in_base + i));
                emit(prog, UcOpcode::Add, kAcc, kAcc, kTmp);
            }
            if (last) {
                emit(prog, UcOpcode::Move,
                     static_cast<uint16_t>(out_base + f), kAcc);
            } else {
                emit(prog, UcOpcode::Relu,
                     static_cast<uint16_t>(out_base + f), kAcc);
            }
        }
        in_base = out_base;
    }

    emitSigmoid(prog, kAcc, in_base);
    emit(prog, UcOpcode::Halt, kAcc);
    return prog;
}

UcProgram
compileLogistic(const LogisticRegression &model)
{
    UcProgram prog;
    emitInputPrologue(prog, model.numInputs());

    const auto &w = model.coefficients();
    const size_t w_base = prog.mem.size();
    for (double v : w)
        prog.mem.push_back(static_cast<float>(v));
    prog.mem.push_back(static_cast<float>(model.bias()));

    emit(prog, UcOpcode::LoadMem, kAcc,
         static_cast<uint16_t>(w_base + w.size()));
    for (size_t i = 0; i < w.size(); ++i) {
        emit(prog, UcOpcode::LoadMem, kTmp,
             static_cast<uint16_t>(w_base + i));
        emit(prog, UcOpcode::Mul, kTmp, kTmp,
             static_cast<uint16_t>(kInputBase + i));
        emit(prog, UcOpcode::Add, kAcc, kAcc, kTmp);
    }
    emitSigmoid(prog, kAcc, kAcc);
    emit(prog, UcOpcode::Halt, kAcc);
    return prog;
}

namespace {

/**
 * Flatten one sparse tree into full-depth heap-order tables. Leaves
 * shallower than max depth become trivial always-left comparisons
 * whose entire subtree carries the leaf's probability (so every
 * traversal costs exactly depth levels, as in Listing 2).
 */
struct FlatTree
{
    std::vector<float> feature; //!< 2^d - 1 internal slots
    std::vector<float> thresh;
    std::vector<float> leafProb; //!< 2^d leaves

    void
    fill(const std::vector<DecisionTree::Node> &nodes, int32_t node_id,
         size_t heap_idx, int depth, int max_depth)
    {
        const auto &node = nodes[static_cast<size_t>(node_id)];
        if (depth == max_depth) {
            leafProb[heap_idx - (feature.size())] = node.prob;
            return;
        }
        if (node.feature >= 0) {
            feature[heap_idx] = static_cast<float>(node.feature);
            thresh[heap_idx] = node.threshold;
            fill(nodes, node.left, 2 * heap_idx + 1, depth + 1,
                 max_depth);
            fill(nodes, node.right, 2 * heap_idx + 2, depth + 1,
                 max_depth);
        } else {
            // Trivial comparison: x[0] > +inf is false -> go left;
            // fill both subtrees so the table is fully defined.
            feature[heap_idx] = 0.0f;
            thresh[heap_idx] = std::numeric_limits<float>::max();
            fill(nodes, node_id, 2 * heap_idx + 1, depth + 1,
                 max_depth);
            fill(nodes, node_id, 2 * heap_idx + 2, depth + 1,
                 max_depth);
        }
    }
};

} // namespace

UcProgram
compileForest(const RandomForest &model)
{
    UcProgram prog;
    emitInputPrologue(prog, model.numInputs());

    const uint16_t vote = kAcc;
    emit(prog, UcOpcode::LoadImm, vote, 0, 0, 0.0f);

    constexpr uint16_t kIdx = 1;   // integer index register
    constexpr uint16_t kICmp = 2;

    for (const auto &tree : model.trees()) {
        const int depth = tree->maxDepth();
        const size_t internal = (1ULL << depth) - 1;
        const size_t leaves = 1ULL << depth;

        FlatTree flat;
        flat.feature.assign(internal, 0.0f);
        flat.thresh.assign(internal,
                           std::numeric_limits<float>::max());
        flat.leafProb.assign(leaves, 0.5f);
        flat.fill(tree->nodes(), 0, 0, 0, depth);

        const size_t feat_base = prog.mem.size();
        prog.mem.insert(prog.mem.end(), flat.feature.begin(),
                        flat.feature.end());
        const size_t thresh_base = prog.mem.size();
        prog.mem.insert(prog.mem.end(), flat.thresh.begin(),
                        flat.thresh.end());
        const size_t leaf_base = prog.mem.size();
        prog.mem.insert(prog.mem.end(), flat.leafProb.begin(),
                        flat.leafProb.end());

        emit(prog, UcOpcode::ILoadImm, kIdx, 0, 0, 0.0f, 0);
        for (int level = 0; level < depth; ++level) {
            // The 8-op Listing 2 level: fetch feature id and
            // threshold, compare, advance the heap index.
            emit(prog, UcOpcode::LoadMemInd, kTmp, kIdx, 0, 0.0f, 0,
                 static_cast<int32_t>(feat_base));
            emit(prog, UcOpcode::IFromF, kICmp, kTmp);
            emit(prog, UcOpcode::LoadInputInd, kTmp, kICmp);
            emit(prog, UcOpcode::LoadMemInd, kTmp2, kIdx, 0, 0.0f, 0,
                 static_cast<int32_t>(thresh_base));
            emit(prog, UcOpcode::CmpGt, kTmp, kTmp, kTmp2);
            emit(prog, UcOpcode::IFromF, kICmp, kTmp);
            emit(prog, UcOpcode::IMulAddImm, kIdx, kIdx, 0, 0.0f, 2, 1);
            emit(prog, UcOpcode::IAdd, kIdx, kIdx, kICmp);
        }
        // Leaf lookup: heap leaf indices start at 2^depth - 1.
        emit(prog, UcOpcode::LoadMemInd, kTmp, kIdx, 0, 0.0f, 0,
             static_cast<int32_t>(leaf_base) -
                 static_cast<int32_t>(internal));
        emit(prog, UcOpcode::Add, vote, vote, kTmp);
    }

    // Average the votes.
    emit(prog, UcOpcode::LoadImm, kTmp, 0, 0,
         1.0f / static_cast<float>(model.trees().size()));
    emit(prog, UcOpcode::Mul, vote, vote, kTmp);
    emit(prog, UcOpcode::Halt, vote);
    return prog;
}

} // namespace psca
