/**
 * @file
 * Cache hierarchy for the clustered core: set-associative LRU caches
 * (uop cache, L1I, L1D, L2, LLC), TLBs, a per-pc stride prefetcher,
 * and a shared DRAM bandwidth model. The hierarchy converts a probe
 * at a given cycle into a completion cycle and updates telemetry.
 */

#ifndef PSCA_SIM_CACHE_HH
#define PSCA_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/bandwidth.hh"
#include "sim/config.hh"
#include "telemetry/counters.hh"

namespace psca {

/**
 * One set-associative, true-LRU, write-back cache level.
 *
 * Hot-path layout (DESIGN.md §9): tags live in a packed flat array —
 * one 64-byte line covers 8 ways — with validity encoded as a
 * sentinel tag, so the hit scan is a branch-light sweep of one array
 * and only touches recency/dirty state for the matched way. Victim
 * selection runs as a second sweep on the miss path only, and the
 * set/tag split uses shifts (the set count is asserted power-of-two),
 * never division.
 */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheConfig &cfg);

    /** Outcome of a lookup-with-fill. */
    struct Result
    {
        bool hit = false;
        bool evictedValid = false;
        bool evictedDirty = false;
    };

    /**
     * Probe for the line containing addr; on miss, fill it (evicting
     * LRU). Marks the line dirty when is_write.
     */
    Result access(uint64_t addr, bool is_write);

    /** Probe without fill or LRU update (used by tests). */
    bool contains(uint64_t addr) const;

    /** Invalidate everything. */
    void reset();

    uint32_t hitLatency() const { return cfg_.hitLatency; }

  private:
    /**
     * Empty-way marker. Real tags are address bits above the line
     * and set fields (>= 7 bits shifted away), so no reachable tag
     * can collide with it.
     */
    static constexpr uint64_t kInvalidTag = ~0ULL;

    CacheConfig cfg_;
    uint32_t numSets_;
    uint32_t lineShift_;
    uint32_t setShift_;           //!< log2(numSets_)
    std::vector<uint64_t> tags_;  //!< numSets x ways, packed
    std::vector<uint32_t> lastUse_;
    std::vector<uint8_t> dirty_;
    uint32_t useClock_ = 0;
};

/**
 * Small set-associative TLB over page numbers; same packed-tag,
 * sentinel-validity layout as CacheLevel.
 */
class Tlb
{
  public:
    Tlb(uint32_t entries, uint32_t page_bytes);

    /** Probe-and-fill; @return true on hit. */
    bool access(uint64_t addr);
    void reset();

  private:
    static constexpr uint64_t kInvalidVpn = ~0ULL;

    uint32_t sets_;
    uint32_t ways_;
    uint32_t pageShift_;
    std::vector<uint64_t> vpns_; //!< sets x ways, packed
    std::vector<uint32_t> lastUse_;
    uint32_t useClock_ = 0;
};

/**
 * Sliding window of outstanding-miss completion times, bounding the
 * memory-level parallelism of one memory execution unit.
 */
class MshrPool
{
  public:
    explicit MshrPool(int entries)
        : completions_(static_cast<size_t>(entries), 0)
    {}

    /** Earliest cycle >= t at which a new miss can allocate. */
    uint64_t
    allocAt(uint64_t t) const
    {
        return std::max(t, completions_[oldest_]);
    }

    /** Record the new miss's completion, retiring the oldest entry. */
    void
    fill(uint64_t completion)
    {
        completions_[oldest_] = completion;
        // Branch instead of modulo: the pool size is small and
        // runtime-configured, so % compiles to a hardware divide.
        if (++oldest_ == completions_.size())
            oldest_ = 0;
    }

    /** Outstanding misses at cycle t (for occupancy telemetry). */
    int
    occupancyAt(uint64_t t) const
    {
        int n = 0;
        for (uint64_t c : completions_)
            n += c > t ? 1 : 0;
        return n;
    }

    void
    reset()
    {
        std::fill(completions_.begin(), completions_.end(), 0);
        oldest_ = 0;
    }

  private:
    std::vector<uint64_t> completions_;
    size_t oldest_ = 0;
};

/**
 * The full data/instruction memory system shared by both clusters.
 * Data accesses model TLB, L1D, L2, LLC, DRAM latency and bandwidth,
 * and a per-pc stride prefetcher that hides DRAM latency (but not
 * DRAM bandwidth) for streaming access patterns.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const CoreConfig &cfg);

    /**
     * Perform a data access.
     *
     * @param addr Effective address.
     * @param is_write True for stores.
     * @param pc Static pc (prefetcher training key).
     * @param t0 Cycle the access begins (post issue/ports).
     * @param mshrs The issuing cluster's MSHR pool (miss MLP bound).
     * @param ctr Telemetry to update.
     * @return Completion cycle of the access.
     */
    uint64_t dataAccess(uint64_t addr, bool is_write, uint64_t pc,
                        uint64_t t0, MshrPool &mshrs, Counters &ctr);

    /**
     * Fetch the line containing pc through uop cache then L1I/L2.
     * @return Added fetch latency in cycles (0 on uop-cache hit).
     */
    uint32_t instAccess(uint64_t pc, Counters &ctr);

    /** Invalidate all state (caches, TLBs, prefetcher, DRAM ring). */
    void reset();

  private:
    /** Fill one line from beyond L1D; returns completion cycle. */
    uint64_t fillLine(uint64_t addr, uint64_t pc, uint64_t t0,
                      Counters &ctr);

    const CoreConfig cfg_;
    // Registry indices resolved once; familyBase() behind a
    // singleton call is too slow for the per-access path.
    uint16_t strideHistBase_;
    uint16_t l1dMissRegionBase_;
    uint16_t l2MissRegionBase_;
    CacheLevel uopCache_;
    CacheLevel l1i_;
    CacheLevel l1d_;
    CacheLevel l2_;
    CacheLevel llc_;
    Tlb itlb_;
    Tlb dtlb_;
    BandwidthRing dram_;

    /** Per-pc stride prefetch training table. */
    struct StrideEntry
    {
        uint64_t pc = 0;
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        uint8_t confidence = 0;
    };
    std::vector<StrideEntry> strideTable_;
};

} // namespace psca

#endif // PSCA_SIM_CACHE_HH
