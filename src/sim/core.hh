/**
 * @file
 * ClusteredCore: the timing model of the paper's scaled-Skylake core
 * with two 4-wide out-of-order clusters and cluster gating (Fig. 2).
 *
 * The model is timestamp-propagation style (as in interval/Sniper
 * core models): each micro-op's fetch, dispatch, issue, completion,
 * and retire cycles are computed from operand readiness and bounded
 * structural resources (ROB, per-cluster reservation stations and
 * issue ports, load ports, MSHRs, store queue, retire bandwidth,
 * DRAM fill bandwidth). This reproduces the first-order IPC contrast
 * between 8-wide (both clusters) and 4-wide (cluster 2 gated)
 * operation that the paper's gating labels depend on, at simulation
 * speeds that allow corpus-scale dataset generation.
 *
 * Cluster-gating transitions follow Sec. 3: switching to low-power
 * mode drains steering, transfers up to 32 live registers via
 * microcode on cluster 1, then clock-gates cluster 2 (tens of
 * cycles); ungating is a few cycles.
 */

#ifndef PSCA_SIM_CORE_HH
#define PSCA_SIM_CORE_HH

#include <cstdint>
#include <vector>

#include "sim/bandwidth.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "telemetry/counters.hh"
#include "trace/generator.hh"

namespace psca {

/** Timing summary of one run() call (one adaptation interval). */
struct IntervalStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    CoreMode mode = CoreMode::HighPerf;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                static_cast<double>(cycles)
                      : 0.0;
    }
};

/** The two-cluster out-of-order core with cluster gating. */
class ClusteredCore
{
  public:
    explicit ClusteredCore(const CoreConfig &cfg = CoreConfig{});

    /** Full machine reset (caches, predictor, timestamps, counters). */
    void reset();

    /**
     * Request a cluster configuration; applies the microcoded
     * transition cost when the mode actually changes.
     */
    void setMode(CoreMode mode);

    CoreMode mode() const { return mode_; }

    /**
     * Execute exactly n micro-ops from the generator.
     * @return Cycles/instructions for this interval.
     */
    IntervalStats run(TraceGenerator &gen, uint64_t n);

    /** Telemetry accumulated since reset(). */
    const Counters &counters() const { return counters_; }
    Counters &counters() { return counters_; }

    /** Retire-time horizon (total cycles since reset). */
    uint64_t currentCycle() const { return lastRetireTime_; }

    const CoreConfig &config() const { return cfg_; }

  private:
    void processUop(const MicroOp &op);
    int steer(const MicroOp &op);
    int execLatency(OpClass cls) const;

    CoreConfig cfg_;
    CoreMode mode_ = CoreMode::HighPerf;
    Counters counters_;
    MemoryHierarchy mem_;
    GshareBpred bpred_;

    // Register timestamp state.
    uint64_t regReady_[kNumArchRegs] = {};
    uint64_t regLastWriter_[kNumArchRegs] = {}; //!< writer seq number
    uint8_t regCluster_[kNumArchRegs] = {};

    // In-order structures.
    uint64_t seq_ = 0;
    std::vector<uint64_t> robRetire_;
    BandwidthRing retireRing_;
    uint64_t lastRetireTime_ = 0;

    // Frontend state.
    uint64_t fetchCycle_ = 0;
    int fetchedThisCycle_ = 0;
    uint64_t lastFetchLine_ = ~0ULL;

    // Per-cluster backend resources.
    BandwidthRing issueRing_[kNumClusters];
    BandwidthRing loadPorts_[kNumClusters];
    MshrPool mshrs_[kNumClusters];
    std::vector<uint64_t> rsIssueTime_[kNumClusters];
    uint64_t clusterSeq_[kNumClusters] = {};
    uint64_t busyIssueCycles_[kNumClusters] = {};
    int steerBalance_ = 0;

    // Store queue and forwarding.
    std::vector<uint64_t> sqFreeTime_;
    uint64_t storeSeq_ = 0;
    struct FwdEntry
    {
        uint64_t addr = ~0ULL;
        uint64_t readyTime = 0;
    };
    std::vector<FwdEntry> fwdTable_;

    // Gating transition barrier.
    uint64_t minDispatchTime_ = 0;

    // Dispatch frontier (steering's notion of "now").
    uint64_t lastDispatchTime_ = 0;

    // Interval bookkeeping.
    uint64_t intervalStartCycle_ = 0;
    uint64_t intervalBusyBase_[kNumClusters] = {};
    uint64_t intervalIssued_ = 0;

    std::vector<MicroOp> fillBuffer_;
};

} // namespace psca

#endif // PSCA_SIM_CORE_HH
