/**
 * @file
 * ClusteredCore: the timing model of the paper's scaled-Skylake core
 * with two 4-wide out-of-order clusters and cluster gating (Fig. 2).
 *
 * The model is timestamp-propagation style (as in interval/Sniper
 * core models): each micro-op's fetch, dispatch, issue, completion,
 * and retire cycles are computed from operand readiness and bounded
 * structural resources (ROB, per-cluster reservation stations and
 * issue ports, load ports, MSHRs, store queue, retire bandwidth,
 * DRAM fill bandwidth). This reproduces the first-order IPC contrast
 * between 8-wide (both clusters) and 4-wide (cluster 2 gated)
 * operation that the paper's gating labels depend on, at simulation
 * speeds that allow corpus-scale dataset generation.
 *
 * Cluster-gating transitions follow Sec. 3: switching to low-power
 * mode drains steering, transfers up to 32 live registers via
 * microcode on cluster 1, then clock-gates cluster 2 (tens of
 * cycles); ungating is a few cycles.
 *
 * Hot path (DESIGN.md §9): the replay loop consumes a pre-decoded
 * structure-of-arrays trace (trace/decoded.hh), batches all per-uop
 * telemetry into a plain-struct accumulator flushed once per
 * interval, and addresses every circular structure with wrap
 * counters instead of modulo. The original array-of-structs fill()
 * path is kept as a correctness oracle behind ReplayPath::AosOracle
 * (env PSCA_SIM_AOS=1); both paths share one processUop(), so they
 * are bit-identical by construction.
 */

#ifndef PSCA_SIM_CORE_HH
#define PSCA_SIM_CORE_HH

#include <cstdint>
#include <vector>

#include "sim/bandwidth.hh"
#include "sim/bpred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "telemetry/counters.hh"
#include "trace/decoded.hh"
#include "trace/generator.hh"

namespace psca {

/** Timing summary of one run() call (one adaptation interval). */
struct IntervalStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    CoreMode mode = CoreMode::HighPerf;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                static_cast<double>(cycles)
                      : 0.0;
    }
};

class ClusteredCore;

/**
 * One lane of a batched replay (ClusteredCore::runBatch). Each lane
 * is an independent (core, decoded-trace window) pair: the kernel
 * advances every lane one micro-op per loop trip, so the serial
 * timestamp chains of up to kMaxReplayLanes chips overlap in the
 * host's out-of-order window instead of stalling back to back.
 */
struct ReplayLane
{
    ClusteredCore *core = nullptr;
    const DecodedTrace *trace = nullptr;
    size_t begin = 0;
    uint64_t n = 0;
    IntervalStats stats; //!< out: this lane's interval summary
};

/** Which trace representation run(TraceGenerator&, n) replays. */
enum class ReplayPath : uint8_t
{
    Soa,       //!< pre-decoded structure-of-arrays (default)
    AosOracle, //!< original MicroOp fill() path (correctness oracle)
};

/**
 * Interval-local telemetry accumulator. All counter updates the core
 * itself performs are commutative integer adds, so batching them in
 * plain fixed-size arrays and flushing once per interval yields
 * byte-identical totals while keeping CounterRegistry lookups and
 * the 936-entry counter vector off the per-uop path. (The memory
 * hierarchy still writes Counters directly; its indices are cached
 * at construction.)
 */
struct HotCtrs
{
    uint64_t scalar[kNumScalarCtrs] = {};
    uint64_t cluster[kNumClusters][kNumClusterCtrs] = {};
    uint64_t robOccHist[16] = {};
    uint64_t rsOccHist[kNumClusters][16] = {};
    uint64_t sqOccHist[16] = {};
    uint64_t loadLatHist[16] = {};
    uint64_t fetchBundleHist[9] = {};
    uint64_t issueBundleHist[kNumClusters][5] = {};
    uint64_t depWaitHist[16] = {};
    uint64_t uopsPcRegion[64] = {};
    uint64_t brMispredPcRegion[64] = {};
    uint64_t opcIssued[kNumClusters][kNumOpClasses] = {};
    uint64_t opcRetired[kNumOpClasses] = {};

    void
    inc(Ctr c, uint64_t n = 1)
    {
        scalar[static_cast<size_t>(c)] += n;
    }

    void
    inc(ClusterCtr c, int cl, uint64_t n = 1)
    {
        cluster[cl][static_cast<size_t>(c)] += n;
    }

    /** Add every accumulated count into out, then zero self. */
    void flush(Counters &out);
};

/** The two-cluster out-of-order core with cluster gating. */
class ClusteredCore
{
  public:
    explicit ClusteredCore(const CoreConfig &cfg = CoreConfig{});

    /** Full machine reset (caches, predictor, timestamps, counters). */
    void reset();

    /**
     * Request a cluster configuration; applies the microcoded
     * transition cost when the mode actually changes.
     */
    void setMode(CoreMode mode);

    CoreMode mode() const { return mode_; }

    /**
     * Execute exactly n micro-ops from the generator.
     * @return Cycles/instructions for this interval.
     */
    IntervalStats run(TraceGenerator &gen, uint64_t n);

    /**
     * Execute micro-ops [begin, begin + n) of a pre-decoded trace.
     * Timing-equivalent to feeding the same stream through a
     * generator; lets one decode feed several replays.
     */
    IntervalStats run(const DecodedTrace &trace, size_t begin,
                      uint64_t n);

    /** Upper bound on runBatch lane count (state must stay cached). */
    static constexpr size_t kMaxReplayLanes = 16;

    /**
     * Advance up to kMaxReplayLanes independent (core, trace window)
     * lanes in lockstep, one micro-op per lane per loop trip. Each
     * lane's core executes exactly the processUop() sequence that
     * lanes[i].core->run(*lanes[i].trace, begin, n) would, so
     * per-core counters, cycles, and gating labels are bit-identical
     * to the serial SoA path by construction; the interleave only
     * overlaps the independent lanes' dependency chains. Fills
     * lanes[i].stats. Lanes must reference distinct cores.
     */
    static void runBatch(ReplayLane *lanes, size_t count);

    /** Select the replay representation (tests/benches). */
    void setReplayPath(ReplayPath path) { replayPath_ = path; }
    ReplayPath replayPath() const { return replayPath_; }

    /** Telemetry accumulated since reset(). */
    const Counters &counters() const { return counters_; }
    Counters &counters() { return counters_; }

    /** Retire-time horizon (total cycles since reset). */
    uint64_t currentCycle() const { return lastRetireTime_; }

    const CoreConfig &config() const { return cfg_; }

  private:
    /** Counter values snapshotted at interval start. */
    struct IntervalSnapshot
    {
        uint64_t startCycle = 0;
        uint64_t busy0 = 0;
        uint64_t busy1 = 0;
        uint64_t l1dHit = 0;
        uint64_t l1dMiss = 0;
        uint64_t l2Miss = 0;
        uint64_t llcMiss = 0;
        uint64_t branches = 0;
        uint64_t branchMiss = 0;
    };

    IntervalSnapshot beginInterval();
    IntervalStats endInterval(const IntervalSnapshot &snap, uint64_t n,
                              uint64_t elapsed_ns);
    void replayDecoded(const DecodedTrace &trace, size_t begin,
                       size_t n);
    void processUop(const MicroOp &op);
    int steer(const MicroOp &op);
    int execLatency(OpClass cls) const;

    CoreConfig cfg_;
    CoreMode mode_ = CoreMode::HighPerf;
    ReplayPath replayPath_ = ReplayPath::Soa;
    Counters counters_;
    HotCtrs hot_;
    MemoryHierarchy mem_;
    GshareBpred bpred_;

    // Register timestamp state.
    uint64_t regReady_[kNumArchRegs] = {};
    uint64_t regLastWriter_[kNumArchRegs] = {}; //!< writer seq number
    uint8_t regCluster_[kNumArchRegs] = {};

    // In-order structures. Circular indices are wrap counters (a
    // branch, not %: the sizes are runtime-configured, so % would
    // compile to a hardware divide on the per-uop path).
    uint64_t seq_ = 0;
    size_t robSlot_ = 0;
    std::vector<uint64_t> robRetire_;
    BandwidthRing retireRing_;
    uint64_t lastRetireTime_ = 0;

    // Frontend state.
    uint64_t fetchCycle_ = 0;
    int fetchedThisCycle_ = 0;
    uint64_t lastFetchLine_ = ~0ULL;

    // Per-cluster backend resources.
    BandwidthRing issueRing_[kNumClusters];
    BandwidthRing loadPorts_[kNumClusters];
    MshrPool mshrs_[kNumClusters];
    std::vector<uint64_t> rsIssueTime_[kNumClusters];
    size_t rsSlot_[kNumClusters] = {};
    uint64_t busyIssueCycles_[kNumClusters] = {};
    int steerBalance_ = 0;

    // Store queue and forwarding.
    std::vector<uint64_t> sqFreeTime_;
    size_t sqSlot_ = 0;
    struct FwdEntry
    {
        uint64_t addr = ~0ULL;
        uint64_t readyTime = 0;
    };
    std::vector<FwdEntry> fwdTable_;

    // Gating transition barrier.
    uint64_t minDispatchTime_ = 0;

    // Interval bookkeeping.
    uint64_t intervalIssued_ = 0;

    std::vector<MicroOp> fillBuffer_; //!< AoS-oracle staging
    DecodedTrace decodeBuf_;          //!< SoA staging
};

} // namespace psca

#endif // PSCA_SIM_CORE_HH
