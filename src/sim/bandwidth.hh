/**
 * @file
 * Per-cycle bandwidth accounting for the timestamp-propagation core
 * model. A BandwidthRing answers "what is the first cycle at or after
 * t with a free slot?" for bounded-capacity resources (issue ports,
 * load ports, retire slots, DRAM fill slots) using a lazily-cleared
 * circular usage array.
 */

#ifndef PSCA_SIM_BANDWIDTH_HH
#define PSCA_SIM_BANDWIDTH_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace psca {

/**
 * Sliding-window per-cycle usage counter. The window must exceed the
 * maximum spread between in-flight timestamps (bounded by the ROB
 * size times the largest latency); 2^17 cycles is ample here.
 */
class BandwidthRing
{
  public:
    /**
     * @param capacity Slots available per period.
     * @param granularity_shift log2 cycles per period (0 = per cycle;
     *        2 = one period per 4 cycles, used for DRAM fill slots).
     * @param log2_size log2 of the window size in periods.
     */
    explicit BandwidthRing(uint8_t capacity, uint32_t granularity_shift = 0,
                           uint32_t log2_size = 17)
        : used_(1ULL << log2_size, 0),
          mask_((1ULL << log2_size) - 1),
          capacity_(capacity),
          shift_(granularity_shift)
    {}

    /** Change capacity (e.g. after a mode switch). */
    void setCapacity(uint8_t capacity) { capacity_ = capacity; }
    uint8_t capacity() const { return capacity_; }

    /**
     * Reserve one slot at the first period >= earliest_cycle with
     * free capacity.
     *
     * @return The cycle of the reserved slot (aligned to the period).
     * @param was_first Optional out-flag: set true when this is the
     *        first reservation in its period (used for busy-cycle
     *        counting).
     */
    uint64_t
    reserve(uint64_t earliest_cycle, bool *was_first = nullptr)
    {
        uint64_t period = earliest_cycle >> shift_;
        advanceTo(period);
        // Periods older than the window have been forgotten; clamp.
        if (horizon_ > mask_ && period < horizon_ - mask_)
            period = horizon_ - mask_;
        while (used_[period & mask_] >= capacity_) {
            ++period;
            advanceTo(period);
        }
        if (was_first)
            *was_first = used_[period & mask_] == 0;
        ++used_[period & mask_];
        return period << shift_;
    }

    /** Usage in the period containing cycle (within the window). */
    uint8_t
    usageAt(uint64_t cycle) const
    {
        const uint64_t period = cycle >> shift_;
        if (period > horizon_ ||
            (horizon_ > mask_ && period < horizon_ - mask_)) {
            return 0;
        }
        return used_[period & mask_];
    }

    /** Forget all reservations. */
    void
    reset()
    {
        std::memset(used_.data(), 0, used_.size());
        horizon_ = 0;
    }

  private:
    /** Clear slots newly entering the window as the horizon moves. */
    void
    advanceTo(uint64_t period)
    {
        if (period <= horizon_)
            return;
        if (period - horizon_ > mask_) {
            std::memset(used_.data(), 0, used_.size());
        } else {
            for (uint64_t p = horizon_ + 1; p <= period; ++p)
                used_[p & mask_] = 0;
        }
        horizon_ = period;
    }

    std::vector<uint8_t> used_;
    uint64_t mask_;
    uint64_t horizon_ = 0;
    uint8_t capacity_;
    uint32_t shift_;
};

} // namespace psca

#endif // PSCA_SIM_BANDWIDTH_HH
