/**
 * @file
 * Tournament branch direction predictor (bimodal + gshare with a
 * per-pc chooser), in the style of the Alpha 21264. The bimodal
 * component captures per-branch bias quickly; the gshare component
 * captures history-correlated patterns such as loop trip counts.
 * Direction-only: targets are assumed available from a BTB that
 * never misses (the synthetic traces use direct branches only).
 */

#ifndef PSCA_SIM_BPRED_HH
#define PSCA_SIM_BPRED_HH

#include <cstdint>
#include <vector>

namespace psca {

/** Tournament predictor: predict-then-update in one call. */
class TournamentBpred
{
  public:
    /** @param log2_entries log2 of each component table's size. */
    explicit TournamentBpred(uint32_t log2_entries = 14)
        : bimodal_(1ULL << log2_entries, 2),
          gshare_(1ULL << log2_entries, 2),
          chooser_(1ULL << log2_entries, 2),
          mask_((1ULL << log2_entries) - 1)
    {}

    /**
     * Predict the branch at pc, then train on the actual outcome.
     * @return true if the prediction matched the outcome.
     */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const uint64_t pc_idx = (pc >> 2) & mask_;
        const uint64_t gs_idx = ((pc >> 2) ^ history_) & mask_;

        const bool bim_pred = bimodal_[pc_idx] >= 2;
        const bool gs_pred = gshare_[gs_idx] >= 2;
        const bool use_gshare = chooser_[pc_idx] >= 2;
        const bool predicted = use_gshare ? gs_pred : bim_pred;

        // Train the chooser toward the component that was right.
        if (gs_pred != bim_pred) {
            if (gs_pred == taken && chooser_[pc_idx] < 3)
                ++chooser_[pc_idx];
            else if (bim_pred == taken && chooser_[pc_idx] > 0)
                --chooser_[pc_idx];
        }
        train(bimodal_[pc_idx], taken);
        train(gshare_[gs_idx], taken);
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & 0xfff;
        return predicted == taken;
    }

    /** Clear all predictor state. */
    void
    reset()
    {
        std::fill(bimodal_.begin(), bimodal_.end(), 2);
        std::fill(gshare_.begin(), gshare_.end(), 2);
        std::fill(chooser_.begin(), chooser_.end(), 2);
        history_ = 0;
    }

  private:
    static void
    train(uint8_t &ctr, bool taken)
    {
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
    }

    std::vector<uint8_t> bimodal_;
    std::vector<uint8_t> gshare_;
    std::vector<uint8_t> chooser_;
    uint64_t mask_;
    uint64_t history_ = 0;
};

/** Backwards-compatible alias used by the core. */
using GshareBpred = TournamentBpred;

} // namespace psca

#endif // PSCA_SIM_BPRED_HH
