#include "sim/cache.hh"

#include <algorithm>
#include <bit>

namespace psca {

namespace {

uint32_t
log2Floor(uint64_t x)
{
    return static_cast<uint32_t>(63 - std::countl_zero(x));
}

/** Bucket index for the load-stride histogram. */
uint16_t
strideBucket(int64_t stride)
{
    const uint64_t mag = static_cast<uint64_t>(stride < 0 ? -stride
                                                          : stride);
    if (mag == 0)
        return 0;
    return static_cast<uint16_t>(std::min<uint32_t>(15,
        1 + log2Floor(mag)));
}

} // namespace

CacheLevel::CacheLevel(const CacheConfig &cfg)
    : cfg_(cfg),
      numSets_(cfg.sizeBytes / (cfg.lineBytes * cfg.ways)),
      lineShift_(log2Floor(cfg.lineBytes)),
      setShift_(log2Floor(numSets_ == 0 ? 1 : numSets_)),
      tags_(static_cast<size_t>(numSets_) * cfg.ways, kInvalidTag),
      lastUse_(static_cast<size_t>(numSets_) * cfg.ways, 0),
      dirty_(static_cast<size_t>(numSets_) * cfg.ways, 0)
{
    PSCA_ASSERT(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
                "cache sets must be a power of two");
}

CacheLevel::Result
CacheLevel::access(uint64_t addr, bool is_write)
{
    const uint64_t line_addr = addr >> lineShift_;
    const uint32_t set = static_cast<uint32_t>(line_addr) &
        (numSets_ - 1);
    const uint64_t tag = line_addr >> setShift_;
    const size_t base = static_cast<size_t>(set) * cfg_.ways;
    uint64_t *tags = &tags_[base];
    ++useClock_;

    Result result;
    // Hit scan: tags only (invalid ways carry the sentinel, which
    // can never match), recency/dirty touched for the hit way alone.
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        if (tags[w] == tag) {
            lastUse_[base + w] = useClock_;
            dirty_[base + w] |= is_write ? 1 : 0;
            result.hit = true;
            return result;
        }
    }

    // Miss path: replicate the classic combined scan's choice — the
    // last invalid way if any exists, else the first way holding the
    // minimum lastUse.
    uint32_t victim = 0;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        if (tags[w] == kInvalidTag) {
            victim = w;
        } else if (tags[victim] != kInvalidTag &&
                   lastUse_[base + w] < lastUse_[base + victim]) {
            victim = w;
        }
    }

    result.evictedValid = tags[victim] != kInvalidTag;
    result.evictedDirty = result.evictedValid &&
        dirty_[base + victim] != 0;
    tags[victim] = tag;
    dirty_[base + victim] = is_write ? 1 : 0;
    lastUse_[base + victim] = useClock_;
    return result;
}

bool
CacheLevel::contains(uint64_t addr) const
{
    const uint64_t line_addr = addr >> lineShift_;
    const uint32_t set = static_cast<uint32_t>(line_addr) &
        (numSets_ - 1);
    const uint64_t tag = line_addr >> setShift_;
    const uint64_t *tags = &tags_[static_cast<size_t>(set) *
                                  cfg_.ways];
    for (uint32_t w = 0; w < cfg_.ways; ++w)
        if (tags[w] == tag)
            return true;
    return false;
}

void
CacheLevel::reset()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    useClock_ = 0;
}

Tlb::Tlb(uint32_t entries, uint32_t page_bytes)
    : sets_(std::max<uint32_t>(1, entries / 4)), ways_(4),
      pageShift_(log2Floor(page_bytes)),
      vpns_(static_cast<size_t>(sets_) * ways_, kInvalidVpn),
      lastUse_(static_cast<size_t>(sets_) * ways_, 0)
{}

bool
Tlb::access(uint64_t addr)
{
    const uint64_t vpn = addr >> pageShift_;
    const uint32_t set = static_cast<uint32_t>(vpn) & (sets_ - 1);
    const size_t base = static_cast<size_t>(set) * ways_;
    uint64_t *vpns = &vpns_[base];
    ++useClock_;

    for (uint32_t w = 0; w < ways_; ++w) {
        if (vpns[w] == vpn) {
            lastUse_[base + w] = useClock_;
            return true;
        }
    }

    uint32_t victim = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (vpns[w] == kInvalidVpn) {
            victim = w;
        } else if (vpns[victim] != kInvalidVpn &&
                   lastUse_[base + w] < lastUse_[base + victim]) {
            victim = w;
        }
    }
    vpns[victim] = vpn;
    lastUse_[base + victim] = useClock_;
    return false;
}

void
Tlb::reset()
{
    std::fill(vpns_.begin(), vpns_.end(), kInvalidVpn);
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    useClock_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const CoreConfig &cfg)
    : cfg_(cfg),
      strideHistBase_(CounterRegistry::instance().familyBase(
          CtrFamily::StrideHist)),
      l1dMissRegionBase_(CounterRegistry::instance().familyBase(
          CtrFamily::L1dMissRegion)),
      l2MissRegionBase_(CounterRegistry::instance().familyBase(
          CtrFamily::L2MissRegion)),
      uopCache_({cfg.uopCacheUops * 4, 8, 64, 1}),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d),
      l2_(cfg.l2),
      llc_(cfg.llc),
      itlb_(cfg.tlbEntries, cfg.pageBytes),
      dtlb_(cfg.tlbEntries, cfg.pageBytes),
      dram_(1, log2Floor(std::max<uint32_t>(1, cfg.dramSlotCycles)), 15),
      strideTable_(256)
{}

void
MemoryHierarchy::reset()
{
    uopCache_.reset();
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    llc_.reset();
    itlb_.reset();
    dtlb_.reset();
    dram_.reset();
    std::fill(strideTable_.begin(), strideTable_.end(), StrideEntry{});
}

uint64_t
MemoryHierarchy::fillLine(uint64_t addr, uint64_t pc, uint64_t t0,
                          Counters &ctr)
{
    // L2 probe.
    const auto l2_res = l2_.access(addr, false);
    if (l2_res.hit) {
        ctr.inc(Ctr::L2Hit);
        return t0 + l2_.hitLatency();
    }
    ctr.inc(Ctr::L2Miss);
    ctr.inc(static_cast<uint16_t>(
        l2MissRegionBase_ + ((addr >> 24) & 63)));
    if (l2_res.evictedValid) {
        ctr.inc(l2_res.evictedDirty ? Ctr::L2DirtyEvict
                                    : Ctr::L2SilentEvict);
    }

    // LLC probe.
    if (llc_.access(addr, false).hit) {
        ctr.inc(Ctr::LlcHit);
        return t0 + llc_.hitLatency();
    }
    ctr.inc(Ctr::LlcMiss);

    // DRAM: latency plus a shared fill-bandwidth slot. A stride
    // prefetcher with confident history hides the latency (the
    // prefetch was launched a full memory latency ago) but still
    // consumes a fill slot, so streams are bandwidth-bound.
    StrideEntry &se = strideTable_[(pc >> 2) & 255];
    const bool prefetched = se.pc == pc && se.confidence >= 2 &&
        static_cast<int64_t>(addr - se.lastAddr) == se.stride;

    ctr.inc(Ctr::MemReads);
    ctr.inc(Ctr::MemBytesRead, 64);

    if (prefetched) {
        const uint64_t launch =
            t0 > cfg_.memLatency ? t0 - cfg_.memLatency : 0;
        const uint64_t slot = dram_.reserve(launch);
        return std::max(t0 + l2_.hitLatency(),
                        slot + cfg_.dramSlotCycles);
    }
    const uint64_t slot = dram_.reserve(t0 + llc_.hitLatency());
    return slot + cfg_.memLatency;
}

uint64_t
MemoryHierarchy::dataAccess(uint64_t addr, bool is_write, uint64_t pc,
                            uint64_t t0, MshrPool &mshrs, Counters &ctr)
{
    ctr.inc(is_write ? Ctr::L1dWrite : Ctr::L1dRead);

    // Train the stride prefetcher (all L1D traffic, reads and
    // writes) and record the stride histogram.
    StrideEntry &se = strideTable_[(pc >> 2) & 255];
    if (se.pc == pc) {
        const int64_t stride = static_cast<int64_t>(addr) -
            static_cast<int64_t>(se.lastAddr);
        ctr.inc(static_cast<uint16_t>(
            strideHistBase_ + strideBucket(stride)));
        if (stride == se.stride && stride != 0) {
            if (se.confidence < 7)
                ++se.confidence;
        } else {
            se.stride = stride;
            se.confidence = 0;
        }
    } else {
        se.pc = pc;
        se.stride = 0;
        se.confidence = 0;
    }

    // TLB.
    uint64_t t = t0;
    if (dtlb_.access(addr)) {
        ctr.inc(Ctr::DtlbHit);
    } else {
        ctr.inc(Ctr::DtlbMiss);
        t += cfg_.tlbMissPenalty;
    }

    // L1D probe.
    const auto l1_res = l1d_.access(addr, is_write);
    uint64_t completion;
    if (l1_res.hit) {
        ctr.inc(Ctr::L1dHit);
        completion = t + l1d_.hitLatency();
    } else {
        ctr.inc(Ctr::L1dMiss);
        ctr.inc(static_cast<uint16_t>(
            l1dMissRegionBase_ + ((addr >> 24) & 63)));
        // L1D writebacks propagate into L2 state.
        if (l1_res.evictedDirty)
            l2_.access(addr ^ 0x40, true);

        const uint64_t start = mshrs.allocAt(t + l1d_.hitLatency());
        if (start > t + l1d_.hitLatency())
            ctr.inc(Ctr::MshrFullStalls);
        completion = fillLine(addr, pc, start, ctr);
        mshrs.fill(completion);
    }

    se.lastAddr = addr;
    return completion;
}

uint32_t
MemoryHierarchy::instAccess(uint64_t pc, Counters &ctr)
{
    // Uop-cache first: hits bypass decode and the L1I.
    if (uopCache_.access(pc, false).hit) {
        ctr.inc(Ctr::UopCacheHit);
        return 0;
    }
    ctr.inc(Ctr::UopCacheMiss);

    if (!itlb_.access(pc)) {
        ctr.inc(Ctr::ItlbMiss);
        return cfg_.tlbMissPenalty;
    }
    ctr.inc(Ctr::ItlbHit);

    if (l1i_.access(pc, false).hit) {
        ctr.inc(Ctr::L1iHit);
        return l1i_.hitLatency();
    }
    ctr.inc(Ctr::L1iMiss);
    if (l2_.access(pc, false).hit) {
        ctr.inc(Ctr::L2Hit);
        return l1i_.hitLatency() + l2_.hitLatency();
    }
    ctr.inc(Ctr::L2Miss);
    if (llc_.access(pc, false).hit) {
        ctr.inc(Ctr::LlcHit);
        return l1i_.hitLatency() + llc_.hitLatency();
    }
    ctr.inc(Ctr::LlcMiss);
    ctr.inc(Ctr::MemReads);
    ctr.inc(Ctr::MemBytesRead, 64);
    return l1i_.hitLatency() + cfg_.memLatency;
}

} // namespace psca
