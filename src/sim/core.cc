#include "sim/core.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>

#include "common/env.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"

namespace psca {

namespace {

/**
 * Registry hooks for the simulator hot path. References are resolved
 * once (registry objects are never deallocated) so the per-interval
 * cost is a handful of plain uint64_t adds.
 */
struct SimObs
{
    obs::Counter &intervals;
    obs::Counter &instructions;
    obs::Counter &cycles;
    obs::Counter &replayNs;
    obs::Counter &l1dHits;
    obs::Counter &l1dMisses;
    obs::Counter &l2Misses;
    obs::Counter &llcMisses;
    obs::Counter &bpredHits;
    obs::Counter &bpredMisses;
    obs::Counter &modeSwitches;

    static SimObs &
    get()
    {
        auto &reg = obs::StatRegistry::instance();
        static SimObs hooks{
            reg.counter("sim.intervals"),
            reg.counter("sim.instructions_retired"),
            reg.counter("sim.cycles"),
            reg.counter("sim.replay_ns"),
            reg.counter("sim.l1d_hits"),
            reg.counter("sim.l1d_misses"),
            reg.counter("sim.l2_misses"),
            reg.counter("sim.llc_misses"),
            reg.counter("sim.bpred_hits"),
            reg.counter("sim.bpred_misses"),
            reg.counter("sim.mode_switches"),
        };
        return hooks;
    }
};

/** Bucket a residency/latency value into a 16-bucket histogram. */
uint16_t
residencyBucket(uint64_t v)
{
    // Buckets: 0,1,2,3,4-7,8-15,...; log-ish spacing.
    if (v < 4)
        return static_cast<uint16_t>(v);
    return static_cast<uint16_t>(
        std::min(15, 65 - std::countl_zero(v)));
}

} // namespace

void
HotCtrs::flush(Counters &out)
{
    const auto &reg = CounterRegistry::instance();
    for (size_t i = 0; i < kNumScalarCtrs; ++i)
        if (scalar[i])
            out.inc(static_cast<uint16_t>(i), scalar[i]);
    for (int c = 0; c < kNumClusters; ++c)
        for (size_t e = 0; e < kNumClusterCtrs; ++e)
            if (cluster[c][e])
                out.inc(reg.index(static_cast<ClusterCtr>(e), c),
                        cluster[c][e]);

    const auto family = [&](CtrFamily f, const uint64_t *vals,
                            size_t n) {
        const uint16_t base = reg.familyBase(f);
        for (size_t i = 0; i < n; ++i)
            if (vals[i])
                out.inc(static_cast<uint16_t>(base + i), vals[i]);
    };
    family(CtrFamily::RobOccHist, robOccHist, 16);
    family(CtrFamily::RsOccHistC0, rsOccHist[0], 16);
    family(CtrFamily::RsOccHistC1, rsOccHist[1], 16);
    family(CtrFamily::SqOccHist, sqOccHist, 16);
    family(CtrFamily::LoadLatHist, loadLatHist, 16);
    family(CtrFamily::FetchBundleHist, fetchBundleHist, 9);
    family(CtrFamily::IssueBundleHistC0, issueBundleHist[0], 5);
    family(CtrFamily::IssueBundleHistC1, issueBundleHist[1], 5);
    family(CtrFamily::DepWaitHist, depWaitHist, 16);
    family(CtrFamily::UopsPcRegion, uopsPcRegion, 64);
    family(CtrFamily::BrMispredPcRegion, brMispredPcRegion, 64);
    family(CtrFamily::OpcIssuedC0, opcIssued[0], kNumOpClasses);
    family(CtrFamily::OpcIssuedC1, opcIssued[1], kNumOpClasses);
    family(CtrFamily::OpcRetired, opcRetired, kNumOpClasses);

    *this = HotCtrs{};
}

ClusteredCore::ClusteredCore(const CoreConfig &cfg)
    : cfg_(cfg),
      mem_(cfg),
      retireRing_(static_cast<uint8_t>(cfg.retireWidth)),
      issueRing_{
          BandwidthRing(static_cast<uint8_t>(cfg.issueWidthPerCluster)),
          BandwidthRing(static_cast<uint8_t>(cfg.issueWidthPerCluster))},
      loadPorts_{
          BandwidthRing(static_cast<uint8_t>(cfg.loadPortsPerCluster)),
          BandwidthRing(static_cast<uint8_t>(cfg.loadPortsPerCluster))},
      mshrs_{MshrPool(cfg.mshrsPerCluster),
             MshrPool(cfg.mshrsPerCluster)}
{
    robRetire_.assign(static_cast<size_t>(cfg.robSize), 0);
    for (int c = 0; c < kNumClusters; ++c)
        rsIssueTime_[c].assign(static_cast<size_t>(cfg.rsSizePerCluster),
                               0);
    sqFreeTime_.assign(static_cast<size_t>(cfg.sqSize), 0);
    fwdTable_.assign(64, FwdEntry{});
    // Staging buffers are sized once here so steady-state replay
    // never reallocates.
    fillBuffer_.reserve(2048);
    decodeBuf_.reserve(4096);

    if (env::flagOr("PSCA_SIM_AOS", false))
        replayPath_ = ReplayPath::AosOracle;
}

void
ClusteredCore::reset()
{
    mode_ = CoreMode::HighPerf;
    counters_.reset();
    hot_ = HotCtrs{};
    mem_.reset();
    bpred_.reset();
    std::fill(std::begin(regReady_), std::end(regReady_), 0);
    // "Written long ago": forces the first touch of each register to
    // re-latch its strand round-robin (unsigned distance wraps huge).
    std::fill(std::begin(regLastWriter_), std::end(regLastWriter_),
              ~0ULL - (1ULL << 32));
    std::fill(std::begin(regCluster_), std::end(regCluster_), 0);
    seq_ = 0;
    robSlot_ = 0;
    std::fill(robRetire_.begin(), robRetire_.end(), 0);
    retireRing_.reset();
    lastRetireTime_ = 0;
    fetchCycle_ = 0;
    fetchedThisCycle_ = 0;
    lastFetchLine_ = ~0ULL;
    for (int c = 0; c < kNumClusters; ++c) {
        issueRing_[c].reset();
        loadPorts_[c].reset();
        mshrs_[c].reset();
        std::fill(rsIssueTime_[c].begin(), rsIssueTime_[c].end(), 0);
        rsSlot_[c] = 0;
        busyIssueCycles_[c] = 0;
    }
    steerBalance_ = 0;
    std::fill(sqFreeTime_.begin(), sqFreeTime_.end(), 0);
    sqSlot_ = 0;
    std::fill(fwdTable_.begin(), fwdTable_.end(), FwdEntry{});
    minDispatchTime_ = 0;
    intervalIssued_ = 0;
}

void
ClusteredCore::setMode(CoreMode mode)
{
    if (mode == mode_)
        return;
    counters_.inc(Ctr::ModeSwitches);
    SimObs::get().modeSwitches.add();
    if (mode == CoreMode::LowPower) {
        // Count registers live on cluster 1; each needs a microcoded
        // transfer uop on cluster 0 (Sec. 3: up to 32, low tens of
        // cycles, execution continues on cluster 0).
        int live = 0;
        for (int r = 0; r < kNumArchRegs; ++r)
            live += regCluster_[r] == 1 ? 1 : 0;
        live = std::min(live, cfg_.gateMicrocodeUops);
        const uint64_t penalty =
            static_cast<uint64_t>(cfg_.gateOverheadCycles) +
            static_cast<uint64_t>(
                (live + cfg_.issueWidthPerCluster - 1) /
                cfg_.issueWidthPerCluster);
        minDispatchTime_ =
            std::max(minDispatchTime_, lastRetireTime_ + penalty);
        for (int r = 0; r < kNumArchRegs; ++r) {
            if (regCluster_[r] == 1) {
                regCluster_[r] = 0;
                regReady_[r] =
                    std::max(regReady_[r], minDispatchTime_);
            }
        }
    } else {
        minDispatchTime_ = std::max(
            minDispatchTime_,
            lastRetireTime_ +
                static_cast<uint64_t>(cfg_.ungateOverheadCycles));
    }
    mode_ = mode;
}

int
ClusteredCore::execLatency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu: return cfg_.latIntAlu;
      case OpClass::IntMul: return cfg_.latIntMul;
      case OpClass::IntDiv: return cfg_.latIntDiv;
      case OpClass::FpAdd: return cfg_.latFpAdd;
      case OpClass::FpMul: return cfg_.latFpMul;
      case OpClass::FpDiv: return cfg_.latFpDiv;
      case OpClass::FpFma: return cfg_.latFpFma;
      case OpClass::Store: return cfg_.latStore;
      case OpClass::Branch: return cfg_.latBranch;
      default: return 1;
    }
}

int
ClusteredCore::steer(const MicroOp &op)
{
    if (mode_ == CoreMode::LowPower)
        return 0;

    // Dependence-aware steering:
    //  1. read-modify-write uops extend a dependency chain; keep the
    //     chain on its cluster (the inter-cluster forwarding penalty
    //     would otherwise serialize into the chain's critical path);
    //  2. uops reading a value that was produced very recently and is
    //     still in flight follow the producer;
    //  3. everything else starts a new strand and is placed
    //     round-robin, spreading independent work (and its load-port
    //     and MSHR demand) across both clusters.
    int cluster = -1;
    if (op.dst != kNoReg &&
        (op.dst == op.src0 || op.dst == op.src1) &&
        seq_ - regLastWriter_[op.dst] <= 64) {
        // Live chain extension; stale chains re-latch round-robin so
        // phase changes redistribute work.
        cluster = regCluster_[op.dst];
    } else {
        for (int8_t src : {op.src0, op.src1}) {
            if (src == kNoReg)
                continue;
            if (seq_ - regLastWriter_[src] <= 8) {
                cluster = regCluster_[src];
                break;
            }
        }
    }

    if (cluster < 0) {
        cluster = steerBalance_ >= 0 ? 1 : 0;
        steerBalance_ += cluster == 0 ? 1 : -1;
    }
    return cluster;
}

void
ClusteredCore::processUop(const MicroOp &op)
{
    // ---- Fetch -------------------------------------------------------
    if (fetchedThisCycle_ >= cfg_.fetchWidth) {
        ++hot_.fetchBundleHist[std::min(fetchedThisCycle_, 8)];
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }
    const uint64_t line = op.pc >> 6;
    if (line != lastFetchLine_) {
        const uint32_t miss_lat = mem_.instAccess(op.pc, counters_);
        if (miss_lat > 0) {
            fetchCycle_ += miss_lat;
            fetchedThisCycle_ = 0;
            hot_.inc(Ctr::FetchStallCycles, miss_lat);
        }
        lastFetchLine_ = line;
    }
    const uint64_t fetch_time = fetchCycle_;
    ++fetchedThisCycle_;
    hot_.inc(Ctr::DecodeUops);
    ++hot_.uopsPcRegion[(op.pc >> 12) & 63];

    // ---- Dispatch ----------------------------------------------------
    const int cluster = steer(op);
    uint64_t dispatch = fetch_time +
        static_cast<uint64_t>(cfg_.frontendDepth);
    dispatch = std::max(dispatch, minDispatchTime_);

    // Stall checks are branchless (flag-add + max): the conditions
    // are data-dependent and mispredict heavily; the counted totals
    // are identical.
    const uint64_t rob_free = robRetire_[robSlot_];
    hot_.scalar[static_cast<size_t>(Ctr::RobFullStalls)] +=
        rob_free > dispatch;
    dispatch = std::max(dispatch, rob_free);
    const size_t rs_slot = rsSlot_[cluster];
    const uint64_t rs_free = rsIssueTime_[cluster][rs_slot];
    hot_.cluster[cluster][static_cast<size_t>(
        ClusterCtr::RsFullStalls)] += rs_free > dispatch;
    dispatch = std::max(dispatch, rs_free);
    size_t sq_slot = 0;
    if (op.isStore()) {
        sq_slot = sqSlot_;
        if (sqFreeTime_[sq_slot] > dispatch) {
            dispatch = sqFreeTime_[sq_slot];
            hot_.inc(Ctr::SqFullStalls);
        }
    }
    hot_.inc(Ctr::UopsDispatched);

    // ---- Operand readiness --------------------------------------------
    // Branchless readiness: invalid sources read slot 0 and
    // contribute t = 0, which never raises `ready`.
    uint64_t ready = dispatch + 1;
    int num_srcs = 0;
    const bool hp = mode_ == CoreMode::HighPerf;
    const uint64_t fwd_delay =
        static_cast<uint64_t>(cfg_.interClusterFwdDelay);
    for (int8_t src : {op.src0, op.src1}) {
        const bool valid = src != kNoReg;
        const size_t idx = valid ? static_cast<size_t>(src) : 0;
        const bool cross = valid && hp && regCluster_[idx] != cluster;
        const uint64_t t =
            (valid ? regReady_[idx] : 0) + (cross ? fwd_delay : 0);
        num_srcs += valid;
        hot_.scalar[static_cast<size_t>(Ctr::InterClusterFwd)] += cross;
        ready = std::max(ready, t);
    }
    hot_.inc(Ctr::PhysRegRefs, static_cast<uint64_t>(num_srcs));
    const bool dep_stall = ready > dispatch + 1;
    hot_.scalar[static_cast<size_t>(Ctr::UopsReady)] += !dep_stall;
    hot_.scalar[static_cast<size_t>(Ctr::UopsStalledOnDep)] +=
        dep_stall;
    const uint64_t wait = dep_stall ? ready - (dispatch + 1) : 0;
    hot_.inc(Ctr::DepWaitSum, wait);
    hot_.depWaitHist[residencyBucket(wait)] += dep_stall;

    // ---- Issue --------------------------------------------------------
    bool first_in_cycle = false;
    uint64_t issue = issueRing_[cluster].reserve(ready, &first_in_cycle);
    busyIssueCycles_[cluster] += first_in_cycle;
    if (op.isLoad())
        issue = std::max(issue, loadPorts_[cluster].reserve(issue));

    hot_.inc(Ctr::UopsIssuedTotal);
    ++intervalIssued_;
    hot_.inc(ClusterCtr::UopsIssued, cluster);
    ++hot_.opcIssued[cluster][static_cast<size_t>(op.cls)];
    {
        const uint8_t used = issueRing_[cluster].usageAt(issue);
        ++hot_.issueBundleHist[cluster][std::min<uint8_t>(used, 4)];
    }

    // ---- Execute ------------------------------------------------------
    uint64_t completion;
    if (op.isLoad()) {
        hot_.inc(ClusterCtr::LoadsIssued, cluster);
        const FwdEntry &fwd = fwdTable_[(op.addr >> 3) & 63];
        if (fwd.addr == op.addr && fwd.readyTime + 256 > issue) {
            // Store-to-load forwarding from the store queue.
            hot_.inc(Ctr::StoreForwards);
            hot_.inc(Ctr::L1dRead);
            hot_.inc(Ctr::L1dHit);
            completion = std::max(issue, fwd.readyTime) +
                static_cast<uint64_t>(cfg_.storeForwardLatency);
        } else {
            completion = mem_.dataAccess(op.addr, false, op.pc, issue,
                                         mshrs_[cluster], counters_);
        }
        const uint64_t lat = completion - issue;
        hot_.inc(Ctr::LoadLatSum, lat);
        ++hot_.loadLatHist[residencyBucket(lat)];
        hot_.inc(Ctr::MshrOccSum, static_cast<uint64_t>(
            mshrs_[cluster].occupancyAt(issue)));
    } else if (op.isStore()) {
        hot_.inc(ClusterCtr::StoresIssued, cluster);
        completion = issue + static_cast<uint64_t>(cfg_.latStore);
        // The cache write happens post-retirement; model its state
        // effects now and free the SQ entry when it completes.
        const uint64_t write_done = mem_.dataAccess(
            op.addr, true, op.pc, completion, mshrs_[cluster],
            counters_);
        sqFreeTime_[sq_slot] = write_done + 1;
        if (++sqSlot_ == sqFreeTime_.size())
            sqSlot_ = 0;
        hot_.inc(Ctr::SqOccSum, write_done - dispatch);
        ++hot_.sqOccHist[residencyBucket(write_done - dispatch)];
        FwdEntry &slot = fwdTable_[(op.addr >> 3) & 63];
        slot.addr = op.addr;
        slot.readyTime = completion;
    } else {
        completion = issue +
            static_cast<uint64_t>(execLatency(op.cls));
    }
    hot_.inc(ClusterCtr::EuBusySum, cluster, completion - issue);

    if (op.dst != kNoReg) {
        regReady_[op.dst] = completion;
        regCluster_[op.dst] = static_cast<uint8_t>(cluster);
        regLastWriter_[op.dst] = seq_;
    }

    // ---- Branch resolution ---------------------------------------------
    if (op.isBranch()) {
        hot_.inc(Ctr::BranchesRetired);
        hot_.scalar[static_cast<size_t>(Ctr::BranchTakenRetired)] +=
            op.branchTaken;
        const bool correct =
            bpred_.predictAndUpdate(op.pc, op.branchTaken);
        if (!correct) {
            hot_.inc(Ctr::BranchMispred);
            ++hot_.brMispredPcRegion[(op.pc >> 6) & 63];
            const uint64_t resolve = completion;
            const uint64_t redirect = resolve +
                static_cast<uint64_t>(cfg_.mispredictPenalty);
            if (redirect > fetchCycle_) {
                const uint64_t flushed = std::min<uint64_t>(
                    static_cast<uint64_t>(robRetire_.size()),
                    (redirect - fetch_time) *
                        static_cast<uint64_t>(cfg_.fetchWidth) / 2);
                hot_.inc(Ctr::WrongPathUopsFlushed, flushed);
                hot_.inc(Ctr::FetchStallCycles,
                         redirect - fetchCycle_);
                fetchCycle_ = redirect;
                fetchedThisCycle_ = 0;
            }
        }
    }

    // ---- Retire ---------------------------------------------------------
    uint64_t retire = std::max(completion + 1, lastRetireTime_);
    retire = retireRing_.reserve(retire);
    lastRetireTime_ = std::max(lastRetireTime_, retire);
    robRetire_[robSlot_] = retire + 1;
    if (++robSlot_ == robRetire_.size())
        robSlot_ = 0;
    rsIssueTime_[cluster][rs_slot] = issue + 1;
    if (++rsSlot_[cluster] == rsIssueTime_[cluster].size())
        rsSlot_[cluster] = 0;
    ++seq_;

    hot_.inc(Ctr::InstRetired);
    hot_.inc(Ctr::UopsRetired);
    ++hot_.opcRetired[static_cast<size_t>(op.cls)];
    hot_.scalar[static_cast<size_t>(Ctr::LoadsRetired)] +=
        op.isLoad();
    hot_.scalar[static_cast<size_t>(Ctr::StoresRetired)] +=
        op.isStore();
    const bool fp = op.isFp();
    const bool intop = !fp &&
        (op.cls == OpClass::IntAlu || op.cls == OpClass::IntMul ||
         op.cls == OpClass::IntDiv);
    hot_.scalar[static_cast<size_t>(Ctr::FpOpsRetired)] += fp;
    hot_.scalar[static_cast<size_t>(Ctr::IntOpsRetired)] += intop;

    const uint64_t rob_res = retire - dispatch;
    hot_.inc(Ctr::RobOccSum, rob_res);
    ++hot_.robOccHist[residencyBucket(rob_res)];
    const uint64_t rs_res = issue - dispatch;
    hot_.inc(ClusterCtr::RsOccSum, cluster, rs_res);
    ++hot_.rsOccHist[cluster][residencyBucket(rs_res)];
}

void
ClusteredCore::replayDecoded(const DecodedTrace &trace, size_t begin,
                             size_t n)
{
    const uint64_t *pc = trace.pc();
    const uint64_t *addr = trace.addr();
    const uint8_t *cls = trace.cls();
    const int8_t *dst = trace.dst();
    const int8_t *src0 = trace.src0();
    const int8_t *src1 = trace.src1();
    const uint8_t *taken = trace.taken();

    for (size_t i = begin; i < begin + n; ++i) {
        MicroOp op;
        op.pc = pc[i];
        op.addr = addr[i];
        op.cls = static_cast<OpClass>(cls[i]);
        op.dst = dst[i];
        op.src0 = src0[i];
        op.src1 = src1[i];
        op.branchTaken = taken[i] != 0;
        processUop(op);
    }
}

ClusteredCore::IntervalSnapshot
ClusteredCore::beginInterval()
{
    // hot_ is always empty here (flushed at the end of the previous
    // interval), so counters_ alone is the complete state.
    IntervalSnapshot s;
    s.startCycle = lastRetireTime_;
    s.busy0 = busyIssueCycles_[0];
    s.busy1 = busyIssueCycles_[1];
    s.l1dHit = counters_.value(Ctr::L1dHit);
    s.l1dMiss = counters_.value(Ctr::L1dMiss);
    s.l2Miss = counters_.value(Ctr::L2Miss);
    s.llcMiss = counters_.value(Ctr::LlcMiss);
    s.branches = counters_.value(Ctr::BranchesRetired);
    s.branchMiss = counters_.value(Ctr::BranchMispred);
    intervalIssued_ = 0;
    return s;
}

IntervalStats
ClusteredCore::endInterval(const IntervalSnapshot &snap, uint64_t n,
                           uint64_t elapsed_ns)
{
    IntervalStats stats;
    stats.instructions = n;
    stats.cycles =
        std::max<uint64_t>(1, lastRetireTime_ - snap.startCycle);
    stats.mode = mode_;

    // The per-uop accumulator lands in the counter vector exactly
    // once per interval, before anything below reads counters_.
    hot_.flush(counters_);

    counters_.inc(Ctr::Cycles, stats.cycles);
    if (mode_ == CoreMode::LowPower)
        counters_.inc(Ctr::GatedCycles, stats.cycles);

    // Whole-interval derived counters.
    const uint64_t busy = std::max(busyIssueCycles_[0] - snap.busy0,
                                   busyIssueCycles_[1] - snap.busy1);
    counters_.inc(Ctr::StallCount,
                  stats.cycles > busy ? stats.cycles - busy : 0);
    const int active_clusters = mode_ == CoreMode::HighPerf ? 2 : 1;
    const uint64_t slots = stats.cycles *
        static_cast<uint64_t>(cfg_.issueWidthPerCluster) *
        static_cast<uint64_t>(active_clusters);
    counters_.inc(Ctr::IssueSlotsUnused,
                  slots > intervalIssued_ ? slots - intervalIssued_ : 0);
    counters_.syncMirrors();

    SimObs &so = SimObs::get();
    so.intervals.add();
    so.instructions.add(n);
    so.cycles.add(stats.cycles);
    so.replayNs.add(elapsed_ns);
    so.l1dHits.add(counters_.value(Ctr::L1dHit) - snap.l1dHit);
    so.l1dMisses.add(counters_.value(Ctr::L1dMiss) - snap.l1dMiss);
    so.l2Misses.add(counters_.value(Ctr::L2Miss) - snap.l2Miss);
    so.llcMisses.add(counters_.value(Ctr::LlcMiss) - snap.llcMiss);
    const uint64_t br =
        counters_.value(Ctr::BranchesRetired) - snap.branches;
    const uint64_t br_miss =
        counters_.value(Ctr::BranchMispred) - snap.branchMiss;
    so.bpredMisses.add(br_miss);
    so.bpredHits.add(br > br_miss ? br - br_miss : 0);
    return stats;
}

IntervalStats
ClusteredCore::run(TraceGenerator &gen, uint64_t n)
{
    const auto t0 = std::chrono::steady_clock::now();
    const IntervalSnapshot snap = beginInterval();

    uint64_t remaining = n;
    if (replayPath_ == ReplayPath::AosOracle) {
        while (remaining > 0) {
            const size_t chunk = static_cast<size_t>(
                std::min<uint64_t>(remaining, 2048));
            fillBuffer_.clear();
            gen.fill(fillBuffer_, chunk);
            for (const MicroOp &op : fillBuffer_)
                processUop(op);
            remaining -= chunk;
        }
    } else {
        while (remaining > 0) {
            const size_t chunk = static_cast<size_t>(
                std::min<uint64_t>(remaining, 4096));
            decodeBuf_.clear();
            gen.fillDecoded(decodeBuf_, chunk);
            replayDecoded(decodeBuf_, 0, chunk);
            remaining -= chunk;
        }
    }
    return endInterval(snap, n, obs::elapsedNs(t0));
}

void
ClusteredCore::runBatch(ReplayLane *lanes, size_t count)
{
    PSCA_ASSERT(count > 0 && count <= kMaxReplayLanes,
                "runBatch lane count out of range");
    const auto t0 = std::chrono::steady_clock::now();

    // Per-lane replay cursors, compacted as lanes finish.
    struct Cursor
    {
        ClusteredCore *core;
        const uint64_t *pc;
        const uint64_t *addr;
        const uint8_t *cls;
        const int8_t *dst;
        const int8_t *src0;
        const int8_t *src1;
        const uint8_t *taken;
        size_t pos;
        size_t end;
        size_t lane; //!< index into lanes[] (for stats writeback)
    };
    Cursor cur[kMaxReplayLanes];
    IntervalSnapshot snaps[kMaxReplayLanes];

    size_t live = 0;
    for (size_t i = 0; i < count; ++i) {
        ReplayLane &ln = lanes[i];
        PSCA_ASSERT(ln.core && ln.trace, "runBatch lane unset");
        PSCA_ASSERT(ln.begin + ln.n <= ln.trace->size(),
                    "batched replay range out of bounds");
        snaps[i] = ln.core->beginInterval();
        if (ln.n == 0)
            continue;
        Cursor &c = cur[live++];
        c.core = ln.core;
        c.pc = ln.trace->pc();
        c.addr = ln.trace->addr();
        c.cls = ln.trace->cls();
        c.dst = ln.trace->dst();
        c.src0 = ln.trace->src0();
        c.src1 = ln.trace->src1();
        c.taken = ln.trace->taken();
        c.pos = ln.begin;
        c.end = ln.begin + static_cast<size_t>(ln.n);
        c.lane = i;
    }

    while (live > 0) {
        // Trips all live lanes can take without a bounds check.
        size_t step = cur[0].end - cur[0].pos;
        for (size_t j = 1; j < live; ++j)
            step = std::min(step, cur[j].end - cur[j].pos);

        for (size_t s = 0; s < step; ++s) {
            for (size_t j = 0; j < live; ++j) {
                Cursor &c = cur[j];
                const size_t i = c.pos + s;
                MicroOp op;
                op.pc = c.pc[i];
                op.addr = c.addr[i];
                op.cls = static_cast<OpClass>(c.cls[i]);
                op.dst = c.dst[i];
                op.src0 = c.src0[i];
                op.src1 = c.src1[i];
                op.branchTaken = c.taken[i] != 0;
                c.core->processUop(op);
            }
        }

        // Advance and compact finished lanes.
        size_t kept = 0;
        for (size_t j = 0; j < live; ++j) {
            cur[j].pos += step;
            if (cur[j].pos < cur[j].end)
                cur[kept++] = cur[j];
        }
        live = kept;
    }

    // Wall time is attributed evenly: only the batch total is
    // meaningful, and sim.replay_ns is process accounting, not a
    // result stat.
    const uint64_t elapsed = obs::elapsedNs(t0);
    for (size_t i = 0; i < count; ++i) {
        ReplayLane &ln = lanes[i];
        ln.stats = ln.core->endInterval(snaps[i], ln.n,
                                        elapsed / count);
    }
}

IntervalStats
ClusteredCore::run(const DecodedTrace &trace, size_t begin, uint64_t n)
{
    PSCA_ASSERT(begin + n <= trace.size(),
                "decoded replay range out of bounds");
    const auto t0 = std::chrono::steady_clock::now();
    const IntervalSnapshot snap = beginInterval();
    replayDecoded(trace, begin, static_cast<size_t>(n));
    return endInterval(snap, n, obs::elapsedNs(t0));
}

} // namespace psca
