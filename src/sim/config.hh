/**
 * @file
 * Static configuration of the clustered core and its memory system.
 * Defaults model the paper's scaled Skylake derivative: two 4-wide
 * out-of-order clusters (8-wide in high-performance mode), private
 * per-cluster memory execution units, and a Skylake-like cache
 * hierarchy.
 */

#ifndef PSCA_SIM_CONFIG_HH
#define PSCA_SIM_CONFIG_HH

#include <cstdint>

namespace psca {

/** Cluster configuration chosen by the adaptation model. */
enum class CoreMode : uint8_t
{
    HighPerf, //!< both clusters active, 8-wide issue
    LowPower  //!< cluster 2 clock-gated, 4-wide issue, ~35% less power
};

/** Display name of a core mode. */
inline const char *
coreModeName(CoreMode mode)
{
    return mode == CoreMode::HighPerf ? "high_perf" : "low_power";
}

/** One cache level's geometry and hit latency. */
struct CacheConfig
{
    uint32_t sizeBytes;
    uint32_t ways;
    uint32_t lineBytes = 64;
    uint32_t hitLatency;
};

/** Full core + memory-system configuration. */
struct CoreConfig
{
    // Pipeline.
    int fetchWidth = 8;         //!< uops fetched/decoded per cycle
    int frontendDepth = 5;      //!< fetch-to-dispatch stages
    int retireWidth = 8;
    int robSize = 224;
    int rsSizePerCluster = 48;  //!< reservation-station entries
    int sqSize = 56;            //!< store-queue entries
    int issueWidthPerCluster = 4;
    int loadPortsPerCluster = 2;
    int mshrsPerCluster = 10;   //!< outstanding misses per MEU
    int interClusterFwdDelay = 2;
    int mispredictPenalty = 14; //!< redirect cycles after resolve

    // Cluster-gating transition (Sec. 3): register transfers execute
    // as microcode on cluster 1 while the core keeps running.
    int gateMicrocodeUops = 32; //!< worst-case register transfers
    int gateOverheadCycles = 12;
    int ungateOverheadCycles = 2;

    // Execution latencies per op class (issue-to-ready).
    int latIntAlu = 1;
    int latIntMul = 3;
    int latIntDiv = 20;
    int latFpAdd = 4;
    int latFpMul = 4;
    int latFpDiv = 14;
    int latFpFma = 5;
    int latStore = 1;
    int latBranch = 1;

    // Memory system.
    CacheConfig l1i{32 * 1024, 8, 64, 3};
    CacheConfig l1d{32 * 1024, 8, 64, 4};
    CacheConfig l2{1024 * 1024, 16, 64, 14};
    CacheConfig llc{8 * 1024 * 1024, 16, 64, 42};
    uint32_t memLatency = 190;
    /** One DRAM fill per this many cycles (shared by both modes). */
    uint32_t dramSlotCycles = 8;
    uint32_t uopCacheUops = 2048; //!< uop-cache capacity
    uint32_t tlbEntries = 64;
    uint32_t tlbMissPenalty = 20;
    uint32_t pageBytes = 4096;
    int storeForwardLatency = 5;

    // Clocking (used by the SLA window and budget maths, Sec. 5).
    double clockGhz = 2.0;
};

} // namespace psca

#endif // PSCA_SIM_CONFIG_HH
