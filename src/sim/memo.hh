/**
 * @file
 * Content-hashed simulation memo cache. A fixed-mode replay of a
 * decoded trace is a pure function of (trace content, core
 * configuration, mode): the same stream replayed on the same machine
 * state produces the same per-interval telemetry deltas, bit for
 * bit. The memo cache stores those deltas on disk keyed by that
 * triple, so dataset builds, cross-validation fan-outs, and benches
 * that re-simulate identical traces skip straight to the telemetry.
 *
 * Invalidation (DESIGN.md §9): the trace key is
 * DecodedTrace::contentHash() mixed with the warmup/interval split,
 * so any change to the generator stream or interval boundaries
 * misses; the config key hashes every CoreConfig field, so any
 * timing-model parameter change misses; kMemoVersion is bumped when
 * the *meaning* of a counter or the timing model itself changes.
 * Entries are one file per key, written atomically (temp + rename),
 * safe under concurrent writers at any PSCA_THREADS.
 *
 * PSCA_SIM_MEMO=0 disables the cache; PSCA_CACHE_DIR relocates it
 * (same knob the corpus cache uses).
 *
 * Integrity: files carry the standard (magic, version) header and an
 * FNV-1a checksum trailer. A file that fails any check is quarantined
 * (renamed to <path>.quarantined) and the simulation reruns — a
 * corrupt cache can degrade build time, never results. Transient IO
 * errors (fault site persist.io_error) are retried with bounded
 * exponential backoff before falling back to resimulation.
 */

#ifndef PSCA_SIM_MEMO_HH
#define PSCA_SIM_MEMO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace psca {

/** Identity of one fixed-mode simulation of one decoded trace. */
struct MemoKey
{
    uint64_t traceHash = 0;  //!< decoded stream + interval split
    uint64_t configHash = 0; //!< coreConfigHash() of the CoreConfig
    CoreMode mode = CoreMode::HighPerf;
};

/**
 * Stable hash over every CoreConfig field. Exhaustive by hand: a
 * field added to CoreConfig must be added here, or stale memo
 * entries would survive a timing-relevant config change.
 */
uint64_t coreConfigHash(const CoreConfig &cfg);

/**
 * The per-interval result of a fixed-mode simulation: one full
 * telemetry-counter delta vector (kNumTelemetryCounters wide) per
 * interval. Cycles are recoverable as the Ctr::Cycles delta.
 */
using MemoIntervals = std::vector<std::vector<uint64_t>>;

/** Process-wide memo cache over PSCA_CACHE_DIR. */
class SimMemo
{
  public:
    static SimMemo &instance();

    /** False when PSCA_SIM_MEMO=0 disabled the cache. */
    bool enabled() const { return enabled_; }

    /**
     * Fetch the memoized intervals for key.
     * @return true on a hit (out is replaced), false on miss or when
     *         the cache is disabled.
     */
    bool lookup(const MemoKey &key, MemoIntervals &out) const;

    /** Persist intervals under key (atomic; no-op when disabled). */
    void store(const MemoKey &key, const MemoIntervals &intervals) const;

    /** On-disk location for a key (tests). */
    std::string pathFor(const MemoKey &key) const;

  private:
    SimMemo();

    /** One read attempt: validate header, payload, and checksum. */
    bool readMemoFile(const std::string &path, const MemoKey &key,
                      uint64_t iokey, MemoIntervals &out) const;

    std::string dir_;
    bool enabled_ = true;
};

} // namespace psca

#endif // PSCA_SIM_MEMO_HH
