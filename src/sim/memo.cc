#include "sim/memo.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "obs/stats.hh"
#include "telemetry/counters.hh"

namespace psca {

namespace {

/** Bump when the timing model or counter semantics change. */
constexpr uint32_t kMemoVersion = 1;
constexpr uint64_t kMemoMagic = 0x50534341534d454dULL; // "PSCASMEM"

} // namespace

uint64_t
coreConfigHash(const CoreConfig &cfg)
{
    uint64_t h = 0xc0f1a5e5ULL ^ kMemoVersion;
    auto mix = [&h](uint64_t v) { h = mixSeeds(h, v); };
    auto mixCache = [&](const CacheConfig &c) {
        mix(c.sizeBytes);
        mix(c.ways);
        mix(c.lineBytes);
        mix(c.hitLatency);
    };
    mix(static_cast<uint64_t>(cfg.fetchWidth));
    mix(static_cast<uint64_t>(cfg.frontendDepth));
    mix(static_cast<uint64_t>(cfg.retireWidth));
    mix(static_cast<uint64_t>(cfg.robSize));
    mix(static_cast<uint64_t>(cfg.rsSizePerCluster));
    mix(static_cast<uint64_t>(cfg.sqSize));
    mix(static_cast<uint64_t>(cfg.issueWidthPerCluster));
    mix(static_cast<uint64_t>(cfg.loadPortsPerCluster));
    mix(static_cast<uint64_t>(cfg.mshrsPerCluster));
    mix(static_cast<uint64_t>(cfg.interClusterFwdDelay));
    mix(static_cast<uint64_t>(cfg.mispredictPenalty));
    mix(static_cast<uint64_t>(cfg.gateMicrocodeUops));
    mix(static_cast<uint64_t>(cfg.gateOverheadCycles));
    mix(static_cast<uint64_t>(cfg.ungateOverheadCycles));
    mix(static_cast<uint64_t>(cfg.latIntAlu));
    mix(static_cast<uint64_t>(cfg.latIntMul));
    mix(static_cast<uint64_t>(cfg.latIntDiv));
    mix(static_cast<uint64_t>(cfg.latFpAdd));
    mix(static_cast<uint64_t>(cfg.latFpMul));
    mix(static_cast<uint64_t>(cfg.latFpDiv));
    mix(static_cast<uint64_t>(cfg.latFpFma));
    mix(static_cast<uint64_t>(cfg.latStore));
    mix(static_cast<uint64_t>(cfg.latBranch));
    mixCache(cfg.l1i);
    mixCache(cfg.l1d);
    mixCache(cfg.l2);
    mixCache(cfg.llc);
    mix(cfg.memLatency);
    mix(cfg.dramSlotCycles);
    mix(cfg.uopCacheUops);
    mix(cfg.tlbEntries);
    mix(cfg.tlbMissPenalty);
    mix(cfg.pageBytes);
    mix(static_cast<uint64_t>(cfg.storeForwardLatency));
    mix(static_cast<uint64_t>(cfg.clockGhz * 1e6));
    return h;
}

SimMemo &
SimMemo::instance()
{
    static SimMemo memo;
    return memo;
}

SimMemo::SimMemo()
{
    // Same cache root as the corpus cache (core/builder.cc); the env
    // lookup is duplicated because sim/ sits below core/ in the
    // dependency order.
    const char *env = std::getenv("PSCA_CACHE_DIR");
    dir_ = env ? env : "psca_cache";
    const char *flag = std::getenv("PSCA_SIM_MEMO");
    if (flag != nullptr && flag[0] == '0' && flag[1] == '\0')
        enabled_ = false;
}

std::string
SimMemo::pathFor(const MemoKey &key) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "/simmemo_%016llx_%016llx_%c.bin",
                  static_cast<unsigned long long>(key.traceHash),
                  static_cast<unsigned long long>(key.configHash),
                  key.mode == CoreMode::HighPerf ? 'h' : 'l');
    return dir_ + name;
}

bool
SimMemo::lookup(const MemoKey &key, MemoIntervals &out) const
{
    if (!enabled_)
        return false;
    auto &reg = obs::StatRegistry::instance();

    BinaryReader in(pathFor(key));
    if (!in.good() || in.get<uint64_t>() != kMemoMagic ||
        in.get<uint32_t>() != kMemoVersion ||
        in.get<uint64_t>() != key.traceHash ||
        in.get<uint64_t>() != key.configHash ||
        in.get<uint8_t>() != static_cast<uint8_t>(key.mode))
    {
        reg.counter("memo.misses").add();
        return false;
    }

    const uint64_t n_intervals = in.get<uint64_t>();
    MemoIntervals intervals;
    intervals.reserve(n_intervals);
    for (uint64_t i = 0; i < n_intervals && in.good(); ++i) {
        std::vector<uint64_t> deltas(kNumTelemetryCounters, 0);
        const uint32_t nnz = in.get<uint32_t>();
        for (uint32_t j = 0; j < nnz; ++j) {
            const uint16_t idx = in.get<uint16_t>();
            const uint64_t val = in.get<uint64_t>();
            if (idx >= kNumTelemetryCounters) {
                reg.counter("memo.misses").add();
                return false;
            }
            deltas[idx] = val;
        }
        intervals.push_back(std::move(deltas));
    }
    if (!in.good() || intervals.size() != n_intervals) {
        reg.counter("memo.misses").add();
        return false;
    }
    out = std::move(intervals);
    reg.counter("memo.hits").add();
    return true;
}

void
SimMemo::store(const MemoKey &key, const MemoIntervals &intervals) const
{
    if (!enabled_)
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);

    // Unique temp name per writer thread, then an atomic rename:
    // concurrent stores of the same key are rare (identical content
    // anyway) and readers only ever see complete files.
    const std::string path = pathFor(key);
    const std::string tmp = path + ".tmp." +
        std::to_string(std::hash<std::thread::id>{}(
            std::this_thread::get_id()) & 0xffffff);
    {
        BinaryWriter out(tmp);
        out.put(kMemoMagic);
        out.put(kMemoVersion);
        out.put(key.traceHash);
        out.put(key.configHash);
        out.put(static_cast<uint8_t>(key.mode));
        out.put<uint64_t>(intervals.size());
        for (const auto &deltas : intervals) {
            uint32_t nnz = 0;
            for (uint64_t v : deltas)
                nnz += v != 0 ? 1 : 0;
            out.put(nnz);
            for (size_t idx = 0; idx < deltas.size(); ++idx) {
                if (deltas[idx] != 0) {
                    out.put(static_cast<uint16_t>(idx));
                    out.put(deltas[idx]);
                }
            }
        }
        if (!out.good()) {
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
    obs::StatRegistry::instance().counter("memo.stores").add();
}

} // namespace psca
