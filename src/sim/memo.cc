#include "sim/memo.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/env.hh"
#include "common/fault.hh"
#include "common/journal.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "telemetry/counters.hh"

namespace psca {

namespace {

/** Bump when the timing model, counter semantics, or format change. */
constexpr uint32_t kMemoVersion = 2; // 2: header helper + checksum
constexpr uint64_t kMemoMagic = 0x50534341534d454dULL; // "PSCASMEM"

/** Transient-IO attempts before giving up (cold path is a rebuild). */
constexpr int kIoAttempts = 3;

/** True when the injected transient-IO fault hits this attempt. */
bool
ioFaultHits(uint64_t key, int attempt)
{
    const FaultSite &io = FAULT_SITE("persist.io_error");
    return io.enabled() &&
        io.fires(mixSeeds(key, static_cast<uint64_t>(attempt)));
}

} // namespace

uint64_t
coreConfigHash(const CoreConfig &cfg)
{
    uint64_t h = 0xc0f1a5e5ULL ^ kMemoVersion;
    auto mix = [&h](uint64_t v) { h = mixSeeds(h, v); };
    auto mixCache = [&](const CacheConfig &c) {
        mix(c.sizeBytes);
        mix(c.ways);
        mix(c.lineBytes);
        mix(c.hitLatency);
    };
    mix(static_cast<uint64_t>(cfg.fetchWidth));
    mix(static_cast<uint64_t>(cfg.frontendDepth));
    mix(static_cast<uint64_t>(cfg.retireWidth));
    mix(static_cast<uint64_t>(cfg.robSize));
    mix(static_cast<uint64_t>(cfg.rsSizePerCluster));
    mix(static_cast<uint64_t>(cfg.sqSize));
    mix(static_cast<uint64_t>(cfg.issueWidthPerCluster));
    mix(static_cast<uint64_t>(cfg.loadPortsPerCluster));
    mix(static_cast<uint64_t>(cfg.mshrsPerCluster));
    mix(static_cast<uint64_t>(cfg.interClusterFwdDelay));
    mix(static_cast<uint64_t>(cfg.mispredictPenalty));
    mix(static_cast<uint64_t>(cfg.gateMicrocodeUops));
    mix(static_cast<uint64_t>(cfg.gateOverheadCycles));
    mix(static_cast<uint64_t>(cfg.ungateOverheadCycles));
    mix(static_cast<uint64_t>(cfg.latIntAlu));
    mix(static_cast<uint64_t>(cfg.latIntMul));
    mix(static_cast<uint64_t>(cfg.latIntDiv));
    mix(static_cast<uint64_t>(cfg.latFpAdd));
    mix(static_cast<uint64_t>(cfg.latFpMul));
    mix(static_cast<uint64_t>(cfg.latFpDiv));
    mix(static_cast<uint64_t>(cfg.latFpFma));
    mix(static_cast<uint64_t>(cfg.latStore));
    mix(static_cast<uint64_t>(cfg.latBranch));
    mixCache(cfg.l1i);
    mixCache(cfg.l1d);
    mixCache(cfg.l2);
    mixCache(cfg.llc);
    mix(cfg.memLatency);
    mix(cfg.dramSlotCycles);
    mix(cfg.uopCacheUops);
    mix(cfg.tlbEntries);
    mix(cfg.tlbMissPenalty);
    mix(cfg.pageBytes);
    mix(static_cast<uint64_t>(cfg.storeForwardLatency));
    mix(static_cast<uint64_t>(cfg.clockGhz * 1e6));
    return h;
}

SimMemo &
SimMemo::instance()
{
    static SimMemo memo;
    return memo;
}

SimMemo::SimMemo()
{
    // Same cache root as the corpus cache (core/builder.cc); the env
    // lookup is duplicated because sim/ sits below core/ in the
    // dependency order.
    dir_ = env::stringOr("PSCA_CACHE_DIR", "psca_cache");
    enabled_ = env::flagOr("PSCA_SIM_MEMO", true);
}

std::string
SimMemo::pathFor(const MemoKey &key) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "/simmemo_%016llx_%016llx_%c.bin",
                  static_cast<unsigned long long>(key.traceHash),
                  static_cast<unsigned long long>(key.configHash),
                  key.mode == CoreMode::HighPerf ? 'h' : 'l');
    return dir_ + name;
}

bool
SimMemo::lookup(const MemoKey &key, MemoIntervals &out) const
{
    if (!enabled_)
        return false;
    auto &reg = obs::StatRegistry::instance();
    const std::string path = pathFor(key);
    const uint64_t iokey = mixSeeds(
        key.traceHash,
        mixSeeds(key.configHash, static_cast<uint64_t>(key.mode)));

    // Transient filesystem errors (injected via persist.io_error, or
    // conceivably real on networked storage) get a bounded retry
    // with backoff; persistent failure degrades to a rebuild.
    for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
        if (ioFaultHits(iokey, attempt)) {
            reg.counter("memo.io_retries").add();
            // Backoff jitter is a taskSeed substream of (fault seed,
            // iokey, attempt), so the retry schedule is bit-
            // reproducible under PSCA_FAULT_SEED.
            retryBackoffSleep(iokey, attempt);
            continue;
        }
        return readMemoFile(path, key, iokey, out);
    }
    warn("memo '", path, "': transient IO error persisted across ",
         kIoAttempts, " attempts; resimulating");
    reg.counter("memo.io_giveups").add();
    reg.counter("memo.misses").add();
    obs::traceInstant("memo.miss");
    return false;
}

bool
SimMemo::readMemoFile(const std::string &path, const MemoKey &key,
                      uint64_t iokey, MemoIntervals &out) const
{
    auto &reg = obs::StatRegistry::instance();
    // A miss with a named reason: quarantine the file so the rebuild
    // cannot collide with the bad bytes.
    auto corrupt = [&](const char *reason) {
        const QuarantineResult q = quarantineFile(path, reason);
        reg.counter("memo.quarantined").add();
        if (q.collided)
            reg.counter("memo.quarantine_collisions").add();
        reg.counter("memo.misses").add();
        obs::traceInstant("memo.miss");
        return false;
    };

    BinaryReader in(path);
    if (!in.good()) {
        // Plain cold miss: nothing on disk to quarantine.
        reg.counter("memo.misses").add();
        obs::traceInstant("memo.miss");
        return false;
    }

    // Injected corruption: the file exists but fails its integrity
    // check, exactly as a bit-flip would make it.
    const FaultSite &corrupt_site = FAULT_SITE("persist.memo_corrupt");
    if (corrupt_site.enabled() && corrupt_site.fires(iokey))
        return corrupt("injected checksum fault");

    const HeaderCheck hdr = readFileHeader(in, kMemoMagic,
                                           kMemoVersion);
    if (hdr != HeaderCheck::Ok)
        return corrupt(headerCheckName(hdr));
    if (in.get<uint64_t>() != key.traceHash ||
        in.get<uint64_t>() != key.configHash ||
        in.get<uint8_t>() != static_cast<uint8_t>(key.mode) ||
        !in.good())
    {
        return corrupt("key mismatch");
    }

    const uint64_t n_intervals = in.get<uint64_t>();
    MemoIntervals intervals;
    intervals.reserve(n_intervals);
    for (uint64_t i = 0; i < n_intervals && in.good(); ++i) {
        std::vector<uint64_t> deltas(kNumTelemetryCounters, 0);
        const uint32_t nnz = in.get<uint32_t>();
        for (uint32_t j = 0; j < nnz; ++j) {
            const uint16_t idx = in.get<uint16_t>();
            const uint64_t val = in.get<uint64_t>();
            if (idx >= kNumTelemetryCounters)
                return corrupt("counter index out of range");
            deltas[idx] = val;
        }
        intervals.push_back(std::move(deltas));
    }
    if (!in.good() || intervals.size() != n_intervals)
        return corrupt("truncated");
    if (!in.verifyChecksumTrailer())
        return corrupt("checksum mismatch");
    out = std::move(intervals);
    reg.counter("memo.hits").add();
    obs::traceInstant("memo.hit");
    return true;
}

void
SimMemo::store(const MemoKey &key, const MemoIntervals &intervals) const
{
    if (!enabled_)
        return;
    auto &reg = obs::StatRegistry::instance();

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);

    // Transactional publish (stage + fsync + atomic rename) through
    // the common artifact store: concurrent stores of the same key
    // are rare (identical content anyway) and readers only ever see
    // complete, durable files.
    const std::string path = pathFor(key);
    const uint64_t iokey = ~mixSeeds(
        key.traceHash,
        mixSeeds(key.configHash, static_cast<uint64_t>(key.mode)));

    for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
        if (ioFaultHits(iokey, attempt)) {
            reg.counter("memo.io_retries").add();
            retryBackoffSleep(iokey, attempt);
            continue;
        }
        const bool ok = writeArtifactFile(path, [&](BinaryWriter &out) {
            writeFileHeader(out, kMemoMagic, kMemoVersion);
            out.put(key.traceHash);
            out.put(key.configHash);
            out.put(static_cast<uint8_t>(key.mode));
            out.put<uint64_t>(intervals.size());
            for (const auto &deltas : intervals) {
                uint32_t nnz = 0;
                for (uint64_t v : deltas)
                    nnz += v != 0 ? 1 : 0;
                out.put(nnz);
                for (size_t idx = 0; idx < deltas.size(); ++idx) {
                    if (deltas[idx] != 0) {
                        out.put(static_cast<uint16_t>(idx));
                        out.put(deltas[idx]);
                    }
                }
            }
            out.putChecksumTrailer();
        });
        if (!ok) {
            // Out of disk or a dying device: the store already
            // dropped the partial temp; the cache stays consistent.
            warn("memo '", path, "': write failed; entry not cached");
            reg.counter("memo.write_failures").add();
            return;
        }
        reg.counter("memo.stores").add();
        obs::traceInstant("memo.store");
        return;
    }
    warn("memo '", path, "': transient IO error persisted across ",
         kIoAttempts, " attempts; entry not cached");
    reg.counter("memo.io_giveups").add();
}

} // namespace psca
