/**
 * @file
 * Event-based power model in the style of Haj-Yihia et al.'s Skylake
 * power model (the model the paper uses): per-interval power is a
 * mode-dependent static component plus a weighted sum of event
 * counts, normalized by interval cycles. Weights are calibrated so
 * the gated (low-power) configuration consumes ~35% less power than
 * the two-cluster configuration on average, matching Sec. 3.
 */

#ifndef PSCA_POWER_POWER_MODEL_HH
#define PSCA_POWER_POWER_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "telemetry/counters.hh"

namespace psca {

/** Event weights and static terms of the linear power model. */
struct PowerModelConfig
{
    // Static (leakage + ungated clock tree) power in watts.
    double staticHighPerf = 3.6;
    double staticLowPower = 2.05; //!< cluster 2 clock-gated

    // Dynamic energy per event, in nanojoules.
    double perUopIssued = 0.095;
    double perFpOp = 0.06;     //!< additional for FP ops
    double perL1dAccess = 0.035;
    double perL2Access = 0.30;
    double perLlcAccess = 0.85;
    double perMemAccess = 3.6;
    double perBranchMispred = 0.55;
    double perFetchUop = 0.028;
    double perWrongPathUop = 0.09;
    double perModeSwitch = 35.0;
};

/** Computes interval power and performance-per-watt summaries. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerModelConfig &cfg = PowerModelConfig{},
                        double clock_ghz = 2.0)
        : cfg_(cfg), clockGhz_(clock_ghz)
    {}

    /**
     * Average power (watts) over one interval.
     *
     * @param delta Counter deltas for the interval.
     * @param cycles Interval duration in cycles.
     * @param mode Cluster configuration during the interval.
     */
    double intervalPowerWatts(const std::vector<uint64_t> &delta,
                              uint64_t cycles, CoreMode mode) const;

    /** Energy (nanojoules) over one interval. */
    double intervalEnergyNj(const std::vector<uint64_t> &delta,
                            uint64_t cycles, CoreMode mode) const;

    const PowerModelConfig &config() const { return cfg_; }

  private:
    PowerModelConfig cfg_;
    double clockGhz_;
};

/**
 * Accumulates instructions/cycles/energy across a run and reports
 * performance-per-watt. PPW here is (instructions per second) per
 * watt, which reduces to instructions per joule.
 */
class PpwAccumulator
{
  public:
    /** Fold in one interval. */
    void
    add(uint64_t instructions, uint64_t cycles, double energy_nj)
    {
        instructions_ += instructions;
        cycles_ += cycles;
        energyNj_ += energy_nj;
    }

    uint64_t instructions() const { return instructions_; }
    uint64_t cycles() const { return cycles_; }
    double energyNj() const { return energyNj_; }

    double
    ipc() const
    {
        return cycles_ ? static_cast<double>(instructions_) /
                static_cast<double>(cycles_)
                       : 0.0;
    }

    /** Instructions per joule (proportional to PPW). */
    double
    ppw() const
    {
        return energyNj_ > 0.0
            ? static_cast<double>(instructions_) / (energyNj_ * 1e-9)
            : 0.0;
    }

  private:
    uint64_t instructions_ = 0;
    uint64_t cycles_ = 0;
    double energyNj_ = 0.0;
};

} // namespace psca

#endif // PSCA_POWER_POWER_MODEL_HH
