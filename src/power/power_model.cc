#include "power/power_model.hh"

namespace psca {

double
PowerModel::intervalEnergyNj(const std::vector<uint64_t> &delta,
                             uint64_t cycles, CoreMode mode) const
{
    auto get = [&](Ctr c) {
        return static_cast<double>(delta[CounterRegistry::index(c)]);
    };

    const double seconds =
        static_cast<double>(cycles) / (clockGhz_ * 1e9);
    const double static_watts = mode == CoreMode::HighPerf
        ? cfg_.staticHighPerf
        : cfg_.staticLowPower;

    double nj = static_watts * seconds * 1e9;
    nj += cfg_.perUopIssued * get(Ctr::UopsIssuedTotal);
    nj += cfg_.perFpOp * get(Ctr::FpOpsRetired);
    nj += cfg_.perL1dAccess *
        (get(Ctr::L1dRead) + get(Ctr::L1dWrite));
    nj += cfg_.perL2Access * (get(Ctr::L2Hit) + get(Ctr::L2Miss));
    nj += cfg_.perLlcAccess * (get(Ctr::LlcHit) + get(Ctr::LlcMiss));
    nj += cfg_.perMemAccess *
        (get(Ctr::MemReads) + get(Ctr::MemWrites));
    nj += cfg_.perBranchMispred * get(Ctr::BranchMispred);
    nj += cfg_.perFetchUop * get(Ctr::DecodeUops);
    nj += cfg_.perWrongPathUop * get(Ctr::WrongPathUopsFlushed);
    nj += cfg_.perModeSwitch * get(Ctr::ModeSwitches);
    return nj;
}

double
PowerModel::intervalPowerWatts(const std::vector<uint64_t> &delta,
                               uint64_t cycles, CoreMode mode) const
{
    const double seconds =
        static_cast<double>(cycles) / (clockGhz_ * 1e9);
    if (seconds <= 0.0)
        return 0.0;
    return intervalEnergyNj(delta, cycles, mode) * 1e-9 / seconds;
}

} // namespace psca
