#!/usr/bin/env python3
"""Docs consistency gate.

Two checks, both cheap enough to run on every CI push:

1. Env-var coverage: every PSCA_* environment variable referenced as
   a string literal under src/, tools/, or examples/ must appear in
   OPERATIONS.md (the consolidated variable table), and every PSCA_*
   token OPERATIONS.md documents must still exist in the source. New
   knobs land together with their documentation, and the table can
   never go stale, or this exits non-zero.

2. Link integrity: every intra-repo markdown link ([text](target)
   where target is not a URL) in the repo's *.md files must resolve
   to an existing file or directory, anchors stripped.

Usage: check_docs.py [--root REPO_ROOT]

Exits 1 with one line per violation; exits 0 when clean.
"""

import argparse
import pathlib
import re
import sys

# String literals like "PSCA_THREADS". A trailing underscore marks a
# prefix literal (env filtering code), not a variable name.
SOURCE_VAR_RE = re.compile(r'"(PSCA_[A-Z0-9]+(?:_[A-Z0-9]+)*)"')
DOC_VAR_RE = re.compile(r"\b(PSCA_[A-Z0-9_]+)\b")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")

SOURCE_GLOBS = ["src/**/*.cc", "src/**/*.hh", "tools/*.cc",
                "tools/*.py", "examples/*.cc"]


def source_vars(root: pathlib.Path) -> set:
    found = set()
    for pattern in SOURCE_GLOBS:
        for path in root.glob(pattern):
            found.update(SOURCE_VAR_RE.findall(
                path.read_text(errors="replace")))
    return found


def check_env_vars(root: pathlib.Path) -> list:
    ops = root / "OPERATIONS.md"
    if not ops.exists():
        return ["OPERATIONS.md: missing (env-var table lives there)"]
    text = ops.read_text()
    documented = {v for v in DOC_VAR_RE.findall(text)
                  if not v.endswith("_")}
    in_source = source_vars(root)
    errors = []
    for var in sorted(in_source - documented):
        errors.append(f"OPERATIONS.md: {var} is referenced in the "
                      f"source but not documented")
    for var in sorted(documented - in_source):
        errors.append(f"OPERATIONS.md: {var} is documented but no "
                      f"longer referenced in the source")
    return errors


def check_links(root: pathlib.Path) -> list:
    errors = []
    for md in sorted(root.rglob("*.md")):
        if "build" in md.parts or ".git" in md.parts:
            continue
        for target in LINK_RE.findall(md.read_text(errors="replace")):
            target = target.split()[0]  # drop optional link titles
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                rel = md.relative_to(root)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()

    errors = check_env_vars(root) + check_links(root)
    for line in errors:
        print(line)
    if errors:
        print(f"{len(errors)} docs violation(s)")
        return 1
    print(f"docs clean: {len(source_vars(root))} env vars documented, "
          f"all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
