/**
 * @file
 * psca — command-line driver for the adaptive-CPU library.
 *
 * Subcommands:
 *   counters [--all]          list the telemetry registry
 *   kernels                   list kernel families and SPEC profiles
 *   run <app> [options]       simulate one workload and print
 *                             per-interval telemetry + a summary
 *   train <app...> --out FW   record + train a Best-RF pair and emit
 *                             a flashable firmware image
 *   flash FW <app>            load a firmware image and run the
 *                             closed adaptation loop through the VM
 *
 * <app> is either `spec:<name-substring>` (a SPEC2017 stand-in) or
 * `<category>:<seed>` with category in {hpc, cloud, ai, web, media,
 * games}.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/firmware_image.hh"
#include "core/pipeline.hh"
#include "sim/core.hh"
#include "core/runner.hh"

using namespace psca;

namespace {

const std::vector<uint16_t> &
defaultCounterIds()
{
    static const std::vector<uint16_t> ids = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    return ids;
}

const std::vector<size_t> kAllColumns{0, 1, 2, 3, 4, 5, 6, 7};

int
usage()
{
    std::fprintf(stderr,
                 "usage: psca <counters|kernels|run|train|flash> ...\n"
                 "  psca counters [--all]\n"
                 "  psca kernels\n"
                 "  psca run <app> [--len N] [--mode high|low]\n"
                 "  psca train <app> [<app> ...] --out FW.bin\n"
                 "  psca flash FW.bin <app> [--len N]\n"
                 "  <app> = spec:<name> | "
                 "{hpc,cloud,ai,web,media,games}:<seed>\n");
    return 2;
}

/** Resolve an <app> spec string into a workload. */
bool
resolveApp(const std::string &spec, uint64_t len, Workload &out)
{
    const size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return false;
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);

    if (kind == "spec") {
        for (const auto &app : buildSpecApps()) {
            if (app.genome.name.find(arg) != std::string::npos) {
                out.genome = app.genome;
                break;
            }
        }
        if (out.genome.phases.empty())
            return false;
    } else {
        static const std::pair<const char *, AppCategory> cats[] = {
            {"hpc", AppCategory::HpcPerf},
            {"cloud", AppCategory::CloudSecurity},
            {"ai", AppCategory::AiAnalytics},
            {"web", AppCategory::WebProductivity},
            {"media", AppCategory::Multimedia},
            {"games", AppCategory::GamesRendering},
        };
        bool found = false;
        for (const auto &[name, cat] : cats) {
            if (kind == name) {
                out.genome = sampleGenome(
                    cat, std::strtoull(arg.c_str(), nullptr, 10));
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    out.inputSeed = 1;
    out.lengthInstr = len;
    out.name = out.genome.name;
    return true;
}

uint64_t
optLen(int argc, char **argv, uint64_t fallback)
{
    for (int i = 0; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--len"))
            return std::strtoull(argv[i + 1], nullptr, 10);
    return fallback;
}

int
cmdCounters(int argc, char **argv)
{
    const bool all = argc > 0 && !std::strcmp(argv[0], "--all");
    const auto &reg = CounterRegistry::instance();
    const size_t limit = all ? reg.numCounters() : kNumScalarCtrs;
    for (size_t i = 0; i < limit; ++i)
        std::printf("%4zu  %s\n", i,
                    reg.name(static_cast<uint16_t>(i)).c_str());
    if (!all)
        std::printf("(... %zu more; use --all)\n",
                    reg.numCounters() - limit);
    return 0;
}

int
cmdKernels()
{
    std::printf("kernel families:\n");
    for (size_t k = 0; k < kNumKernelKinds; ++k)
        std::printf("  %s\n",
                    kernelKindName(static_cast<KernelKind>(k)));
    std::printf("\nSPEC2017 stand-ins:\n");
    for (const auto &app : buildSpecApps()) {
        std::printf("  %-20s %-4s %d inputs, %zu phases\n",
                    app.genome.name.c_str(), app.isFp ? "fp" : "int",
                    app.numInputs, app.genome.phases.size());
    }
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Workload w;
    if (!resolveApp(argv[0], optLen(argc, argv, 300000), w)) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[0]);
        return 2;
    }
    CoreMode mode = CoreMode::HighPerf;
    for (int i = 0; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--mode") &&
            !std::strcmp(argv[i + 1], "low"))
            mode = CoreMode::LowPower;

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    std::printf("running %s (%lu instructions, %s mode)\n",
                w.name.c_str(),
                static_cast<unsigned long>(w.lengthInstr),
                coreModeName(mode));

    ClusteredCore core(cfg.core);
    core.reset();
    core.setMode(mode);
    PowerModel power(cfg.power, cfg.core.clockGhz);
    TraceGenerator gen(w);
    core.run(gen, cfg.warmupInstr);

    std::printf("%-8s %-8s %-8s %-10s %-10s\n", "intvl", "IPC",
                "watts", "l1d-mpki", "stall/cyc");
    auto prev = core.counters().raw();
    uint64_t remaining = w.lengthInstr;
    int interval = 0;
    PpwAccumulator acc;
    while (remaining >= cfg.intervalInstr) {
        const IntervalStats stats = core.run(gen, cfg.intervalInstr);
        remaining -= cfg.intervalInstr;
        const auto &now = core.counters().raw();
        std::vector<uint64_t> delta(now.size());
        for (size_t i = 0; i < now.size(); ++i)
            delta[i] = now[i] - prev[i];
        prev = now;
        const double watts =
            power.intervalPowerWatts(delta, stats.cycles, mode);
        acc.add(stats.instructions, stats.cycles,
                power.intervalEnergyNj(delta, stats.cycles, mode));
        if (interval % 4 == 0) {
            std::printf(
                "%-8d %-8.2f %-8.2f %-10.2f %-10.3f\n", interval,
                stats.ipc(), watts,
                1000.0 *
                    static_cast<double>(
                        delta[CounterRegistry::index(Ctr::L1dMiss)]) /
                    static_cast<double>(cfg.intervalInstr),
                static_cast<double>(
                    delta[CounterRegistry::index(Ctr::StallCount)]) /
                    static_cast<double>(stats.cycles));
        }
        ++interval;
    }
    std::printf("\nsummary: IPC %.2f, %.2f W, PPW %.3g inst/J\n",
                acc.ipc(),
                acc.energyNj() * 1e-9 /
                    (static_cast<double>(acc.cycles()) /
                     (cfg.core.clockGhz * 1e9)),
                acc.ppw());
    return 0;
}

int
cmdTrain(int argc, char **argv)
{
    std::vector<std::string> apps;
    std::string out_path;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (argv[i][0] != '-') {
            apps.emplace_back(argv[i]);
        }
    }
    if (apps.empty() || out_path.empty())
        return usage();

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    std::vector<TraceRecord> records;
    for (size_t i = 0; i < apps.size(); ++i) {
        Workload w;
        if (!resolveApp(apps[i], 400000, w)) {
            std::fprintf(stderr, "unknown app '%s'\n",
                         apps[i].c_str());
            return 2;
        }
        std::printf("recording %s...\n", w.name.c_str());
        records.push_back(
            recordTrace(w, cfg, static_cast<uint32_t>(i), 0));
    }

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.columns = kAllColumns;
    opts.rsvWindow = 400;
    TrainedDual dual = trainDual(
        records, cfg, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });
    DualModelPredictor predictor(dual.high, dual.low, kAllColumns,
                                 opts.granularityInstr, "psca-cli");
    const FirmwarePackage pkg =
        packageFromDual(predictor, kAllColumns);
    pkg.save(out_path);
    std::printf("wrote %s (%zu + %zu instructions of firmware)\n",
                out_path.c_str(), pkg.high.program.code.size(),
                pkg.low.program.code.size());
    return 0;
}

int
cmdFlash(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Workload w;
    if (!resolveApp(argv[1], optLen(argc, argv, 400000), w)) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[1]);
        return 2;
    }
    FirmwarePackage pkg = FirmwarePackage::load(argv[0]);
    std::printf("flashed %s (granularity %lu)\n", pkg.name.c_str(),
                static_cast<unsigned long>(pkg.granularityInstr));

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    VmPredictor predictor(std::move(pkg));
    const ClosedLoopResult r =
        runClosedLoop(w, ref, predictor, cfg, SlaSpec{});
    std::printf("%s under predictive cluster gating:\n",
                w.name.c_str());
    std::printf("  PPW %+.1f%%, perf %.1f%%, residency %.1f%%, "
                "PGOS %.1f%%, RSV %.2f%%, uC ops %lu\n",
                r.ppwGainPct, r.perfRelativePct,
                r.lowResidency * 100, r.pgos * 100, r.rsv * 100,
                static_cast<unsigned long>(predictor.vmOpsExecuted()));
    return 0;
}

} // namespace

static int
run(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "counters")
        return cmdCounters(argc - 2, argv + 2);
    if (cmd == "kernels")
        return cmdKernels();
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "train")
        return cmdTrain(argc - 2, argv + 2);
    if (cmd == "flash")
        return cmdFlash(argc - 2, argv + 2);
    return usage();
}

int
main(int argc, char **argv)
{
    return psca::runner::guardedMain(
        [argc, argv] { return run(argc, argv); });
}
