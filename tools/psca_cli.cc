/**
 * @file
 * psca — command-line driver for the adaptive-CPU library.
 *
 * Subcommands:
 *   counters [--all]          list the telemetry registry
 *   kernels                   list kernel families and SPEC profiles
 *   run <app> [options]       simulate one workload and print
 *                             per-interval telemetry + a summary
 *   train <app...> --out FW   record + train a Best-RF pair and emit
 *                             a flashable firmware image
 *   flash FW <app>            load a firmware image and run the
 *                             closed adaptation loop through the VM
 *
 *   fleet [--workers N]       run the campaign pipeline as a local
 *                             coordinator/worker fleet (DESIGN.md
 *                             §13, OPERATIONS.md); N=0 runs the same
 *                             campaign single-process
 *
 * <app> is either `spec:<name-substring>` (a SPEC2017 stand-in) or
 * `<category>:<seed>` with category in {hpc, cloud, ai, web, media,
 * games}.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/crossval.hh"
#include "core/firmware_image.hh"
#include "core/pipeline.hh"
#include "dist/dist.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "sim/core.hh"
#include "core/runner.hh"

extern char **environ;

using namespace psca;

namespace {

const std::vector<uint16_t> &
defaultCounterIds()
{
    static const std::vector<uint16_t> ids = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    return ids;
}

const std::vector<size_t> kAllColumns{0, 1, 2, 3, 4, 5, 6, 7};

int
usage()
{
    std::fprintf(stderr,
                 "usage: psca <counters|kernels|run|train|flash|"
                 "fleet> ...\n"
                 "  psca counters [--all]\n"
                 "  psca kernels\n"
                 "  psca run <app> [--len N] [--mode high|low]\n"
                 "  psca train <app> [<app> ...] --out FW.bin\n"
                 "  psca flash FW.bin <app> [--len N]\n"
                 "  psca fleet [--workers N] [--out FW.bin]\n"
                 "  <app> = spec:<name> | "
                 "{hpc,cloud,ai,web,media,games}:<seed>\n");
    return 2;
}

/** Resolve an <app> spec string into a workload. */
bool
resolveApp(const std::string &spec, uint64_t len, Workload &out)
{
    const size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return false;
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);

    if (kind == "spec") {
        for (const auto &app : buildSpecApps()) {
            if (app.genome.name.find(arg) != std::string::npos) {
                out.genome = app.genome;
                break;
            }
        }
        if (out.genome.phases.empty())
            return false;
    } else {
        static const std::pair<const char *, AppCategory> cats[] = {
            {"hpc", AppCategory::HpcPerf},
            {"cloud", AppCategory::CloudSecurity},
            {"ai", AppCategory::AiAnalytics},
            {"web", AppCategory::WebProductivity},
            {"media", AppCategory::Multimedia},
            {"games", AppCategory::GamesRendering},
        };
        bool found = false;
        for (const auto &[name, cat] : cats) {
            if (kind == name) {
                out.genome = sampleGenome(
                    cat, std::strtoull(arg.c_str(), nullptr, 10));
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    out.inputSeed = 1;
    out.lengthInstr = len;
    out.name = out.genome.name;
    return true;
}

uint64_t
optLen(int argc, char **argv, uint64_t fallback)
{
    for (int i = 0; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--len"))
            return std::strtoull(argv[i + 1], nullptr, 10);
    return fallback;
}

int
cmdCounters(int argc, char **argv)
{
    const bool all = argc > 0 && !std::strcmp(argv[0], "--all");
    const auto &reg = CounterRegistry::instance();
    const size_t limit = all ? reg.numCounters() : kNumScalarCtrs;
    for (size_t i = 0; i < limit; ++i)
        std::printf("%4zu  %s\n", i,
                    reg.name(static_cast<uint16_t>(i)).c_str());
    if (!all)
        std::printf("(... %zu more; use --all)\n",
                    reg.numCounters() - limit);
    return 0;
}

int
cmdKernels()
{
    std::printf("kernel families:\n");
    for (size_t k = 0; k < kNumKernelKinds; ++k)
        std::printf("  %s\n",
                    kernelKindName(static_cast<KernelKind>(k)));
    std::printf("\nSPEC2017 stand-ins:\n");
    for (const auto &app : buildSpecApps()) {
        std::printf("  %-20s %-4s %d inputs, %zu phases\n",
                    app.genome.name.c_str(), app.isFp ? "fp" : "int",
                    app.numInputs, app.genome.phases.size());
    }
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Workload w;
    if (!resolveApp(argv[0], optLen(argc, argv, 300000), w)) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[0]);
        return 2;
    }
    CoreMode mode = CoreMode::HighPerf;
    for (int i = 0; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--mode") &&
            !std::strcmp(argv[i + 1], "low"))
            mode = CoreMode::LowPower;

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    std::printf("running %s (%lu instructions, %s mode)\n",
                w.name.c_str(),
                static_cast<unsigned long>(w.lengthInstr),
                coreModeName(mode));

    ClusteredCore core(cfg.core);
    core.reset();
    core.setMode(mode);
    PowerModel power(cfg.power, cfg.core.clockGhz);
    TraceGenerator gen(w);
    core.run(gen, cfg.warmupInstr);

    std::printf("%-8s %-8s %-8s %-10s %-10s\n", "intvl", "IPC",
                "watts", "l1d-mpki", "stall/cyc");
    auto prev = core.counters().raw();
    uint64_t remaining = w.lengthInstr;
    int interval = 0;
    PpwAccumulator acc;
    while (remaining >= cfg.intervalInstr) {
        const IntervalStats stats = core.run(gen, cfg.intervalInstr);
        remaining -= cfg.intervalInstr;
        const auto &now = core.counters().raw();
        std::vector<uint64_t> delta(now.size());
        for (size_t i = 0; i < now.size(); ++i)
            delta[i] = now[i] - prev[i];
        prev = now;
        const double watts =
            power.intervalPowerWatts(delta, stats.cycles, mode);
        acc.add(stats.instructions, stats.cycles,
                power.intervalEnergyNj(delta, stats.cycles, mode));
        if (interval % 4 == 0) {
            std::printf(
                "%-8d %-8.2f %-8.2f %-10.2f %-10.3f\n", interval,
                stats.ipc(), watts,
                1000.0 *
                    static_cast<double>(
                        delta[CounterRegistry::index(Ctr::L1dMiss)]) /
                    static_cast<double>(cfg.intervalInstr),
                static_cast<double>(
                    delta[CounterRegistry::index(Ctr::StallCount)]) /
                    static_cast<double>(stats.cycles));
        }
        ++interval;
    }
    std::printf("\nsummary: IPC %.2f, %.2f W, PPW %.3g inst/J\n",
                acc.ipc(),
                acc.energyNj() * 1e-9 /
                    (static_cast<double>(acc.cycles()) /
                     (cfg.core.clockGhz * 1e9)),
                acc.ppw());
    return 0;
}

int
cmdTrain(int argc, char **argv)
{
    std::vector<std::string> apps;
    std::string out_path;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (argv[i][0] != '-') {
            apps.emplace_back(argv[i]);
        }
    }
    if (apps.empty() || out_path.empty())
        return usage();

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    std::vector<TraceRecord> records;
    for (size_t i = 0; i < apps.size(); ++i) {
        Workload w;
        if (!resolveApp(apps[i], 400000, w)) {
            std::fprintf(stderr, "unknown app '%s'\n",
                         apps[i].c_str());
            return 2;
        }
        std::printf("recording %s...\n", w.name.c_str());
        records.push_back(
            recordTrace(w, cfg, static_cast<uint32_t>(i), 0));
    }

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.columns = kAllColumns;
    opts.rsvWindow = 400;
    TrainedDual dual = trainDual(
        records, cfg, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });
    DualModelPredictor predictor(dual.high, dual.low, kAllColumns,
                                 opts.granularityInstr, "psca-cli");
    const FirmwarePackage pkg =
        packageFromDual(predictor, kAllColumns);
    pkg.save(out_path);
    std::printf("wrote %s (%zu + %zu instructions of firmware)\n",
                out_path.c_str(), pkg.high.program.code.size(),
                pkg.low.program.code.size());
    return 0;
}

int
cmdFlash(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Workload w;
    if (!resolveApp(argv[1], optLen(argc, argv, 400000), w)) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[1]);
        return 2;
    }
    FirmwarePackage pkg = FirmwarePackage::load(argv[0]);
    std::printf("flashed %s (granularity %lu)\n", pkg.name.c_str(),
                static_cast<unsigned long>(pkg.granularityInstr));

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    VmPredictor predictor(std::move(pkg));
    const ClosedLoopResult r =
        runClosedLoop(w, ref, predictor, cfg, SlaSpec{});
    std::printf("%s under predictive cluster gating:\n",
                w.name.c_str());
    std::printf("  PPW %+.1f%%, perf %.1f%%, residency %.1f%%, "
                "PGOS %.1f%%, RSV %.2f%%, uC ops %lu\n",
                r.ppwGainPct, r.perfRelativePct,
                r.lowResidency * 100, r.pgos * 100, r.rsv * 100,
                static_cast<unsigned long>(predictor.vmOpsExecuted()));
    return 0;
}

/**
 * The campaign every fleet process runs, coordinator and workers
 * alike (the lockstep-redundant model of DESIGN.md §13): experiment
 * setup (PF screen + HDTR corpus — two Distributed scopes), a
 * checkpoint-tagged RF cross-validation (third), and a Best-RF dual
 * train whose forest fits are the fourth. Only which process
 * *executes* each unit differs; every process ends with the same
 * bytes in memory and on disk.
 */
int
fleetCampaign(const std::string &out_path)
{
    obs::RunReportGuard report("fleet");
    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx =
        setupExperiment(scale, /*need_spec=*/false);

    auto rf_factory = [](const Dataset &tune,
                         uint64_t s) -> std::unique_ptr<Model> {
        ForestConfig fc;
        fc.numTrees = 8;
        fc.maxDepth = 8;
        fc.seed = s;
        return std::make_unique<RandomForest>(tune, fc);
    };

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.pSla = 0.90;
    opts.columns = ctx.plan.pfColumns(12);
    opts.rsvWindow = 400;
    opts.seed = 11;

    AssemblyOptions ao;
    ao.granularityInstr = opts.granularityInstr;
    ao.pSla = opts.pSla;
    ao.columns = opts.columns;
    const Dataset ds =
        assembleDataset(ctx.hdtr, ao, ctx.build.intervalInstr);
    CrossValOptions cv;
    cv.rsvWindow = opts.rsvWindow;
    cv.checkpointTag = "fleet.rf";
    const CrossValSummary summary = crossValidate(ds, rf_factory, cv);
    std::printf("fleet: crossval PGOS %.2f%% +/- %.2f, RSV %.2f%% "
                "+/- %.2f\n",
                summary.pgosMean * 100, summary.pgosStd * 100,
                summary.rsvMean * 100, summary.rsvStd * 100);
    // Result-bearing stats: these (unlike the dist.*/runner.*
    // accounting) must match between a fleet run and a
    // single-process run — the fleet-smoke CI job diffs them.
    auto &reg = obs::StatRegistry::instance();
    reg.gauge("fleet.crossval_pgos_pct").set(summary.pgosMean * 100);
    reg.gauge("fleet.crossval_pgos_std").set(summary.pgosStd * 100);
    reg.gauge("fleet.crossval_rsv_pct").set(summary.rsvMean * 100);
    reg.gauge("fleet.crossval_rsv_std").set(summary.rsvStd * 100);

    TrainedDual dual =
        trainDual(ctx.hdtr, ctx.build, opts, rf_factory);
    DualModelPredictor predictor(dual.high, dual.low, opts.columns,
                                 opts.granularityInstr, "psca-fleet");
    const FirmwarePackage pkg =
        packageFromDual(predictor, opts.columns);
    pkg.save(out_path);
    reg.gauge("fleet.fw_code_bytes")
        .set(static_cast<double>(pkg.high.program.code.size() +
                                 pkg.low.program.code.size()));
    std::printf("fleet: wrote %s\n", out_path.c_str());
    return 0;
}

/**
 * fork+exec one worker: same binary, `fleet --workers 0`, with the
 * fleet role env spliced in. execve with an explicitly built
 * environment — no setenv between fork and exec.
 */
pid_t
spawnFleetWorker(int index, const std::string &addr,
                 const std::string &out_path)
{
    std::vector<std::string> env;
    for (char **e = environ; *e != nullptr; ++e) {
        const std::string s(*e);
        if (s.rfind("PSCA_DIST_", 0) == 0 ||
            s.rfind("PSCA_JOURNAL=", 0) == 0 ||
            s.rfind("PSCA_REPORT_DIR=", 0) == 0 ||
            s.rfind("PSCA_HTTP_PORT=", 0) == 0)
            continue;
        env.push_back(s);
    }
    env.push_back("PSCA_DIST_ROLE=worker");
    env.push_back("PSCA_DIST_ADDR=" + addr);
    // The coordinator owns the journal; workers report to their own
    // directory so they cannot clobber the coordinator's run report.
    env.push_back("PSCA_JOURNAL=0");
    const std::string rdir =
        cacheDirectory() + "/workers/w" + std::to_string(index);
    std::filesystem::create_directories(rdir);
    env.push_back("PSCA_REPORT_DIR=" + rdir);

    std::vector<std::string> args = {"psca",  "fleet", "--workers",
                                     "0",     "--out", out_path};
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    std::vector<char *> envp;
    for (auto &s : env)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        execve("/proc/self/exe", argv.data(), envp.data());
        _exit(127);
    }
    return pid;
}

int
cmdFleet(int argc, char **argv)
{
    int workers = 4;
    std::string out_path = cacheDirectory() + "/fleet_fw.bin";
    for (int i = 0; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--workers"))
            workers = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--out"))
            out_path = argv[i + 1];
    }
    if (workers < 0 || workers > 1024)
        return usage();

    const auto start = std::chrono::steady_clock::now();
    std::vector<pid_t> kids;
    if (workers > 0 && dist::role() == dist::Role::Off) {
        setenv("PSCA_DIST_ROLE", "coordinator", 1);
        setenv("PSCA_DIST_WORKERS",
               std::to_string(workers).c_str(), 1);
        dist::maybeInitFromEnv();
        const std::string addr = dist::coordinatorAddress();
        if (addr.empty()) {
            std::fprintf(stderr,
                         "fleet: coordinator failed to bind; "
                         "running single-process\n");
        } else {
            std::printf("fleet: coordinating %d workers on %s\n",
                        workers, addr.c_str());
            for (int i = 1; i <= workers; ++i)
                kids.push_back(
                    spawnFleetWorker(i, addr, out_path));
        }
    }

    const int rc = fleetCampaign(out_path);

    // Release any worker still parked at a ScopeEnter before waiting
    // on it: the Shutdown broadcast (and closed sockets) make
    // lagging workers finish their remaining scopes locally.
    if (!kids.empty())
        dist::shutdown();

    int bad = 0;
    for (pid_t pid : kids) {
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            ++bad;
    }
    if (bad > 0)
        std::fprintf(stderr, "fleet: %d worker(s) exited abnormally "
                             "(campaign still completed)\n",
                     bad);
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("fleet: campaign complete in %.1f s (%zu worker "
                "processes)\n",
                secs, kids.size());
    return rc;
}

} // namespace

static int
run(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "counters")
        return cmdCounters(argc - 2, argv + 2);
    if (cmd == "kernels")
        return cmdKernels();
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "train")
        return cmdTrain(argc - 2, argv + 2);
    if (cmd == "flash")
        return cmdFlash(argc - 2, argv + 2);
    if (cmd == "fleet")
        return cmdFleet(argc - 2, argv + 2);
    return usage();
}

int
main(int argc, char **argv)
{
    return psca::runner::guardedMain(
        [argc, argv] { return run(argc, argv); });
}
