/**
 * @file
 * psca — command-line driver for the adaptive-CPU library.
 *
 * Subcommands:
 *   counters [--all]          list the telemetry registry
 *   kernels                   list kernel families and SPEC profiles
 *   run <app> [options]       simulate one workload and print
 *                             per-interval telemetry + a summary
 *   train <app...> --out FW   record + train a Best-RF pair and emit
 *                             a flashable firmware image
 *   flash FW <app>            load a firmware image and run the
 *                             closed adaptation loop through the VM
 *
 *   fleet [--workers N]       run the campaign pipeline as a local
 *                             coordinator/worker fleet (DESIGN.md
 *                             §13, OPERATIONS.md); N=0 runs the same
 *                             campaign single-process. --supervise
 *                             restarts a crashed coordinator from
 *                             its journal (crash-resume).
 *   chaos [--workers N]       soak the fleet under a seeded network
 *                             fault schedule with one coordinator
 *                             kill+restart, then assert artifacts
 *                             byte-identical to a clean
 *                             single-process run
 *   serve [--schedule S]      run the online adaptation service:
 *                             drift detection, shadow validation,
 *                             and rollback-safe firmware hot-swap
 *                             over a workload schedule (DESIGN.md
 *                             §15); S = "app:blocks,app:blocks,..."
 *
 * <app> is either `spec:<name-substring>` (a SPEC2017 stand-in) or
 * `<category>:<seed>` with category in {hpc, cloud, ai, web, media,
 * games}.
 */

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "common/env.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/crossval.hh"
#include "core/firmware_image.hh"
#include "core/pipeline.hh"
#include "dist/dist.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "serve/service.hh"
#include "sim/core.hh"
#include "core/runner.hh"

extern char **environ;

using namespace psca;

namespace {

const std::vector<uint16_t> &
defaultCounterIds()
{
    static const std::vector<uint16_t> ids = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::LoadLatSum),
        CounterRegistry::index(Ctr::MshrOccSum),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::UopsReady),
        CounterRegistry::index(Ctr::SqOccSum),
    };
    return ids;
}

const std::vector<size_t> kAllColumns{0, 1, 2, 3, 4, 5, 6, 7};

int
usage()
{
    std::fprintf(stderr,
                 "usage: psca <counters|kernels|run|train|flash|"
                 "fleet|chaos|serve> ...\n"
                 "  psca counters [--all]\n"
                 "  psca kernels\n"
                 "  psca run <app> [--len N] [--mode high|low]\n"
                 "  psca train <app> [<app> ...] --out FW.bin\n"
                 "  psca flash FW.bin <app> [--len N]\n"
                 "  psca fleet [--workers N] [--out FW.bin]\n"
                 "             [--supervise] [--max-restarts K]\n"
                 "  psca chaos [--workers N] [--seed S]\n"
                 "  psca serve [--schedule \"app:blocks,...\"] "
                 "[--seed S]\n"
                 "             [--dir D] [--len N] [--blocks N]\n"
                 "  <app> = spec:<name> | "
                 "{hpc,cloud,ai,web,media,games}:<seed>\n");
    return 2;
}

/** Resolve an <app> spec string into a workload. */
bool
resolveApp(const std::string &spec, uint64_t len, Workload &out)
{
    const size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return false;
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);

    if (kind == "spec") {
        for (const auto &app : buildSpecApps()) {
            if (app.genome.name.find(arg) != std::string::npos) {
                out.genome = app.genome;
                break;
            }
        }
        if (out.genome.phases.empty())
            return false;
    } else {
        static const std::pair<const char *, AppCategory> cats[] = {
            {"hpc", AppCategory::HpcPerf},
            {"cloud", AppCategory::CloudSecurity},
            {"ai", AppCategory::AiAnalytics},
            {"web", AppCategory::WebProductivity},
            {"media", AppCategory::Multimedia},
            {"games", AppCategory::GamesRendering},
        };
        bool found = false;
        for (const auto &[name, cat] : cats) {
            if (kind == name) {
                out.genome = sampleGenome(
                    cat, std::strtoull(arg.c_str(), nullptr, 10));
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    out.inputSeed = 1;
    out.lengthInstr = len;
    out.name = out.genome.name;
    return true;
}

uint64_t
optLen(int argc, char **argv, uint64_t fallback)
{
    for (int i = 0; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--len"))
            return std::strtoull(argv[i + 1], nullptr, 10);
    return fallback;
}

int
cmdCounters(int argc, char **argv)
{
    const bool all = argc > 0 && !std::strcmp(argv[0], "--all");
    const auto &reg = CounterRegistry::instance();
    const size_t limit = all ? reg.numCounters() : kNumScalarCtrs;
    for (size_t i = 0; i < limit; ++i)
        std::printf("%4zu  %s\n", i,
                    reg.name(static_cast<uint16_t>(i)).c_str());
    if (!all)
        std::printf("(... %zu more; use --all)\n",
                    reg.numCounters() - limit);
    return 0;
}

int
cmdKernels()
{
    std::printf("kernel families:\n");
    for (size_t k = 0; k < kNumKernelKinds; ++k)
        std::printf("  %s\n",
                    kernelKindName(static_cast<KernelKind>(k)));
    std::printf("\nSPEC2017 stand-ins:\n");
    for (const auto &app : buildSpecApps()) {
        std::printf("  %-20s %-4s %d inputs, %zu phases\n",
                    app.genome.name.c_str(), app.isFp ? "fp" : "int",
                    app.numInputs, app.genome.phases.size());
    }
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    Workload w;
    if (!resolveApp(argv[0], optLen(argc, argv, 300000), w)) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[0]);
        return 2;
    }
    CoreMode mode = CoreMode::HighPerf;
    for (int i = 0; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--mode") &&
            !std::strcmp(argv[i + 1], "low"))
            mode = CoreMode::LowPower;

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    std::printf("running %s (%lu instructions, %s mode)\n",
                w.name.c_str(),
                static_cast<unsigned long>(w.lengthInstr),
                coreModeName(mode));

    ClusteredCore core(cfg.core);
    core.reset();
    core.setMode(mode);
    PowerModel power(cfg.power, cfg.core.clockGhz);
    TraceGenerator gen(w);
    core.run(gen, cfg.warmupInstr);

    std::printf("%-8s %-8s %-8s %-10s %-10s\n", "intvl", "IPC",
                "watts", "l1d-mpki", "stall/cyc");
    auto prev = core.counters().raw();
    uint64_t remaining = w.lengthInstr;
    int interval = 0;
    PpwAccumulator acc;
    while (remaining >= cfg.intervalInstr) {
        const IntervalStats stats = core.run(gen, cfg.intervalInstr);
        remaining -= cfg.intervalInstr;
        const auto &now = core.counters().raw();
        std::vector<uint64_t> delta(now.size());
        for (size_t i = 0; i < now.size(); ++i)
            delta[i] = now[i] - prev[i];
        prev = now;
        const double watts =
            power.intervalPowerWatts(delta, stats.cycles, mode);
        acc.add(stats.instructions, stats.cycles,
                power.intervalEnergyNj(delta, stats.cycles, mode));
        if (interval % 4 == 0) {
            std::printf(
                "%-8d %-8.2f %-8.2f %-10.2f %-10.3f\n", interval,
                stats.ipc(), watts,
                1000.0 *
                    static_cast<double>(
                        delta[CounterRegistry::index(Ctr::L1dMiss)]) /
                    static_cast<double>(cfg.intervalInstr),
                static_cast<double>(
                    delta[CounterRegistry::index(Ctr::StallCount)]) /
                    static_cast<double>(stats.cycles));
        }
        ++interval;
    }
    std::printf("\nsummary: IPC %.2f, %.2f W, PPW %.3g inst/J\n",
                acc.ipc(),
                acc.energyNj() * 1e-9 /
                    (static_cast<double>(acc.cycles()) /
                     (cfg.core.clockGhz * 1e9)),
                acc.ppw());
    return 0;
}

int
cmdTrain(int argc, char **argv)
{
    std::vector<std::string> apps;
    std::string out_path;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (argv[i][0] != '-') {
            apps.emplace_back(argv[i]);
        }
    }
    if (apps.empty() || out_path.empty())
        return usage();

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    std::vector<TraceRecord> records;
    for (size_t i = 0; i < apps.size(); ++i) {
        Workload w;
        if (!resolveApp(apps[i], 400000, w)) {
            std::fprintf(stderr, "unknown app '%s'\n",
                         apps[i].c_str());
            return 2;
        }
        std::printf("recording %s...\n", w.name.c_str());
        records.push_back(
            recordTrace(w, cfg, static_cast<uint32_t>(i), 0));
    }

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.columns = kAllColumns;
    opts.rsvWindow = 400;
    TrainedDual dual = trainDual(
        records, cfg, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });
    DualModelPredictor predictor(dual.high, dual.low, kAllColumns,
                                 opts.granularityInstr, "psca-cli");
    const FirmwarePackage pkg =
        packageFromDual(predictor, kAllColumns);
    pkg.save(out_path);
    std::printf("wrote %s (%zu + %zu instructions of firmware)\n",
                out_path.c_str(), pkg.high.program.code.size(),
                pkg.low.program.code.size());
    return 0;
}

int
cmdFlash(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Workload w;
    if (!resolveApp(argv[1], optLen(argc, argv, 400000), w)) {
        std::fprintf(stderr, "unknown app '%s'\n", argv[1]);
        return 2;
    }
    FirmwarePackage pkg = FirmwarePackage::load(argv[0]);
    std::printf("flashed %s (granularity %lu)\n", pkg.name.c_str(),
                static_cast<unsigned long>(pkg.granularityInstr));

    BuildConfig cfg;
    cfg.counterIds = defaultCounterIds();
    const TraceRecord ref = recordTrace(w, cfg, 0, 0);
    VmPredictor predictor(std::move(pkg));
    const ClosedLoopResult r =
        runClosedLoop(w, ref, predictor, cfg, SlaSpec{});
    std::printf("%s under predictive cluster gating:\n",
                w.name.c_str());
    std::printf("  PPW %+.1f%%, perf %.1f%%, residency %.1f%%, "
                "PGOS %.1f%%, RSV %.2f%%, uC ops %lu\n",
                r.ppwGainPct, r.perfRelativePct,
                r.lowResidency * 100, r.pgos * 100, r.rsv * 100,
                static_cast<unsigned long>(predictor.vmOpsExecuted()));
    return 0;
}

/**
 * The campaign every fleet process runs, coordinator and workers
 * alike (the lockstep-redundant model of DESIGN.md §13): experiment
 * setup (PF screen + HDTR corpus — two Distributed scopes), a
 * checkpoint-tagged RF cross-validation (third), and a Best-RF dual
 * train whose forest fits are the fourth. Only which process
 * *executes* each unit differs; every process ends with the same
 * bytes in memory and on disk.
 */
int
fleetCampaign(const std::string &out_path)
{
    obs::RunReportGuard report("fleet");
    const ScaleConfig scale = ScaleConfig::fromEnv();
    ExperimentContext ctx =
        setupExperiment(scale, /*need_spec=*/false);

    auto rf_factory = [](const Dataset &tune,
                         uint64_t s) -> std::unique_ptr<Model> {
        ForestConfig fc;
        fc.numTrees = 8;
        fc.maxDepth = 8;
        fc.seed = s;
        return std::make_unique<RandomForest>(tune, fc);
    };

    DualTrainOptions opts;
    opts.granularityInstr = 40000;
    opts.pSla = 0.90;
    opts.columns = ctx.plan.pfColumns(12);
    opts.rsvWindow = 400;
    opts.seed = 11;

    AssemblyOptions ao;
    ao.granularityInstr = opts.granularityInstr;
    ao.pSla = opts.pSla;
    ao.columns = opts.columns;
    const Dataset ds =
        assembleDataset(ctx.hdtr, ao, ctx.build.intervalInstr);
    CrossValOptions cv;
    cv.rsvWindow = opts.rsvWindow;
    cv.checkpointTag = "fleet.rf";
    const CrossValSummary summary = crossValidate(ds, rf_factory, cv);
    std::printf("fleet: crossval PGOS %.2f%% +/- %.2f, RSV %.2f%% "
                "+/- %.2f\n",
                summary.pgosMean * 100, summary.pgosStd * 100,
                summary.rsvMean * 100, summary.rsvStd * 100);
    // Result-bearing stats: these (unlike the dist.*/runner.*
    // accounting) must match between a fleet run and a
    // single-process run — the fleet-smoke CI job diffs them.
    auto &reg = obs::StatRegistry::instance();
    reg.gauge("fleet.crossval_pgos_pct").set(summary.pgosMean * 100);
    reg.gauge("fleet.crossval_pgos_std").set(summary.pgosStd * 100);
    reg.gauge("fleet.crossval_rsv_pct").set(summary.rsvMean * 100);
    reg.gauge("fleet.crossval_rsv_std").set(summary.rsvStd * 100);

    TrainedDual dual =
        trainDual(ctx.hdtr, ctx.build, opts, rf_factory);
    DualModelPredictor predictor(dual.high, dual.low, opts.columns,
                                 opts.granularityInstr, "psca-fleet");
    const FirmwarePackage pkg =
        packageFromDual(predictor, opts.columns);
    pkg.save(out_path);
    reg.gauge("fleet.fw_code_bytes")
        .set(static_cast<double>(pkg.high.program.code.size() +
                                 pkg.low.program.code.size()));
    std::printf("fleet: wrote %s\n", out_path.c_str());
    return 0;
}

/**
 * fork+exec this binary with an explicitly rebuilt environment (no
 * setenv between fork and exec): inherited vars matching any of
 * @p drop_prefixes are removed, then @p extra_env is appended.
 */
pid_t
spawnSelf(const std::vector<std::string> &args,
          const std::vector<std::string> &drop_prefixes,
          const std::vector<std::string> &extra_env)
{
    std::vector<std::string> env;
    for (char **e = environ; *e != nullptr; ++e) {
        const std::string s(*e);
        bool dropped = false;
        for (const auto &p : drop_prefixes) {
            if (s.rfind(p, 0) == 0) {
                dropped = true;
                break;
            }
        }
        if (!dropped)
            env.push_back(s);
    }
    env.insert(env.end(), extra_env.begin(), extra_env.end());

    std::vector<std::string> args_copy = args;
    std::vector<char *> argv;
    for (auto &a : args_copy)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    std::vector<char *> envp;
    for (auto &s : env)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        execve("/proc/self/exe", argv.data(), envp.data());
        _exit(127);
    }
    return pid;
}

/** The env prefixes a fleet child must never inherit verbatim. */
const std::vector<std::string> kFleetDropPrefixes = {
    "PSCA_DIST_", "PSCA_JOURNAL=", "PSCA_REPORT_DIR=",
    "PSCA_HTTP_PORT="};

/**
 * fork+exec one worker: same binary, `fleet --workers 0`, with the
 * fleet role env spliced in. @p addr may be "auto" so the worker
 * finds the coordinator through the address file — the form that
 * survives coordinator restarts, which republish a fresh port.
 */
pid_t
spawnFleetWorker(int index, const std::string &addr,
                 const std::string &out_path,
                 const std::vector<std::string> &chaos_env = {})
{
    std::vector<std::string> extra = chaos_env;
    extra.push_back("PSCA_DIST_ROLE=worker");
    extra.push_back("PSCA_DIST_ADDR=" + addr);
    // The coordinator owns the journal; workers report to their own
    // directory so they cannot clobber the coordinator's run report.
    extra.push_back("PSCA_JOURNAL=0");
    const std::string rdir =
        cacheDirectory() + "/workers/w" + std::to_string(index);
    std::filesystem::create_directories(rdir);
    extra.push_back("PSCA_REPORT_DIR=" + rdir);
    return spawnSelf({"psca", "fleet", "--workers", "0", "--out",
                      out_path},
                     kFleetDropPrefixes, extra);
}

/**
 * fork+exec a coordinator child: `fleet --workers 0` with the
 * coordinator role spliced in, so cmdFleet in the child serves the
 * fleet without forking workers of its own. The supervisor parent
 * respawns it after a crash; the journal resumes completed work.
 */
pid_t
spawnFleetCoordinator(int workers, const std::string &out_path,
                      const std::vector<std::string> &chaos_env = {})
{
    std::vector<std::string> extra = chaos_env;
    extra.push_back("PSCA_DIST_ROLE=coordinator");
    extra.push_back("PSCA_DIST_ADDR=auto");
    extra.push_back("PSCA_DIST_WORKERS=" + std::to_string(workers));
    // Unlike workers, the coordinator keeps the caller's journal and
    // report settings: its journal is what makes the restart resume,
    // and its fleet.json is the report of record.
    return spawnSelf({"psca", "fleet", "--workers", "0", "--out",
                      out_path},
                     {"PSCA_DIST_", "PSCA_HTTP_PORT="}, extra);
}

int
cmdFleet(int argc, char **argv)
{
    int workers = 4;
    std::string out_path = cacheDirectory() + "/fleet_fw.bin";
    bool supervised = false;
    int max_restarts = 3;
    for (int i = 0; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--workers") && i + 1 < argc)
            workers = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--supervise"))
            supervised = true;
        else if (!std::strcmp(argv[i], "--max-restarts") &&
                 i + 1 < argc)
            max_restarts = std::atoi(argv[i + 1]);
    }
    if (workers < 0 || workers > 1024 || max_restarts < 0 ||
        max_restarts > 1000)
        return usage();

    if (supervised && workers > 0 && dist::role() == dist::Role::Off)
    {
        // Crash-resume mode (DESIGN.md §13): the campaign runs in a
        // supervised coordinator child; if it dies, runner::supervise
        // respawns it and the journal replays completed units.
        // Workers connect through the address file ("auto"), which
        // each coordinator incarnation republishes, so they rejoin
        // the replacement on their own.
        std::error_code ec;
        std::filesystem::remove(cacheDirectory() + "/dist_addr", ec);
        std::printf("fleet: supervising a coordinator for %d "
                    "workers (restart budget %d)\n",
                    workers, max_restarts);
        std::vector<pid_t> kids;
        for (int i = 1; i <= workers; ++i)
            kids.push_back(spawnFleetWorker(i, "auto", out_path));
        const int rc = runner::supervise(
            [&] { return spawnFleetCoordinator(workers, out_path); },
            max_restarts, "fleet coordinator");
        if (rc != 0) {
            // The coordinator is gone for good: withdraw its address
            // file so the workers stop trying to rejoin and fall
            // back to finishing their remaining scopes locally.
            std::filesystem::remove(cacheDirectory() + "/dist_addr",
                                    ec);
        }
        for (pid_t pid : kids) {
            int status = 0;
            waitpid(pid, &status, 0);
        }
        return rc;
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<pid_t> kids;
    if (workers > 0 && dist::role() == dist::Role::Off) {
        setenv("PSCA_DIST_ROLE", "coordinator", 1);
        setenv("PSCA_DIST_WORKERS",
               std::to_string(workers).c_str(), 1);
        dist::maybeInitFromEnv();
        const std::string addr = dist::coordinatorAddress();
        if (addr.empty()) {
            std::fprintf(stderr,
                         "fleet: coordinator failed to bind; "
                         "running single-process\n");
        } else {
            std::printf("fleet: coordinating %d workers on %s\n",
                        workers, addr.c_str());
            for (int i = 1; i <= workers; ++i)
                kids.push_back(
                    spawnFleetWorker(i, addr, out_path));
        }
    }

    const int rc = fleetCampaign(out_path);

    // Release any worker still parked at a ScopeEnter before waiting
    // on it: the Shutdown broadcast (and closed sockets) make
    // lagging workers finish their remaining scopes locally.
    if (!kids.empty())
        dist::shutdown();

    int bad = 0;
    for (pid_t pid : kids) {
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            ++bad;
    }
    if (bad > 0)
        std::fprintf(stderr, "fleet: %d worker(s) exited abnormally "
                             "(campaign still completed)\n",
                     bad);
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("fleet: campaign complete in %.1f s (%zu worker "
                "processes)\n",
                secs, kids.size());
    return rc;
}

/**
 * Scrape one stat out of a run-report JSON file without a JSON
 * parser: find `"name"`, skip to the colon, strtod the value. The
 * report writer (obs/snapshot.cc) emits flat `"name": value` pairs,
 * so this is exact for any stat name that appears at most once.
 * Returns 0 when the file or the stat is absent — matching the
 * lazily-created counters, which only exist once incremented.
 */
double
reportValue(const std::string &path, const std::string &name)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return 0.0;
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    const std::string needle = "\"" + name + "\"";
    const size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return 0.0;
    const size_t colon = text.find(':', pos + needle.size());
    if (colon == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

/** The env prefixes chaos children must never inherit. */
const std::vector<std::string> kChaosDropPrefixes = {
    "PSCA_DIST_",      "PSCA_JOURNAL=",    "PSCA_REPORT_DIR=",
    "PSCA_HTTP_PORT=", "PSCA_CACHE_DIR=",  "PSCA_FAULTS=",
    "PSCA_FAULT_SEED=", "PSCA_RESUME="};

/**
 * Chaos soak (ISSUE: robustness): run the fleet campaign twice —
 * once clean and single-process, once as a fleet under a seeded
 * network fault schedule with one coordinator SIGKILL mid-scope —
 * and assert the artifacts are byte-identical. The schedule is
 * derived from --seed alone, so a failing soak replays exactly.
 */
int
cmdChaos(int argc, char **argv)
{
    int workers = static_cast<int>(
        env::intOr("PSCA_CHAOS_WORKERS", 4, 1, 64));
    uint64_t seed = static_cast<uint64_t>(
        env::intOr("PSCA_CHAOS_SEED", 1234, 0,
                   std::numeric_limits<long long>::max()));
    for (int i = 0; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--workers"))
            workers = std::atoi(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (workers < 1 || workers > 64)
        return usage();

    const std::string ref_dir = cacheDirectory() + "/chaos_ref";
    const std::string run_dir = cacheDirectory() + "/chaos_run";
    std::error_code ec;
    std::filesystem::remove_all(ref_dir, ec);
    std::filesystem::remove_all(run_dir, ec);
    std::filesystem::create_directories(ref_dir);
    std::filesystem::create_directories(run_dir);

    obs::RunReportGuard report("chaos");
    auto &reg = obs::StatRegistry::instance();

    // Phase 1: the clean reference — same campaign, one process, no
    // fleet, no faults. Everything the chaos run produces must match
    // these bytes.
    std::printf("chaos: [1/3] clean single-process reference\n");
    {
        pid_t ref = spawnSelf({"psca", "fleet", "--workers", "0",
                               "--out", ref_dir + "/fleet_fw.bin"},
                              kChaosDropPrefixes,
                              {"PSCA_CACHE_DIR=" + ref_dir,
                               "PSCA_REPORT_DIR=" + ref_dir});
        int status = 0;
        waitpid(ref, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "chaos: reference run failed; aborting\n");
            return 1;
        }
    }

    // Phase 2: the chaos run. Fault rates are drawn from the seed so
    // every soak uses a different-but-reproducible schedule; the
    // same seed goes to the children as PSCA_FAULT_SEED, making each
    // individual fire deterministic too.
    Rng rng(mixSeeds(seed, 0x43484153u /* "CHAS" */));
    std::ostringstream spec;
    spec << "net.frame_corrupt:" << rng.uniform(0.002, 0.02)
         << ",net.torn_send:" << rng.uniform(0.002, 0.02)
         << ",net.conn_reset:" << rng.uniform(0.002, 0.02)
         << ",net.recv_stall:" << rng.uniform(0.01, 0.05) << ":20"
         << ",net.heartbeat_drop:0.2"
         << ",net.dup_result:" << rng.uniform(0.05, 0.2);
    const uint64_t kill_at = 2 + rng.below(4);
    std::printf("chaos: [2/3] %d-worker fleet under '%s', "
                "coordinator SIGKILL after %llu journal entries\n",
                workers, spec.str().c_str(),
                static_cast<unsigned long long>(kill_at));

    const std::vector<std::string> fault_env = {
        "PSCA_FAULTS=" + spec.str(),
        "PSCA_FAULT_SEED=" + std::to_string(seed)};

    std::vector<pid_t> kids;
    for (int i = 1; i <= workers; ++i) {
        const std::string rdir =
            run_dir + "/workers/w" + std::to_string(i);
        std::filesystem::create_directories(rdir);
        std::vector<std::string> extra = fault_env;
        extra.insert(extra.end(),
                     {"PSCA_CACHE_DIR=" + run_dir,
                      "PSCA_REPORT_DIR=" + rdir, "PSCA_JOURNAL=0",
                      "PSCA_DIST_ROLE=worker", "PSCA_DIST_ADDR=auto",
                      "PSCA_DIST_RETRIES=10",
                      "PSCA_DIST_CONNECT_S=30",
                      "PSCA_DIST_IO_TIMEOUT_S=30",
                      "PSCA_DIST_HEARTBEAT_MS=100"});
        kids.push_back(
            spawnSelf({"psca", "fleet", "--workers", "0", "--out",
                       run_dir + "/fleet_fw.bin"},
                      kChaosDropPrefixes, extra));
    }

    // The killer thread waits for the coordinator's journal to show
    // real mid-scope progress, then SIGKILLs whatever incarnation is
    // currently alive. The supervisor respawns it; the journal
    // replays its completed units; the workers rejoin through the
    // republished address file.
    std::atomic<pid_t> current{-1};
    std::atomic<bool> killer_stop{false};
    std::atomic<int> kills{0};
    const std::string journal_path = run_dir + "/journal.psj";
    std::thread killer([&] {
        while (!killer_stop.load(std::memory_order_relaxed)) {
            if (Journal::countEntries(journal_path) >= kill_at) {
                const pid_t pid = current.load();
                if (pid > 0 && ::kill(pid, SIGKILL) == 0) {
                    kills.fetch_add(1);
                    return;
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    std::vector<std::string> coord_extra = fault_env;
    coord_extra.insert(coord_extra.end(),
                       {"PSCA_CACHE_DIR=" + run_dir,
                        "PSCA_REPORT_DIR=" + run_dir,
                        "PSCA_DIST_ROLE=coordinator",
                        "PSCA_DIST_ADDR=auto",
                        "PSCA_DIST_WORKERS=" +
                            std::to_string(workers)});
    const int rc_run = runner::supervise(
        [&] {
            return spawnSelf({"psca", "fleet", "--workers", "0",
                              "--out", run_dir + "/fleet_fw.bin"},
                             kChaosDropPrefixes, coord_extra);
        },
        /*max_restarts=*/3, "chaos coordinator", &current);
    killer_stop.store(true);
    killer.join();
    if (kills.load() > 0)
        emitEvent("chaos", LogLevel::Warn,
                       "coordinator SIGKILLed after " +
                           std::to_string(kill_at) +
                           " journal entries and restarted");
    if (rc_run != 0)
        std::filesystem::remove(run_dir + "/dist_addr", ec);
    for (pid_t pid : kids) {
        int status = 0;
        waitpid(pid, &status, 0);
    }

    // Phase 3: the verdict. Artifacts must be byte-identical; the
    // coordinator's final report must show the recovery machinery
    // actually exercised (>= 1 rejoin, no local fallback, network
    // faults firing).
    std::printf("chaos: [3/3] comparing artifacts\n");
    auto read_all = [](const std::string &p) {
        std::ifstream f(p, std::ios::binary);
        std::ostringstream s;
        s << f.rdbuf();
        return s.str();
    };
    int compared = 0;
    int mismatched = 0;
    for (const auto &ent :
         std::filesystem::directory_iterator(ref_dir))
    {
        if (!ent.is_regular_file())
            continue;
        const std::string name = ent.path().filename().string();
        if (name != "fleet_fw.bin" && name.rfind("hdtr_", 0) != 0 &&
            name.rfind("pf936_", 0) != 0)
            continue;
        ++compared;
        const std::string other = run_dir + "/" + name;
        if (!std::filesystem::exists(other, ec) ||
            read_all(ent.path().string()) != read_all(other))
        {
            ++mismatched;
            std::fprintf(stderr, "chaos: artifact DIVERGED: %s\n",
                         name.c_str());
        }
    }

    const std::string coord_report = run_dir + "/fleet.json";
    const double rejoins = reportValue(coord_report, "dist.rejoins");
    const double duplicates =
        reportValue(coord_report, "dist.duplicate_results");
    double fallbacks =
        reportValue(coord_report, "dist.local_fallbacks");
    double net_fires = 0.0;
    static const char *const kNetSites[] = {
        "net.frame_corrupt", "net.torn_send",      "net.conn_reset",
        "net.recv_stall",    "net.heartbeat_drop", "net.dup_result"};
    std::vector<std::string> reports = {coord_report};
    for (int i = 1; i <= workers; ++i)
        reports.push_back(run_dir + "/workers/w" +
                          std::to_string(i) + "/fleet.json");
    for (const auto &r : reports)
        for (const char *site : kNetSites)
            net_fires +=
                reportValue(r, std::string("fault.") + site +
                                   ".fires");
    for (int i = 1; i <= workers; ++i)
        fallbacks += reportValue(run_dir + "/workers/w" +
                                     std::to_string(i) +
                                     "/fleet.json",
                                 "dist.local_fallbacks");

    reg.gauge("chaos.workers").set(workers);
    reg.gauge("chaos.seed").set(static_cast<double>(seed));
    reg.gauge("chaos.kill_after_entries")
        .set(static_cast<double>(kill_at));
    reg.gauge("chaos.coordinator_kills").set(kills.load());
    reg.gauge("chaos.artifacts_compared").set(compared);
    reg.gauge("chaos.artifact_mismatches").set(mismatched);
    reg.gauge("chaos.rejoins").set(rejoins);
    reg.gauge("chaos.local_fallbacks").set(fallbacks);
    reg.gauge("chaos.duplicate_results").set(duplicates);
    reg.gauge("chaos.net_fault_fires").set(net_fires);

    const bool pass = rc_run == 0 && compared >= 1 &&
        mismatched == 0 && kills.load() >= 1 && rejoins >= 1 &&
        fallbacks == 0 && net_fires >= 1;
    std::printf(
        "chaos: %d artifacts compared, %d diverged; %d coordinator "
        "kill(s); %.0f rejoin(s), %.0f local fallback(s), %.0f "
        "duplicate result(s), %.0f net fault fire(s)\n",
        compared, mismatched, kills.load(), rejoins, fallbacks,
        duplicates, net_fires);
    std::printf("chaos: %s\n", pass ? "PASS — fleet under chaos is "
                                      "byte-identical to the clean "
                                      "single-process run"
                                    : "FAIL");
    return pass ? 0 : 1;
}

/**
 * psca serve — the online adaptation service (DESIGN.md §15). The
 * schedule is a comma list of "app:blocks" entries (the app spec
 * itself contains a colon, so the blocks count is split off at the
 * LAST colon). The default schedule shifts workload category halfway
 * through, which is exactly the distribution shift the drift
 * detector exists to catch.
 */
int
cmdServe(int argc, char **argv)
{
    std::string schedule_spec = "hpc:2:48,media:7:48";
    uint64_t len = 240000;
    uint64_t max_blocks = 0;
    serve::ServeConfig cfg = serve::ServeConfig::fromEnv();
    for (int i = 0; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--schedule"))
            schedule_spec = argv[i + 1];
        else if (!std::strcmp(argv[i], "--seed"))
            cfg.seed = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--dir"))
            cfg.dir = argv[i + 1];
        else if (!std::strcmp(argv[i], "--len"))
            len = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--blocks"))
            max_blocks = std::strtoull(argv[i + 1], nullptr, 10);
    }

    std::vector<serve::ServeSegment> schedule;
    std::istringstream ss(schedule_spec);
    std::string entry;
    while (std::getline(ss, entry, ',')) {
        const size_t colon = entry.rfind(':');
        if (colon == std::string::npos || colon + 1 >= entry.size())
            return usage();
        serve::ServeSegment seg;
        seg.blocks =
            std::strtoull(entry.c_str() + colon + 1, nullptr, 10);
        if (seg.blocks == 0 ||
            !resolveApp(entry.substr(0, colon), len, seg.workload))
        {
            std::fprintf(stderr, "bad schedule entry '%s'\n",
                         entry.c_str());
            return 2;
        }
        schedule.push_back(std::move(seg));
    }
    if (schedule.empty())
        return usage();

    BuildConfig build;
    build.counterIds = defaultCounterIds();

    obs::RunReportGuard report("serve");
    std::printf("serve: %zu-segment schedule, fw ring at %s\n",
                schedule.size(), cfg.dir.c_str());
    serve::Service service(cfg, build, std::move(schedule));
    const serve::ServeOutcome &out = service.run(max_blocks);
    std::printf(
        "serve: %llu blocks, %llu drift(s), %llu retrain(s) "
        "(%llu failed), %llu promotion(s), %llu rejection(s), "
        "%llu rollback(s); active fw v%u, PPW %+.2f%% vs high-only\n",
        static_cast<unsigned long long>(out.blocks),
        static_cast<unsigned long long>(out.driftsDetected),
        static_cast<unsigned long long>(out.retrains),
        static_cast<unsigned long long>(out.retrainFailures),
        static_cast<unsigned long long>(out.promotions),
        static_cast<unsigned long long>(out.rejections),
        static_cast<unsigned long long>(out.rollbacks),
        out.activeVersion, out.ppwGainPct);
    return 0;
}

} // namespace

static int
run(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "counters")
        return cmdCounters(argc - 2, argv + 2);
    if (cmd == "kernels")
        return cmdKernels();
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "train")
        return cmdTrain(argc - 2, argv + 2);
    if (cmd == "flash")
        return cmdFlash(argc - 2, argv + 2);
    if (cmd == "fleet")
        return cmdFleet(argc - 2, argv + 2);
    if (cmd == "chaos")
        return cmdChaos(argc - 2, argv + 2);
    if (cmd == "serve")
        return cmdServe(argc - 2, argv + 2);
    return usage();
}

int
main(int argc, char **argv)
{
    return psca::runner::guardedMain(
        [argc, argv] { return run(argc, argv); });
}
