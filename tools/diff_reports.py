#!/usr/bin/env python3
"""Diff two run reports, ignoring process-accounting noise.

Usage: diff_reports.py <a.json> <b.json> [--ignore PREFIX ...]

The crash-safe runner's determinism contract (DESIGN.md §11) is that
a resumed run reproduces the *results* of an uninterrupted run bit
for bit, not its process accounting: a resume skips completed units,
so counters that meter work performed (simulated intervals, memo
traffic, journal activity, fault-site fires) legitimately differ,
while every result-bearing stat (suite.* metrics, controller
decisions, model quality gauges) must match exactly. This tool
encodes that split so CI can compare an interrupted-then-resumed run
against a straight-through baseline.

Compared: "counters", "gauges", and "histograms" objects, minus any
key starting with an ignored prefix. Ignored wholesale: "phases"
(wall-clock timings) and any key ending in _ns or _ms. Exits 1 with
one line per mismatch; exits 0 when the result sets are identical.
"""

import argparse
import json
import sys

# Work-metering stats: how much was *done*, not what was *computed*.
# A resumed run does less of all of these.
DEFAULT_IGNORE = [
    "runner.",   # journal skip/execute/retry accounting
    "memo.",     # simulation memo-cache traffic
    "record.",   # trace-record cache traffic
    "sim.",      # raw simulation work counters
    "fault.",    # fault-site fires track executed sites
    "uc.",       # firmware VM op/inference counts
    "trace.",    # span-trace event/drop accounting (telemetry plane)
    "events.",   # structured event-log accounting
    "http.",     # live-endpoint request counts
    "dist.",     # fleet wire/assignment accounting (varies with -N)
    "chaos.",    # chaos-soak schedule/recovery accounting
]


def flatten(doc, ignore):
    """Yield (dotted_key, value) for every compared leaf."""
    for section in ("counters", "gauges", "histograms"):
        for name, value in doc.get(section, {}).items():
            key = f"{section}.{name}"
            if name.endswith(("_ns", "_ms")):
                continue
            if any(name.startswith(p) for p in ignore):
                continue
            if isinstance(value, dict):
                for sub, v in sorted(value.items()):
                    yield f"{key}.{sub}", v
            else:
                yield key, value


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--ignore", action="append", default=[],
                    metavar="PREFIX",
                    help="extra stat-name prefix to ignore "
                         "(repeatable; adds to the built-in list)")
    args = ap.parse_args()
    ignore = DEFAULT_IGNORE + args.ignore

    with open(args.a) as f:
        a = dict(flatten(json.load(f), ignore))
    with open(args.b) as f:
        b = dict(flatten(json.load(f), ignore))

    mismatches = 0
    for key in sorted(set(a) | set(b)):
        if key not in a:
            print(f"MISMATCH {key}: only in {args.b} (= {b[key]})")
        elif key not in b:
            print(f"MISMATCH {key}: only in {args.a} (= {a[key]})")
        elif a[key] != b[key]:
            print(f"MISMATCH {key}: {a[key]} != {b[key]}")
        else:
            continue
        mismatches += 1

    if mismatches:
        print(f"{mismatches} result stat(s) differ between "
              f"{args.a} and {args.b}")
        return 1
    print(f"reports match: {len(a)} result stats identical "
          f"({len(ignore)} accounting prefixes ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
