#!/usr/bin/env python3
"""Diff two run reports, ignoring process-accounting noise.

Usage: diff_reports.py <a.json> <b.json> [--ignore PREFIX ...]

The crash-safe runner's determinism contract (DESIGN.md §11) is that
a resumed run reproduces the *results* of an uninterrupted run bit
for bit, not its process accounting: a resume skips completed units,
so counters that meter work performed (simulated intervals, memo
traffic, journal activity, fault-site fires) legitimately differ,
while every result-bearing stat (suite.* metrics, controller
decisions, model quality gauges) must match exactly. This tool
encodes that split so CI can compare an interrupted-then-resumed run
against a straight-through baseline.

Compared: "counters", "gauges", and "histograms" objects, minus any
key starting with an ignored prefix. Ignored wholesale: "phases"
(wall-clock timings) and any key ending in _ns or _ms. Exits 1 with
one line per mismatch; exits 0 when the result sets are identical.
"""

import argparse
import json
import sys

# Work-metering stats: how much was *done*, not what was *computed*.
# A resumed run does less of all of these.
DEFAULT_IGNORE = [
    "runner.",   # journal skip/execute/retry accounting
    "memo.",     # simulation memo-cache traffic
    "record.",   # trace-record cache traffic
    "sim.",      # raw simulation work counters
    "fault.",    # fault-site fires track executed sites
    "uc.",       # firmware VM op/inference counts
    "trace.",    # span-trace event/drop accounting (telemetry plane)
    "events.",   # structured event-log accounting
    "http.",     # live-endpoint request counts
    "dist.",     # fleet wire/assignment accounting (varies with -N)
    "chaos.",    # chaos-soak schedule/recovery accounting
    "serve.",    # adaptation-service lifecycle accounting
    "drift.",    # drift-detector window statistics
]


def load_report(path):
    """Parse one run report, exiting 2 with a clear message instead of
    a traceback when the file is missing, truncated (a crashed run's
    partial dump), or not JSON at all."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"error: cannot read report {path}: {e.strerror or e}",
              file=sys.stderr)
    except json.JSONDecodeError as e:
        print(f"error: report {path} is not valid JSON "
              f"(truncated or corrupt dump?): {e}", file=sys.stderr)
    except UnicodeDecodeError as e:
        print(f"error: report {path} is not UTF-8 text: {e}",
              file=sys.stderr)
    sys.exit(2)


def flatten(doc, ignore):
    """Yield (dotted_key, value) for every compared leaf."""
    for section in ("counters", "gauges", "histograms"):
        for name, value in doc.get(section, {}).items():
            key = f"{section}.{name}"
            if name.endswith(("_ns", "_ms")):
                continue
            if any(name.startswith(p) for p in ignore):
                continue
            if isinstance(value, dict):
                for sub, v in sorted(value.items()):
                    yield f"{key}.{sub}", v
            else:
                yield key, value


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--ignore", action="append", default=[],
                    metavar="PREFIX",
                    help="extra stat-name prefix to ignore "
                         "(repeatable; adds to the built-in list)")
    args = ap.parse_args()
    ignore = DEFAULT_IGNORE + args.ignore

    a = dict(flatten(load_report(args.a), ignore))
    b = dict(flatten(load_report(args.b), ignore))

    mismatches = 0
    for key in sorted(set(a) | set(b)):
        if key not in a:
            print(f"MISMATCH {key}: only in {args.b} (= {b[key]})")
        elif key not in b:
            print(f"MISMATCH {key}: only in {args.a} (= {a[key]})")
        elif a[key] != b[key]:
            print(f"MISMATCH {key}: {a[key]} != {b[key]}")
        else:
            continue
        mismatches += 1

    if mismatches:
        print(f"{mismatches} result stat(s) differ between "
              f"{args.a} and {args.b}")
        return 1
    print(f"reports match: {len(a)} result stats identical "
          f"({len(ignore)} accounting prefixes ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
