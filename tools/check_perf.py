#!/usr/bin/env python3
"""Compare a BENCH_*.json run report against a recorded perf baseline.

Usage: check_perf.py <report.json> <baseline.json> [--threshold 0.20]
                     [--update-baseline]

For every gauge named in the baseline's "gauges" object, warn (GitHub
workflow-command format, so the annotation surfaces on the PR) when
the measured value falls more than the threshold below the recorded
value. Exits 1 when any gauge regressed — pair with continue-on-error
in CI to keep the job advisory: shared runners are noisy, so a single
warn is a nudge to re-run, not a verdict.

A missing baseline file or a gauge that has disappeared from the
report is a bookkeeping gap, not a perf regression: both warn and
exit 0 so a renamed gauge or a fresh checkout never fails the job.
Re-record with --update-baseline, which rewrites the baseline's
gauges from the measured report and exits 0.
"""

import argparse
import json
import os
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="tolerated fractional drop (default 0.20)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline's gauges from the "
                         "report instead of comparing")
    args = ap.parse_args()

    try:
        with open(args.report) as f:
            measured = json.load(f).get("gauges", {})
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::perf report {args.report} unreadable "
              f"({err}); nothing to check")
        return 0

    if args.update_baseline:
        doc = {}
        if os.path.exists(args.baseline):
            try:
                with open(args.baseline) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError):
                doc = {}
        # Keep previously tracked gauge names where possible so a
        # partial report doesn't silently shrink coverage.
        tracked = set(doc.get("gauges", {})) | set(measured)
        doc["gauges"] = {
            name: measured[name]
            for name in sorted(tracked) if name in measured
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline {args.baseline} updated: "
              f"{len(doc['gauges'])} gauges recorded")
        return 0

    if not os.path.exists(args.baseline):
        print(f"::warning::perf baseline {args.baseline} missing; "
              f"record one with --update-baseline")
        return 0
    try:
        with open(args.baseline) as f:
            baseline = json.load(f).get("gauges", {})
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::perf baseline {args.baseline} unreadable "
              f"({err}); re-record with --update-baseline")
        return 0

    regressed = 0
    for name, recorded in sorted(baseline.items()):
        got = measured.get(name)
        if got is None:
            print(f"::warning::perf gauge {name} missing from "
                  f"{args.report}; re-record the baseline if it was "
                  f"renamed")
            continue
        floor = recorded * (1.0 - args.threshold)
        verdict = "ok"
        if got < floor:
            verdict = "REGRESSED"
            print(f"::warning::perf regression: {name} = {got:.2f}, "
                  f"recorded {recorded:.2f} "
                  f"(floor {floor:.2f} at -{args.threshold:.0%})")
            regressed += 1
        print(f"  {name}: measured {got:.2f} vs recorded "
              f"{recorded:.2f} [{verdict}]")

    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
