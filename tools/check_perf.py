#!/usr/bin/env python3
"""Compare a BENCH_*.json run report against a recorded perf baseline.

Usage: check_perf.py <report.json> <baseline.json> [--threshold 0.20]
                     [--blocking] [--update-baseline]

For every gauge named in the baseline's "gauges" object, warn (GitHub
workflow-command format, so the annotation surfaces on the PR) when
the measured value falls more than the tolerated fraction below the
recorded value. A gauge entry is either a bare number or an object
``{"value": 19.5, "tolerance_pct": 25}``; the per-gauge tolerance
overrides --threshold, so noisy wall-clock gauges can carry a wider
band than stable ratio gauges.

By default the script always exits 0 (warn-only): local runs and
laptops are noisy, so a warning is a nudge to look, not a verdict.
With --blocking, any regressed gauge exits 1 — the CI perf-smoke job
runs in this mode and gates the merge. When a blocking run fails on
an intentional change (new kernel, retuned model), re-record with
--update-baseline on a quiet machine and commit the result.

A missing baseline file or a gauge that has disappeared from the
report is a bookkeeping gap, not a perf regression: both warn and
exit 0 so a renamed gauge or a fresh checkout never fails the job.
Re-record with --update-baseline, which rewrites the baseline's
gauge values from the measured report (preserving any per-gauge
tolerance_pct) and exits 0.
"""

import argparse
import json
import os
import sys


def entry_value(entry):
    """Recorded value of a gauge entry (number or object form)."""
    if isinstance(entry, dict):
        return float(entry["value"])
    return float(entry)


def entry_tolerance(entry, default_frac):
    """Tolerated fractional drop for a gauge entry."""
    if isinstance(entry, dict) and "tolerance_pct" in entry:
        return float(entry["tolerance_pct"]) / 100.0
    return default_frac


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="default tolerated fractional drop when a "
                         "gauge carries no tolerance_pct (default "
                         "0.20)")
    ap.add_argument("--blocking", action="store_true",
                    help="exit 1 when any gauge regressed (CI gate); "
                         "without it regressions only warn")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline's gauge values from "
                         "the report instead of comparing")
    args = ap.parse_args()

    try:
        with open(args.report) as f:
            measured = json.load(f).get("gauges", {})
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::perf report {args.report} unreadable "
              f"({err}); nothing to check")
        return 0

    if args.update_baseline:
        doc = {}
        if os.path.exists(args.baseline):
            try:
                with open(args.baseline) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError):
                doc = {}
        # Keep previously tracked gauge names (and their tolerances)
        # where possible so a partial report doesn't silently shrink
        # coverage or drop tuning.
        old = doc.get("gauges", {})
        tracked = set(old) | set(measured)
        gauges = {}
        for name in sorted(tracked):
            if name not in measured:
                continue
            prior = old.get(name)
            if isinstance(prior, dict):
                entry = dict(prior)
                entry["value"] = measured[name]
            else:
                entry = measured[name]
            gauges[name] = entry
        doc["gauges"] = gauges
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline {args.baseline} updated: "
              f"{len(doc['gauges'])} gauges recorded")
        return 0

    if not os.path.exists(args.baseline):
        print(f"::warning::perf baseline {args.baseline} missing; "
              f"record one with --update-baseline")
        return 0
    try:
        with open(args.baseline) as f:
            baseline = json.load(f).get("gauges", {})
    except (OSError, json.JSONDecodeError) as err:
        print(f"::warning::perf baseline {args.baseline} unreadable "
              f"({err}); re-record with --update-baseline")
        return 0

    regressed = 0
    for name, entry in sorted(baseline.items()):
        got = measured.get(name)
        if got is None:
            print(f"::warning::perf gauge {name} missing from "
                  f"{args.report}; re-record the baseline if it was "
                  f"renamed")
            continue
        recorded = entry_value(entry)
        tolerance = entry_tolerance(entry, args.threshold)
        floor = recorded * (1.0 - tolerance)
        verdict = "ok"
        if got < floor:
            verdict = "REGRESSED"
            print(f"::warning::perf regression: {name} = {got:.2f}, "
                  f"recorded {recorded:.2f} "
                  f"(floor {floor:.2f} at -{tolerance:.0%})")
            regressed += 1
        print(f"  {name}: measured {got:.2f} vs recorded "
              f"{recorded:.2f} [-{tolerance:.0%} floor "
              f"{floor:.2f}] [{verdict}]")

    if regressed and not args.blocking:
        print(f"{regressed} gauge(s) regressed; warn-only mode "
              f"(pass --blocking to gate)")
        return 0
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
