#!/usr/bin/env python3
"""Compare a BENCH_*.json run report against a recorded perf baseline.

Usage: check_perf.py <report.json> <baseline.json> [--threshold 0.20]

For every gauge named in the baseline's "gauges" object, warn (GitHub
workflow-command format, so the annotation surfaces on the PR) when
the measured value falls more than the threshold below the recorded
value. Exits 1 when any gauge regressed — pair with continue-on-error
in CI to keep the job advisory: shared runners are noisy, so a single
warn is a nudge to re-run, not a verdict.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("baseline")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="tolerated fractional drop (default 0.20)")
    args = ap.parse_args()

    with open(args.report) as f:
        measured = json.load(f).get("gauges", {})
    with open(args.baseline) as f:
        baseline = json.load(f)["gauges"]

    regressed = 0
    for name, recorded in sorted(baseline.items()):
        got = measured.get(name)
        if got is None:
            print(f"::warning::perf gauge {name} missing from "
                  f"{args.report}")
            regressed += 1
            continue
        floor = recorded * (1.0 - args.threshold)
        verdict = "ok"
        if got < floor:
            verdict = "REGRESSED"
            print(f"::warning::perf regression: {name} = {got:.2f}, "
                  f"recorded {recorded:.2f} "
                  f"(floor {floor:.2f} at -{args.threshold:.0%})")
            regressed += 1
        print(f"  {name}: measured {got:.2f} vs recorded "
              f"{recorded:.2f} [{verdict}]")

    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
