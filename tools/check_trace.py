#!/usr/bin/env python3
"""Validate a PSCA_TRACE output file against the Chrome trace-event
format (the subset Perfetto / chrome://tracing loads).

Usage: check_trace.py <trace.json> [--min-events N]
                      [--require-name NAME ...]

Checks:
  * the file is valid JSON with a top-level "traceEvents" array
    (object-form envelope, displayTimeUnit optional but validated),
  * every event has a string "name", a known "ph", integer pid/tid,
    and a numeric non-negative "ts",
  * complete events (ph "X") carry a non-negative numeric "dur",
    instants (ph "i") carry a valid scope "s",
  * "args", when present, is an object,
  * timestamps are monotonically non-decreasing in file order (the
    exporter sorts before writing),
  * at least --min-events real events (metadata excluded) exist, and
    every --require-name appears.

Exits 0 when the trace is loadable, 1 with one line per defect.
"""

import argparse
import json
import numbers
import sys

KNOWN_PHASES = {"X", "i", "I", "B", "E", "M", "C", "b", "e", "n", "s",
                "t", "f"}
INSTANT_SCOPES = {"g", "p", "t"}


def check(path, min_events, require_names):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not loadable JSON: {e}"]

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        unit = doc.get("displayTimeUnit")
        if unit is not None and unit not in ("ms", "ns"):
            errors.append(f"bad displayTimeUnit {unit!r}")
    elif isinstance(doc, list):
        events = doc  # array form is also legal
    else:
        return [f"{path}: top level must be an object or array"]
    if not isinstance(events, list):
        return [f"{path}: \"traceEvents\" missing or not an array"]

    seen_names = set()
    real_events = 0
    last_ts = None
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
            name = "?"
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where} ({name}): unknown ph {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where} ({name}): {field} not an int")
        if ph == "M":
            continue  # metadata: no ts required
        seen_names.add(name)
        real_events += 1
        ts = ev.get("ts")
        if not isinstance(ts, numbers.Real) or ts < 0:
            errors.append(f"{where} ({name}): bad ts {ts!r}")
        else:
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"{where} ({name}): ts {ts} < previous {last_ts}"
                    " (exporter must sort)")
            last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, numbers.Real) or dur < 0:
                errors.append(f"{where} ({name}): bad dur {dur!r}")
        if ph == "i" and ev.get("s", "t") not in INSTANT_SCOPES:
            errors.append(
                f"{where} ({name}): bad instant scope {ev.get('s')!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where} ({name}): args not an object")

    if real_events < min_events:
        errors.append(f"only {real_events} events "
                      f"(expected >= {min_events})")
    for want in require_names:
        if want not in seen_names:
            errors.append(f"required event name {want!r} not found")
    if not errors:
        print(f"{path}: OK ({real_events} events, "
              f"{len(seen_names)} distinct names)")
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1)
    ap.add_argument("--require-name", action="append", default=[],
                    metavar="NAME",
                    help="event name that must appear at least once")
    args = ap.parse_args()
    errors = check(args.trace, args.min_events, args.require_name)
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
