/**
 * @file
 * Tests for the span-trace exporter (obs/trace.hh): disabled tracing
 * is a no-op that records nothing, enabled tracing captures phase
 * scopes (with args), pool-task spans, and instant markers, and
 * finalize() writes a Chrome/Perfetto trace-event JSON file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/parallel.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"

using namespace psca;
using obs::ScopedPhase;
using obs::SpanArg;
using obs::TraceLog;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

// Declaration order matters: the disabled-state test must run before
// any test calls enable() on the process-wide log.
TEST(TraceExport, DisabledRecordsNothing)
{
    TraceLog &log = TraceLog::instance();
    ASSERT_FALSE(log.enabled()) << "PSCA_TRACE must be unset in tests";
    const uint64_t before = log.recorded();
    {
        ScopedPhase phase("never_recorded");
        obs::traceInstant("never_recorded.marker");
        log.span("explicit", 0, 100, nullptr, 0);
    }
    EXPECT_EQ(log.recorded(), before);
}

TEST(TraceExport, FinalizeWritesChromeTraceJson)
{
    const std::string path = "/tmp/psca_trace_export_test.json";
    std::remove(path.c_str());

    TraceLog &log = TraceLog::instance();
    log.enable(path);
    ASSERT_TRUE(log.enabled());
    EXPECT_EQ(log.path(), path);

    {
        ScopedPhase outer("trace_test.outer");
        {
            ScopedPhase inner("trace_test.inner",
                              {{"fold", 3}, {"items", 64}});
        }
        obs::traceInstant("trace_test.marker", SpanArg{"key", 7});
    }

    // Pool tasks get their own spans (the serial fast path bypasses
    // the hooks, so force a real pool).
    ThreadPool::configure(2);
    ThreadPool::instance().parallelFor(8, [](size_t) {});

    const uint64_t recorded = log.recorded();
    EXPECT_GE(recorded, 4u); // outer, inner, marker, pool tasks

    log.finalize();
    EXPECT_FALSE(log.enabled());

    const std::string json = slurp(path);
    ASSERT_FALSE(json.empty());
    // Chrome trace-event envelope.
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    // Complete spans, with the scope args attached.
    EXPECT_NE(json.find("\"name\": \"trace_test.inner\", "
                        "\"ph\": \"X\""),
              std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"fold\": 3, \"items\": 64}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"trace_test.outer\""),
              std::string::npos);
    // Instant marker with scope hint and its arg.
    EXPECT_NE(json.find("\"name\": \"trace_test.marker\", "
                        "\"ph\": \"i\""),
              std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"key\": 7}"), std::string::npos);
    // Pool-task spans from the parallel region.
    EXPECT_NE(json.find("\"name\": \"pool.task\""), std::string::npos);
    // Every event carries dur (spans) or s (instants), ts, pid, tid.
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);

    // Balanced braces/brackets — a cheap structural sanity check
    // (tools/check_trace.py does the full parse in CI).
    long depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    std::remove(path.c_str());
}

TEST(TraceExport, ReenableAfterFinalizeWorks)
{
    const std::string path = "/tmp/psca_trace_export_test2.json";
    std::remove(path.c_str());

    TraceLog &log = TraceLog::instance();
    ASSERT_FALSE(log.enabled()); // previous test finalized
    log.enable(path);
    const uint64_t before = log.recorded();
    {
        ScopedPhase phase("trace_test.second_run");
    }
    EXPECT_GT(log.recorded(), before);
    log.finalize();

    const std::string json = slurp(path);
    EXPECT_NE(json.find("trace_test.second_run"), std::string::npos);
    // The first file's events were flushed and cleared: no bleed.
    EXPECT_EQ(json.find("trace_test.outer"), std::string::npos);
    std::remove(path.c_str());
}
