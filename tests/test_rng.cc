/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.hh"

using namespace psca;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowIsBounded)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        lo = lo || v == -2;
        hi = hi || v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianParameterized)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(31);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(37);
    std::vector<double> w{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 30000; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(Rng, MixSeedsSpreads)
{
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i)
        seen.insert(mixSeeds(42, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(41);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(rng.logNormal(0.0, 0.5), 0.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(43);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.15);
}
