/**
 * @file
 * Tests for the deterministic parallel execution layer: pool
 * lifecycle and shutdown, exception propagation, RNG substream
 * independence, and the bit-identity contract — the same seed must
 * produce byte-equal models, summaries, and equal obs counters
 * whether the process runs on 1 thread or 4.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "core/builder.hh"
#include "core/crossval.hh"
#include "ml/tree.hh"
#include "obs/stats.hh"

using namespace psca;

namespace {

/** groupedData twin of test_crossval: per-app shifted features. */
Dataset
groupedData(size_t apps, size_t per_app, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 3;
    for (size_t a = 0; a < apps; ++a) {
        for (size_t i = 0; i < per_app; ++i) {
            float row[3];
            for (auto &v : row)
                v = static_cast<float>(rng.gaussian());
            d.addSample(row, row[0] + row[1] > 0 ? 1 : 0,
                        static_cast<uint32_t>(a),
                        static_cast<uint32_t>(a * 10 + i % 3));
        }
    }
    return d;
}

/** Flatten a forest's node storage into comparable bytes. */
std::vector<uint8_t>
forestBytes(const RandomForest &forest)
{
    std::vector<uint8_t> bytes;
    for (const auto &tree : forest.trees()) {
        for (const auto &node : tree->nodes()) {
            const auto *p =
                reinterpret_cast<const uint8_t *>(&node.feature);
            bytes.insert(bytes.end(), p, p + sizeof(node.feature));
            p = reinterpret_cast<const uint8_t *>(&node.threshold);
            bytes.insert(bytes.end(), p, p + sizeof(node.threshold));
            p = reinterpret_cast<const uint8_t *>(&node.prob);
            bytes.insert(bytes.end(), p, p + sizeof(node.prob));
            p = reinterpret_cast<const uint8_t *>(&node.left);
            bytes.insert(bytes.end(), p, p + sizeof(node.left));
            p = reinterpret_cast<const uint8_t *>(&node.right);
            bytes.insert(bytes.end(), p, p + sizeof(node.right));
        }
    }
    return bytes;
}

/** Byte image of a crossval summary, folds included. */
std::vector<uint8_t>
summaryBytes(const CrossValSummary &s)
{
    std::vector<uint8_t> bytes;
    auto put = [&bytes](const void *p, size_t n) {
        const auto *b = static_cast<const uint8_t *>(p);
        bytes.insert(bytes.end(), b, b + n);
    };
    put(&s.pgosMean, sizeof(double));
    put(&s.pgosStd, sizeof(double));
    put(&s.rsvMean, sizeof(double));
    put(&s.rsvStd, sizeof(double));
    put(&s.accuracyMean, sizeof(double));
    for (const auto &f : s.folds) {
        put(&f.confusion.truePositive, sizeof(uint64_t));
        put(&f.confusion.falsePositive, sizeof(uint64_t));
        put(&f.confusion.trueNegative, sizeof(uint64_t));
        put(&f.confusion.falseNegative, sizeof(uint64_t));
        put(&f.pgos, sizeof(double));
        put(&f.rsv, sizeof(double));
    }
    return bytes;
}

CrossValSummary
runCrossval(const Dataset &data)
{
    CrossValOptions opts;
    opts.folds = 6;
    opts.seed = 17;
    opts.rsvWindow = 16;
    return crossValidate(
        data,
        [](const Dataset &tune, uint64_t fold_seed) {
            ForestConfig fc;
            fc.numTrees = 5;
            fc.maxDepth = 4;
            fc.seed = fold_seed;
            return std::make_unique<RandomForest>(tune, fc);
        },
        opts);
}

} // namespace

TEST(ThreadPool, SizesFromEnvAndClampsToOne)
{
    ThreadPool pool0(0);
    EXPECT_EQ(pool0.numThreads(), 1);
    ThreadPool pool3(3);
    EXPECT_EQ(pool3.numThreads(), 3);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, MapPreservesIndexOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap<size_t>(
        257, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, BackToBackRegionsAndShutdown)
{
    // Exercises worker wakeup across many short regions and a clean
    // join at scope exit; a lifetime bug here hangs or crashes.
    for (int round = 0; round < 3; ++round) {
        ThreadPool pool(4);
        for (int job = 0; job < 50; ++job) {
            std::atomic<size_t> sum{0};
            pool.parallelFor(17, [&](size_t i) {
                sum.fetch_add(i, std::memory_order_relaxed);
            });
            EXPECT_EQ(sum.load(), 17u * 16u / 2u);
        }
    }
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, [](size_t i) {
            if (i >= 13)
                throw std::runtime_error(
                    "task " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 13");
    }
    // The pool must still be usable after a throwing region.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedRegionsRunInline)
{
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    pool.parallelFor(8, [&](size_t) {
        EXPECT_TRUE(ThreadPool::inParallelTask());
        // A nested region must execute serially on this thread
        // rather than waiting on the (busy) pool.
        pool.parallelFor(5, [&](size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_FALSE(ThreadPool::inParallelTask());
    EXPECT_EQ(total.load(), 40u);
}

TEST(Substreams, IndependentAndStable)
{
    // Substreams must not depend on draw order of sibling tasks and
    // must differ across task indices.
    std::set<uint64_t> firsts;
    for (uint64_t i = 0; i < 64; ++i) {
        Rng a = taskRng(99, i);
        Rng b = taskRng(99, i);
        const uint64_t first = a.next();
        EXPECT_EQ(first, b.next()) << "substream " << i
                                   << " not reproducible";
        firsts.insert(first);
    }
    EXPECT_EQ(firsts.size(), 64u) << "substreams collide";
    // Matches the serial derivation rule used by the fold loop.
    EXPECT_EQ(taskSeed(17, 3), mixSeeds(17, 4));
}

TEST(BitIdentity, ForestBytesEqualAcrossThreadCounts)
{
    const Dataset data = groupedData(12, 40, 5);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 5;
    fc.seed = 21;

    ThreadPool::configure(1);
    const auto serial = forestBytes(RandomForest(data, fc));
    ThreadPool::configure(4);
    const auto parallel = forestBytes(RandomForest(data, fc));
    ThreadPool::configure(1);

    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(serial, parallel);
}

TEST(BitIdentity, CrossvalSummaryEqualAcrossThreadCounts)
{
    const Dataset data = groupedData(16, 30, 9);

    ThreadPool::configure(1);
    const auto serial = summaryBytes(runCrossval(data));
    ThreadPool::configure(4);
    const auto parallel = summaryBytes(runCrossval(data));
    ThreadPool::configure(1);

    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(serial, parallel);
}

TEST(BitIdentity, RecordedCorpusAndCountersEqualAcrossThreadCounts)
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 10000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::BranchMispred),
    };

    std::vector<Workload> workloads;
    std::vector<uint32_t> app_ids;
    for (int a = 0; a < 6; ++a) {
        AppGenome g;
        g.name = "bitid" + std::to_string(a);
        g.seed = 100 + static_cast<uint64_t>(a);
        PhaseSpec p;
        p.kernel.kind =
            a % 2 ? KernelKind::PointerChase : KernelKind::Ilp;
        p.kernel.workingSetBytes = 1u << 16;
        p.kernel.chains = 4;
        p.meanLenInstr = 1e9;
        g.phases = {p};
        Workload w;
        w.genome = g;
        w.inputSeed = 1;
        w.lengthInstr = 60000;
        w.name = g.name;
        workloads.push_back(std::move(w));
        app_ids.push_back(static_cast<uint32_t>(a));
    }

    auto &reg = obs::StatRegistry::instance();
    auto run = [&](int threads, const char *cache_dir) {
        // Fresh cache dir per run so the second run actually records
        // instead of replaying the first run's cache file.
        std::filesystem::remove_all(cache_dir);
        setenv("PSCA_CACHE_DIR", cache_dir, 1);
        ThreadPool::configure(threads);
        reg.counter("record.traces").reset();
        auto records =
            recordCorpus(workloads, app_ids, cfg, "bitid");
        return std::make_pair(std::move(records),
                              reg.counter("record.traces").value());
    };

    const auto [serial, serial_traces] = run(1, "bitid_cache_t1");
    const auto [parallel, parallel_traces] = run(4, "bitid_cache_t4");
    ThreadPool::configure(1);
    unsetenv("PSCA_CACHE_DIR");
    std::filesystem::remove_all("bitid_cache_t1");
    std::filesystem::remove_all("bitid_cache_t4");

    // Concurrent writers must not lose counter increments.
    EXPECT_EQ(serial_traces, workloads.size());
    EXPECT_EQ(parallel_traces, workloads.size());

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_EQ(serial[i].deltaHigh, parallel[i].deltaHigh);
        EXPECT_EQ(serial[i].deltaLow, parallel[i].deltaLow);
        EXPECT_EQ(serial[i].cyclesHigh, parallel[i].cyclesHigh);
        EXPECT_EQ(serial[i].cyclesLow, parallel[i].cyclesLow);
        EXPECT_EQ(serial[i].energyHighNj, parallel[i].energyHighNj);
        EXPECT_EQ(serial[i].energyLowNj, parallel[i].energyLowNj);
    }
}

TEST(SharedStats, CountersExactUnderConcurrentWriters)
{
    auto &ctr =
        obs::StatRegistry::instance().counter("parallel.test_ctr");
    ctr.reset();
    ThreadPool pool(4);
    pool.parallelFor(2000, [&](size_t) { ctr.add(3); });
    EXPECT_EQ(ctr.value(), 6000u);
    ctr.reset();
}
