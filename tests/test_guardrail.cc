/**
 * @file
 * Unit tests for the fail-safe guardrail's mechanics (trip threshold,
 * patience, hold-off, reference decay) driven by synthetic IPC
 * streams, plus a closed-loop check that a deliberately wrong
 * predictor gets vetoed and its RSV damage bounded on a mixed trace.
 * (test_firmware.cc covers the pathological always-gate end to end;
 * here the mechanics are exercised block by block.)
 */

#include <gtest/gtest.h>

#include "core/guardrail.hh"
#include "core/pipeline.hh"
#include "obs/stats.hh"

using namespace psca;

namespace {

/** Inner predictor with a scriptable answer and a call tally. */
class ScriptedInner : public GatePredictor
{
  public:
    explicit ScriptedInner(bool gate = true) : gate_(gate) {}

    uint64_t granularity() const override { return 20000; }
    bool
    decide(const std::vector<const float *> &,
           const std::vector<float> &, CoreMode) override
    {
        ++calls_;
        return gate_;
    }
    uint32_t opsPerInference() const override { return 1; }
    std::string name() const override { return "scripted"; }

    bool gate_;
    int calls_ = 0;
};

/**
 * Feed the guardrail one block whose IPC is @p ipc. The guardrail
 * derives block IPC from sub-interval cycles at 10k instructions per
 * sub-interval, so a single sub-interval of 10000/ipc cycles lands
 * exactly on the requested value.
 */
bool
step(GuardrailedPredictor &g, double ipc, CoreMode mode)
{
    const std::vector<float> cycles{
        static_cast<float>(10000.0 / ipc)};
    const std::vector<const float *> rows{nullptr};
    return g.decide(rows, cycles, mode);
}

} // namespace

TEST(GuardrailMechanics, PassesThroughInnerWhenHealthy)
{
    ScriptedInner inner(true);
    GuardrailConfig cfg;
    cfg.tripRatio = 0.88;
    cfg.referenceDecay = 1.0;
    GuardrailedPredictor g(inner, cfg);

    EXPECT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    // Gated IPC above tripRatio * reference: never a violation.
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(step(g, 1.9, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 0u);
    EXPECT_EQ(inner.calls_, 21);
}

TEST(GuardrailMechanics, TripsOnlyAfterPatienceConsecutiveViolations)
{
    ScriptedInner inner(true);
    GuardrailConfig cfg;
    cfg.patience = 2;
    cfg.referenceDecay = 1.0;
    GuardrailedPredictor g(inner, cfg);

    ASSERT_TRUE(step(g, 2.0, CoreMode::HighPerf)); // reference = 2.0
    // First violating block: streak 1 < patience, inner passes.
    EXPECT_TRUE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 0u);
    // A healthy gated block resets the streak.
    EXPECT_TRUE(step(g, 1.9, CoreMode::LowPower));
    EXPECT_TRUE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 0u);
    // Second consecutive violation: trip and veto.
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 1u);
}

TEST(GuardrailMechanics, HoldoffVetoesThenReleases)
{
    ScriptedInner inner(true);
    GuardrailConfig cfg;
    cfg.patience = 1;
    cfg.holdoffBlocks = 3;
    cfg.referenceDecay = 1.0;
    GuardrailedPredictor g(inner, cfg);

    ASSERT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    // Trip consumes the first hold-off block.
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 1u);
    // The veto forces high-performance mode, so the next blocks are
    // observed wide; the guardrail keeps vetoing until hold-off ends.
    EXPECT_FALSE(step(g, 2.0, CoreMode::HighPerf));
    EXPECT_FALSE(step(g, 2.0, CoreMode::HighPerf));
    // Hold-off exhausted: the inner decision flows through again.
    EXPECT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    EXPECT_EQ(g.trips(), 1u);
}

TEST(GuardrailMechanics, NoRetripDuringHoldoff)
{
    ScriptedInner inner(true);
    GuardrailConfig cfg;
    cfg.patience = 1;
    cfg.holdoffBlocks = 4;
    cfg.referenceDecay = 1.0;
    GuardrailedPredictor g(inner, cfg);

    ASSERT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower)); // trip
    // Keep violating while held off: vetoed, but no second trip.
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 1u);
    // First block after hold-off can trip again.
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 2u);
}

TEST(GuardrailMechanics, ReferenceDecayForgivesStaleReference)
{
    // After a burst of IPC 3.0 the workload settles at 2.0 while
    // gated. With no decay the stale 3.0 reference keeps flagging
    // violations forever; with decay the reference relaxes toward
    // the observed level and the streak never reaches patience.
    GuardrailConfig stale;
    stale.patience = 3;
    stale.referenceDecay = 1.0;
    ScriptedInner inner_a(true);
    GuardrailedPredictor no_decay(inner_a, stale);

    ASSERT_TRUE(step(no_decay, 3.0, CoreMode::HighPerf));
    int vetoes_no_decay = 0;
    for (int i = 0; i < 10; ++i)
        if (!step(no_decay, 2.0, CoreMode::LowPower))
            ++vetoes_no_decay;
    EXPECT_GT(no_decay.trips(), 0u);
    EXPECT_GT(vetoes_no_decay, 0);

    GuardrailConfig decayed = stale;
    decayed.referenceDecay = 0.7;
    ScriptedInner inner_b(true);
    GuardrailedPredictor with_decay(inner_b, decayed);

    ASSERT_TRUE(step(with_decay, 3.0, CoreMode::HighPerf));
    for (int i = 0; i < 10; ++i)
        step(with_decay, 2.0, CoreMode::LowPower);
    EXPECT_EQ(with_decay.trips(), 0u);
}

TEST(GuardrailMechanics, HighModeBlockRefreshesReferenceAndStreak)
{
    ScriptedInner inner(true);
    GuardrailConfig cfg;
    cfg.patience = 2;
    cfg.referenceDecay = 1.0;
    GuardrailedPredictor g(inner, cfg);

    ASSERT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    EXPECT_TRUE(step(g, 1.0, CoreMode::LowPower)); // streak 1
    // An interleaved high-mode block clears the streak...
    EXPECT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    EXPECT_TRUE(step(g, 1.0, CoreMode::LowPower)); // streak 1 again
    EXPECT_EQ(g.trips(), 0u);
    // ...and refreshes the reference downward when the machine
    // itself slowed: IPC 1.0 wide makes gated 0.95 acceptable.
    EXPECT_TRUE(step(g, 1.0, CoreMode::HighPerf));
    EXPECT_TRUE(step(g, 0.95, CoreMode::LowPower));
    EXPECT_TRUE(step(g, 0.95, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 0u);
}

TEST(GuardrailMechanics, TripsAreCountedInObsRegistry)
{
    const auto &reg = obs::StatRegistry::instance();
    const auto *ctr = reg.findCounter("controller.guardrail_trips");
    const uint64_t before = ctr ? ctr->value() : 0;

    ScriptedInner inner(true);
    GuardrailConfig cfg;
    cfg.patience = 1;
    cfg.holdoffBlocks = 1;
    cfg.referenceDecay = 1.0;
    GuardrailedPredictor g(inner, cfg);
    ASSERT_TRUE(step(g, 2.0, CoreMode::HighPerf));
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_FALSE(step(g, 1.0, CoreMode::LowPower));
    EXPECT_EQ(g.trips(), 2u);

    ctr = reg.findCounter("controller.guardrail_trips");
    ASSERT_NE(ctr, nullptr);
    EXPECT_EQ(ctr->value(), before + 2);
}

namespace {

/** A deliberately wrong predictor: gates every block. */
class WrongWay : public GatePredictor
{
  public:
    uint64_t granularity() const override { return 20000; }
    bool
    decide(const std::vector<const float *> &,
           const std::vector<float> &, CoreMode) override
    {
        return true;
    }
    uint32_t opsPerInference() const override { return 1; }
    std::string name() const override { return "wrong_way"; }
};

} // namespace

TEST(GuardrailClosedLoop, VetoesWrongPredictorAndBoundsRsv)
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::StallCount),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
    };

    // Mostly width-hungry ILP with gate-friendly pointer-chase
    // stretches mixed in: always-gate is wrong most of the time, and
    // the run starts on a hungry stretch so the guardrail's high-mode
    // reference reflects the wide configuration.
    AppGenome g;
    g.name = "guardrail_mix";
    g.seed = 5;
    PhaseSpec gate, hungry;
    gate.kernel = {.kind = KernelKind::PointerChase,
                   .workingSetBytes = 16 << 20, .chains = 4};
    gate.weight = 0.2;
    gate.meanLenInstr = 120e3;
    hungry.kernel = {.kind = KernelKind::Ilp, .chains = 14};
    hungry.weight = 0.8;
    hungry.meanLenInstr = 120e3;
    g.phases = {gate, hungry};
    Workload w;
    w.genome = g;
    w.inputSeed = 2;
    w.lengthInstr = 400000;
    w.name = "guardrail_mix";
    const TraceRecord rec = recordTrace(w, cfg, 0, 0);

    WrongWay bad;
    const ClosedLoopResult unguarded =
        runClosedLoop(w, rec, bad, cfg, SlaSpec{});

    WrongWay bad2;
    GuardrailedPredictor guarded(bad2);
    const ClosedLoopResult safe =
        runClosedLoop(w, rec, guarded, cfg, SlaSpec{});

    EXPECT_GT(guarded.trips(), 0u);
    // The guardrail must not make things worse, and must claw back
    // performance on the width-hungry stretches it vetoes.
    EXPECT_LE(safe.rsv, unguarded.rsv);
    EXPECT_GE(safe.perfRelativePct, unguarded.perfRelativePct);
    EXPECT_LT(safe.lowResidency, 1.0);
}
