/**
 * @file
 * Tests for CART decision trees and random forests, including the
 * Table 3 cost accounting (133 ops for a depth-16 tree, 538/1,074
 * ops and 20.48/40.96 KB for the 8/16-tree forests).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/tree.hh"

using namespace psca;

namespace {

Dataset
axisData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    d.numFeatures = 4;
    for (size_t i = 0; i < n; ++i) {
        float row[4];
        for (auto &v : row)
            v = static_cast<float>(rng.uniform(-1, 1));
        // Label depends on two features with an interaction.
        const bool y = row[1] > 0.2f || (row[3] < -0.5f && row[0] > 0);
        d.addSample(row, y ? 1 : 0, static_cast<uint32_t>(i % 5), 0);
    }
    return d;
}

double
accuracy(const Model &m, const Dataset &d)
{
    size_t correct = 0;
    for (size_t i = 0; i < d.numSamples(); ++i)
        correct += m.predict(d.row(i)) == (d.y[i] != 0) ? 1 : 0;
    return static_cast<double>(correct) /
        static_cast<double>(d.numSamples());
}

} // namespace

TEST(DecisionTree, FitsAxisAlignedData)
{
    const Dataset d = axisData(2000, 1);
    TreeConfig cfg;
    cfg.maxDepth = 8;
    DecisionTree tree(d, {}, cfg);
    EXPECT_GT(accuracy(tree, d), 0.95);
}

TEST(DecisionTree, RespectsMaxDepth)
{
    const Dataset d = axisData(2000, 2);
    TreeConfig cfg;
    cfg.maxDepth = 2;
    DecisionTree tree(d, {}, cfg);
    // Depth-2 tree has at most 7 nodes.
    EXPECT_LE(tree.nodes().size(), 7u);
}

TEST(DecisionTree, PureLeafProbabilities)
{
    const Dataset d = axisData(2000, 3);
    TreeConfig cfg;
    cfg.maxDepth = 10;
    DecisionTree tree(d, {}, cfg);
    for (const auto &node : tree.nodes()) {
        EXPECT_GE(node.prob, 0.0f);
        EXPECT_LE(node.prob, 1.0f);
    }
}

TEST(DecisionTree, HandlesConstantLabels)
{
    Dataset d;
    d.numFeatures = 2;
    for (int i = 0; i < 50; ++i) {
        const float row[2] = {static_cast<float>(i), 1.0f};
        d.addSample(row, 1, 0, 0);
    }
    TreeConfig cfg;
    DecisionTree tree(d, {}, cfg);
    EXPECT_GT(tree.score(d.row(0)), 0.5);
    EXPECT_EQ(tree.nodes().size(), 1u); // pure root, no split
}

TEST(DecisionTree, Table3Costs)
{
    Dataset d = axisData(100, 4);
    TreeConfig cfg;
    cfg.maxDepth = 16;
    DecisionTree tree(d, {}, cfg);
    EXPECT_EQ(tree.opsPerInference(), 133u); // paper: 133
    EXPECT_EQ(tree.memoryFootprintBytes(), 655360u); // 655.36KB
}

TEST(RandomForest, BeatsWorstTreeOnHeldOut)
{
    const Dataset train = axisData(2000, 5);
    const Dataset test = axisData(600, 6);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest forest(train, fc);
    EXPECT_GT(accuracy(forest, test), 0.9);
}

TEST(RandomForest, ScoreIsMeanOfTrees)
{
    const Dataset d = axisData(500, 7);
    ForestConfig fc;
    fc.numTrees = 4;
    fc.maxDepth = 4;
    RandomForest forest(d, fc);
    const float *x = d.row(0);
    double sum = 0.0;
    for (const auto &t : forest.trees())
        sum += t->score(x);
    EXPECT_NEAR(forest.score(x), sum / 4.0, 1e-12);
}

TEST(RandomForest, Table3Costs)
{
    const Dataset d = axisData(300, 8);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = 8;
    RandomForest f8(d, fc);
    EXPECT_EQ(f8.opsPerInference(), 538u);          // paper: 538
    EXPECT_EQ(f8.memoryFootprintBytes(), 20480u);   // 20.48KB

    fc.numTrees = 16;
    RandomForest f16(d, fc);
    EXPECT_EQ(f16.opsPerInference(), 1074u);        // paper: 1,074
    EXPECT_EQ(f16.memoryFootprintBytes(), 40960u);  // ~40.48KB
}

TEST(RandomForest, DeterministicTraining)
{
    const Dataset d = axisData(500, 9);
    ForestConfig fc;
    fc.seed = 5;
    RandomForest a(d, fc), b(d, fc);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.score(d.row(i)), b.score(d.row(i)));
}

TEST(RandomForest, MergeCombinesTrees)
{
    // The Sec. 7.3 app-specific flow merges two 4-tree forests.
    const Dataset d1 = axisData(500, 10);
    const Dataset d2 = axisData(500, 11);
    ForestConfig fc;
    fc.numTrees = 4;
    RandomForest a(d1, fc);
    fc.seed = 77;
    RandomForest b(d2, fc);
    auto trees = a.takeTrees();
    for (auto &t : b.takeTrees())
        trees.push_back(std::move(t));
    RandomForest merged(std::move(trees));
    EXPECT_EQ(merged.trees().size(), 8u);
    EXPECT_EQ(merged.opsPerInference(), 538u);
}

class ForestDepthSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ForestDepthSweep, OpsScaleLinearlyWithDepth)
{
    const Dataset d = axisData(200, 12);
    ForestConfig fc;
    fc.numTrees = 8;
    fc.maxDepth = GetParam();
    RandomForest f(d, fc);
    EXPECT_EQ(f.opsPerInference(),
              8u * 8u * static_cast<uint32_t>(GetParam()) + 8u * 3u +
                  2u);
}

INSTANTIATE_TEST_SUITE_P(Depths, ForestDepthSweep,
                         ::testing::Values(2, 4, 6, 8, 10, 12));
