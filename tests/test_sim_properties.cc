/**
 * @file
 * Microarchitectural property sweeps of the timing model: varying one
 * structural parameter must move IPC in the architecturally expected
 * direction for the kernel that stresses it. These pin down the
 * causal structure the gating labels depend on.
 */

#include <gtest/gtest.h>

#include "sim/core.hh"
#include "trace/generator.hh"

using namespace psca;

namespace {

Workload
kernelWorkload(KernelParams kp)
{
    AppGenome g;
    g.name = "prop";
    g.seed = 77;
    PhaseSpec p;
    p.kernel = kp;
    p.meanLenInstr = 1e9;
    g.phases = {p};
    Workload w;
    w.genome = g;
    w.inputSeed = 1;
    w.lengthInstr = 300000;
    w.name = "prop";
    return w;
}

double
ipcWith(const CoreConfig &cfg, const Workload &w, CoreMode mode)
{
    ClusteredCore core(cfg);
    core.reset();
    core.setMode(mode);
    TraceGenerator gen(w);
    core.run(gen, 60000);
    const uint64_t c0 = core.currentCycle();
    core.run(gen, 150000);
    return 150000.0 / static_cast<double>(core.currentCycle() - c0);
}

} // namespace

TEST(SimProperty, MoreMshrsHelpMlpRichOnly)
{
    const Workload mlp_rich = kernelWorkload(
        {.kind = KernelKind::MlpRich, .workingSetBytes = 64 << 20,
         .computePerElem = 1, .mlpDegree = 14});
    const Workload chase = kernelWorkload(
        {.kind = KernelKind::PointerChase,
         .workingSetBytes = 64 << 20});

    CoreConfig few, many;
    few.mshrsPerCluster = 4;
    many.mshrsPerCluster = 20;
    // MLP-rich throughput scales with MSHRs...
    EXPECT_GT(ipcWith(many, mlp_rich, CoreMode::LowPower),
              1.5 * ipcWith(few, mlp_rich, CoreMode::LowPower));
    // ...while a serial chase cannot use them.
    EXPECT_NEAR(ipcWith(many, chase, CoreMode::LowPower),
                ipcWith(few, chase, CoreMode::LowPower), 0.005);
}

TEST(SimProperty, MemoryLatencyHurtsChase)
{
    const Workload chase = kernelWorkload(
        {.kind = KernelKind::PointerChase,
         .workingSetBytes = 64 << 20});
    CoreConfig fast, slow;
    fast.memLatency = 100;
    slow.memLatency = 400;
    EXPECT_GT(ipcWith(fast, chase, CoreMode::HighPerf),
              2.0 * ipcWith(slow, chase, CoreMode::HighPerf));
}

TEST(SimProperty, MispredictPenaltyHurtsBranchy)
{
    const Workload branchy = kernelWorkload(
        {.kind = KernelKind::Branchy, .workingSetBytes = 256 << 10,
         .predictability = 0.7});
    CoreConfig cheap, dear;
    cheap.mispredictPenalty = 4;
    dear.mispredictPenalty = 40;
    EXPECT_GT(ipcWith(cheap, branchy, CoreMode::HighPerf),
              1.3 * ipcWith(dear, branchy, CoreMode::HighPerf));
}

TEST(SimProperty, DramBandwidthCapsStreams)
{
    const Workload stream = kernelWorkload(
        {.kind = KernelKind::Stream, .workingSetBytes = 128 << 20,
         .computePerElem = 2, .fp = true});
    CoreConfig wide, narrow;
    wide.dramSlotCycles = 2;
    narrow.dramSlotCycles = 32;
    EXPECT_GT(ipcWith(wide, stream, CoreMode::HighPerf),
              1.5 * ipcWith(narrow, stream, CoreMode::HighPerf));
}

TEST(SimProperty, RobSizeBoundsMemoryParallelism)
{
    const Workload mlp_rich = kernelWorkload(
        {.kind = KernelKind::MlpRich, .workingSetBytes = 64 << 20,
         .computePerElem = 2, .mlpDegree = 10});
    CoreConfig small, large;
    small.robSize = 32;
    large.robSize = 448;
    EXPECT_GT(ipcWith(large, mlp_rich, CoreMode::HighPerf),
              1.3 * ipcWith(small, mlp_rich, CoreMode::HighPerf));
}

TEST(SimProperty, IssueWidthBoundsIlp)
{
    const Workload ilp =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 14});
    CoreConfig narrow, wide;
    narrow.issueWidthPerCluster = 2;
    wide.issueWidthPerCluster = 6;
    EXPECT_GT(ipcWith(wide, ilp, CoreMode::HighPerf),
              1.5 * ipcWith(narrow, ilp, CoreMode::HighPerf));
    // A serial chain cannot exploit width.
    const Workload serial =
        kernelWorkload({.kind = KernelKind::FpSerial, .fp = true});
    EXPECT_NEAR(ipcWith(wide, serial, CoreMode::HighPerf),
                ipcWith(narrow, serial, CoreMode::HighPerf), 0.02);
}

TEST(SimProperty, InterClusterPenaltySlowsCrossTraffic)
{
    // High penalty must not make anything faster, and should cost
    // visibly on mixed dependency traffic.
    const Workload stencil = kernelWorkload(
        {.kind = KernelKind::Stencil, .workingSetBytes = 2 << 20,
         .strideBytes = 16});
    CoreConfig cheap, dear;
    cheap.interClusterFwdDelay = 0;
    dear.interClusterFwdDelay = 12;
    EXPECT_GE(ipcWith(cheap, stencil, CoreMode::HighPerf),
              ipcWith(dear, stencil, CoreMode::HighPerf) - 0.01);
}

TEST(SimProperty, LargerCachesNeverHurt)
{
    const Workload stencil = kernelWorkload(
        {.kind = KernelKind::Stencil, .workingSetBytes = 2 << 20,
         .strideBytes = 64});
    CoreConfig small, big;
    small.l2 = {256 * 1024, 8, 64, 14};
    big.l2 = {4 * 1024 * 1024, 16, 64, 14};
    EXPECT_GE(ipcWith(big, stencil, CoreMode::HighPerf),
              ipcWith(small, stencil, CoreMode::HighPerf) - 0.02);
}

class GatingOverheadSweep : public ::testing::TestWithParam<int>
{};

TEST_P(GatingOverheadSweep, ToggleCostScalesWithConfig)
{
    // The configured microcode overhead must be visible but bounded:
    // 20 toggles over 200k instructions cost well under 1% per the
    // paper's transition budget (Sec. 3).
    CoreConfig cfg;
    cfg.gateOverheadCycles = GetParam();
    const Workload w =
        kernelWorkload({.kind = KernelKind::Ilp, .chains = 4});

    ClusteredCore steady(cfg);
    steady.reset();
    steady.setMode(CoreMode::LowPower);
    TraceGenerator g1(w);
    steady.run(g1, 200000);

    ClusteredCore toggling(cfg);
    toggling.reset();
    toggling.setMode(CoreMode::LowPower);
    TraceGenerator g2(w);
    for (int i = 0; i < 20; ++i) {
        toggling.setMode(i % 2 ? CoreMode::HighPerf
                               : CoreMode::LowPower);
        toggling.run(g2, 10000);
    }
    EXPECT_LT(toggling.currentCycle(),
              1.06 * static_cast<double>(steady.currentCycle()));
}

INSTANTIATE_TEST_SUITE_P(Overheads, GatingOverheadSweep,
                         ::testing::Values(4, 12, 24, 48));
