/**
 * @file
 * Tests for the observability layer: log2-bucketed histogram bucket
 * boundaries, percentile queries against known distributions, Welford
 * mean/variance against closed forms, scoped-timer phase nesting, the
 * stat registry, and report round-trips (binary via serialize.hh and
 * the JSON dump).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/parallel.hh"
#include "common/serialize.hh"
#include "obs/phase.hh"
#include "obs/report.hh"
#include "obs/stats.hh"

using namespace psca;
using obs::Histogram;

TEST(HistogramBuckets, LinearRegionIsExact)
{
    // Values below 2*kBucketFraction each own a bucket.
    for (uint64_t v = 0; v < Histogram::kLinearMax; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLowerBound(v), v);
        EXPECT_EQ(Histogram::bucketUpperBound(v), v);
    }
}

TEST(HistogramBuckets, BoundsInvertIndex)
{
    // Every bucket's bounds map back to the bucket, contiguously.
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        const uint64_t lo = Histogram::bucketLowerBound(i);
        EXPECT_EQ(Histogram::bucketIndex(lo), i) << "bucket " << i;
        const uint64_t hi = Histogram::bucketUpperBound(i);
        if (i + 1 < Histogram::kNumBuckets) {
            EXPECT_EQ(Histogram::bucketIndex(hi), i) << "bucket " << i;
            EXPECT_EQ(Histogram::bucketLowerBound(i + 1), hi + 1);
        }
    }
}

TEST(HistogramBuckets, PowerOfTwoEdges)
{
    for (uint32_t log2v = 3; log2v < Histogram::kMaxLog2; ++log2v) {
        const uint64_t v = 1ULL << log2v;
        const size_t at = Histogram::bucketIndex(v);
        // A power of two starts its bucket...
        EXPECT_EQ(Histogram::bucketLowerBound(at), v);
        // ...and the value just below it ends the previous one.
        EXPECT_EQ(Histogram::bucketIndex(v - 1), at - 1);
    }
}

TEST(HistogramBuckets, OverflowClampsToLastBucket)
{
    EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX),
              Histogram::kNumBuckets - 1);
    EXPECT_EQ(Histogram::bucketIndex(1ULL << Histogram::kMaxLog2),
              Histogram::kNumBuckets - 1);

    Histogram h;
    h.add(0);
    h.add(UINT64_MAX);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), UINT64_MAX);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::kNumBuckets - 1), 1u);
}

TEST(HistogramBuckets, CountMatchesBucketSum)
{
    Histogram h;
    for (uint64_t v = 0; v < 5000; v += 7)
        h.add(v);
    uint64_t sum = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i)
        sum += h.bucketCount(i);
    EXPECT_EQ(sum, h.count());
}

TEST(HistogramPercentiles, EmptyAndSingle)
{
    Histogram h;
    EXPECT_EQ(h.percentile(50.0), 0u);
    h.add(42);
    EXPECT_EQ(h.percentile(50.0), 42u);
    EXPECT_EQ(h.percentile(99.0), 42u);
}

TEST(HistogramPercentiles, UniformWithinOneBucketWidth)
{
    // 1..10000 uniformly: a percentile estimate must land inside the
    // bucket containing the exact value, i.e. within a factor of
    // (1 + 1/kBucketFraction) = 1.25 of it.
    Histogram h;
    for (uint64_t v = 1; v <= 10000; ++v)
        h.add(v);
    for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
        const double exact = p / 100.0 * 10000.0;
        const double estimate =
            static_cast<double>(h.percentile(p));
        EXPECT_GE(estimate, exact / 1.25) << "p" << p;
        EXPECT_LE(estimate, exact * 1.25) << "p" << p;
    }
    // The extremes are exact, from tracked min/max.
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(100.0), 10000u);
}

TEST(HistogramWelford, MatchesClosedForm)
{
    // Known set: mean 5, population variance 4.
    Histogram h;
    for (uint64_t v : {2, 4, 4, 4, 5, 5, 7, 9})
        h.add(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.min(), 2u);
    EXPECT_EQ(h.max(), 9u);
    EXPECT_NEAR(h.mean(), 5.0, 1e-12);
    EXPECT_NEAR(h.variance(), 4.0, 1e-12);
    EXPECT_NEAR(h.stddev(), 2.0, 1e-12);
}

TEST(HistogramWelford, LargeUniformAgainstFormula)
{
    // 0..n-1 uniform: mean (n-1)/2, variance (n^2-1)/12.
    const uint64_t n = 4096;
    Histogram h;
    for (uint64_t v = 0; v < n; ++v)
        h.add(v);
    const double nn = static_cast<double>(n);
    EXPECT_NEAR(h.mean(), (nn - 1.0) / 2.0, 1e-6);
    EXPECT_NEAR(h.variance(), (nn * nn - 1.0) / 12.0,
                h.variance() * 1e-9);
}

TEST(HistogramSerialize, BinaryRoundTrip)
{
    const std::string path = "/tmp/psca_obs_hist.bin";
    Histogram h;
    for (uint64_t v = 1; v <= 1000; v += 3)
        h.add(v * v);

    {
        BinaryWriter out(path);
        h.serialize(out);
        ASSERT_TRUE(out.good());
    }
    Histogram back;
    {
        BinaryReader in(path);
        back.deserialize(in);
        ASSERT_TRUE(in.good());
    }
    std::filesystem::remove(path);

    EXPECT_EQ(back.count(), h.count());
    EXPECT_EQ(back.min(), h.min());
    EXPECT_EQ(back.max(), h.max());
    EXPECT_DOUBLE_EQ(back.mean(), h.mean());
    EXPECT_DOUBLE_EQ(back.variance(), h.variance());
    for (double p : {50.0, 95.0, 99.0})
        EXPECT_EQ(back.percentile(p), h.percentile(p));
}

TEST(StatRegistry, NamesAreStableIdentities)
{
    auto &reg = obs::StatRegistry::instance();
    obs::Counter &a = reg.counter("test_obs.ctr");
    obs::Counter &b = reg.counter("test_obs.ctr");
    EXPECT_EQ(&a, &b);
    a.add(3);
    b.add(2);
    EXPECT_EQ(reg.counter("test_obs.ctr").value(), 5u);

    reg.gauge("test_obs.gauge").set(1.5);
    EXPECT_DOUBLE_EQ(reg.gauge("test_obs.gauge").value(), 1.5);

    EXPECT_EQ(reg.findCounter("test_obs.missing"), nullptr);
    EXPECT_EQ(reg.findCounter("test_obs.ctr"), &a);
}

TEST(StatRegistry, ResetZeroesButKeepsObjects)
{
    auto &reg = obs::StatRegistry::instance();
    obs::Counter &c = reg.counter("test_obs.reset_me");
    obs::Histogram &h = reg.histogram("test_obs.reset_hist");
    c.add(7);
    h.add(123);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);            // same object, zeroed
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(reg.findCounter("test_obs.reset_me"), &c);
}

TEST(PhaseTracing, ScopedPhaseNesting)
{
    auto &tracer = obs::PhaseTracer::instance();
    tracer.reset();
    {
        obs::ScopedPhase outer("outer");
        {
            obs::ScopedPhase inner("inner");
        }
        {
            obs::ScopedPhase inner("inner");
        }
        obs::ScopedPhase other("other");
    }
    {
        obs::ScopedPhase outer("outer"); // re-enter accumulates
    }

    const obs::PhaseNode &root = tracer.root();
    ASSERT_EQ(root.children.size(), 1u);
    const obs::PhaseNode &outer = *root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.calls, 2u);
    ASSERT_EQ(outer.children.size(), 2u);
    EXPECT_EQ(outer.children[0]->name, "inner");
    EXPECT_EQ(outer.children[0]->calls, 2u);
    EXPECT_EQ(outer.children[1]->name, "other");
    EXPECT_EQ(outer.children[1]->calls, 1u);
    // A parent's wall time covers its children's.
    EXPECT_GE(outer.wallNs, outer.children[0]->wallNs +
                  outer.children[1]->wallNs);
    tracer.reset();
}

TEST(PhaseTracing, ScopedTimerRecordsDuration)
{
    Histogram h;
    {
        obs::ScopedTimer timer(h);
        volatile int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + i;
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GT(h.max(), 0u);
}

TEST(RunReport, JsonDumpCarriesStatsAndPhases)
{
    auto &reg = obs::StatRegistry::instance();
    reg.reset();
    obs::PhaseTracer::instance().reset();

    reg.counter("test_obs.json_ctr").add(11);
    reg.gauge("test_obs.json_gauge").set(2.25);
    obs::Histogram &h = reg.histogram("test_obs.json_hist");
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    {
        obs::ScopedPhase phase("json_phase");
    }

    std::ostringstream os;
    reg.writeJson(os, "test_report");
    const std::string json = os.str();

    EXPECT_NE(json.find("\"report\": \"test_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"test_obs.json_ctr\": 11"),
              std::string::npos);
    EXPECT_NE(json.find("\"test_obs.json_gauge\": 2.25"),
              std::string::npos);
    EXPECT_NE(json.find("\"p50\": "), std::string::npos);
    EXPECT_NE(json.find("\"p95\": "), std::string::npos);
    EXPECT_NE(json.find("\"p99\": "), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"json_phase\""),
              std::string::npos);

    // Braces balance (cheap structural sanity without a parser).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));

    obs::PhaseTracer::instance().reset();
    reg.reset();
}

TEST(RunReport, DumpJsonWritesFile)
{
    const std::string path = "/tmp/psca_obs_report.json";
    auto &reg = obs::StatRegistry::instance();
    reg.counter("test_obs.file_ctr").add(1);
    reg.dumpJson(path, "file_report");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\"file_report\""), std::string::npos);
    EXPECT_NE(ss.str().find("test_obs.file_ctr"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(RunReport, TextDumpMentionsEveryStat)
{
    auto &reg = obs::StatRegistry::instance();
    reg.counter("test_obs.text_ctr").add(5);
    reg.histogram("test_obs.text_hist").add(9);
    std::ostringstream os;
    reg.dumpText(os);
    EXPECT_NE(os.str().find("test_obs.text_ctr"), std::string::npos);
    EXPECT_NE(os.str().find("test_obs.text_hist"), std::string::npos);
}

TEST(Concurrency, StatsSurviveParallelMutation)
{
    // Counters must be exact and histograms structurally consistent
    // when many pool tasks hammer the same stat objects; this is also
    // the TSan workload for the obs layer.
    auto &reg = obs::StatRegistry::instance();
    auto &ctr = reg.counter("test_obs.par_ctr");
    auto &gauge = reg.gauge("test_obs.par_gauge");
    auto &hist = reg.histogram("test_obs.par_hist");
    ctr.reset();
    hist.reset();

    psca::ThreadPool pool(4);
    pool.parallelFor(4000, [&](size_t i) {
        ctr.add();
        gauge.set(static_cast<double>(i));
        hist.add(i % 97);
        obs::ScopedPhase phase("par_phase");
    });

    EXPECT_EQ(ctr.value(), 4000u);
    EXPECT_EQ(hist.count(), 4000u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 96u);

    // Dumping while another region mutates stats must stay coherent.
    std::ostringstream os;
    pool.parallelFor(2, [&](size_t i) {
        if (i == 0) {
            for (int r = 0; r < 50; ++r)
                reg.writeJson(os, "concurrent_dump");
        } else {
            for (int r = 0; r < 5000; ++r) {
                ctr.add();
                hist.add(r % 13);
                obs::ScopedPhase phase("par_phase2");
            }
        }
    });
    EXPECT_EQ(ctr.value(), 9000u);
    EXPECT_NE(os.str().find("test_obs.par_ctr"), std::string::npos);

    ctr.reset();
    hist.reset();
    obs::PhaseTracer::instance().reset();
}
