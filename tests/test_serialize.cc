/**
 * @file
 * Tests for the binary serialization helpers underlying the record
 * cache and firmware images.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/serialize.hh"

using namespace psca;

namespace {

class SerializeTest : public ::testing::Test
{
  protected:
    void SetUp() override { path_ = "/tmp/psca_ser_test.bin"; }
    void TearDown() override { std::filesystem::remove(path_); }
    std::string path_;
};

} // namespace

TEST_F(SerializeTest, ScalarRoundTrip)
{
    {
        BinaryWriter out(path_);
        out.put<uint64_t>(0xdeadbeefcafeULL);
        out.put<int32_t>(-42);
        out.put<float>(3.25f);
        out.put<double>(-1e300);
        ASSERT_TRUE(out.good());
    }
    BinaryReader in(path_);
    ASSERT_TRUE(in.good());
    EXPECT_EQ(in.get<uint64_t>(), 0xdeadbeefcafeULL);
    EXPECT_EQ(in.get<int32_t>(), -42);
    EXPECT_FLOAT_EQ(in.get<float>(), 3.25f);
    EXPECT_DOUBLE_EQ(in.get<double>(), -1e300);
}

TEST_F(SerializeTest, VectorRoundTrip)
{
    std::vector<float> v{1.0f, -2.5f, 0.0f, 1e-30f};
    {
        BinaryWriter out(path_);
        out.putVector(v);
    }
    BinaryReader in(path_);
    EXPECT_EQ(in.getVector<float>(), v);
}

TEST_F(SerializeTest, EmptyVectorRoundTrip)
{
    {
        BinaryWriter out(path_);
        out.putVector(std::vector<uint32_t>{});
        out.put<uint8_t>(7);
    }
    BinaryReader in(path_);
    EXPECT_TRUE(in.getVector<uint32_t>().empty());
    EXPECT_EQ(in.get<uint8_t>(), 7);
}

TEST_F(SerializeTest, StringRoundTrip)
{
    {
        BinaryWriter out(path_);
        out.putString("hello psca");
        out.putString("");
        out.putString(std::string("with\0null", 9));
    }
    BinaryReader in(path_);
    EXPECT_EQ(in.getString(), "hello psca");
    EXPECT_EQ(in.getString(), "");
    EXPECT_EQ(in.getString(), std::string("with\0null", 9));
}

TEST_F(SerializeTest, MixedSequenceOrderPreserved)
{
    {
        BinaryWriter out(path_);
        out.put<uint16_t>(1);
        out.putString("a");
        out.putVector(std::vector<int>{2, 3});
        out.put<uint16_t>(4);
    }
    BinaryReader in(path_);
    EXPECT_EQ(in.get<uint16_t>(), 1);
    EXPECT_EQ(in.getString(), "a");
    EXPECT_EQ(in.getVector<int>(), (std::vector<int>{2, 3}));
    EXPECT_EQ(in.get<uint16_t>(), 4);
}

TEST_F(SerializeTest, MissingFileReadsNotGood)
{
    BinaryReader in("/tmp/psca_no_such_file_12345.bin");
    EXPECT_FALSE(in.good());
}

TEST_F(SerializeTest, TruncatedReadTurnsNotGood)
{
    {
        BinaryWriter out(path_);
        out.put<uint32_t>(1);
    }
    BinaryReader in(path_);
    in.get<uint32_t>();
    in.get<uint64_t>(); // past EOF
    EXPECT_FALSE(in.good());
}

TEST_F(SerializeTest, ChecksumTrailerRoundTrips)
{
    {
        BinaryWriter out(path_);
        out.put<uint64_t>(0x1122334455667788ULL);
        out.putVector(std::vector<float>{1.5f, -2.5f});
        out.putString("payload");
        out.putChecksumTrailer();
        ASSERT_TRUE(out.good());
    }
    BinaryReader in(path_);
    in.get<uint64_t>();
    in.getVector<float>();
    in.getString();
    EXPECT_TRUE(in.verifyChecksumTrailer());
}

TEST_F(SerializeTest, ChecksumCatchesSingleFlippedByte)
{
    {
        BinaryWriter out(path_);
        for (uint32_t i = 0; i < 64; ++i)
            out.put<uint32_t>(i);
        out.putChecksumTrailer();
    }
    // Flip one payload byte in the middle of the file.
    {
        std::fstream f(path_,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(100);
        char b = 0;
        f.read(&b, 1);
        b ^= 0x10;
        f.seekp(100);
        f.write(&b, 1);
    }
    BinaryReader in(path_);
    for (uint32_t i = 0; i < 64; ++i)
        in.get<uint32_t>();
    ASSERT_TRUE(in.good()); // bytes read fine...
    EXPECT_FALSE(in.verifyChecksumTrailer()); // ...but don't verify
}

TEST_F(SerializeTest, ChecksumFailsOnTruncatedTrailer)
{
    {
        BinaryWriter out(path_);
        out.put<uint32_t>(7);
        // No trailer written.
    }
    BinaryReader in(path_);
    in.get<uint32_t>();
    EXPECT_FALSE(in.verifyChecksumTrailer());
}

TEST_F(SerializeTest, FileHeaderChecks)
{
    constexpr uint64_t kMagic = 0x50534341464f4fULL;
    {
        BinaryWriter out(path_);
        writeFileHeader(out, kMagic, 3);
        out.put<uint8_t>(42);
    }
    {
        BinaryReader in(path_);
        EXPECT_EQ(readFileHeader(in, kMagic, 3), HeaderCheck::Ok);
        EXPECT_EQ(in.get<uint8_t>(), 42); // positioned past header
    }
    {
        BinaryReader in(path_);
        EXPECT_EQ(readFileHeader(in, kMagic + 1, 3),
                  HeaderCheck::BadMagic);
    }
    {
        BinaryReader in(path_);
        EXPECT_EQ(readFileHeader(in, kMagic, 4),
                  HeaderCheck::BadVersion);
    }
    {
        std::ofstream(path_, std::ios::binary).put('x'); // too short
        BinaryReader in(path_);
        EXPECT_EQ(readFileHeader(in, kMagic, 3),
                  HeaderCheck::Unreadable);
    }
    EXPECT_STREQ(headerCheckName(HeaderCheck::BadVersion),
                 "version mismatch");
}

TEST_F(SerializeTest, CorruptLengthPrefixCannotExhaustMemory)
{
    {
        BinaryWriter out(path_);
        // A length prefix claiming ~10^18 elements in a tiny file.
        out.put<uint64_t>(1ULL << 60);
        out.put<uint32_t>(1);
    }
    BinaryReader in(path_);
    EXPECT_TRUE(in.getVector<double>().empty());
    EXPECT_FALSE(in.good());

    BinaryReader in2(path_);
    EXPECT_TRUE(in2.getString().empty());
    EXPECT_FALSE(in2.good());
}

TEST_F(SerializeTest, QuarantineMovesCorruptFileAside)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "corrupt bytes";
    }
    const std::string dest = path_ + ".quarantined";
    std::filesystem::remove(dest);
    quarantineFile(path_, "test");
    EXPECT_FALSE(std::filesystem::exists(path_));
    ASSERT_TRUE(std::filesystem::exists(dest));
    // The quarantined copy keeps the original bytes for inspection.
    EXPECT_EQ(std::filesystem::file_size(dest), 13u);
    std::filesystem::remove(dest);
}
