/**
 * @file
 * Tests for the binary serialization helpers underlying the record
 * cache and firmware images.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/serialize.hh"

using namespace psca;

namespace {

class SerializeTest : public ::testing::Test
{
  protected:
    void SetUp() override { path_ = "/tmp/psca_ser_test.bin"; }
    void TearDown() override { std::filesystem::remove(path_); }
    std::string path_;
};

} // namespace

TEST_F(SerializeTest, ScalarRoundTrip)
{
    {
        BinaryWriter out(path_);
        out.put<uint64_t>(0xdeadbeefcafeULL);
        out.put<int32_t>(-42);
        out.put<float>(3.25f);
        out.put<double>(-1e300);
        ASSERT_TRUE(out.good());
    }
    BinaryReader in(path_);
    ASSERT_TRUE(in.good());
    EXPECT_EQ(in.get<uint64_t>(), 0xdeadbeefcafeULL);
    EXPECT_EQ(in.get<int32_t>(), -42);
    EXPECT_FLOAT_EQ(in.get<float>(), 3.25f);
    EXPECT_DOUBLE_EQ(in.get<double>(), -1e300);
}

TEST_F(SerializeTest, VectorRoundTrip)
{
    std::vector<float> v{1.0f, -2.5f, 0.0f, 1e-30f};
    {
        BinaryWriter out(path_);
        out.putVector(v);
    }
    BinaryReader in(path_);
    EXPECT_EQ(in.getVector<float>(), v);
}

TEST_F(SerializeTest, EmptyVectorRoundTrip)
{
    {
        BinaryWriter out(path_);
        out.putVector(std::vector<uint32_t>{});
        out.put<uint8_t>(7);
    }
    BinaryReader in(path_);
    EXPECT_TRUE(in.getVector<uint32_t>().empty());
    EXPECT_EQ(in.get<uint8_t>(), 7);
}

TEST_F(SerializeTest, StringRoundTrip)
{
    {
        BinaryWriter out(path_);
        out.putString("hello psca");
        out.putString("");
        out.putString(std::string("with\0null", 9));
    }
    BinaryReader in(path_);
    EXPECT_EQ(in.getString(), "hello psca");
    EXPECT_EQ(in.getString(), "");
    EXPECT_EQ(in.getString(), std::string("with\0null", 9));
}

TEST_F(SerializeTest, MixedSequenceOrderPreserved)
{
    {
        BinaryWriter out(path_);
        out.put<uint16_t>(1);
        out.putString("a");
        out.putVector(std::vector<int>{2, 3});
        out.put<uint16_t>(4);
    }
    BinaryReader in(path_);
    EXPECT_EQ(in.get<uint16_t>(), 1);
    EXPECT_EQ(in.getString(), "a");
    EXPECT_EQ(in.getVector<int>(), (std::vector<int>{2, 3}));
    EXPECT_EQ(in.get<uint16_t>(), 4);
}

TEST_F(SerializeTest, MissingFileReadsNotGood)
{
    BinaryReader in("/tmp/psca_no_such_file_12345.bin");
    EXPECT_FALSE(in.good());
}

TEST_F(SerializeTest, TruncatedReadTurnsNotGood)
{
    {
        BinaryWriter out(path_);
        out.put<uint32_t>(1);
    }
    BinaryReader in(path_);
    in.get<uint32_t>();
    in.get<uint64_t>(); // past EOF
    EXPECT_FALSE(in.good());
}
