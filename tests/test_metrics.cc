/**
 * @file
 * Tests for the paper's metrics: confusion taxonomy, PGOS (Eq. 1),
 * and RSV (Eqs. 2-4).
 */

#include <gtest/gtest.h>

#include "core/metrics.hh"
#include "core/sla.hh"

using namespace psca;

TEST(Confusion, TaxonomyMatchesPaperTable)
{
    ConfusionCounts c;
    c.add(true, true);   // gated correctly -> TP
    c.add(true, false);  // gated wrongly -> FP
    c.add(false, false); // stayed wide correctly -> TN
    c.add(false, true);  // missed opportunity -> FN
    EXPECT_EQ(c.truePositive, 1u);
    EXPECT_EQ(c.falsePositive, 1u);
    EXPECT_EQ(c.trueNegative, 1u);
    EXPECT_EQ(c.falseNegative, 1u);
    EXPECT_EQ(c.total(), 4u);
}

TEST(Confusion, PgosIsRecall)
{
    ConfusionCounts c;
    for (int i = 0; i < 3; ++i)
        c.add(true, true);
    c.add(false, true);
    EXPECT_DOUBLE_EQ(c.pgos(), 0.75);
}

TEST(Confusion, PgosNoOpportunitiesIsOne)
{
    ConfusionCounts c;
    c.add(false, false);
    EXPECT_DOUBLE_EQ(c.pgos(), 1.0);
}

TEST(Confusion, Merge)
{
    ConfusionCounts a, b;
    a.add(true, true);
    b.add(false, false);
    a.merge(b);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_DOUBLE_EQ(a.accuracy(), 1.0);
}

TEST(Rsv, PerfectPredictionsNoViolations)
{
    std::vector<uint8_t> labels{1, 0, 1, 0, 1, 1, 0, 0};
    EXPECT_DOUBLE_EQ(rsvForTrace(labels, labels, 4), 0.0);
}

TEST(Rsv, AllFalsePositivesViolate)
{
    std::vector<uint8_t> preds(16, 1), labels(16, 0);
    EXPECT_DOUBLE_EQ(rsvForTrace(preds, labels, 4), 1.0);
}

TEST(Rsv, ThresholdIsMajorityOfWindow)
{
    // Window of 4: exactly 2 FPs -> expectation 0.5, NOT > 0.5.
    std::vector<uint8_t> labels{0, 0, 0, 0};
    std::vector<uint8_t> preds{1, 1, 0, 0};
    EXPECT_DOUBLE_EQ(rsvForTrace(preds, labels, 4), 0.0);
    // 3 of 4 FPs -> violation.
    preds = {1, 1, 1, 0};
    EXPECT_DOUBLE_EQ(rsvForTrace(preds, labels, 4), 1.0);
}

TEST(Rsv, FalseNegativesNeverViolate)
{
    // Predicting high-perf when gating was possible wastes energy
    // but cannot violate the SLA.
    std::vector<uint8_t> preds(16, 0), labels(16, 1);
    EXPECT_DOUBLE_EQ(rsvForTrace(preds, labels, 4), 0.0);
}

TEST(Rsv, LocalizedBlindspotDetected)
{
    // 32 predictions; a systematic FP burst in one 8-wide region.
    std::vector<uint8_t> labels(32, 0);
    std::vector<uint8_t> preds(32, 0);
    for (int i = 8; i < 16; ++i)
        preds[i] = 1;
    const double rsv = rsvForTrace(preds, labels, 8);
    EXPECT_GT(rsv, 0.0);
    EXPECT_LT(rsv, 0.5);
}

TEST(Rsv, WindowClampsToTraceLength)
{
    std::vector<uint8_t> labels{0, 0, 0};
    std::vector<uint8_t> preds{1, 1, 1};
    EXPECT_DOUBLE_EQ(rsvForTrace(preds, labels, 1600), 1.0);
}

TEST(Rsv, EmptyTraceIsZero)
{
    EXPECT_DOUBLE_EQ(rsvForTrace({}, {}, 4), 0.0);
}

TEST(Rsv, OverTracesAveragesPerTrace)
{
    std::vector<std::vector<uint8_t>> preds{{1, 1, 1, 1},
                                            {0, 0, 0, 0}};
    std::vector<std::vector<uint8_t>> labels{{0, 0, 0, 0},
                                             {0, 0, 0, 0}};
    EXPECT_DOUBLE_EQ(rsvOverTraces(preds, labels, 4), 0.5);
}

TEST(Sla, WindowPredictionsMatchesPaperExample)
{
    // Paper Sec. 4.2: W = 16 GIPS * 1 ms * (1 / 10k) = 1600.
    SlaSpec sla;
    EXPECT_EQ(sla.windowPredictions(16e9, 10000), 1600u);
    EXPECT_EQ(sla.windowPredictions(16e9, 40000), 400u);
}

TEST(Sla, WindowNeverZero)
{
    SlaSpec sla;
    EXPECT_GE(sla.windowPredictions(16e9, 10000000000ULL), 1u);
}
