/**
 * @file
 * Tests for caches, TLBs, MSHR accounting, and the memory hierarchy.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/cache.hh"

using namespace psca;

TEST(CacheLevel, HitAfterFill)
{
    CacheLevel cache({1024, 2, 64, 4});
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1038, false).hit); // same line
    EXPECT_FALSE(cache.access(0x1040, false).hit); // next line
}

TEST(CacheLevel, LruEviction)
{
    // 2-way, 64B lines, 128B total -> 1 set of 2 ways.
    CacheLevel cache({128, 2, 64, 1});
    cache.access(0x0000, false);
    cache.access(0x1000, false);
    cache.access(0x0000, false);      // touch A; B becomes LRU
    const auto r = cache.access(0x2000, false);
    EXPECT_TRUE(r.evictedValid);
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(CacheLevel, DirtyEvictionTracked)
{
    CacheLevel cache({128, 2, 64, 1});
    cache.access(0x0000, true); // dirty
    cache.access(0x1000, false);
    cache.access(0x0000, false);
    const auto r = cache.access(0x2000, false); // evicts clean 0x1000
    EXPECT_TRUE(r.evictedValid);
    EXPECT_FALSE(r.evictedDirty);
    cache.access(0x1000, false); // evicts dirty 0x0000
    const auto r2 = cache.access(0x3000, false);
    (void)r2;
    // One of the two evictions above was the dirty line.
    EXPECT_FALSE(cache.contains(0x0000));
}

TEST(CacheLevel, ResetInvalidates)
{
    CacheLevel cache({1024, 2, 64, 4});
    cache.access(0x1000, false);
    cache.reset();
    EXPECT_FALSE(cache.access(0x1000, false).hit);
}

TEST(CacheLevel, WorkingSetLargerThanCacheMisses)
{
    CacheLevel cache({4096, 4, 64, 4});
    // Two passes over 4x the capacity: second pass must still miss.
    int second_pass_hits = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t addr = 0; addr < 16384; addr += 64) {
            const bool hit = cache.access(addr, false).hit;
            if (pass == 1)
                second_pass_hits += hit ? 1 : 0;
        }
    }
    EXPECT_EQ(second_pass_hits, 0); // LRU thrashes a looped overflow
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb(64, 4096);
    EXPECT_FALSE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10fff)); // same page
    EXPECT_FALSE(tlb.access(0x11000)); // next page
}

TEST(MshrPool, BoundsConcurrentMisses)
{
    MshrPool pool(2);
    EXPECT_EQ(pool.allocAt(100), 100u);
    pool.fill(300);
    EXPECT_EQ(pool.allocAt(100), 100u); // one slot left
    pool.fill(350);
    // Both slots busy until 300.
    EXPECT_EQ(pool.allocAt(100), 300u);
}

TEST(MshrPool, OccupancyAt)
{
    MshrPool pool(4);
    pool.fill(100);
    pool.fill(200);
    EXPECT_EQ(pool.occupancyAt(50), 2);
    EXPECT_EQ(pool.occupancyAt(150), 1);
    EXPECT_EQ(pool.occupancyAt(250), 0);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    CoreConfig cfg;
    Counters ctr;
};

TEST_F(HierarchyTest, L1HitLatency)
{
    MemoryHierarchy mem(cfg);
    MshrPool mshrs(cfg.mshrsPerCluster);
    mem.dataAccess(0x1000, false, 0x400000, 1000, mshrs, ctr); // warm
    const uint64_t done =
        mem.dataAccess(0x1000, false, 0x400000, 2000, mshrs, ctr);
    EXPECT_EQ(done, 2000 + cfg.l1d.hitLatency);
    EXPECT_GE(ctr.value(Ctr::L1dHit), 1u);
}

TEST_F(HierarchyTest, ColdMissPaysDramLatency)
{
    MemoryHierarchy mem(cfg);
    MshrPool mshrs(cfg.mshrsPerCluster);
    const uint64_t done =
        mem.dataAccess(0x5000000, false, 0x400000, 1000, mshrs, ctr);
    EXPECT_GE(done, 1000 + cfg.memLatency);
    EXPECT_EQ(ctr.value(Ctr::LlcMiss), 1u);
    EXPECT_EQ(ctr.value(Ctr::MemReads), 1u);
}

TEST_F(HierarchyTest, StridePrefetchHidesLatency)
{
    MemoryHierarchy mem(cfg);
    MshrPool mshrs(cfg.mshrsPerCluster);
    const uint64_t pc = 0x400100;
    uint64_t t = 10000;
    uint64_t worst_late = 0;
    // Stream through DRAM-resident lines with constant stride.
    for (int i = 0; i < 64; ++i) {
        const uint64_t addr = 0x10000000ULL + 64ULL * i;
        const uint64_t done = mem.dataAccess(addr, false, pc, t,
                                             mshrs, ctr);
        if (i > 8)
            worst_late = std::max(worst_late, done - t);
        t = done + 10;
    }
    // Once the stride locks, per-access latency must be far below a
    // full memory round trip.
    EXPECT_LT(worst_late, static_cast<uint64_t>(cfg.memLatency / 2));
}

TEST_F(HierarchyTest, RandomAccessNotPrefetched)
{
    MemoryHierarchy mem(cfg);
    MshrPool mshrs(cfg.mshrsPerCluster);
    Rng rng(3);
    uint64_t total = 0;
    int misses = 0;
    uint64_t t = 10000;
    for (int i = 0; i < 32; ++i) {
        const uint64_t addr =
            0x10000000ULL + ((rng.next() & 0xffffff) & ~63ULL);
        const uint64_t before = ctr.value(Ctr::LlcMiss);
        const uint64_t done =
            mem.dataAccess(addr, false, 0x400200, t, mshrs, ctr);
        if (ctr.value(Ctr::LlcMiss) > before) {
            total += done - t;
            ++misses;
        }
        t = done + 200;
    }
    ASSERT_GT(misses, 10);
    EXPECT_GT(static_cast<double>(total) / misses,
              0.9 * cfg.memLatency);
}

TEST_F(HierarchyTest, InstFetchUopCacheHitIsFree)
{
    MemoryHierarchy mem(cfg);
    mem.instAccess(0x400000, ctr);
    const uint32_t lat = mem.instAccess(0x400000, ctr);
    EXPECT_EQ(lat, 0u);
    EXPECT_GE(ctr.value(Ctr::UopCacheHit), 1u);
}

TEST_F(HierarchyTest, DtlbMissCounted)
{
    MemoryHierarchy mem(cfg);
    MshrPool mshrs(cfg.mshrsPerCluster);
    for (int i = 0; i < 200; ++i) {
        mem.dataAccess(0x20000000ULL + 4096ULL * i, false, 0x400300,
                       1000 + i * 300, mshrs, ctr);
    }
    // 200 distinct pages through a 64-entry TLB: mostly misses.
    EXPECT_GT(ctr.value(Ctr::DtlbMiss), 150u);
}
