/**
 * @file
 * Tests for the content-hashed simulation memo cache: key hashing,
 * sparse round-trips, corruption rejection, and the headline
 * contract — TraceRecords are byte-identical whether the intervals
 * came from a cold replay or a warm cache hit, at any thread count.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/parallel.hh"
#include "core/builder.hh"
#include "sim/memo.hh"
#include "telemetry/counters.hh"
#include "trace/genome.hh"

using namespace psca;

namespace {

/**
 * Pin the cache root before anything touches the SimMemo singleton
 * (its directory is latched at first use), and start every run cold.
 */
class MemoDirEnv : public ::testing::Environment
{
  public:
    void
    SetUp() override
    {
        std::filesystem::remove_all("/tmp/psca_memo_test");
        setenv("PSCA_CACHE_DIR", "/tmp/psca_memo_test", 1);
    }
};

const auto *const g_env =
    ::testing::AddGlobalTestEnvironment(new MemoDirEnv);

BuildConfig
smallConfig()
{
    BuildConfig cfg;
    cfg.intervalInstr = 10000;
    cfg.warmupInstr = 20000;
    cfg.counterIds = {
        CounterRegistry::index(Ctr::InstRetired),
        CounterRegistry::index(Ctr::L1dMiss),
        CounterRegistry::index(Ctr::UopsStalledOnDep),
        CounterRegistry::index(Ctr::BranchMispred),
    };
    return cfg;
}

Workload
genomeWorkload(uint64_t seed, uint64_t len, const char *name)
{
    Workload w;
    w.genome = sampleGenome(AppCategory::HpcPerf, seed);
    w.inputSeed = 1;
    w.lengthInstr = len;
    w.name = name;
    return w;
}

/** Exact float-bit equality between two records. */
void
expectRecordsIdentical(const TraceRecord &a, const TraceRecord &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.numCounters, b.numCounters);
    auto bits_eq = [](const std::vector<float> &x,
                      const std::vector<float> &y) {
        return x.size() == y.size() &&
            (x.empty() ||
             std::memcmp(x.data(), y.data(),
                         x.size() * sizeof(float)) == 0);
    };
    EXPECT_TRUE(bits_eq(a.deltaHigh, b.deltaHigh));
    EXPECT_TRUE(bits_eq(a.deltaLow, b.deltaLow));
    EXPECT_TRUE(bits_eq(a.cyclesHigh, b.cyclesHigh));
    EXPECT_TRUE(bits_eq(a.cyclesLow, b.cyclesLow));
    EXPECT_TRUE(bits_eq(a.energyHighNj, b.energyHighNj));
    EXPECT_TRUE(bits_eq(a.energyLowNj, b.energyLowNj));
}

} // namespace

TEST(Memo, ConfigHashDiscriminates)
{
    CoreConfig a;
    const uint64_t base = coreConfigHash(a);
    EXPECT_EQ(base, coreConfigHash(a)); // stable

    CoreConfig b;
    b.robSize += 1;
    EXPECT_NE(base, coreConfigHash(b));
    CoreConfig c;
    c.l1d.hitLatency += 1;
    EXPECT_NE(base, coreConfigHash(c));
    CoreConfig d;
    d.clockGhz += 0.1;
    EXPECT_NE(base, coreConfigHash(d));
}

TEST(Memo, KeySeparatesModesAndTraces)
{
    SimMemo &memo = SimMemo::instance();
    const MemoKey high{1, 2, CoreMode::HighPerf};
    const MemoKey low{1, 2, CoreMode::LowPower};
    const MemoKey other{3, 2, CoreMode::HighPerf};
    EXPECT_NE(memo.pathFor(high), memo.pathFor(low));
    EXPECT_NE(memo.pathFor(high), memo.pathFor(other));
}

TEST(Memo, StoreLookupRoundTrip)
{
    SimMemo &memo = SimMemo::instance();
    ASSERT_TRUE(memo.enabled());

    MemoIntervals intervals(3);
    for (size_t t = 0; t < intervals.size(); ++t) {
        intervals[t].assign(kNumTelemetryCounters, 0);
        intervals[t][0] = 1000 + t;
        intervals[t][17] = 42 * (t + 1);
        intervals[t][kNumTelemetryCounters - 1] = t; // 0 in t=0: sparse
    }

    const MemoKey key{0xabcdef, 0x123456, CoreMode::LowPower};
    memo.store(key, intervals);
    EXPECT_TRUE(std::filesystem::exists(memo.pathFor(key)));

    MemoIntervals loaded;
    ASSERT_TRUE(memo.lookup(key, loaded));
    ASSERT_EQ(loaded.size(), intervals.size());
    for (size_t t = 0; t < intervals.size(); ++t)
        EXPECT_EQ(loaded[t], intervals[t]);
}

TEST(Memo, MissingAndCorruptEntriesMiss)
{
    SimMemo &memo = SimMemo::instance();
    MemoIntervals out;
    EXPECT_FALSE(memo.lookup({999, 999, CoreMode::HighPerf}, out));

    // A truncated/garbage file must be treated as a miss, not trusted.
    const MemoKey key{555, 556, CoreMode::HighPerf};
    std::filesystem::create_directories("/tmp/psca_memo_test");
    std::ofstream(memo.pathFor(key), std::ios::binary)
        << "not a memo file";
    EXPECT_FALSE(memo.lookup(key, out));
}

TEST(Memo, ColdVsWarmRecordsByteIdentical)
{
    const BuildConfig cfg = smallConfig();
    const Workload w = genomeWorkload(11, 80000, "memo_cw");

    const TraceRecord cold = recordTrace(w, cfg, 0, 0);
    // Warm pass: the memo files written above short-circuit both
    // fixed-mode replays.
    const TraceRecord warm = recordTrace(w, cfg, 0, 0);
    ASSERT_EQ(cold.numIntervals(), 8u);
    expectRecordsIdentical(cold, warm);
}

TEST(Memo, ByteIdenticalAcrossThreadCounts)
{
    // The determinism contract holds through the memo layer: a cold
    // 4-thread build, a warm 4-thread read, and the 1-thread records
    // all match bit for bit.
    const BuildConfig cfg = smallConfig();
    const Workload w = genomeWorkload(19, 80000, "memo_mt");

    const TraceRecord serial = recordTrace(w, cfg, 0, 0);

    ThreadPool::configure(4);
    const TraceRecord warm4 = recordTrace(w, cfg, 0, 0);

    // Fresh key (different workload name does not change the key —
    // perturb the trace itself) to force a cold 4-thread build.
    Workload w2 = w;
    w2.inputSeed = 2;
    const TraceRecord cold4 = recordTrace(w2, cfg, 0, 0);
    ThreadPool::configure(1);
    const TraceRecord serial2 = recordTrace(w2, cfg, 0, 0);

    expectRecordsIdentical(serial, warm4);
    expectRecordsIdentical(cold4, serial2);
}

TEST(Memo, ProjectionIndependentOfCounterList)
{
    // The memo stores full-width deltas, so a different counterIds
    // projection must reuse the same entry and still agree on the
    // shared columns.
    const Workload w = genomeWorkload(31, 60000, "memo_proj");
    const BuildConfig cfg = smallConfig();
    const TraceRecord base = recordTrace(w, cfg, 0, 0);

    BuildConfig wide = cfg;
    wide.counterIds.push_back(CounterRegistry::index(Ctr::Cycles));
    const TraceRecord re = recordTrace(w, wide, 0, 0);

    ASSERT_EQ(re.numIntervals(), base.numIntervals());
    for (size_t t = 0; t < base.numIntervals(); ++t) {
        for (size_t j = 0; j < cfg.counterIds.size(); ++j) {
            EXPECT_EQ(re.rowHigh(t)[j], base.rowHigh(t)[j]);
            EXPECT_EQ(re.rowLow(t)[j], base.rowLow(t)[j]);
        }
        EXPECT_EQ(re.cyclesHigh[t], base.cyclesHigh[t]);
        // The appended column is the interval cycle count itself.
        EXPECT_EQ(re.rowHigh(t)[cfg.counterIds.size()],
                  base.cyclesHigh[t]);
    }
}
