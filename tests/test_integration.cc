/**
 * @file
 * End-to-end integration tests on miniature corpora: train dual
 * models from recorded telemetry and verify the closed loop realizes
 * PPW without SLA violations, plus the post-silicon retraining flows
 * of Sec. 7.3.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.hh"

using namespace psca;

namespace {

/** Miniature experiment context built without the disk cache. */
class MiniPipeline : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setenv("PSCA_CACHE_DIR", "/tmp/psca_test_cache_integ", 1);
        std::filesystem::remove_all("/tmp/psca_test_cache_integ");

        build_.intervalInstr = 10000;
        build_.warmupInstr = 20000;
        const auto &reg = CounterRegistry::instance();
        build_.counterIds = {
            CounterRegistry::index(Ctr::InstRetired),
            CounterRegistry::index(Ctr::StallCount),
            CounterRegistry::index(Ctr::L1dMiss),
            CounterRegistry::index(Ctr::LoadLatSum),
            CounterRegistry::index(Ctr::MshrOccSum),
            CounterRegistry::index(Ctr::UopsStalledOnDep),
            CounterRegistry::index(Ctr::UopsReady),
            reg.index(ClusterCtr::RsOccSum, 0),
        };

        // 24 HDTR-prior apps, one 200k trace each.
        const auto apps = buildHdtrApps(24);
        std::vector<Workload> ws;
        std::vector<uint32_t> ids;
        for (size_t a = 0; a < apps.size(); ++a) {
            Workload w;
            w.genome = apps[a];
            w.inputSeed = 1;
            w.lengthInstr = 200000;
            w.name = apps[a].name;
            ws.push_back(w);
            ids.push_back(static_cast<uint32_t>(a));
        }
        hdtr_ = recordCorpus(ws, ids, build_, "integ_hdtr");

        // Two held-out SPEC-profile workloads.
        const auto spec = buildSpecApps();
        for (const auto &app : {spec[2] /*mcf*/, spec[5] /*x264*/}) {
            Workload w;
            w.genome = app.genome;
            w.inputSeed = 1;
            w.lengthInstr = 300000;
            w.name = app.genome.name;
            specWs_.push_back(w);
        }
        spec_.push_back(recordTrace(specWs_[0], build_, 100, 0));
        spec_.push_back(recordTrace(specWs_[1], build_, 101, 1));
    }

    static void
    TearDownTestSuite()
    {
        unsetenv("PSCA_CACHE_DIR");
    }

    static BuildConfig build_;
    static std::vector<TraceRecord> hdtr_;
    static std::vector<TraceRecord> spec_;
    static std::vector<Workload> specWs_;
};

BuildConfig MiniPipeline::build_;
std::vector<TraceRecord> MiniPipeline::hdtr_;
std::vector<TraceRecord> MiniPipeline::spec_;
std::vector<Workload> MiniPipeline::specWs_;

} // namespace

TEST_F(MiniPipeline, DualRfRealizesPpwOnMemoryBoundApp)
{
    DualTrainOptions opts;
    opts.granularityInstr = 20000;
    opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
    opts.rsvWindow = 16;
    TrainedDual dual = trainDual(
        hdtr_, build_, opts,
        [](const Dataset &tune, uint64_t s) -> std::unique_ptr<Model> {
            ForestConfig fc;
            fc.numTrees = 8;
            fc.maxDepth = 8;
            fc.seed = s;
            return std::make_unique<RandomForest>(tune, fc);
        });

    DualModelPredictor pred(dual.high, dual.low, opts.columns, 20000,
                            "rf");
    // mcf-like: memory bound, should gate heavily, gain PPW.
    const auto r =
        runClosedLoop(specWs_[0], spec_[0], pred, build_, SlaSpec{});
    EXPECT_GT(r.ppwGainPct, 5.0);
    EXPECT_GT(r.lowResidency, 0.2);
    EXPECT_LT(r.rsv, 0.5);

    // x264-like: width hungry, should mostly stay wide.
    const auto r2 =
        runClosedLoop(specWs_[1], spec_[1], pred, build_, SlaSpec{});
    EXPECT_LT(r2.lowResidency, r.lowResidency);
}

TEST_F(MiniPipeline, RelabelingForLooserSlaGatesMore)
{
    // Table 5 mechanism: retraining to a looser SLA gates more.
    double residency[2];
    int i = 0;
    for (double p_sla : {0.90, 0.70}) {
        DualTrainOptions opts;
        opts.granularityInstr = 20000;
        opts.pSla = p_sla;
        opts.columns = {0, 1, 2, 3, 4, 5, 6, 7};
        opts.rsvWindow = 16;
        TrainedDual dual = trainDual(
            hdtr_, build_, opts,
            [](const Dataset &tune,
               uint64_t s) -> std::unique_ptr<Model> {
                ForestConfig fc;
                fc.numTrees = 8;
                fc.maxDepth = 8;
                fc.seed = s;
                return std::make_unique<RandomForest>(tune, fc);
            });
        DualModelPredictor pred(dual.high, dual.low, opts.columns,
                                20000, "rf");
        SlaSpec sla;
        sla.pSla = p_sla;
        const auto r =
            runClosedLoop(specWs_[0], spec_[0], pred, build_, sla);
        residency[i++] = r.lowResidency;
    }
    EXPECT_GE(residency[1], residency[0]);
}

TEST_F(MiniPipeline, SrchPredictorRunsClosedLoop)
{
    const std::vector<size_t> cols{0, 1, 2, 3, 4, 5, 6, 7};
    std::shared_ptr<SrchModel> models[2];
    for (int m = 0; m < 2; ++m) {
        AssemblyOptions ao;
        ao.granularityInstr = build_.intervalInstr;
        ao.telemetryMode =
            m == 0 ? CoreMode::HighPerf : CoreMode::LowPower;
        ao.columns = cols;
        const Dataset per_interval =
            assembleDataset(hdtr_, ao, build_.intervalInstr);
        models[m] = std::make_shared<SrchModel>(per_interval, 4,
                                                LogRegConfig{});
    }
    SrchPredictor pred(models[0], models[1], cols, 40000, "srch");
    const auto r =
        runClosedLoop(specWs_[0], spec_[0], pred, build_, SlaSpec{});
    EXPECT_GT(r.numPredictions, 0u);
    EXPECT_GE(r.pgos, 0.0);
}

TEST_F(MiniPipeline, DatasetsAreAppDisjointFromSpec)
{
    AssemblyOptions ao;
    ao.granularityInstr = 20000;
    const Dataset train = assembleDataset(hdtr_, ao,
                                          build_.intervalInstr);
    const Dataset test = assembleDataset(spec_, ao,
                                         build_.intervalInstr);
    for (uint32_t a : test.appId)
        EXPECT_GE(a, 100u);
    for (uint32_t a : train.appId)
        EXPECT_LT(a, 100u);
}
