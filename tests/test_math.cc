/**
 * @file
 * Unit and property tests for the linear-algebra kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/pf_selection.hh"
#include "math/eigen.hh"
#include "math/matrix.hh"

using namespace psca;

TEST(Matrix, IdentityMultiply)
{
    Matrix a(3, 3);
    int v = 1;
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = v++;
    const Matrix r = a.multiply(Matrix::identity(3));
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(r(i, j), a(i, j));
}

TEST(Matrix, MultiplyKnownValues)
{
    Matrix a(2, 3), b(3, 2);
    // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
    double av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data().begin());
    std::copy(bv, bv + 6, b.data().begin());
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 58);
    EXPECT_DOUBLE_EQ(c(0, 1), 64);
    EXPECT_DOUBLE_EQ(c(1, 0), 139);
    EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, TransposeRoundTrip)
{
    Rng rng(5);
    Matrix a(4, 7);
    for (auto &v : a.data())
        v = rng.gaussian();
    const Matrix t = a.transposed().transposed();
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 7; ++j)
            EXPECT_DOUBLE_EQ(t(i, j), a(i, j));
}

TEST(Matrix, MatVec)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    const auto r = a.multiply(std::vector<double>{5, 6});
    EXPECT_DOUBLE_EQ(r[0], 17);
    EXPECT_DOUBLE_EQ(r[1], 39);
}

TEST(Covariance, DiagonalIsVariance)
{
    Rng rng(7);
    Matrix x(2, 500);
    for (size_t t = 0; t < 500; ++t) {
        x(0, t) = rng.gaussian(0.0, 2.0);
        x(1, t) = rng.gaussian(5.0, 1.0);
    }
    const Matrix c = rowCovariance(x);
    EXPECT_NEAR(c(0, 0), 4.0, 0.6);
    EXPECT_NEAR(c(1, 1), 1.0, 0.2);
    EXPECT_NEAR(c(0, 1), 0.0, 0.3);
    EXPECT_DOUBLE_EQ(c(0, 1), c(1, 0));
}

TEST(Covariance, PerfectCorrelation)
{
    Rng rng(11);
    Matrix x(2, 200);
    for (size_t t = 0; t < 200; ++t) {
        const double v = rng.gaussian();
        x(0, t) = v;
        x(1, t) = 3.0 * v;
    }
    const Matrix c = rowCovariance(x);
    EXPECT_NEAR(c(0, 1) / std::sqrt(c(0, 0) * c(1, 1)), 1.0, 1e-9);
}

namespace {

/** Random symmetric matrix. */
Matrix
randomSymmetric(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i; j < n; ++j) {
            m(i, j) = rng.gaussian();
            m(j, i) = m(i, j);
        }
    }
    return m;
}

} // namespace

class JacobiSizes : public ::testing::TestWithParam<size_t>
{};

TEST_P(JacobiSizes, EigenDecompositionProperties)
{
    const size_t n = GetParam();
    const Matrix a = randomSymmetric(n, 1000 + n);
    const EigenResult e = jacobiEigenSymmetric(a);

    // Sorted descending.
    for (size_t k = 1; k < n; ++k)
        EXPECT_GE(e.eigenvalues[k - 1], e.eigenvalues[k] - 1e-9);

    // Eigenvectors orthonormal.
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i; j < n; ++j) {
            double dot = 0.0;
            for (size_t c = 0; c < n; ++c)
                dot += e.eigenvectors(i, c) * e.eigenvectors(j, c);
            EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-7);
        }
    }

    // A v = lambda v for each pair.
    for (size_t k = 0; k < n; ++k) {
        std::vector<double> v(n);
        for (size_t c = 0; c < n; ++c)
            v[c] = e.eigenvectors(k, c);
        const auto av = a.multiply(v);
        for (size_t c = 0; c < n; ++c)
            EXPECT_NEAR(av[c], e.eigenvalues[k] * v[c], 1e-6);
    }

    // Trace preserved.
    double trace = 0.0, sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        trace += a(i, i);
        sum += e.eigenvalues[i];
    }
    EXPECT_NEAR(trace, sum, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSizes,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST(PowerIteration, MatchesJacobiOnPsd)
{
    // PSD matrix: A = B B^T.
    Rng rng(77);
    Matrix b(10, 20);
    for (auto &v : b.data())
        v = rng.gaussian();
    const Matrix a = b.multiply(b.transposed());

    const EigenResult jac = jacobiEigenSymmetric(a);
    const Matrix top = leadingEigenvectors(a, 2, 500);

    for (size_t k = 0; k < 2; ++k) {
        // Compare up to sign.
        double dot = 0.0;
        for (size_t c = 0; c < 10; ++c)
            dot += top(k, c) * jac.eigenvectors(k, c);
        EXPECT_NEAR(std::abs(dot), 1.0, 1e-3);
    }
}

TEST(Jacobi, KnownTwoByTwo)
{
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
    const EigenResult e = jacobiEigenSymmetric(a);
    EXPECT_NEAR(e.eigenvalues[0], 3.0, 1e-10);
    EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-10);
}
